# Local targets mirror .github/workflows/ci.yml one for one, so `make ci`
# reproduces exactly what the hosted pipeline runs.

GO      ?= go
FUZZTIME ?= 10s
# Iterations per benchmark when recording the BENCH_rewire.json baseline.
BENCHTIME ?= 5x

.PHONY: build test race bench bench-json bench-oracle-json oracle-e2e lint fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-smoke every benchmark with a single iteration.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Record the rewiring-engine perf baseline: BenchmarkRewire (flat adjset
# engine vs frozen map reference) and BenchmarkRestoreEndToEnd, with
# allocation stats, as committed JSON. CI uploads the same file as an
# artifact so the perf trajectory is tracked per commit.
# The bench output goes through a temp file, not a pipe: a benchmark
# failure or panic must fail the target instead of letting benchjson
# record the surviving lines as a green partial baseline.
bench-json:
	@tmp=$$(mktemp); \
	$(GO) test -run='^$$' -bench='^(BenchmarkRewire|BenchmarkRestoreEndToEnd)$$' \
		-benchmem -benchtime=$(BENCHTIME) ./internal/dkseries ./internal/core \
		> $$tmp || { cat $$tmp; rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchjson < $$tmp > BENCH_rewire.json; \
	rm -f $$tmp; \
	cat BENCH_rewire.json

# Record the oracle (graphd HTTP server + resilient client) throughput
# baseline — raw query rate, full remote crawls, and the 8-concurrent-
# crawler load shape — as committed JSON, mirroring bench-json.
bench-oracle-json:
	@tmp=$$(mktemp); \
	$(GO) test -run='^$$' -bench='^BenchmarkOracle' \
		-benchmem -benchtime=$(BENCHTIME) ./internal/oracle \
		> $$tmp || { cat $$tmp; rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchjson < $$tmp > BENCH_oracle.json; \
	rm -f $$tmp; \
	cat BENCH_oracle.json

# Client/server acceptance gate: boot graphd on a random port with
# injected faults, crawl it over HTTP under -race, require byte-identical
# output vs the in-memory path, resume from the journal, restore offline.
oracle-e2e:
	bash scripts/oracle_e2e.sh

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Short fuzz smoke of the native fuzz targets.
fuzz:
	$(GO) test ./internal/core -run='^FuzzFenwick$$' -fuzz='^FuzzFenwick$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sampling -run='^FuzzReadCrawlJSON$$' -fuzz='^FuzzReadCrawlJSON$$' -fuzztime=$(FUZZTIME)

ci: lint build test race fuzz bench oracle-e2e
