# Local targets mirror .github/workflows/ci.yml one for one, so `make ci`
# reproduces exactly what the hosted pipeline runs.

GO      ?= go
FUZZTIME ?= 10s
# Iterations per benchmark when recording the committed JSON baselines.
BENCHTIME ?= 5x
# The oracle micro-benchmarks run in microseconds, not hundreds of
# milliseconds, so their baselines need far more iterations to mean
# anything (queries/s especially).
ORACLE_BENCHTIME ?= 2000x

.PHONY: build test race bench bench-json bench-gate bench-oracle-json bench-props-json bench-restored-json bench-load-json oracle-e2e restored-e2e loadgen-e2e chaos trace-demo lint fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-smoke every benchmark with a single iteration.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# record-bench is the one parameterized baseline recipe behind every
# bench-*-json target: $(call record-bench,<bench command(s)>,<out.json>).
# The bench output goes through a temp file, not a pipe: a benchmark
# failure or panic must fail the target instead of letting benchjson
# record the surviving lines as a green partial baseline. CI uploads the
# produced files as artifacts so the perf trajectory is tracked per commit.
define record-bench
	@tmp=$$(mktemp); \
	{ $(1); } > $$tmp || { cat $$tmp; rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchjson < $$tmp > $(2); \
	rm -f $$tmp; \
	cat $(2)
endef

# Rewiring-engine perf baseline: BenchmarkRewire (flat adjset engine, the
# frozen map reference, and the sharded engine at 1 and 8 workers) and
# BenchmarkRestoreEndToEnd, with allocation stats.
bench-json:
	$(call record-bench,$(GO) test -run='^$$' -bench='^(BenchmarkRewire|BenchmarkRestoreEndToEnd)$$' -benchmem -benchtime=$(BENCHTIME) ./internal/dkseries ./internal/core,BENCH_rewire.json)

# bench-gate re-records the rewiring baseline and fails when any shared
# benchmark regressed more than 20% in ns/op against the committed
# BENCH_rewire.json. The committed numbers are snapshotted before
# bench-json overwrites the file; the fresh recording is left in place for
# inspection (and for committing when an improvement should become the new
# baseline).
bench-gate:
	@base=$$(mktemp); cp BENCH_rewire.json $$base; \
	$(MAKE) bench-json || { rm -f $$base; exit 1; }; \
	bash scripts/bench_gate.sh $$base BENCH_rewire.json; st=$$?; \
	rm -f $$base; exit $$st

# Oracle (graphd HTTP server + resilient client) throughput baseline — raw
# query rate, full remote crawls, and the 8-concurrent-crawler load shape.
bench-oracle-json:
	$(call record-bench,$(GO) test -run='^$$' -bench='^Benchmark(OracleNeighbors$$|OracleCrawl|OracleConcurrentCrawlers)' -benchmem -benchtime=$(ORACLE_BENCHTIME) ./internal/oracle,BENCH_oracle.json)

# Read-path (CSR snapshot) perf baseline: full property computation in
# exact and pivot mode against the frozen pre-CSR pipeline, Brandes over
# all sources, and the oracle's serving rate before/after the CSR page
# path plus the batched-vs-single BFS crawl split.
bench-props-json:
	$(call record-bench,$(GO) test -run='^$$' -bench='^(BenchmarkComputeAll|BenchmarkBrandesAllSources)' -benchmem -benchtime=$(BENCHTIME) ./internal/props && $(GO) test -run='^$$' -bench='^(BenchmarkOracleNeighbors|BenchmarkServerNeighborsHandler|BenchmarkOracleBFSCrawl)' -benchmem -benchtime=$(ORACLE_BENCHTIME) ./internal/oracle,BENCH_props.json)

# Restoration-as-a-service baseline: service throughput when every job is
# new work (jobs/s = 1e9/ns-per-op), the cache-hit and dedup fast paths,
# and the submit-time canonicalization cost. The paths are microsecond-to-
# millisecond scale, so they get the oracle iteration count.
bench-restored-json:
	$(call record-bench,$(GO) test -run='^$$' -bench='^BenchmarkRestored' -benchmem -benchtime=$(ORACLE_BENCHTIME) ./internal/restored,BENCH_restored.json)

# Workload-trajectory baseline: boot both daemons and drive the standard
# seeded loadgen mix at them, recording the full correlated SLO report
# (client histograms, server scrape deltas, cross-checks, verdict) as
# BENCH_load.json — the serving-stack counterpart of the micro-benchmark
# baselines above. Unlike record-bench targets this is not benchjson
# output; the report is its own JSON format (see internal/loadgen).
bench-load-json:
	bash scripts/bench_load.sh BENCH_load.json

# Client/server acceptance gate: boot graphd on a random port with
# injected faults, crawl it over HTTP under -race, require byte-identical
# output vs the in-memory path, resume from the journal, restore offline.
oracle-e2e:
	bash scripts/oracle_e2e.sh

# Restoration-as-a-service acceptance gate: boot a race-enabled restored on
# a random port, submit -> poll -> download, require downloads
# byte-identical to the offline restore, assert the cache/singleflight
# counters, round-trip the binary codec through gengraph.
restored-e2e:
	bash scripts/restored_e2e.sh

# Workload-observability acceptance gate: boot race-enabled graphd +
# restored, crawl with -stats-json, run the seeded loadgen swarm twice
# (identical schedule hashes required), and check the SLO report:
# well-formed, client<->server correlation consistent, generous SLO
# passes, unattainable SLO exits 2.
loadgen-e2e:
	bash scripts/loadgen_e2e.sh

# Crash-safety acceptance gate: SIGKILL a race-enabled restored mid-job,
# restart it on the same cache dir, require the WAL-replayed job to finish
# byte-identical to the offline restore; then cancellation over the wire
# and a crawl through graphd with every fault mode enabled.
chaos:
	bash scripts/chaos_e2e.sh

# Pipeline flame chart in one command: generate, crawl, restore with
# -trace, and leave a Chrome trace_event file (default trace.json, override
# with TRACE_OUT=...) to load at chrome://tracing or ui.perfetto.dev.
trace-demo:
	bash scripts/trace_demo.sh

# Mirrors the CI lint job: vet, gofmt, the sgrlint determinism suite
# (test files included), and govulncheck when installed (CI always runs
# it; locally it is skipped rather than go-installed so the target works
# offline).
lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/sgrlint ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipped (CI runs it)"; fi

# Short fuzz smoke of the native fuzz targets.
fuzz:
	$(GO) test ./internal/core -run='^FuzzFenwick$$' -fuzz='^FuzzFenwick$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sampling -run='^FuzzReadCrawlJSON$$' -fuzz='^FuzzReadCrawlJSON$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/restored -run='^FuzzCacheKeyCanonicalization$$' -fuzz='^FuzzCacheKeyCanonicalization$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/restored -run='^FuzzJobJournal$$' -fuzz='^FuzzJobJournal$$' -fuzztime=$(FUZZTIME)

ci: lint build test race fuzz bench oracle-e2e restored-e2e loadgen-e2e chaos
