# Local targets mirror .github/workflows/ci.yml one for one, so `make ci`
# reproduces exactly what the hosted pipeline runs.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: build test race bench lint fuzz ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-smoke every benchmark with a single iteration.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Short fuzz smoke of the core package's native fuzz targets.
fuzz:
	$(GO) test ./internal/core -run='^FuzzFenwick$$' -fuzz='^FuzzFenwick$$' -fuzztime=$(FUZZTIME)

ci: lint build test race fuzz bench
