package sgr_test

import (
	"testing"

	"sgr/internal/core"
	"sgr/internal/estimate"
	"sgr/internal/graph"
	"sgr/internal/props"
	"sgr/internal/sampling"
)

// BenchmarkAblationSimpleGraph compares default (multigraph-permitting)
// rewiring against the ForbidDegenerate extension: the latter should leave
// fewer multi-edges at similar cost.
func BenchmarkAblationSimpleGraph(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.1)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(20))
	if err != nil {
		b.Fatal(err)
	}
	for _, forbid := range []bool{false, true} {
		name := "multigraph"
		if forbid {
			name = "simple"
		}
		b.Run(name, func(b *testing.B) {
			var multi float64
			for i := 0; i < b.N; i++ {
				res, err := core.Restore(crawl, core.Options{
					RC: 20, ForbidDegenerate: forbid, Rand: benchRNG(uint64(i)),
				})
				if err != nil {
					b.Fatal(err)
				}
				multi = float64(res.Graph.CountMultiEdges())
			}
			b.ReportMetric(multi, "multiEdges")
		})
	}
}

// BenchmarkAblationOracleEstimates isolates estimation error from
// construction error: the proposed pipeline fed exact properties of the
// hidden graph versus walk-based estimates.
func BenchmarkAblationOracleEstimates(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.1)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(21))
	if err != nil {
		b.Fatal(err)
	}
	oracle := oracleEstimatesOf(g)
	nTrue := float64(g.N())

	b.Run("oracle", func(b *testing.B) {
		var relErr float64
		for i := 0; i < b.N; i++ {
			res, err := core.RestoreWithEstimates(crawl, oracle, core.Options{RC: 10, Rand: benchRNG(uint64(i))})
			if err != nil {
				b.Fatal(err)
			}
			relErr = absf(float64(res.Graph.N())-nTrue) / nTrue
		}
		b.ReportMetric(relErr, "nRelErr")
	})
	b.Run("estimated", func(b *testing.B) {
		var relErr float64
		for i := 0; i < b.N; i++ {
			res, err := core.Restore(crawl, core.Options{RC: 10, Rand: benchRNG(uint64(i))})
			if err != nil {
				b.Fatal(err)
			}
			relErr = absf(float64(res.Graph.N())-nTrue) / nTrue
		}
		b.ReportMetric(relErr, "nRelErr")
	})
}

func oracleEstimatesOf(g *graph.Graph) *estimate.Estimates {
	dd := make(map[int]float64)
	for u := 0; u < g.N(); u++ {
		dd[g.Degree(u)]++
	}
	for k := range dd {
		dd[k] /= float64(g.N())
	}
	jdd := make(map[estimate.DegreePair]float64)
	twoM := 2 * float64(g.M())
	for kk, c := range g.JointDegreeMatrix() {
		mu := 1.0
		if kk[0] == kk[1] {
			mu = 2.0
		}
		jdd[estimate.Pair(kk[0], kk[1])] = mu * float64(c) / twoM
	}
	return &estimate.Estimates{
		N:          float64(g.N()),
		Collisions: 1,
		AvgDeg:     g.AvgDegree(),
		DegreeDist: dd,
		JDD:        jdd,
		Clustering: props.DegreeClustering(g),
		Lag:        1,
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkAblationWalkVariants compares the average-degree estimation
// error of the simple random walk against the non-backtracking walk,
// Metropolis-Hastings walk, and frontier sampling under the same budget
// (the related-work alternatives of Sec. II).
func BenchmarkAblationWalkVariants(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.3)
	truth := g.AvgDegree()
	type variant struct {
		name string
		run  func(seed uint64) (*sampling.Crawl, error)
	}
	variants := []variant{
		{"simple", func(s uint64) (*sampling.Crawl, error) {
			return sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(s))
		}},
		{"nonBacktracking", func(s uint64) (*sampling.Crawl, error) {
			return sampling.NonBacktrackingWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(s))
		}},
		{"metropolisHastings", func(s uint64) (*sampling.Crawl, error) {
			return sampling.MetropolisHastingsWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(s))
		}},
		{"frontier", func(s uint64) (*sampling.Crawl, error) {
			return sampling.FrontierSampling(sampling.NewGraphAccess(g), []int{0, 1, 2, 3}, 0.10, benchRNG(s))
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var relErr float64
			for i := 0; i < b.N; i++ {
				c, err := v.run(uint64(100 + i))
				if err != nil {
					b.Fatal(err)
				}
				w, err := estimate.NewWalk(c)
				if err != nil {
					b.Fatal(err)
				}
				relErr = absf(w.AvgDegree()-truth) / truth
			}
			b.ReportMetric(relErr, "kbarRelErr")
		})
	}
}
