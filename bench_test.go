// Benchmarks regenerating the paper's tables and figures at reduced scale.
//
// Every table and figure of the evaluation (Sec. VI) has a bench below that
// exercises the exact code path which regenerates it; custom metrics
// (avgL1, rewire-fraction, ...) report the headline quantity of that
// artifact. Full-fidelity regeneration — paper-scale graphs, 10 runs,
// RC = 500 — is the job of `go run ./cmd/experiment` (see EXPERIMENTS.md);
// benches keep the workload small so `go test -bench=.` finishes in
// minutes while preserving the paper's qualitative ordering.
package sgr_test

import (
	"math/rand/v2"
	"path/filepath"
	"testing"

	"sgr"
	"sgr/internal/core"
	"sgr/internal/dkseries"
	"sgr/internal/estimate"
	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/harness"
	"sgr/internal/layout"
	"sgr/internal/metrics"
	"sgr/internal/props"
	"sgr/internal/sampling"
)

func benchRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xb0b)) }

// benchDataset builds a small stand-in for the named paper dataset.
func benchDataset(b *testing.B, name string, scale float64) *graph.Graph {
	b.Helper()
	d, err := gen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return d.Build(scale, benchRNG(1))
}

func benchConfig(fraction float64) harness.Config {
	return harness.Config{
		Fraction: fraction,
		Runs:     1,
		RC:       10,
		Seed:     7,
		PropOpts: props.Options{ExactThreshold: 3000, Pivots: 300},
	}
}

// --- Fig. 3: average L1 over 12 properties vs fraction queried ---

func benchFig3(b *testing.B, dataset string) {
	g := benchDataset(b, dataset, 0.05)
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.02, 0.06, 0.10} {
			ev, err := harness.Evaluate(g, benchConfig(frac))
			if err != nil {
				b.Fatal(err)
			}
			last = ev.AvgL1(harness.MethodProposed)
		}
	}
	b.ReportMetric(last, "proposedAvgL1@10%")
}

func BenchmarkFig3Anybeat(b *testing.B)    { benchFig3(b, "anybeat") }
func BenchmarkFig3Brightkite(b *testing.B) { benchFig3(b, "brightkite") }
func BenchmarkFig3Epinions(b *testing.B)   { benchFig3(b, "epinions") }

// --- Table II: per-property L1 at 10% queried ---

func benchTable2(b *testing.B, dataset string) {
	g := benchDataset(b, dataset, 0.05)
	b.ResetTimer()
	var proposed, bestBaseline float64
	for i := 0; i < b.N; i++ {
		ev, err := harness.Evaluate(g, benchConfig(0.10))
		if err != nil {
			b.Fatal(err)
		}
		proposed = ev.AvgL1(harness.MethodProposed)
		bestBaseline = -1
		for _, m := range []harness.Method{harness.MethodBFS, harness.MethodSnowball,
			harness.MethodFF, harness.MethodRW, harness.MethodGjoka} {
			if v := ev.AvgL1(m); bestBaseline < 0 || v < bestBaseline {
				bestBaseline = v
			}
		}
	}
	b.ReportMetric(proposed, "proposedAvgL1")
	b.ReportMetric(bestBaseline, "bestBaselineAvgL1")
}

func BenchmarkTable2Slashdot(b *testing.B)  { benchTable2(b, "slashdot") }
func BenchmarkTable2Gowalla(b *testing.B)   { benchTable2(b, "gowalla") }
func BenchmarkTable2Livemocha(b *testing.B) { benchTable2(b, "livemocha") }

// --- Table III: avg +- sd over the six table datasets ---

func BenchmarkTable3AvgSD(b *testing.B) {
	graphs := make(map[string]*graph.Graph)
	for _, d := range gen.TableDatasets() {
		graphs[d.Name] = benchDataset(b, d.Name, 0.02)
	}
	b.ResetTimer()
	var worstAvg float64
	for i := 0; i < b.N; i++ {
		worstAvg = 0
		for _, g := range graphs {
			ev, err := harness.Evaluate(g, benchConfig(0.10))
			if err != nil {
				b.Fatal(err)
			}
			if avg := ev.AvgL1(harness.MethodProposed); avg > worstAvg {
				worstAvg = avg
			}
		}
	}
	b.ReportMetric(worstAvg, "proposedWorstAvgL1")
}

// --- Table IV: generation times (total and rewiring) ---

func benchGenerationTime(b *testing.B, gjoka bool) {
	g := benchDataset(b, "anybeat", 0.2)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rewireFrac float64
	for i := 0; i < b.N; i++ {
		opts := core.Options{RC: 25, Rand: benchRNG(uint64(i))}
		var res *core.Result
		var err error
		if gjoka {
			res, err = core.RestoreGjoka(crawl, opts)
		} else {
			res, err = core.Restore(crawl, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalTime > 0 {
			rewireFrac = res.RewireTime.Seconds() / res.TotalTime.Seconds()
		}
	}
	b.ReportMetric(rewireFrac, "rewireTimeFraction")
}

func BenchmarkTable4GenerateProposed(b *testing.B) { benchGenerationTime(b, false) }
func BenchmarkTable4GenerateGjoka(b *testing.B)    { benchGenerationTime(b, true) }

func BenchmarkTable4SubgraphConstruction(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.2)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampling.BuildSubgraph(crawl)
	}
}

// --- Table V: YouTube stand-in at 1% queried ---

func BenchmarkTable5YouTube(b *testing.B) {
	g := benchDataset(b, "youtube", 0.005) // ~5.7k nodes
	cfg := benchConfig(0.01)
	cfg.Methods = []harness.Method{harness.MethodRW, harness.MethodGjoka, harness.MethodProposed}
	b.ResetTimer()
	var proposed float64
	for i := 0; i < b.N; i++ {
		ev, err := harness.Evaluate(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		proposed = ev.AvgL1(harness.MethodProposed)
	}
	b.ReportMetric(proposed, "proposedAvgL1")
}

// --- Fig. 4: layout + SVG rendering ---

func BenchmarkFig4Visualization(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.05)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := layout.SaveSVG(filepath.Join(dir, "fig4.svg"), g,
			layout.Options{Iterations: 50, Rand: benchRNG(4)}, layout.SVGOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationRewireCandidates compares the proposed candidate set
// (added edges only) against Gjoka et al.'s full-edge candidate set on the
// same built graph: the restricted set must be faster per attempt-budget
// and reach a lower clustering distance.
func BenchmarkAblationRewireCandidates(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.1)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(5))
	if err != nil {
		b.Fatal(err)
	}
	build, err := core.Restore(crawl, core.Options{SkipRewiring: true, Rand: benchRNG(6)})
	if err != nil {
		b.Fatal(err)
	}
	sub := build.Subgraph
	fixed := sub.Graph.Edges()
	addedOnly := make([]graph.Edge, 0, build.Graph.M()-len(fixed))
	all := build.Graph.Edges()
	// Added edges = multiset difference all \ fixed.
	fixedCount := map[graph.Edge]int{}
	for _, e := range fixed {
		fixedCount[e.Canon()]++
	}
	for _, e := range all {
		c := e.Canon()
		if fixedCount[c] > 0 {
			fixedCount[c]--
			continue
		}
		addedOnly = append(addedOnly, e)
	}
	target := build.Estimates.Clustering

	b.Run("restricted", func(b *testing.B) {
		var final float64
		for i := 0; i < b.N; i++ {
			cands := append([]graph.Edge(nil), addedOnly...)
			_, st := dkseries.Rewire(build.Graph.N(), fixed, cands, dkseries.RewireOptions{
				TargetClustering: target, RC: 20, Rand: benchRNG(uint64(i)),
			})
			final = st.FinalL1
		}
		b.ReportMetric(final, "clusteringL1")
	})
	b.Run("allEdges", func(b *testing.B) {
		var final float64
		for i := 0; i < b.N; i++ {
			cands := append([]graph.Edge(nil), all...)
			_, st := dkseries.Rewire(build.Graph.N(), nil, cands, dkseries.RewireOptions{
				TargetClustering: target, RC: 20, Rand: benchRNG(uint64(i)),
			})
			final = st.FinalL1
		}
		b.ReportMetric(final, "clusteringL1")
	})
}

// BenchmarkAblationJDDEstimator compares the hybrid joint-degree estimator
// against its pure IE / TE variants (Sec. III-E).
func BenchmarkAblationJDDEstimator(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.2)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(7))
	if err != nil {
		b.Fatal(err)
	}
	w, err := estimate.NewWalk(crawl)
	if err != nil {
		b.Fatal(err)
	}
	truth := trueJDDDist(g)
	nHat, _ := w.NumNodes(w.Lag())
	kHat := w.AvgDegree()
	run := func(b *testing.B, f func() map[estimate.DegreePair]float64) {
		var l1 float64
		for i := 0; i < b.N; i++ {
			l1 = jddL1(f(), truth)
		}
		b.ReportMetric(l1, "jddL1")
	}
	b.Run("hybrid", func(b *testing.B) {
		run(b, func() map[estimate.DegreePair]float64 { return w.JDDHybrid(nHat, kHat, w.Lag()) })
	})
	b.Run("ie", func(b *testing.B) {
		run(b, func() map[estimate.DegreePair]float64 { return w.JDDIE(nHat, kHat, w.Lag()) })
	})
	b.Run("te", func(b *testing.B) {
		run(b, func() map[estimate.DegreePair]float64 { return w.JDDTE() })
	})
}

func trueJDDDist(g *graph.Graph) map[estimate.DegreePair]float64 {
	out := make(map[estimate.DegreePair]float64)
	twoM := 2 * float64(g.M())
	for kk, c := range g.JointDegreeMatrix() {
		mu := 1.0
		if kk[0] == kk[1] {
			mu = 2.0
		}
		out[estimate.Pair(kk[0], kk[1])] = mu * float64(c) / twoM
	}
	return out
}

func jddL1(got, want map[estimate.DegreePair]float64) float64 {
	num, den := 0.0, 0.0
	seen := make(map[estimate.DegreePair]bool)
	for kk, p := range want {
		d := got[kk] - p
		if d < 0 {
			d = -d
		}
		num += d
		den += p
		seen[kk] = true
	}
	for kk, p := range got {
		if !seen[kk] {
			num += p
		}
	}
	return num / den
}

// BenchmarkAblationRewireCoefficient sweeps RC, the attempts-per-edge
// coefficient, showing the accuracy/time trade-off of Sec. VI-C.
func BenchmarkAblationRewireCoefficient(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.1)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(8))
	if err != nil {
		b.Fatal(err)
	}
	for _, rc := range []float64{1, 10, 50} {
		b.Run(rcName(rc), func(b *testing.B) {
			var final float64
			for i := 0; i < b.N; i++ {
				res, err := core.Restore(crawl, core.Options{RC: rc, Rand: benchRNG(uint64(i))})
				if err != nil {
					b.Fatal(err)
				}
				final = res.RewireStats.FinalL1
			}
			b.ReportMetric(final, "clusteringL1")
		})
	}
}

func rcName(rc float64) string {
	switch rc {
	case 1:
		return "RC1"
	case 10:
		return "RC10"
	default:
		return "RC50"
	}
}

// BenchmarkAblationModificationSteps isolates the cost of the proposed
// method's subgraph-aware target construction (phases 1-2 with modification
// steps) against Gjoka et al.'s estimate-only construction.
func BenchmarkAblationModificationSteps(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.2)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(9))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("withModification", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Restore(crawl, core.Options{SkipRewiring: true, Rand: benchRNG(uint64(i))}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("withoutModification", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RestoreGjoka(crawl, core.Options{SkipRewiring: true, Rand: benchRNG(uint64(i))}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Component micro-benchmarks ---

func BenchmarkRandomWalkCrawl(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateAll(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.5)
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, benchRNG(10))
	if err != nil {
		b.Fatal(err)
	}
	w, err := estimate.NewWalk(crawl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimate.All(w)
	}
}

func BenchmarkComputeProperties(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.2)
	opts := props.Options{ExactThreshold: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		props.Compute(g, opts)
	}
}

func BenchmarkPublicAPIEndToEnd(b *testing.B) {
	g := benchDataset(b, "anybeat", 0.1)
	b.ResetTimer()
	var avg float64
	for i := 0; i < b.N; i++ {
		r := benchRNG(uint64(i))
		crawl, err := sgr.RandomWalk(g, 0, 0.10, r)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sgr.Restore(crawl, sgr.Options{RC: 10, Rand: r})
		if err != nil {
			b.Fatal(err)
		}
		orig := sgr.ComputeProperties(g, sgr.PropertyOptions{})
		got := sgr.ComputeProperties(res.Graph, sgr.PropertyOptions{})
		avg = metrics.Mean(sgr.CompareL1(got, orig))
	}
	b.ReportMetric(avg, "avgL1")
}
