// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be committed
// and diffed (see `make bench-json`, which records the rewiring-engine
// baseline in BENCH_rewire.json).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Document, error) {
	doc := &Document{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcSuffix(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}

// trimProcSuffix drops the trailing -N GOMAXPROCS marker from a benchmark
// name (BenchmarkRewire/adjset-8 -> BenchmarkRewire/adjset), keeping names
// comparable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
