// Command crawl samples a graph with one of the paper's crawling methods
// and writes the induced subgraph as an edge list (with original node IDs
// preserved via comment metadata).
//
// Usage:
//
//	crawl -graph g.edges -method rw -fraction 0.1 -out sub.edges
//	crawl -graph g.edges -method snowball -k 50 -fraction 0.05
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"sgr/internal/graph"
	"sgr/internal/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crawl: ")
	var (
		path     = flag.String("graph", "", "graph edge list (required)")
		method   = flag.String("method", "rw", "rw, bfs, snowball, ff, mh, nbrw")
		fraction = flag.Float64("fraction", 0.10, "fraction of nodes to query")
		k        = flag.Int("k", 50, "snowball neighbor cap")
		pf       = flag.Float64("pf", 0.7, "forest fire burn probability")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "output subgraph edge list (default stdout)")
		saveRaw  = flag.String("save-crawl", "", "also save the raw sampling list as JSON (feed to restore -crawl)")
	)
	flag.Parse()
	if *path == "" {
		log.Fatal("-graph is required")
	}
	g, _, err := graph.LoadEdgeList(*path)
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewPCG(*seed, *seed^0x27d4eb2f))
	access := sampling.NewGraphAccess(g)
	seedNode := r.IntN(g.N())

	var c *sampling.Crawl
	switch *method {
	case "rw":
		c, err = sampling.RandomWalk(access, seedNode, *fraction, r)
	case "bfs":
		c, err = sampling.BFS(access, seedNode, *fraction)
	case "snowball":
		c, err = sampling.Snowball(access, seedNode, *k, *fraction, r)
	case "ff":
		c, err = sampling.ForestFire(access, seedNode, *pf, *fraction, r)
	case "mh":
		c, err = sampling.MetropolisHastingsWalk(access, seedNode, *fraction, r)
	case "nbrw":
		c, err = sampling.NonBacktrackingWalk(access, seedNode, *fraction, r)
	default:
		log.Fatalf("unknown method %q", *method)
	}
	if err != nil {
		log.Fatal(err)
	}
	sub := sampling.BuildSubgraph(c)
	fmt.Fprintf(os.Stderr, "crawl: queried %d nodes; subgraph n=%d m=%d (%d queried, %d visible)\n",
		c.NumQueried(), sub.Graph.N(), sub.Graph.M(), sub.NumQueried, sub.Graph.N()-sub.NumQueried)
	if *saveRaw != "" {
		if err := sampling.SaveCrawl(*saveRaw, c); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "crawl: saved sampling list to %s\n", *saveRaw)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# crawl method=%s fraction=%v seed=%d\n", *method, *fraction, *seed)
	fmt.Fprintf(w, "# subgraph node i maps to original node id below\n")
	for i, orig := range sub.Nodes {
		fmt.Fprintf(w, "# node %d = original %d queried=%v\n", i, orig, sub.IsQueried(i))
	}
	if err := graph.WriteEdgeList(w, sub.Graph); err != nil {
		log.Fatal(err)
	}
}
