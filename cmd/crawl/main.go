// Command crawl samples a graph with one of the paper's crawling methods
// and writes the induced subgraph as an edge list (with original node IDs
// preserved via comment metadata). The hidden graph is either loaded
// locally (-graph) or crawled over the wire from a running graphd (-url);
// both paths are byte-identical at the same seed.
//
// Usage:
//
//	crawl -graph g.edges -method rw -fraction 0.1 -out sub.edges
//	crawl -graph g.edges -method snowball -k 50 -fraction 0.05
//	crawl -url http://127.0.0.1:8080 -fraction 0.1 -journal crawl.journal -save-crawl crawl.json
//	crawl -url http://127.0.0.1:8080 -fraction 0.1 -stats-json stats.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"sgr/internal/graph"
	"sgr/internal/oracle"
	"sgr/internal/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crawl: ")
	var (
		path      = flag.String("graph", "", "graph edge list (local crawl)")
		url       = flag.String("url", "", "graphd base URL (remote crawl), e.g. http://127.0.0.1:8080")
		apiKey    = flag.String("api-key", "", "X-API-Key identifying this crawler to graphd's rate limiter")
		journal   = flag.String("journal", "", "crawl journal path (with -url): answered queries persist here, and an interrupted crawl rerun with the same seed resumes without re-spending budget")
		retries   = flag.Int("retries", 8, "max retries per API request (with -url)")
		method    = flag.String("method", "rw", "rw, bfs, snowball, ff, mh, nbrw")
		fraction  = flag.Float64("fraction", 0.10, "fraction of nodes to query, in (0,1]")
		k         = flag.Int("k", 50, "snowball neighbor cap")
		pf        = flag.Float64("pf", 0.7, "forest fire burn probability")
		seed      = flag.Uint64("seed", 1, "random seed")
		seedNode  = flag.Int("seed-node", -1, "start node id (default: drawn from the RNG)")
		out       = flag.String("out", "", "output subgraph edge list (default stdout)")
		saveRaw   = flag.String("save-crawl", "", "also save the raw sampling list as JSON (feed to restore -crawl)")
		stats     = flag.Bool("stats", false, "print oracle transport statistics to stderr after the crawl (with -url)")
		statsJSON = flag.String("stats-json", "", "write oracle transport statistics as JSON to this path after the crawl; \"-\" = stdout (with -url)")
	)
	flag.Parse()
	if (*path == "") == (*url == "") {
		log.Fatal("exactly one of -graph or -url is required")
	}
	if *fraction <= 0 || *fraction > 1 {
		log.Fatalf("-fraction must be in (0,1], got %v", *fraction)
	}
	if *journal != "" && *url == "" {
		log.Fatal("-journal requires -url (local crawls are free to rerun)")
	}
	if *statsJSON != "" && *url == "" {
		log.Fatal("-stats-json requires -url (transport stats only exist for remote crawls)")
	}

	var access sampling.Access
	var client *oracle.Client
	if *url != "" {
		var err error
		client, err = oracle.NewClient(oracle.ClientConfig{
			BaseURL:     *url,
			APIKey:      *apiKey,
			MaxRetries:  *retries,
			JournalPath: *journal,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		access = client
	} else {
		g, _, err := graph.LoadEdgeList(*path)
		if err != nil {
			log.Fatal(err)
		}
		access = sampling.NewGraphAccess(g)
	}
	n := access.NumNodes()

	r := rand.New(rand.NewPCG(*seed, *seed^0x27d4eb2f))
	start := *seedNode
	if start < 0 {
		start = r.IntN(n)
	} else if start >= n {
		log.Fatalf("-seed-node %d out of range [0,%d)", start, n)
	}

	var c *sampling.Crawl
	var err error
	switch *method {
	case "rw":
		// The shared seeded entry point, so a daemon-side crawl (restored's
		// graphd job source) replays exactly this command's walk.
		c, err = sampling.SeededRandomWalk(access, *seedNode, *fraction, *seed)
	case "bfs":
		c, err = sampling.BFS(access, start, *fraction)
	case "snowball":
		c, err = sampling.Snowball(access, start, *k, *fraction, r)
	case "ff":
		c, err = sampling.ForestFire(access, start, *pf, *fraction, r)
	case "mh":
		c, err = sampling.MetropolisHastingsWalk(access, start, *fraction, r)
	case "nbrw":
		c, err = sampling.NonBacktrackingWalk(access, start, *fraction, r)
	default:
		log.Fatalf("unknown method %q", *method)
	}
	if client != nil && client.Err() != nil {
		// A dead oracle surfaces in walkers as a bogus "isolated node";
		// report the real cause.
		log.Fatalf("remote crawl failed: %v", client.Err())
	}
	if err != nil {
		if client != nil && client.PrivateSeen() > 0 {
			// Private answers also read as empty neighbor lists to the
			// walkers. Remote crawling cannot see privacy before spending
			// the query, so a private-heavy server needs the private set
			// supplied client-side (sampling.NewPrivateAccess over the
			// oracle client) rather than discovered by walking into it.
			log.Fatalf("%v (%d queried node(s) answered private — the server hides their neighbor lists)",
				err, client.PrivateSeen())
		}
		log.Fatal(err)
	}
	if client != nil {
		fmt.Fprintf(os.Stderr, "crawl: oracle: %d nodes fetched over HTTP in %d requests (%d replayed from journal)\n",
			client.NodesFetched(), client.Requests(), int64(c.NumQueried())-client.NodesFetched())
		if *stats {
			st := client.Stats()
			fmt.Fprintf(os.Stderr, "crawl: oracle stats: queries=%d p50=%v p99=%v retries=%d rate_limited=%d backoff=%v\n",
				st.Queries, st.QueryP50, st.QueryP99, st.Retries, st.RateLimited, st.Backoff)
			fmt.Fprintf(os.Stderr, "crawl: oracle stats: cache_hits=%d prefetch_batches=%d prefetch_nodes=%d\n",
				st.CacheHits, st.PrefetchBatches, st.PrefetchNodes)
		}
		if *statsJSON != "" {
			if err := writeStatsJSON(*statsJSON, client.Stats()); err != nil {
				log.Fatal(err)
			}
		}
		if *journal != "" && len(c.Walk) > 0 {
			if err := client.RecordWalk(c.Walk); err != nil {
				log.Fatal(err)
			}
		}
	}
	sub := sampling.BuildSubgraph(c)
	fmt.Fprintf(os.Stderr, "crawl: queried %d nodes; subgraph n=%d m=%d (%d queried, %d visible)\n",
		c.NumQueried(), sub.Graph.N(), sub.Graph.M(), sub.NumQueried, sub.Graph.N()-sub.NumQueried)
	if *saveRaw != "" {
		if err := sampling.SaveCrawl(*saveRaw, c); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "crawl: saved sampling list to %s\n", *saveRaw)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# crawl method=%s fraction=%v seed=%d\n", *method, *fraction, *seed)
	fmt.Fprintf(w, "# subgraph node i maps to original node id below\n")
	for i, orig := range sub.Nodes {
		fmt.Fprintf(w, "# node %d = original %d queried=%v\n", i, orig, sub.IsQueried(i))
	}
	if err := graph.WriteEdgeList(w, sub.Graph); err != nil {
		log.Fatal(err)
	}
}

// writeStatsJSON emits the oracle transport stats machine-readably, for
// harnesses that post-process crawl telemetry ("-" = stdout).
func writeStatsJSON(path string, st oracle.Stats) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}
