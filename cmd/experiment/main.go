// Command experiment regenerates the paper's evaluation artifacts (Sec. VI)
// on the synthetic dataset stand-ins:
//
//	-exp fig3    Fig. 3   average L1 vs fraction queried (anybeat, brightkite, epinions)
//	-exp table2  Table II per-property L1 at 10% queried (slashdot, gowalla, livemocha)
//	-exp table3  Table III avg +- sd of L1 at 10% queried (six datasets)
//	-exp table4  Table IV generation times at 10% queried (six datasets)
//	-exp table5  Table V  YouTube stand-in at 1% queried
//	-exp fig4    Fig. 4   visualization SVGs for the anybeat stand-in
//	-exp all     everything above
//
// The -scale, -runs and -rc flags trade fidelity for runtime; the paper's
// settings are -scale 1 -runs 10 -rc 500.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"sgr/internal/core"
	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/harness"
	"sgr/internal/layout"
	"sgr/internal/parallel"
	"sgr/internal/props"
	"sgr/internal/sampling"
)

type flags struct {
	exp      string
	scale    float64
	runs     int
	rc       float64
	seed     uint64
	outDir   string
	fracLo   float64
	fracHi   float64
	fracStep float64
	csv      bool
	workers  int
}

// saveCSV writes an evaluation as tidy CSV under the output directory.
func saveCSV(f flags, name string, ev *harness.Evaluation) error {
	if !f.csv {
		return nil
	}
	if err := os.MkdirAll(f.outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(f.outDir, name+".csv")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ev.WriteCSV(out, name); err != nil {
		out.Close()
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return out.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiment: ")
	var f flags
	flag.StringVar(&f.exp, "exp", "all", "fig3, table2, table3, table4, table5, fig4, or all")
	flag.Float64Var(&f.scale, "scale", 0.05, "dataset node-count scale (paper: 1.0)")
	flag.IntVar(&f.runs, "runs", 3, "independent runs per configuration (paper: 10)")
	flag.Float64Var(&f.rc, "rc", 50, "rewiring attempt coefficient (paper: 500)")
	flag.Uint64Var(&f.seed, "seed", 1, "master random seed")
	flag.StringVar(&f.outDir, "out", "results", "output directory for SVGs")
	flag.Float64Var(&f.fracLo, "frac-lo", 0.02, "fig3: lowest fraction")
	flag.Float64Var(&f.fracHi, "frac-hi", 0.10, "fig3: highest fraction")
	flag.Float64Var(&f.fracStep, "frac-step", 0.02, "fig3: fraction step")
	flag.BoolVar(&f.csv, "csv", false, "also write tidy CSVs under -out")
	flag.IntVar(&f.workers, "workers", parallel.DefaultWorkers(),
		"worker pool width for the evaluation engine; results are identical at any value")
	flag.Parse()

	run := func(name string, fn func(flags) error, inAll bool) {
		if f.exp == name || (f.exp == "all" && inAll) {
			start := time.Now()
			if err := fn(f); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Printf("[%s done in %.1fs]\n\n", name, time.Since(start).Seconds())
		}
	}
	run("fig3", fig3, true)
	// "tables" renders Tables II-IV from one shared set of evaluations;
	// the individual table modes re-evaluate from scratch and are
	// therefore excluded from "all".
	run("tables", tables, true)
	run("table2", table2, false)
	run("table3", table3, false)
	run("table4", table4, false)
	run("table5", table5, true)
	run("fig4", fig4, true)
	run("walkers", walkers, false)
}

// walkers compares the proposed method driven by different random-walk
// variants (the paper's suggested future-work combination): simple walk,
// non-backtracking walk, and frontier sampling, on the anybeat stand-in.
func walkers(f flags) error {
	g, err := buildDataset("anybeat", f.scale, f.seed)
	if err != nil {
		return err
	}
	fmt.Printf("Proposed method under different walk variants (avg L1 over 12 properties)\n")
	for _, w := range []harness.Walker{
		harness.WalkerSimple, harness.WalkerNonBacktracking, harness.WalkerFrontier,
	} {
		cfg := baseConfig(f)
		cfg.Walker = w
		cfg.Methods = []harness.Method{harness.MethodRW, harness.MethodProposed}
		ev, err := harness.Evaluate(g, cfg)
		if err != nil {
			return err
		}
		name := string(w)
		if name == "" {
			name = "simple"
		}
		fmt.Printf("%-10s proposed %.3f   rw-subgraph %.3f\n",
			name, ev.AvgL1(harness.MethodProposed), ev.AvgL1(harness.MethodRW))
	}
	return nil
}

// tables evaluates the six table datasets once and renders Tables II-IV
// from the shared evaluations (the paper's tables come from the same runs).
func tables(f flags) error {
	evals, err := evaluateSix(f)
	if err != nil {
		return err
	}
	for _, name := range []string{"slashdot", "gowalla", "livemocha"} {
		fmt.Print(harness.RenderPerProperty(name, evals[name]))
		fmt.Println()
	}
	fmt.Print(harness.RenderAvgSD(evals))
	fmt.Println()
	fmt.Print(harness.RenderTimes(evals))
	for name, ev := range evals {
		if err := saveCSV(f, name, ev); err != nil {
			return err
		}
	}
	return nil
}

func buildDataset(name string, scale float64, seed uint64) (*graph.Graph, error) {
	d, err := gen.ByName(name)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewPCG(seed, 0xd1b54a32))
	return d.Build(scale, r), nil
}

func baseConfig(f flags) harness.Config {
	return harness.Config{
		Fraction: 0.10,
		Runs:     f.runs,
		RC:       f.rc,
		Seed:     f.seed,
		Workers:  f.workers,
		// PropOpts.Workers stays unset; the harness pins it to 1 so the
		// property floats depend on neither -workers nor the host CPU
		// count, and the emitted tables never change with either.
		PropOpts: props.Options{ExactThreshold: 6000, Pivots: 800},
	}
}

func fig3(f flags) error {
	for _, name := range []string{"anybeat", "brightkite", "epinions"} {
		g, err := buildDataset(name, f.scale, f.seed)
		if err != nil {
			return err
		}
		// The sweep stays serial at the fraction level: each Evaluate
		// already fans its (run, method) cells across the -workers pool,
		// and nesting a second pool here would square the concurrency.
		// The original graph's properties are shared across the sweep.
		orig := baseConfig(f).ComputeOriginal(g)
		series := harness.Fig3Series{}
		methods := harness.AllMethods
		for frac := f.fracLo; frac <= f.fracHi+1e-9; frac += f.fracStep {
			cfg := baseConfig(f)
			cfg.Fraction = frac
			cfg.Original = orig
			ev, err := harness.Evaluate(g, cfg)
			if err != nil {
				return err
			}
			for _, m := range methods {
				series[m] = append(series[m], harness.Fig3Point{Fraction: frac, AvgL1: ev.AvgL1(m)})
			}
		}
		fmt.Print(harness.RenderFig3(name, series, methods))
		fmt.Println()
	}
	return nil
}

func table2(f flags) error {
	for _, name := range []string{"slashdot", "gowalla", "livemocha"} {
		g, err := buildDataset(name, f.scale, f.seed)
		if err != nil {
			return err
		}
		ev, err := harness.Evaluate(g, baseConfig(f))
		if err != nil {
			return err
		}
		fmt.Print(harness.RenderPerProperty(name, ev))
		fmt.Println()
	}
	return nil
}

func evaluateSix(f flags) (map[string]*harness.Evaluation, error) {
	// Serial at the dataset level: each Evaluate fans its (run, method)
	// cells across the -workers pool already, and six concurrent
	// evaluations would multiply peak memory by holding every stand-in
	// graph's cells live at once.
	out := make(map[string]*harness.Evaluation)
	for _, d := range gen.TableDatasets() {
		g, err := buildDataset(d.Name, f.scale, f.seed)
		if err != nil {
			return nil, err
		}
		ev, err := harness.Evaluate(g, baseConfig(f))
		if err != nil {
			return nil, err
		}
		out[d.Name] = ev
	}
	return out, nil
}

func table3(f flags) error {
	evals, err := evaluateSix(f)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderAvgSD(evals))
	return nil
}

func table4(f flags) error {
	evals, err := evaluateSix(f)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderTimes(evals))
	return nil
}

func table5(f flags) error {
	g, err := buildDataset("youtube", f.scale, f.seed)
	if err != nil {
		return err
	}
	cfg := baseConfig(f)
	cfg.Fraction = 0.01
	cfg.Runs = max(1, f.runs/2) // paper uses 5 runs here vs 10 elsewhere
	ev, err := harness.Evaluate(g, cfg)
	if err != nil {
		return err
	}
	fmt.Print(harness.RenderPerProperty("youtube (1% queried)", ev))
	fmt.Print(harness.RenderAvgSD(map[string]*harness.Evaluation{"youtube": ev}))
	fmt.Print(harness.RenderTimes(map[string]*harness.Evaluation{"youtube": ev}))
	return nil
}

// fig4 renders the original anybeat stand-in and each method's generated
// graph at 10% queried as SVG files.
func fig4(f flags) error {
	if err := os.MkdirAll(f.outDir, 0o755); err != nil {
		return err
	}
	g, err := buildDataset("anybeat", f.scale, f.seed)
	if err != nil {
		return err
	}
	r := rand.New(rand.NewPCG(f.seed, 0xf164))
	save := func(name string, gg *graph.Graph) error {
		path := filepath.Join(f.outDir, "fig4-"+name+".svg")
		lr := rand.New(rand.NewPCG(f.seed, 7))
		if err := layout.SaveSVG(path, gg, layout.Options{Rand: lr}, layout.SVGOptions{Title: name}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (n=%d m=%d)\n", path, gg.N(), gg.M())
		return nil
	}
	if err := save("original", g); err != nil {
		return err
	}
	cfg := baseConfig(f)
	seedNode := r.IntN(g.N())
	walk, err := sampling.RandomWalk(sampling.NewGraphAccess(g), seedNode, cfg.Fraction, r)
	if err != nil {
		return err
	}
	methods := map[string]func() (*graph.Graph, error){
		"bfs": func() (*graph.Graph, error) {
			c, err := sampling.BFS(sampling.NewGraphAccess(g), seedNode, cfg.Fraction)
			if err != nil {
				return nil, err
			}
			return sampling.BuildSubgraph(c).Graph, nil
		},
		"snowball": func() (*graph.Graph, error) {
			c, err := sampling.Snowball(sampling.NewGraphAccess(g), seedNode, 50, cfg.Fraction, r)
			if err != nil {
				return nil, err
			}
			return sampling.BuildSubgraph(c).Graph, nil
		},
		"ff": func() (*graph.Graph, error) {
			c, err := sampling.ForestFire(sampling.NewGraphAccess(g), seedNode, 0.7, cfg.Fraction, r)
			if err != nil {
				return nil, err
			}
			return sampling.BuildSubgraph(c).Graph, nil
		},
		"rw": func() (*graph.Graph, error) {
			return sampling.BuildSubgraph(walk).Graph, nil
		},
	}
	for name, fn := range methods {
		gg, err := fn()
		if err != nil {
			return err
		}
		if err := save(name, gg); err != nil {
			return err
		}
	}
	return restoreAndSave(f, walk, save)
}

func restoreAndSave(f flags, walk *sampling.Crawl, save func(string, *graph.Graph) error) error {
	r := rand.New(rand.NewPCG(f.seed, 0xabcd))
	gj, err := core.RestoreGjoka(walk, core.Options{RC: f.rc, Rand: r})
	if err != nil {
		return err
	}
	if err := save("gjoka", gj.Graph); err != nil {
		return err
	}
	pr, err := core.Restore(walk, core.Options{RC: f.rc, Rand: r})
	if err != nil {
		return err
	}
	if err := save("proposed", pr.Graph); err != nil {
		return err
	}
	// Extra rendering with node provenance: queried black, visible blue,
	// added red — shows how the restoration grows around the sample.
	colors := make([]string, pr.Graph.N())
	for i := range colors {
		switch {
		case i < pr.Subgraph.NumQueried:
			colors[i] = "black"
		case i < pr.Subgraph.Graph.N():
			colors[i] = "#2166ac" // visible
		default:
			colors[i] = "#d6604d" // added
		}
	}
	lr := rand.New(rand.NewPCG(f.seed, 8))
	pos := layout.FruchtermanReingold(pr.Graph, layout.Options{Rand: lr})
	path := filepath.Join(f.outDir, "fig4-proposed-provenance.svg")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := layout.WriteSVG(out, pr.Graph, pos, layout.SVGOptions{
		Title:      "proposed (black=queried, blue=visible, red=added)",
		NodeColors: colors,
		NodeRadius: 2,
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
