// Command gengraph generates synthetic social-graph datasets — the
// stand-ins for the paper's Table I graphs — or generic random graphs, and
// writes them as edge-list files. It also converts binary SGRB graph files
// (restore -out-binary, restored's /graph downloads) back to edge lists.
//
// Usage:
//
//	gengraph -dataset anybeat -scale 0.1 -seed 1 -out anybeat.edges
//	gengraph -model hk -n 10000 -m 4 -p 0.5 -seed 1 -out hk.edges
//	gengraph -from-binary restored.sgrb -out restored.edges
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")
	var (
		dataset = flag.String("dataset", "", "paper dataset stand-in (anybeat, brightkite, epinions, slashdot, gowalla, livemocha, youtube)")
		scale   = flag.Float64("scale", 0.1, "node-count scale factor for -dataset")
		model   = flag.String("model", "", "generic model: er, ba, hk, ws, config")
		n       = flag.Int("n", 1000, "node count for -model")
		m       = flag.Int("m", 4, "edges per node (ba/hk), total edges (er), ring degree (ws)")
		p       = flag.Float64("p", 0.5, "triad probability (hk) / rewire probability (ws)")
		gamma   = flag.Float64("gamma", 2.5, "power-law exponent (config)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "output edge-list path (default stdout)")
		fromBin = flag.String("from-binary", "", "read a binary SGRB graph file and write it as an edge list")
	)
	flag.Parse()

	r := rand.New(rand.NewPCG(*seed, *seed^0x5bd1e995))
	var g *graph.Graph
	switch {
	case *fromBin != "":
		var err error
		g, err = graph.LoadBinary(*fromBin)
		if err != nil {
			log.Fatal(err)
		}
	case *dataset != "":
		d, err := gen.ByName(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		g = d.Build(*scale, r)
	case *model != "":
		switch *model {
		case "er":
			g = gen.ErdosRenyiGNM(*n, *m, r)
		case "ba":
			g = gen.BarabasiAlbert(*n, *m, r)
		case "hk":
			g = gen.HolmeKim(*n, *m, *p, r)
		case "ws":
			g = gen.WattsStrogatz(*n, *m, *p, r)
		case "config":
			degrees := gen.PowerLawDegrees(*n, *gamma, 1, *n/10+2, r)
			g = gen.ConfigurationModel(degrees, r)
		default:
			log.Fatalf("unknown model %q", *model)
		}
		clean, _ := graph.Preprocess(g)
		g = clean
	default:
		log.Fatal("one of -dataset, -model or -from-binary is required")
	}

	fmt.Fprintf(os.Stderr, "generated graph: n=%d m=%d avg degree=%.2f\n", g.N(), g.M(), g.AvgDegree())
	if *out == "" {
		if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := graph.SaveEdgeList(*out, g); err != nil {
		log.Fatal(err)
	}
}
