// Command graphd serves a hidden graph over the oracle HTTP/JSON API —
// the paper's access model as a real network service. Crawlers reach it
// with `crawl -url`; the served neighbor lists are in graph adjacency
// order, so a remote crawl is byte-identical to an in-memory one at the
// same seed.
//
// Usage:
//
//	graphd -graph g.edges -addr 127.0.0.1:8080
//	graphd -dataset anybeat -scale 0.1 -addr 127.0.0.1:0 -addr-file addr.txt
//	graphd -graph g.edges -rate 100 -burst 20 -latency 5ms -jitter 5ms -error-rate 0.01
//	graphd -graph g.edges -fault-truncate 0.05 -fault-corrupt 0.05 -fault-reset 0.05 -fault-stall 0.02 -fault-stall-delay 100ms
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"

	"sgr/internal/daemon"
	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/oracle"
	"sgr/internal/prof"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphd: ")
	var (
		path     = flag.String("graph", "", "graph edge list to serve")
		dataset  = flag.String("dataset", "", "serve a generated dataset stand-in instead of loading")
		scale    = flag.Float64("scale", 0.1, "scale for -dataset")
		seed     = flag.Uint64("seed", 1, "random seed for -dataset generation")
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address here once listening (for scripts)")
		pageSize = flag.Int("page-size", oracle.DefaultPageSize, "max neighbors per response page")

		rate  = flag.Float64("rate", 0, "per-client request rate limit in req/s (0 = unlimited)")
		burst = flag.Int("burst", 16, "rate-limit burst per client")

		latency   = flag.Duration("latency", 0, "injected base latency per request")
		jitter    = flag.Duration("jitter", 0, "injected uniform extra latency in [0, jitter)")
		errorRate = flag.Float64("error-rate", 0, "probability of answering a request with a transient 503")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for the latency-jitter/error fault stream")

		faultTruncate   = flag.Float64("fault-truncate", 0, "probability of a truncated 200 body (connection cut mid-response)")
		faultCorrupt    = flag.Float64("fault-corrupt", 0, "probability of a 200 body that is not valid JSON")
		faultStall      = flag.Float64("fault-stall", 0, "probability of stalling a response before serving it")
		faultStallDelay = flag.Duration("fault-stall-delay", oracle.DefaultStallDelay, "stall duration for -fault-stall")
		faultReset      = flag.Float64("fault-reset", 0, "probability of dropping the connection with no response")

		drain = flag.Duration("drain", daemon.DefaultDrainTimeout, "graceful-drain window for in-flight requests on shutdown")

		private         = flag.String("private", "", "comma-separated node ids served as private")
		privateFraction = flag.Float64("private-fraction", 0, "additionally mark this fraction of nodes private")
		privateSeed     = flag.Uint64("private-seed", 1, "seed for -private-fraction selection")

		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (live-profiling opt-in)")
	)
	flag.Parse()
	if (*path == "") == (*dataset == "") {
		log.Fatal("exactly one of -graph or -dataset is required")
	}
	if *errorRate < 0 || *errorRate >= 1 {
		log.Fatalf("-error-rate must be in [0,1), got %v", *errorRate)
	}
	faults := oracle.FaultPlan{
		Truncate:   *faultTruncate,
		Corrupt:    *faultCorrupt,
		Stall:      *faultStall,
		StallDelay: *faultStallDelay,
		Reset:      *faultReset,
	}
	for _, r := range []float64{faults.Truncate, faults.Corrupt, faults.Stall, faults.Reset} {
		if r < 0 || r >= 1 {
			log.Fatalf("fault rates must be in [0,1), got %v", r)
		}
	}
	if total := *errorRate + faults.Truncate + faults.Corrupt + faults.Stall + faults.Reset; total >= 1 {
		log.Fatalf("fault rates must sum below 1, got %v", total)
	}

	var g *graph.Graph
	if *path != "" {
		var err error
		g, _, err = graph.LoadEdgeList(*path)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		d, err := gen.ByName(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		g = d.Build(*scale, rand.New(rand.NewPCG(*seed, *seed^0x5bd1e995)))
	}

	priv, err := privateNodes(g.N(), *private, *privateFraction, *privateSeed)
	if err != nil {
		log.Fatal(err)
	}
	srv := oracle.NewServer(g, oracle.ServerConfig{
		PageSize:  *pageSize,
		Rate:      *rate,
		Burst:     *burst,
		Latency:   *latency,
		Jitter:    *jitter,
		ErrorRate: *errorRate,
		FaultSeed: *faultSeed,
		Faults:    faults,
		Private:   priv,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := daemon.WriteAddrFile(*addrFile, ln.Addr().String()); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("serving graph n=%d m=%d (%d private nodes) on http://%s", g.N(), g.M(), len(priv), ln.Addr())

	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		prof.Mount(mux)
		mux.Handle("/", handler)
		handler = mux
	}
	if err := daemon.Serve(ln, handler, daemon.ServeConfig{Logf: log.Printf, DrainTimeout: *drain}); err != nil {
		log.Fatal(err)
	}
	log.Printf("served %d neighbor queries (%d rate-limited, %d injected faults, %d clients)",
		srv.QueriesServed(), srv.RateLimited(), srv.Faulted(), srv.ActiveClients())
}

// privateNodes merges the explicit -private list with a seeded
// -private-fraction draw, validating ids against the node range.
func privateNodes(n int, list string, fraction float64, seed uint64) ([]int, error) {
	if fraction < 0 || fraction >= 1 {
		return nil, fmt.Errorf("-private-fraction must be in [0,1), got %v", fraction)
	}
	seen := make(map[int]struct{})
	var out []int
	add := func(u int) error {
		if u < 0 || u >= n {
			return fmt.Errorf("private node %d out of range [0,%d)", u, n)
		}
		if _, dup := seen[u]; !dup {
			seen[u] = struct{}{}
			out = append(out, u)
		}
		return nil
	}
	if list != "" {
		for _, tok := range strings.Split(list, ",") {
			u, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				return nil, fmt.Errorf("bad -private entry %q", tok)
			}
			if err := add(u); err != nil {
				return nil, err
			}
		}
	}
	if fraction > 0 {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		// Rejection-sample distinct nodes until the fraction is reached
		// (fraction < 1, so this terminates quickly).
		target := len(seen) + int(fraction*float64(n))
		if target > n {
			target = n
		}
		for len(seen) < target {
			if err := add(r.IntN(n)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
