// Command loadgen drives a deterministic open-loop traffic swarm at the
// serving daemons and judges the run against a declared SLO.
//
// The schedule — inter-arrival gaps, op mix draws, target nodes, job
// seeds — derives entirely from -seed, so two runs with the same flags
// issue identical request sequences (the report's schedule.hash proves
// it); only the measured latencies differ. The report correlates
// client-observed histograms with the daemons' own /v1/metrics deltas and
// cross-checks the two sides against each other.
//
// Usage:
//
//	loadgen -graphd http://127.0.0.1:8080 -duration 10s -rate 300
//	loadgen -graphd URL -restored URL -crawl crawl.json -slo slo.json -out report.json
//	loadgen -restored URL -crawl crawl.json -mix job=3,resubmit=2,cancel=1
//
// Exit status: 0 on success, 1 on operational error, 2 when the run
// completed but failed the SLO.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"sgr/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		graphdURL   = flag.String("graphd", "", "graphd base URL (enables neighbor/batch ops)")
		restoredURL = flag.String("restored", "", "restored base URL (enables job ops; requires -crawl)")
		seed        = flag.Uint64("seed", 1, "schedule seed: same seed + flags = same request schedule")
		clients     = flag.Int("clients", 32, "concurrent virtual clients")
		rate        = flag.Float64("rate", 150, "aggregate target arrival rate, ops/s")
		duration    = flag.Duration("duration", 5*time.Second, "arrival window")
		mixFlag     = flag.String("mix", "", "op mix as op=weight,... (ops: neighbors,batch,job,resubmit,cancel; default depends on targets)")
		batchSize   = flag.Int("batch", 8, "ids per batch request")
		crawlPath   = flag.String("crawl", "", "crawl JSON submitted with restored jobs")
		rc          = flag.Float64("rc", 5, "rewiring-attempt coefficient on submitted jobs")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		interval    = flag.Duration("interval", time.Second, "client-side snapshot interval")
		sloPath     = flag.String("slo", "", "SLO spec JSON to judge the run against")
		outPath     = flag.String("out", "", "write the JSON report here (default stdout)")
		quiet       = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	cfg := loadgen.Config{
		GraphdURL:      *graphdURL,
		RestoredURL:    *restoredURL,
		Seed:           *seed,
		Clients:        *clients,
		Rate:           *rate,
		Duration:       *duration,
		BatchSize:      *batchSize,
		RC:             *rc,
		RequestTimeout: *timeout,
		Interval:       *interval,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	if *mixFlag != "" {
		mix, err := parseMix(*mixFlag)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Mix = mix
	}
	if *crawlPath != "" {
		data, err := os.ReadFile(*crawlPath)
		if err != nil {
			log.Fatalf("reading crawl: %v", err)
		}
		cfg.CrawlJSON = data
	}
	if *sloPath != "" {
		data, err := os.ReadFile(*sloPath)
		if err != nil {
			log.Fatalf("reading SLO spec: %v", err)
		}
		spec, err := loadgen.ParseSLO(data)
		if err != nil {
			log.Fatal(err)
		}
		cfg.SLO = spec
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *outPath != "" && *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		summarize(rep)
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		os.Exit(2)
	}
}

// parseMix parses "op=weight,op=weight" into a mix map.
func parseMix(s string) (map[string]int, error) {
	mix := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, wStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(wStr)
		if err != nil {
			return nil, fmt.Errorf("bad -mix weight in %q: %v", part, err)
		}
		mix[strings.TrimSpace(op)] = w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("-mix %q has no entries", s)
	}
	return mix, nil
}

// summarize prints the run's headline numbers to stderr.
func summarize(rep *loadgen.Report) {
	log.Printf("run: %d events in %.1fs", rep.Schedule.Events, rep.WallMS/1e3)
	for _, ep := range rep.Endpoints {
		if ep.Requests == 0 {
			continue
		}
		log.Printf("  %-18s %6d req  %6.1f rps  p50 %s  p99 %s  err %d  429 %d",
			ep.Endpoint, ep.Requests, ep.RPS, usec(ep.P50USec), usec(ep.P99USec), ep.Errors, ep.RateLimited)
	}
	for _, c := range rep.Correlation {
		state := "UNCHECKED"
		if c.Checked {
			state = "OK"
			if !c.Consistent {
				state = "MISMATCH"
			}
		}
		log.Printf("  correlate %-24s client %d server %.0f  %s", c.Name, c.ClientExpected, c.ServerObserved, state)
	}
	if rep.SLO != nil {
		verdict := "PASS"
		if !rep.SLO.Pass {
			verdict = "FAIL"
		}
		log.Printf("SLO: %s (%d checks)", verdict, len(rep.SLO.Checks))
		checks := append([]loadgen.SLOCheck(nil), rep.SLO.Checks...)
		sort.Slice(checks, func(i, j int) bool { return !checks[i].Pass && checks[j].Pass })
		for _, c := range checks {
			if c.Pass {
				continue
			}
			name := c.Metric
			if c.Endpoint != "" {
				name = c.Endpoint + "." + c.Metric
			}
			log.Printf("  FAIL %-32s limit %g observed %g burn %.2f %s", name, c.Limit, c.Observed, c.Burn, c.Note)
		}
	}
}

// usec renders a microsecond latency human-readably.
func usec(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).String()
}
