// Command props computes the paper's 12 structural properties (Sec. V-B)
// of an edge-list graph and prints them, optionally comparing against a
// second graph with the normalized L1 distance of Sec. V-C.
//
// Usage:
//
//	props -graph g.edges
//	props -graph restored.edges -against original.edges
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"sgr/internal/graph"
	"sgr/internal/metrics"
	"sgr/internal/prof"
	"sgr/internal/props"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("props: ")
	var (
		path    = flag.String("graph", "", "edge-list file to analyze (required)")
		against = flag.String("against", "", "original graph for L1 comparison")
		exact   = flag.Int("exact", 20000, "max component size for exact path properties")
		pivots  = flag.Int("pivots", 1000, "BFS/Brandes pivots above the exact threshold")
		pf      = prof.AddFlags()
	)
	flag.Parse()
	if *path == "" {
		log.Fatal("-graph is required")
	}
	stopProf, err := pf.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	g, _, err := graph.LoadEdgeList(*path)
	if err != nil {
		log.Fatal(err)
	}
	opts := props.Options{ExactThreshold: *exact, Pivots: *pivots}
	res := props.Compute(g, opts)
	printResult(*path, res)

	if *against == "" {
		return
	}
	og, _, err := graph.LoadEdgeList(*against)
	if err != nil {
		log.Fatal(err)
	}
	ores := props.Compute(og, opts)
	fmt.Printf("\nNormalized L1 distances vs %s:\n", *against)
	ds := metrics.PerProperty(res, ores)
	for i, name := range metrics.PropertyNames {
		fmt.Printf("  %-10s %.4f\n", name, ds[i])
	}
	fmt.Printf("  %-10s %.4f +- %.4f\n", "avg", metrics.Mean(ds), metrics.StdDev(ds))
}

func printResult(name string, r *props.Result) {
	fmt.Printf("Graph %s:\n", name)
	fmt.Printf("  nodes                 %d\n", r.N)
	fmt.Printf("  average degree        %.4f\n", r.AvgDegree)
	fmt.Printf("  clustering (cbar)     %.4f\n", r.GlobalClustering)
	fmt.Printf("  avg path length       %.4f\n", r.AvgPathLen)
	fmt.Printf("  diameter              %d\n", r.Diameter)
	fmt.Printf("  lambda1               %.4f\n", r.Lambda1)
	fmt.Printf("  paths exact           %v\n", r.PathsExact)
	fmt.Printf("  degree distribution (top 10 by mass):\n")
	type kv struct {
		k int
		p float64
	}
	var dd []kv
	for k, p := range r.DegreeDist {
		dd = append(dd, kv{k, p})
	}
	sort.Slice(dd, func(i, j int) bool { return dd[i].p > dd[j].p })
	if len(dd) > 10 {
		dd = dd[:10]
	}
	for _, e := range dd {
		fmt.Printf("    P(%d) = %.4f\n", e.k, e.p)
	}
}
