// Command restore runs the proposed social graph restoration method end to
// end: load (or generate) an original graph, crawl it with a simple random
// walk under a query budget, restore a graph from the sampling list alone,
// and report the accuracy of the 12 structural properties.
//
// Usage:
//
//	restore -graph original.edges -fraction 0.1 -out restored.edges
//	restore -dataset anybeat -scale 0.1 -fraction 0.1 -method gjoka
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sgr/internal/core"
	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/metrics"
	"sgr/internal/obs"
	"sgr/internal/oracle"
	"sgr/internal/parallel"
	"sgr/internal/prof"
	"sgr/internal/props"
	"sgr/internal/sampling"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("restore: ")
	var (
		path     = flag.String("graph", "", "original graph edge list")
		dataset  = flag.String("dataset", "", "generate a dataset stand-in instead of loading")
		crawlIn  = flag.String("crawl", "", "restore from a saved sampling list (crawl -save-crawl) instead of walking")
		journal  = flag.String("journal", "", "restore from an oracle crawl journal (crawl -url -journal) instead of walking")
		scale    = flag.Float64("scale", 0.1, "scale for -dataset")
		fraction = flag.Float64("fraction", 0.10, "fraction of nodes to query")
		method   = flag.String("method", "proposed", "proposed or gjoka")
		rc       = flag.Float64("rc", 500, "rewiring attempt coefficient")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "write the restored graph here (edge list)")
		outBin   = flag.String("out-binary", "", "write the restored graph here in the binary SGRB codec (gengraph -from-binary reads it)")
		compare  = flag.Bool("compare", true, "compute the 12-property L1 comparison")
		workers  = flag.Int("workers", parallel.DefaultWorkers(),
			"worker bound for the property-comparison loops (deterministic for a fixed value)")
		rewireWorkers = flag.Int("rewire-workers", parallel.DefaultWorkers(),
			"worker bound for the phase-4 rewiring propose loop (output is byte-identical at any value)")
		traceOut = flag.String("trace", "", "write the pipeline timeline here in Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev)")
		pf       = prof.AddFlags()
	)
	flag.Parse()

	if *crawlIn != "" && *journal != "" {
		log.Fatal("-crawl and -journal are mutually exclusive")
	}
	stopProf, err := pf.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	// The canonical pipeline stream: restored (the job daemon) uses the
	// same constructor, which is what makes its results byte-identical to
	// this command at the same seed.
	r := core.PipelineRand(*seed)
	var g *graph.Graph
	switch {
	case *path != "":
		var err error
		g, _, err = graph.LoadEdgeList(*path)
		if err != nil {
			log.Fatal(err)
		}
		g, _ = graph.Preprocess(g)
	case *dataset != "":
		d, err := gen.ByName(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		g = d.Build(*scale, r)
	case *crawlIn != "", *journal != "":
		// Restoration from a saved sampling list or crawl journal needs no
		// original graph; the comparison step is skipped unless -graph is
		// also given.
	default:
		log.Fatal("one of -graph, -dataset, -crawl or -journal is required")
	}
	if g != nil {
		fmt.Printf("original: n=%d m=%d\n", g.N(), g.M())
	}

	var crawl *sampling.Crawl
	switch {
	case *crawlIn != "":
		crawl, err = sampling.LoadCrawl(*crawlIn)
		if err != nil {
			log.Fatal(err)
		}
		if len(crawl.Walk) == 0 {
			log.Fatal("saved crawl has no walk sequence (restoration needs a random-walk crawl)")
		}
	case *journal != "":
		crawl, err = oracle.LoadCrawlFromJournal(*journal)
		if err != nil {
			log.Fatal(err)
		}
		if len(crawl.Walk) == 0 {
			log.Fatal("journal has no walk record: the remote crawl did not complete (rerun crawl -url -journal with the same seed to resume it)")
		}
	default:
		seedNode := r.IntN(g.N())
		crawl, err = sampling.RandomWalk(sampling.NewGraphAccess(g), seedNode, *fraction, r)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("random walk: %d distinct queried nodes, %d steps\n",
		crawl.NumQueried(), len(crawl.Walk))

	// The trace changes nothing about the restoration: spans read the
	// monotonic clock only, so the output graph is byte-identical with or
	// without -trace.
	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace("restore")
	}
	opts := core.Options{RC: *rc, RewireWorkers: *rewireWorkers, Trace: tr, Rand: r}
	var res *core.Result
	switch *method {
	case "proposed":
		res, err = core.Restore(crawl, opts)
	case "gjoka":
		res, err = core.RestoreGjoka(crawl, opts)
	default:
		log.Fatalf("unknown method %q (want proposed or gjoka)", *method)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: n=%d m=%d (added %d nodes; rewiring accepted %d/%d swaps)\n",
		res.Graph.N(), res.Graph.M(), res.NumAdded,
		res.RewireStats.Accepted, res.RewireStats.Attempts)
	fmt.Printf("generation time: total %.3fs, rewiring %.3fs\n",
		res.TotalTime.Seconds(), res.RewireTime.Seconds())
	if tr != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (trace)\n", *traceOut)
	}

	if *out != "" {
		if err := graph.SaveEdgeList(*out, res.Graph); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *outBin != "" {
		if err := graph.SaveBinary(*outBin, res.Graph); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (binary)\n", *outBin)
	}
	if *compare && g != nil {
		// -workers bounds the parallel loops inside each property
		// computation (the two graphs score sequentially — each Compute
		// already saturates the pool). Results are deterministic for a
		// fixed -workers value; the betweenness float merge order, and
		// hence its last bits, can vary across different values.
		popts := props.Options{Workers: *workers}
		orig := props.Compute(g, popts)
		got := props.Compute(res.Graph, popts)
		ds := metrics.PerProperty(got, orig)
		fmt.Println("normalized L1 distances:")
		for i, name := range metrics.PropertyNames {
			fmt.Printf("  %-10s %.4f\n", name, ds[i])
		}
		fmt.Printf("  %-10s %.4f +- %.4f\n", "avg", metrics.Mean(ds), metrics.StdDev(ds))
	}
}
