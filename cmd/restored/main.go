// Command restored serves graph restoration as a service: an asynchronous
// job daemon running the crawl → dK-series → rewiring pipeline behind an
// HTTP/JSON API, with a content-addressed result cache (and optional disk
// persistence) in front of the workers. Results are byte-identical to
// `restore -seed` run offline on the same crawl.
//
// Usage:
//
//	restored -addr 127.0.0.1:8090
//	restored -addr 127.0.0.1:0 -addr-file addr.txt -workers 4 -cache-dir /var/cache/restored
//
// Submit work with POST /v1/jobs (an inline crawl JSON, an uploaded crawl
// journal, or a graphd URL to crawl server-side), poll GET /v1/jobs/{id},
// cancel with DELETE /v1/jobs/{id}, download GET /v1/jobs/{id}/graph
// (binary SGRB; ?format=edgelist for text) and /props. /v1/healthz and
// /v1/metrics match graphd's.
//
// With -cache-dir set the daemon is crash-safe: accepted jobs are logged
// to a write-ahead journal before they are queued, and a restart replays
// unfinished jobs against the same cache dir — kill -9 mid-pipeline loses
// nothing, and recovered results stay byte-identical to offline restore.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"

	"sgr/internal/daemon"
	"sgr/internal/parallel"
	"sgr/internal/prof"
	"sgr/internal/restored"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("restored: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8090", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the bound address here once listening (for scripts)")
		workers  = flag.Int("workers", parallel.DefaultWorkers(), "restoration worker pool width")
		queue    = flag.Int("queue", 64, "bounded job-queue depth (full queue answers 429 + Retry-After)")
		cacheDir = flag.String("cache-dir", "", "persist the content-addressed result cache and the job WAL here")
		propsW   = flag.Int("props-workers", 1, "worker bound for /props property computation (fixed value keeps results deterministic)")
		rewireW  = flag.Int("rewire-workers", 1, "per-job worker bound for phase-4 rewiring (output is byte-identical at any value)")
		drain    = flag.Duration("drain", daemon.DefaultDrainTimeout, "graceful-drain window for in-flight requests on shutdown")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (live-profiling opt-in)")
	)
	flag.Parse()

	svc, err := restored.New(restored.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheDir:      *cacheDir,
		PropsWorkers:  *propsW,
		RewireWorkers: *rewireW,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := daemon.WriteAddrFile(*addrFile, ln.Addr().String()); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("serving restoration jobs on http://%s (%d workers, queue %d, cache %s)",
		ln.Addr(), *workers, *queue, cacheDirName(*cacheDir))

	handler := restored.NewServer(svc).Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		prof.Mount(mux)
		mux.Handle("/", handler)
		handler = mux
	}
	if err := daemon.Serve(ln, handler, daemon.ServeConfig{Logf: log.Printf, DrainTimeout: *drain}); err != nil {
		log.Fatal(err)
	}
	svc.Close()
	for _, m := range svc.Registry().Snapshot() {
		log.Printf("%s %d", m.Name, m.Value)
	}
}

func cacheDirName(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
