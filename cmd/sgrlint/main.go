// Command sgrlint runs the sgrlint static-analysis suite: the analyzers
// in internal/lint that enforce this repository's determinism contracts
// (no output-ordering from map iteration, no unseeded or time-derived
// randomness, no wall-clock reads in pipeline code, no scheduling-ordered
// float accumulation) before any test runs.
//
// Usage:
//
//	go run ./cmd/sgrlint [-tests=false] [-list] [packages]
//
// With no package patterns it checks ./... — the whole repository,
// including test files (the differential guards must themselves be
// deterministic). Findings print as file:line:col, and the exit status is
// 1 when any survive suppression; a finding is suppressed by a
// //sgr:nondet-ok <reason> directive on the same or previous line, and
// stale directives (suppressing nothing) are findings too.
package main

import (
	"flag"
	"fmt"
	"os"

	"sgr/internal/lint"
)

func main() {
	tests := flag.Bool("tests", true, "also analyze _test.go files and external test packages")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sgrlint [flags] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := lint.Load(".", *tests, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgrlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(units, lint.Analyzers(), true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgrlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sgrlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
