package sgr_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runTool runs one of the repository's commands via `go run` and returns
// its combined output.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the full command-line workflow: generate a
// dataset stand-in, crawl it, restore from the walk, and analyze the
// result — the contract a downstream user scripts against.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow (go run compiles each tool)")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.edges")
	subPath := filepath.Join(dir, "sub.edges")
	restoredPath := filepath.Join(dir, "restored.edges")

	out := runTool(t, "./cmd/gengraph", "-dataset", "anybeat", "-scale", "0.05", "-seed", "3", "-out", graphPath)
	if !strings.Contains(out, "generated graph") {
		t.Fatalf("gengraph output: %s", out)
	}
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatal(err)
	}

	out = runTool(t, "./cmd/crawl", "-graph", graphPath, "-method", "rw",
		"-fraction", "0.1", "-seed", "3", "-out", subPath)
	if !strings.Contains(out, "subgraph") {
		t.Fatalf("crawl output: %s", out)
	}

	out = runTool(t, "./cmd/restore", "-graph", graphPath, "-fraction", "0.1",
		"-rc", "5", "-seed", "3", "-out", restoredPath, "-compare=false")
	if !strings.Contains(out, "restored:") {
		t.Fatalf("restore output: %s", out)
	}

	out = runTool(t, "./cmd/props", "-graph", restoredPath, "-against", graphPath)
	if !strings.Contains(out, "Normalized L1 distances") || !strings.Contains(out, "avg") {
		t.Fatalf("props output: %s", out)
	}

	// Offline workflow: persist the sampling list, then restore from it
	// without access to the original graph.
	crawlPath := filepath.Join(dir, "crawl.json")
	runTool(t, "./cmd/crawl", "-graph", graphPath, "-method", "rw",
		"-fraction", "0.1", "-seed", "3", "-out", subPath, "-save-crawl", crawlPath)
	out = runTool(t, "./cmd/restore", "-crawl", crawlPath, "-rc", "5", "-seed", "3",
		"-out", filepath.Join(dir, "offline.edges"))
	if !strings.Contains(out, "restored:") {
		t.Fatalf("offline restore output: %s", out)
	}
}

// TestCLIOraclePipeline drives the client/server workflow end to end: boot
// graphd on a random port, crawl it over HTTP with a journal, require the
// crawl byte-identical to the in-memory path at the same seed, and restore
// offline from the journal.
func TestCLIOraclePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle CLI pipeline is slow (compiles the tools)")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.edges")
	runTool(t, "./cmd/gengraph", "-dataset", "anybeat", "-scale", "0.05", "-seed", "3", "-out", graphPath)

	// graphd runs as a managed subprocess; -addr-file publishes the bound
	// random port once it is listening.
	graphd := filepath.Join(dir, "graphd")
	if out, err := exec.Command("go", "build", "-o", graphd, "./cmd/graphd").CombinedOutput(); err != nil {
		t.Fatalf("building graphd: %v\n%s", err, out)
	}
	addrFile := filepath.Join(dir, "addr")
	daemon := exec.Command(graphd, "-graph", graphPath, "-addr", "127.0.0.1:0",
		"-addr-file", addrFile, "-latency", "1ms", "-error-rate", "0.05", "-fault-seed", "7")
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()
	var addr []byte
	for i := 0; i < 100; i++ {
		var err error
		if addr, err = os.ReadFile(addrFile); err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if len(addr) == 0 {
		t.Fatal("graphd never published its address")
	}
	url := "http://" + strings.TrimSpace(string(addr))

	httpJSON := filepath.Join(dir, "http.json")
	memJSON := filepath.Join(dir, "mem.json")
	journal := filepath.Join(dir, "crawl.journal")
	out := runTool(t, "./cmd/crawl", "-url", url, "-fraction", "0.1", "-seed", "3",
		"-journal", journal, "-save-crawl", httpJSON, "-out", filepath.Join(dir, "http.edges"))
	if !strings.Contains(out, "fetched over HTTP") {
		t.Fatalf("remote crawl output: %s", out)
	}
	runTool(t, "./cmd/crawl", "-graph", graphPath, "-fraction", "0.1", "-seed", "3",
		"-save-crawl", memJSON, "-out", filepath.Join(dir, "mem.edges"))
	a, err := os.ReadFile(httpJSON)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(memJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("remote crawl JSON differs from in-memory crawl JSON")
	}

	out = runTool(t, "./cmd/restore", "-journal", journal, "-rc", "5", "-seed", "3",
		"-compare=false", "-out", filepath.Join(dir, "restored.edges"))
	if !strings.Contains(out, "restored:") {
		t.Fatalf("journal restore output: %s", out)
	}
}

// TestCLIBinaryRoundTrip drives the SGRB codec through the command line:
// restore -out-binary writes it, gengraph -from-binary reads it back, and
// the converted edge list must be byte-identical to restore's own -out.
func TestCLIBinaryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI round trip is slow (go run compiles each tool)")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.edges")
	crawlPath := filepath.Join(dir, "crawl.json")
	runTool(t, "./cmd/gengraph", "-dataset", "anybeat", "-scale", "0.05", "-seed", "3", "-out", graphPath)
	runTool(t, "./cmd/crawl", "-graph", graphPath, "-method", "rw",
		"-fraction", "0.1", "-seed", "3", "-out", filepath.Join(dir, "sub.edges"),
		"-save-crawl", crawlPath)

	edgesPath := filepath.Join(dir, "restored.edges")
	binPath := filepath.Join(dir, "restored.sgrb")
	out := runTool(t, "./cmd/restore", "-crawl", crawlPath, "-rc", "5", "-seed", "3",
		"-out", edgesPath, "-out-binary", binPath)
	if !strings.Contains(out, "(binary)") {
		t.Fatalf("restore did not report the binary output: %s", out)
	}

	roundTrip := filepath.Join(dir, "roundtrip.edges")
	runTool(t, "./cmd/gengraph", "-from-binary", binPath, "-out", roundTrip)
	want, err := os.ReadFile(edgesPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(roundTrip)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("binary round trip changed the edge list")
	}
}

// TestCLIExperimentSmoke runs the experiment driver on its smallest
// configuration to guard the artifact-regeneration entry point.
func TestCLIExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke is slow")
	}
	dir := t.TempDir()
	out := runTool(t, "./cmd/experiment", "-exp", "fig4", "-scale", "0.02",
		"-rc", "2", "-seed", "4", "-out", dir)
	if !strings.Contains(out, "fig4-proposed.svg") {
		t.Fatalf("experiment output: %s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 7 {
		t.Fatalf("expected >=7 SVGs, got %d", len(entries))
	}
}
