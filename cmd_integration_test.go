package sgr_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runTool runs one of the repository's commands via `go run` and returns
// its combined output.
func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the full command-line workflow: generate a
// dataset stand-in, crawl it, restore from the walk, and analyze the
// result — the contract a downstream user scripts against.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow (go run compiles each tool)")
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.edges")
	subPath := filepath.Join(dir, "sub.edges")
	restoredPath := filepath.Join(dir, "restored.edges")

	out := runTool(t, "./cmd/gengraph", "-dataset", "anybeat", "-scale", "0.05", "-seed", "3", "-out", graphPath)
	if !strings.Contains(out, "generated graph") {
		t.Fatalf("gengraph output: %s", out)
	}
	if _, err := os.Stat(graphPath); err != nil {
		t.Fatal(err)
	}

	out = runTool(t, "./cmd/crawl", "-graph", graphPath, "-method", "rw",
		"-fraction", "0.1", "-seed", "3", "-out", subPath)
	if !strings.Contains(out, "subgraph") {
		t.Fatalf("crawl output: %s", out)
	}

	out = runTool(t, "./cmd/restore", "-graph", graphPath, "-fraction", "0.1",
		"-rc", "5", "-seed", "3", "-out", restoredPath, "-compare=false")
	if !strings.Contains(out, "restored:") {
		t.Fatalf("restore output: %s", out)
	}

	out = runTool(t, "./cmd/props", "-graph", restoredPath, "-against", graphPath)
	if !strings.Contains(out, "Normalized L1 distances") || !strings.Contains(out, "avg") {
		t.Fatalf("props output: %s", out)
	}

	// Offline workflow: persist the sampling list, then restore from it
	// without access to the original graph.
	crawlPath := filepath.Join(dir, "crawl.json")
	runTool(t, "./cmd/crawl", "-graph", graphPath, "-method", "rw",
		"-fraction", "0.1", "-seed", "3", "-out", subPath, "-save-crawl", crawlPath)
	out = runTool(t, "./cmd/restore", "-crawl", crawlPath, "-rc", "5", "-seed", "3",
		"-out", filepath.Join(dir, "offline.edges"))
	if !strings.Contains(out, "restored:") {
		t.Fatalf("offline restore output: %s", out)
	}
}

// TestCLIExperimentSmoke runs the experiment driver on its smallest
// configuration to guard the artifact-regeneration entry point.
func TestCLIExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke is slow")
	}
	dir := t.TempDir()
	out := runTool(t, "./cmd/experiment", "-exp", "fig4", "-scale", "0.02",
		"-rc", "2", "-seed", "4", "-out", dir)
	if !strings.Contains(out, "fig4-proposed.svg") {
		t.Fatalf("experiment output: %s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 7 {
		t.Fatalf("expected >=7 SVGs, got %d", len(entries))
	}
}
