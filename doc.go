// Package sgr (social graph restoration) is a Go implementation of
// "Social Graph Restoration via Random Walk Sampling" (Nakajima & Shudo,
// ICDE 2022, arXiv:2111.11966).
//
// Given only the sampling list of a short simple random walk over a hidden
// social graph — the node sequence plus the neighbor list of each queried
// node — the library generates a graph whose local and global structural
// properties approximate those of the hidden original: it estimates the
// number of nodes, average degree, degree distribution, joint degree
// distribution and degree-dependent clustering with re-weighted random-walk
// estimators, builds realizable targets consistent with the sampled
// subgraph, completes the subgraph by half-edge wiring, and rewires the
// added edges toward the estimated clustering spectrum.
//
// This package is a facade over the implementation packages; the full
// workflow is:
//
//	g := sgr.LoadGraph("social.edges")              // or gen.* synthetic graphs
//	crawl, _ := sgr.RandomWalk(g, seed, 0.10, rng)  // query 10% of nodes
//	res, _ := sgr.Restore(crawl, sgr.Options{Rand: rng})
//	fmt.Println(res.Graph.N(), res.Graph.M())
//
// The compared baselines (subgraph sampling under BFS / snowball / forest
// fire / random walk, and Gjoka et al.'s 2.5K method), the 12 structural
// properties of the paper's evaluation, the normalized L1 accuracy measure,
// and the full experiment harness that regenerates every table and figure
// are all exposed here as well.
//
// The evaluation pipeline is deterministically parallel: every
// (run, method) cell of a sweep is an independent job on the bounded
// worker pool of internal/parallel, seeded with its own PCG stream derived
// from the master seed, with results collected by job index. For a fixed
// seed the harness therefore produces identical results at any worker
// count (harness.Config.Workers, or -workers on cmd/experiment; default
// runtime.GOMAXPROCS), and the whole engine is -race-clean. cmd/restore's
// -workers instead bounds the property-computation loops, whose
// betweenness float merges are deterministic for a fixed value. See
// README.md for the exact stream derivation and the CI gates that enforce
// this.
//
// The access model is also served over the network: internal/oracle plus
// cmd/graphd expose a hidden graph through an HTTP/JSON API implementing
// exactly the paper's neighbor-query interface — paginated hub responses,
// per-client token-bucket rate limiting, injected latency and transient
// errors, and private profiles — while oracle.Client implements
// sampling.Access over the wire with bounded retries, pagination
// reassembly, an in-flight-deduplicating cache, and an on-disk crawl
// journal that resumes interrupted crawls without re-spending budget
// (restore -journal consumes it offline). A remote crawl is byte-identical
// to the in-memory path at the same seed; see README.md, "The networked
// graph oracle".
//
// Adjacency hot paths run on internal/adjset, a flat open-addressing
// multiset (int32 key/count slots, linear probing, backward-shift
// deletion) that replaces map-based rows in phase-4 rewiring, the walk
// estimators, and graph.Index() — the built-once O(1) Multiplicity /
// HasEdge index that any Graph mutation invalidates. The rewiring engine
// is differentially tested byte-for-byte against the original map-based
// implementation, and `make bench-json` records its perf baseline in
// BENCH_rewire.json (see README.md, "The adjset engine").
//
// Phase-4 rewiring — the pipeline's hot path — runs on the sharded
// parallel engine of dkseries.RewireSharded: the candidate half-edge
// space is partitioned by degree bucket into a fixed number of shards,
// each shard proposes swaps from its own PCG sub-stream
// (sampling.SubStream) and evaluates their exact clustering deltas
// read-only against sorted neighbor rows, and accepted swaps are merged
// serially in a fixed shard order. The parallelism model is
// propose-in-parallel, commit-in-order, and it carries a worker-count
// invariance guarantee: the restored graph is a deterministic function of
// (input, seed, shard count, round size) and is byte-identical at any
// worker setting — core.Options.RewireWorkers, -rewire-workers on
// cmd/restore and cmd/restored, and harness.Config.RewireWorkers buy wall
// clock only. That is what lets restored exclude the knob from its job
// content address (differently configured daemons share cache lines) and
// lets the bench gate (`make bench-gate`, scripts/bench_gate.sh) compare
// recorded baselines across machines with different core counts. The
// rewiring trajectory differs from the frozen serial dkseries.Rewire —
// the engines share state and accept semantics, not proposal sequences —
// and is pinned by worker-invariance, evaluator-equivalence and
// differential white-box tests in internal/dkseries; see ARCHITECTURE.md
// for the full determinism-contract inventory.
//
// Restoration itself is also served as a service: internal/restored plus
// cmd/restored run the whole crawl → dK-series → rewiring pipeline behind
// an asynchronous HTTP/JSON job API (POST /v1/jobs with an inline crawl,
// an uploaded crawl journal, or a graphd URL to crawl server-side; poll
// GET /v1/jobs/{id}; download /graph and /props). Jobs are content-
// addressed — the job id is the SHA-256 of the canonicalized crawl bytes,
// pipeline options, and seed — so identical submissions, however spelled,
// singleflight onto one pipeline run and are answered from a result cache
// (in memory, optionally persisted on disk) at a fraction of the cost.
// Every job pins its seed through core.PipelineRand, making daemon results
// byte-identical to `restore -seed` run offline on the same crawl; results
// travel in the binary SGRB codec of graph.WriteBinary/ReadBinary
// (versioned, checksummed, round-trip exact including multi-edges,
// self-loops and adjacency order), which restore -out-binary writes and
// gengraph -from-binary reads. Both daemons expose /v1/healthz and a
// plain-text /v1/metrics through the shared internal/daemon plumbing; see
// README.md, "Restoration as a service".
//
// The read side runs on graph.CSR, an immutable int32 compressed-sparse-
// row snapshot cached next to Index() and invalidated by every mutator:
// one endpoint view in original adjacency order (served zero-copy as
// oracle neighbor pages) and one sorted distinct-neighbor/multiplicity
// view whose rows make triangle and shared-partner counting a linear
// sorted-merge intersection. All twelve evaluated properties, the
// D-measure, and the oracle server share one snapshot per graph;
// harness.Evaluate builds it once before its cells fan out. The oracle
// additionally exposes a batched GET /v1/neighbors?ids=... endpoint that
// oracle.Client.Prefetch drives for BFS-frontier crawls — byte-identical
// crawls and budgets, a fraction of the round trips. Every rewritten
// props function is pinned bit-for-bit to its frozen pre-CSR reference
// (internal/props/csrdiff_test.go), and `make bench-props-json` records
// the read-path baseline in BENCH_props.json (see README.md, "The read
// path: CSR snapshots").
//
// The determinism contracts are also enforced statically: cmd/sgrlint
// (internal/lint) runs five analyzers over the typed ASTs of every
// determinism-critical package — maprange (no order-sensitive map
// iteration), seededrand (no implicitly seeded or wall-clock-seeded
// randomness), wallclock (no time.Now on the pipeline or content-address
// path), floatorder (no cross-goroutine float accumulation outside
// index-addressed slots), and direct, which validates the
// //sgr:nondet-ok <reason> escape hatch: reasonless or stale
// justifications are findings themselves. `make lint` and the CI lint
// job run the suite over the whole tree, test files included, so a
// nondeterminism hazard fails the build before it can flake a test.
package sgr
