package sgr_test

import (
	"fmt"
	"math/rand/v2"

	"sgr"
	"sgr/internal/gen"
)

// The full restoration pipeline: crawl a hidden graph by random walk under
// a 10% query budget and generate a structural replica from the sampling
// list alone.
func ExampleRestore() {
	r := rand.New(rand.NewPCG(1, 2))
	hidden := gen.HolmeKim(500, 3, 0.5, r)

	crawl, err := sgr.RandomWalk(hidden, 0, 0.10, r)
	if err != nil {
		panic(err)
	}
	res, err := sgr.Restore(crawl, sgr.Options{RC: 10, Rand: r})
	if err != nil {
		panic(err)
	}
	fmt.Println("queried:", crawl.NumQueried())
	fmt.Println("restored graph valid:", res.Validate() == nil)
	// Output:
	// queried: 50
	// restored graph valid: true
}

// Re-weighted random-walk estimators recover local properties of the
// hidden graph from the walk alone.
func ExampleEstimate() {
	r := rand.New(rand.NewPCG(3, 4))
	hidden := gen.WattsStrogatz(400, 6, 0, r) // 6-regular ring: kbar = 6

	crawl, err := sgr.RandomWalk(hidden, 0, 0.25, r)
	if err != nil {
		panic(err)
	}
	est, err := sgr.Estimate(crawl)
	if err != nil {
		panic(err)
	}
	// On a regular graph the average-degree estimator is exact.
	fmt.Printf("kbar-hat = %.0f\n", est.AvgDeg)
	// Output:
	// kbar-hat = 6
}

// CompareL1 scores a generated graph against the original on the paper's
// 12 structural properties.
func ExampleCompareL1() {
	r := rand.New(rand.NewPCG(5, 6))
	g := gen.HolmeKim(300, 3, 0.5, r)
	p := sgr.ComputeProperties(g, sgr.PropertyOptions{})
	ds := sgr.CompareL1(p, p) // identical graphs -> all distances zero
	sum := 0.0
	for _, d := range ds {
		sum += d
	}
	fmt.Println("properties:", len(ds), "total distance:", sum)
	// Output:
	// properties: 12 total distance: 0
}
