// dK-series: the generative-model family underlying the restoration method
// (Sec. III-C), demonstrated standalone.
//
// For a Holme–Kim social graph it generates 0K, 1K, 2K and 2.5K random
// graphs — each preserving one more level of local structure — and reports
// how each level reproduces clustering, path lengths and the Schieber et
// al. dissimilarity against the original, reproducing the qualitative
// message of Mahadevan et al. and Gjoka et al.: fidelity grows with d.
//
// Run with: go run ./examples/dkseries
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sgr/internal/dkseries"
	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/props"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewPCG(99, 100))
	original := gen.HolmeKim(1200, 4, 0.7, r)
	origProps := props.Compute(original, props.Options{})
	fmt.Printf("original: n=%d m=%d cbar=%.3f lbar=%.2f\n\n",
		original.N(), original.M(), origProps.GlobalClustering, origProps.AvgPathLen)
	fmt.Printf("%-6s %10s %10s %10s %14s\n", "model", "cbar", "lbar", "lambda1", "dissimilarity")
	report := func(name string, g *graph.Graph) {
		p := props.Compute(g, props.Options{})
		d := props.Dissimilarity(original, g, props.Options{})
		fmt.Printf("%-6s %10.3f %10.2f %10.2f %14.4f\n",
			name, p.GlobalClustering, p.AvgPathLen, p.Lambda1, d)
	}

	report("0K", dkseries.DK0(original, r))
	report("1K", dkseries.DK1(original, r))
	d2, err := dkseries.DK2(original, r)
	if err != nil {
		log.Fatal(err)
	}
	report("2K", d2)
	d25, stats, err := dkseries.DK25(original, 50, r)
	if err != nil {
		log.Fatal(err)
	}
	report("2.5K", d25)
	fmt.Printf("\n2.5K rewiring: clustering L1 %.3f -> %.3f (%d/%d swaps accepted)\n",
		stats.InitialL1, stats.FinalL1, stats.Accepted, stats.Attempts)
}
