// Estimators: convergence of the re-weighted random-walk estimators
// (Sec. III-E) as the walk grows.
//
// It prints, for increasing walk lengths, the estimates of the number of
// nodes, average degree and mean clustering against the ground truth —
// the measurement layer the restoration method is built on.
//
// Run with: go run ./examples/estimators
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sgr"
	"sgr/internal/gen"
	"sgr/internal/sampling"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewPCG(7, 11))
	g := gen.HolmeKim(5000, 4, 0.6, r)

	trueAvgDeg := g.AvgDegree()
	trueCluster := meanMap(clusteringTruth(g))
	fmt.Printf("ground truth: n=%d kbar=%.3f mean c(k)=%.3f\n\n",
		g.N(), trueAvgDeg, trueCluster)
	fmt.Printf("%8s %12s %12s %12s %12s\n", "steps", "n-hat", "err%", "kbar-hat", "mean c-hat")

	for _, steps := range []int{500, 1000, 2000, 5000, 10000, 20000} {
		c, err := sampling.RandomWalkSteps(sampling.NewGraphAccess(g), 0, steps, r)
		if err != nil {
			log.Fatal(err)
		}
		est, err := sgr.Estimate(c)
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * abs(est.N-float64(g.N())) / float64(g.N())
		fmt.Printf("%8d %12.0f %11.1f%% %12.3f %12.3f\n",
			steps, est.N, errPct, est.AvgDeg, meanMap(est.Clustering))
	}
}

// clusteringTruth returns the exact degree-dependent clustering of g.
func clusteringTruth(g *sgr.Graph) map[int]float64 {
	return sgr.ComputeProperties(g, sgr.PropertyOptions{}).DegreeClustering
}

func meanMap(m map[int]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s / float64(len(m))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
