// Private-nodes: restoration when part of the network hides its friend
// lists (the extension setting of Nakajima & Shudo, KDD 2020, cited in the
// paper's related work).
//
// A fraction of users is marked private; the private-aware walk never
// steps onto them (their lists are unavailable), and the restoration works
// from the public sample alone. The example reports how accuracy degrades
// as the private share grows.
//
// Run with: go run ./examples/private_nodes
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sgr"
	"sgr/internal/gen"
	"sgr/internal/metrics"
	"sgr/internal/sampling"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewPCG(77, 78))
	g := gen.HolmeKim(2000, 4, 0.5, r)
	origProps := sgr.ComputeProperties(g, sgr.PropertyOptions{})
	fmt.Printf("original: n=%d m=%d\n\n", g.N(), g.M())
	fmt.Printf("%12s %12s %14s %12s\n", "private %", "queried", "restored n", "avg L1")

	for _, pctPrivate := range []float64{0, 0.05, 0.10, 0.20} {
		// Mark a random subset private (never the walk seed).
		var private []int
		for u := 1; u < g.N(); u++ {
			if r.Float64() < pctPrivate {
				private = append(private, u)
			}
		}
		access := sampling.NewPrivateAccess(sampling.NewGraphAccess(g), private)
		crawl, err := sampling.PrivateAwareWalk(access, 0, 0.10, r)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sgr.Restore(crawl, sgr.Options{RC: 30, Rand: r})
		if err != nil {
			log.Fatal(err)
		}
		got := sgr.ComputeProperties(res.Graph, sgr.PropertyOptions{})
		avg := metrics.Mean(sgr.CompareL1(got, origProps))
		fmt.Printf("%11.0f%% %12d %14d %12.3f\n",
			100*pctPrivate, crawl.NumQueried(), res.Graph.N(), avg)
	}
	fmt.Println("\nprivate nodes bias the walk toward the public subgraph; accuracy")
	fmt.Println("degrades gracefully while the pipeline keeps working end to end.")
}
