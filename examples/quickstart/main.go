// Quickstart: the full social-graph-restoration workflow on a small
// synthetic social graph.
//
// It walks through the exact pipeline of the paper: crawl a hidden graph
// with a simple random walk under a 10% query budget, inspect the sampled
// subgraph and the re-weighted random-walk estimates, restore a full graph
// from the sampling list alone, and compare the 12 structural properties of
// the restoration against the hidden original.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sgr"
	"sgr/internal/gen"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewPCG(42, 43))

	// The "hidden" original graph: a power-law-cluster social network.
	original := gen.HolmeKim(3000, 4, 0.5, r)
	fmt.Printf("hidden original: n=%d m=%d avg-degree=%.2f\n",
		original.N(), original.M(), original.AvgDegree())

	// Crawl it: the only access is "query a node, get its neighbor list".
	crawl, err := sgr.RandomWalk(original, 0, 0.10, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random walk: queried %d nodes (10%%), walk length %d\n",
		crawl.NumQueried(), len(crawl.Walk))

	// The induced subgraph G' (what subgraph sampling would return).
	sub := sgr.BuildSubgraph(crawl)
	fmt.Printf("sampled subgraph G': n=%d m=%d (%d queried + %d visible)\n",
		sub.Graph.N(), sub.Graph.M(), sub.NumQueried, sub.Graph.N()-sub.NumQueried)

	// Re-weighted random-walk estimates of the local properties.
	est, err := sgr.Estimate(crawl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimates: n-hat=%.0f (true %d), kbar-hat=%.2f (true %.2f)\n",
		est.N, original.N(), est.AvgDeg, original.AvgDegree())

	// Restore: generate a graph preserving the estimates AND the subgraph.
	res, err := sgr.Restore(crawl, sgr.Options{RC: 100, Rand: r})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored graph: n=%d m=%d (%d nodes added to G', %d/%d rewires accepted)\n",
		res.Graph.N(), res.Graph.M(), res.NumAdded,
		res.RewireStats.Accepted, res.RewireStats.Attempts)

	// Score the restoration on the paper's 12 structural properties.
	origProps := sgr.ComputeProperties(original, sgr.PropertyOptions{})
	restProps := sgr.ComputeProperties(res.Graph, sgr.PropertyOptions{})
	distances := sgr.CompareL1(restProps, origProps)
	fmt.Println("normalized L1 distance per property (lower is better):")
	sum := 0.0
	for i, name := range sgr.PropertyNames {
		fmt.Printf("  %-8s %.3f\n", name, distances[i])
		sum += distances[i]
	}
	fmt.Printf("  average  %.3f\n", sum/float64(len(distances)))
}
