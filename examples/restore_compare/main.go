// Restore-compare: the paper's six-method comparison (Sec. VI-A) on a
// scaled stand-in of the Anybeat dataset.
//
// Per run, one random seed node starts BFS, snowball sampling, forest fire
// and a random walk; the same walk feeds RW subgraph sampling, Gjoka et
// al.'s method and the proposed method. Each generated graph is scored on
// the 12 structural properties with the normalized L1 distance.
//
// Run with: go run ./examples/restore_compare
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sgr"
	"sgr/internal/gen"
	"sgr/internal/harness"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewPCG(123, 456))
	d, err := gen.ByName("anybeat")
	if err != nil {
		log.Fatal(err)
	}
	g := d.Build(0.15, r) // ~1900-node stand-in; raise toward 1.0 for fidelity
	fmt.Printf("anybeat stand-in: n=%d m=%d\n\n", g.N(), g.M())

	ev, err := sgr.Evaluate(g, sgr.EvalConfig{
		Fraction: 0.10,
		Runs:     3,
		RC:       50,
		Seed:     9,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(harness.RenderPerProperty("anybeat (scaled)", ev))
	fmt.Println()
	fmt.Print(harness.RenderAvgSD(map[string]*sgr.Evaluation{"anybeat": ev}))
	fmt.Println()
	fmt.Print(harness.RenderTimes(map[string]*sgr.Evaluation{"anybeat": ev}))

	best := sgr.Method("")
	bestAvg := -1.0
	for _, m := range harness.AllMethods {
		if avg := ev.AvgL1(m); bestAvg < 0 || avg < bestAvg {
			bestAvg = avg
			best = m
		}
	}
	fmt.Printf("\nbest method by average L1: %s (%.3f)\n", best, bestAvg)
}
