// Visualize: reproduce the paper's Fig. 4 qualitative comparison — the
// original graph, the random-walk subgraph (core captured, periphery
// missing) and the proposed restoration (periphery restored) — as SVG
// files in the current directory.
//
// Run with: go run ./examples/visualize
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"sgr"
	"sgr/internal/gen"
)

func main() {
	log.SetFlags(0)
	r := rand.New(rand.NewPCG(2024, 2025))
	d, err := gen.ByName("anybeat")
	if err != nil {
		log.Fatal(err)
	}
	g := d.Build(0.08, r) // ~1000 nodes keeps layout fast
	fmt.Printf("original: n=%d m=%d\n", g.N(), g.M())

	crawl, err := sgr.RandomWalk(g, 0, 0.10, r)
	if err != nil {
		log.Fatal(err)
	}
	sub := sgr.BuildSubgraph(crawl)
	res, err := sgr.Restore(crawl, sgr.Options{RC: 50, Rand: r})
	if err != nil {
		log.Fatal(err)
	}

	lr := rand.New(rand.NewPCG(5, 6))
	for _, job := range []struct {
		name string
		g    *sgr.Graph
	}{
		{"original", g},
		{"rw-subgraph", sub.Graph},
		{"proposed-restoration", res.Graph},
	} {
		path := "fig4-" + job.name + ".svg"
		if err := sgr.SaveVisualization(path, job.g, job.name, lr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (n=%d m=%d)\n", path, job.g.N(), job.g.M())
	}
	fmt.Println("open the SVGs side by side: the subgraph misses the low-degree")
	fmt.Println("periphery; the restoration recovers both core and periphery.")
}
