package sgr_test

import (
	"path/filepath"
	"testing"

	"sgr"
)

func TestNewGraphFacade(t *testing.T) {
	g := sgr.NewGraph(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("NewGraph: n=%d m=%d", g.N(), g.M())
	}
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("facade graph should behave like internal graph")
	}
}

func TestLoadGraphErrors(t *testing.T) {
	if _, err := sgr.LoadGraph(filepath.Join(t.TempDir(), "missing.edges")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestEstimateRejectsNonWalk(t *testing.T) {
	c := &sgr.Crawl{Queried: []int{0}, Neighbors: map[int][]int{0: {1}}}
	if _, err := sgr.Estimate(c); err == nil {
		t.Fatal("want error for crawl without walk sequence")
	}
}

func TestPropertyNamesStable(t *testing.T) {
	want := []string{"n", "kbar", "P(k)", "knn(k)", "cbar", "c(k)",
		"P(s)", "lbar", "P(l)", "lmax", "b(k)", "lambda1"}
	if len(sgr.PropertyNames) != len(want) {
		t.Fatalf("PropertyNames: %v", sgr.PropertyNames)
	}
	for i, w := range want {
		if sgr.PropertyNames[i] != w {
			t.Fatalf("PropertyNames[%d] = %q want %q", i, sgr.PropertyNames[i], w)
		}
	}
}
