module sgr

go 1.22
