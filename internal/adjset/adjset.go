// Package adjset implements a compact open-addressing adjacency multiset:
// for each node a flat hash table of (neighbor, multiplicity) int32 slots
// with linear probing and backward-shift deletion. It replaces the
// []map[int]int / map[int]map[int]uint8 rows that dominated the rewiring
// and estimation hot paths: rows are two parallel int32 slices, so lookups
// touch one cache line, iteration is a linear scan, and none of Get, Inc,
// Dec or Iterate allocates after the row has grown to its working size.
//
// The multiset stores one directed row per node; callers maintaining an
// undirected adjacency call Inc(u,v) and Inc(v,u) symmetrically, mirroring
// the convention of the map-based rows it replaces.
//
// Get, Inc and Dec are expected O(1) (the tables stay under a 3/4 load
// factor); Iterate and Row are O(capacity) linear scans. The Set backs
// the serial rewiring engine and the walk estimators; the sharded
// rewiring engine reads its own sorted-row mirror instead (see
// internal/dkseries/rewire_sharded.go), trading O(1) probes for ordered
// merge intersections.
package adjset

// Empty marks an unoccupied key slot. Node IDs must be >= 0, so -1 is free.
const Empty int32 = -1

// minCap is the initial slot count of a row on its first insertion.
const minCap = 8

// row is one node's open-addressing table. keys and counts are parallel
// slices whose length is a power of two; n is the occupied-slot count.
type row struct {
	keys   []int32
	counts []int32
	n      int32
}

// Set is a per-node adjacency multiset over dense node IDs 0..NumNodes()-1.
// The zero-size Set (New(0)) is valid and empty. A Set is safe for
// concurrent reads but not for concurrent mutation.
type Set struct {
	rows []row
}

// New returns a Set with n empty rows.
func New(n int) *Set {
	return &Set{rows: make([]row, n)}
}

// NewSized returns a Set whose rows are pre-sized for the given
// distinct-neighbor upper bounds, carved out of one shared arena: three
// allocations total instead of two per row. A row whose hint is never
// exceeded does no further allocation; exceeding a hint falls back to
// per-row growth. Hints of zero leave the row unallocated until first use.
func NewSized(hints []int) *Set {
	s := &Set{rows: make([]row, len(hints))}
	total := 0
	caps := make([]int, len(hints))
	for u, h := range hints {
		if h <= 0 {
			continue
		}
		// Capacity cap > 4h/3 keeps h entries under the 3/4 load factor.
		c := minCap
		for c*3 <= h*4 {
			c *= 2
		}
		caps[u] = c
		total += c
	}
	keys := make([]int32, total)
	for i := range keys {
		keys[i] = Empty
	}
	counts := make([]int32, total)
	off := 0
	for u, c := range caps {
		if c == 0 {
			continue
		}
		s.rows[u].keys = keys[off : off+c : off+c]
		s.rows[u].counts = counts[off : off+c : off+c]
		off += c
	}
	return s
}

// NumNodes returns the number of rows.
func (s *Set) NumNodes() int { return len(s.rows) }

// Len returns the number of distinct neighbors in u's row.
func (s *Set) Len(u int) int { return int(s.rows[u].n) }

// hash mixes a key for power-of-two tables. Fibonacci multiply plus a
// fold of the high bits keeps low-bit-only masks well distributed.
func hash(k int32) uint32 {
	h := uint32(k) * 2654435769
	return h ^ h>>16
}

// Get returns the multiplicity of v in u's row (0 if absent).
func (s *Set) Get(u, v int) int {
	r := &s.rows[u]
	if r.n == 0 {
		return 0
	}
	mask := uint32(len(r.keys) - 1)
	key := int32(v)
	for i := hash(key) & mask; ; i = (i + 1) & mask {
		switch r.keys[i] {
		case key:
			return int(r.counts[i])
		case Empty:
			return 0
		}
	}
}

// Inc increments the multiplicity of v in u's row and returns the new
// count, growing (doubling and rehashing) the row when it would exceed a
// 3/4 load factor — amortized O(1), allocation-free at working size.
func (s *Set) Inc(u, v int) int {
	r := &s.rows[u]
	if len(r.keys) == 0 || int(r.n) >= len(r.keys)*3/4 {
		r.grow()
	}
	mask := uint32(len(r.keys) - 1)
	key := int32(v)
	for i := hash(key) & mask; ; i = (i + 1) & mask {
		switch r.keys[i] {
		case key:
			r.counts[i]++
			return int(r.counts[i])
		case Empty:
			r.keys[i] = key
			r.counts[i] = 1
			r.n++
			return 1
		}
	}
}

// Dec decrements the multiplicity of v in u's row and returns the new
// count; the slot is deleted (backward-shift) when the count reaches zero.
// Decrementing an absent pair panics: it indicates a caller bookkeeping bug.
func (s *Set) Dec(u, v int) int {
	r := &s.rows[u]
	if r.n == 0 {
		panic("adjset: Dec of absent pair")
	}
	mask := uint32(len(r.keys) - 1)
	key := int32(v)
	for i := hash(key) & mask; ; i = (i + 1) & mask {
		switch r.keys[i] {
		case key:
			r.counts[i]--
			if c := r.counts[i]; c > 0 {
				return int(c)
			}
			r.delete(i, mask)
			return 0
		case Empty:
			panic("adjset: Dec of absent pair")
		}
	}
}

// delete removes the entry at slot i via backward-shift deletion, keeping
// every remaining entry reachable from its home slot without tombstones.
func (r *row) delete(i, mask uint32) {
	r.n--
	for {
		r.keys[i] = Empty
		j := i
		for {
			j = (j + 1) & mask
			k := r.keys[j]
			if k == Empty {
				return
			}
			// h in (i, j] cyclically: the probe path from h to j does not
			// cross the hole at i, so the entry stays put.
			h := hash(k) & mask
			if i <= j {
				if i < h && h <= j {
					continue
				}
			} else if i < h || h <= j {
				continue
			}
			r.keys[i], r.counts[i] = k, r.counts[j]
			i = j
			break
		}
	}
}

// grow rehashes u's row into a table of twice the capacity.
func (r *row) grow() {
	newCap := minCap
	if len(r.keys) > 0 {
		newCap = len(r.keys) * 2
	}
	keys := make([]int32, newCap)
	for i := range keys {
		keys[i] = Empty
	}
	counts := make([]int32, newCap)
	mask := uint32(newCap - 1)
	for i, k := range r.keys {
		if k == Empty {
			continue
		}
		j := hash(k) & mask
		for keys[j] != Empty {
			j = (j + 1) & mask
		}
		keys[j], counts[j] = k, r.counts[i]
	}
	r.keys, r.counts = keys, counts
}

// Row exposes u's raw slot arrays for allocation-free hot-loop iteration:
// parallel keys/counts slices where keys[i] == Empty marks a vacant slot.
// The slices are owned by the Set and must not be mutated; any Inc/Dec on
// u invalidates them.
func (s *Set) Row(u int) (keys, counts []int32) {
	r := &s.rows[u]
	return r.keys, r.counts
}

// Iterate calls fn for every (neighbor, count) pair in u's row, in slot
// order, stopping early if fn returns false. The row must not be mutated
// during iteration. Iterate itself does not allocate, and a non-escaping
// closure passed here stays on the caller's stack.
func (s *Set) Iterate(u int, fn func(v, count int32) bool) {
	r := &s.rows[u]
	for i, k := range r.keys {
		if k == Empty {
			continue
		}
		if !fn(k, r.counts[i]) {
			return
		}
	}
}
