package adjset

import (
	"math/rand/v2"
	"testing"
)

func TestBasicIncGetDec(t *testing.T) {
	s := New(3)
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes: %d want 3", s.NumNodes())
	}
	if got := s.Get(0, 1); got != 0 {
		t.Fatalf("Get on empty row: %d want 0", got)
	}
	if got := s.Inc(0, 1); got != 1 {
		t.Fatalf("first Inc: %d want 1", got)
	}
	if got := s.Inc(0, 1); got != 2 {
		t.Fatalf("second Inc: %d want 2", got)
	}
	if got := s.Get(0, 1); got != 2 {
		t.Fatalf("Get: %d want 2", got)
	}
	if got := s.Len(0); got != 1 {
		t.Fatalf("Len: %d want 1", got)
	}
	if got := s.Dec(0, 1); got != 1 {
		t.Fatalf("Dec: %d want 1", got)
	}
	if got := s.Dec(0, 1); got != 0 {
		t.Fatalf("Dec to zero: %d want 0", got)
	}
	if got, l := s.Get(0, 1), s.Len(0); got != 0 || l != 0 {
		t.Fatalf("after delete: Get=%d Len=%d want 0,0", got, l)
	}
}

func TestDecAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dec of absent pair must panic")
		}
	}()
	s := New(1)
	s.Inc(0, 2)
	s.Dec(0, 3)
}

// TestDifferentialVsMap drives a Set and a reference map with the same
// random Inc/Dec stream and checks full agreement, exercising growth and
// backward-shift deletion across many collision patterns.
func TestDifferentialVsMap(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7))
	const n = 5
	const keyspace = 200
	s := New(n)
	ref := make([]map[int32]int32, n)
	for i := range ref {
		ref[i] = make(map[int32]int32)
	}
	for step := 0; step < 200000; step++ {
		u := r.IntN(n)
		v := int32(r.IntN(keyspace))
		if r.IntN(3) == 0 && ref[u][v] > 0 {
			ref[u][v]--
			got := s.Dec(u, int(v))
			if got != int(ref[u][v]) {
				t.Fatalf("step %d: Dec(%d,%d)=%d want %d", step, u, v, got, ref[u][v])
			}
			if ref[u][v] == 0 {
				delete(ref[u], v)
			}
		} else {
			ref[u][v]++
			if got := s.Inc(u, int(v)); got != int(ref[u][v]) {
				t.Fatalf("step %d: Inc(%d,%d)=%d want %d", step, u, v, got, ref[u][v])
			}
		}
	}
	for u := 0; u < n; u++ {
		if s.Len(u) != len(ref[u]) {
			t.Fatalf("node %d: Len=%d want %d", u, s.Len(u), len(ref[u]))
		}
		for v := int32(0); v < keyspace; v++ {
			if got := s.Get(u, int(v)); got != int(ref[u][v]) {
				t.Fatalf("node %d: Get(%d)=%d want %d", u, v, got, ref[u][v])
			}
		}
		// Iterate must visit each pair exactly once with the right count.
		seen := make(map[int32]int32)
		s.Iterate(u, func(v, c int32) bool {
			if _, dup := seen[v]; dup {
				t.Fatalf("node %d: Iterate visited %d twice", u, v)
			}
			seen[v] = c
			return true
		})
		if len(seen) != len(ref[u]) {
			t.Fatalf("node %d: Iterate saw %d pairs want %d", u, len(seen), len(ref[u]))
		}
		for v, c := range ref[u] {
			if seen[v] != c {
				t.Fatalf("node %d: Iterate count for %d: %d want %d", u, v, seen[v], c)
			}
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	s := New(1)
	for v := 0; v < 10; v++ {
		s.Inc(0, v)
	}
	calls := 0
	s.Iterate(0, func(v, c int32) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("early stop after %d calls want 3", calls)
	}
}

func TestRowSlotsMatchIterate(t *testing.T) {
	s := New(1)
	for v := 0; v < 50; v += 3 {
		s.Inc(0, v)
		s.Inc(0, v)
	}
	keys, counts := s.Row(0)
	occupied := 0
	for i, k := range keys {
		if k == Empty {
			continue
		}
		occupied++
		if got := s.Get(0, int(k)); got != int(counts[i]) {
			t.Fatalf("slot %d: count %d disagrees with Get %d", i, counts[i], got)
		}
	}
	if occupied != s.Len(0) {
		t.Fatalf("Row occupancy %d != Len %d", occupied, s.Len(0))
	}
}

// TestDeleteKeepsProbeChainsReachable hammers one row with collisions and
// interleaved deletions, then verifies every surviving key is reachable.
func TestDeleteKeepsProbeChainsReachable(t *testing.T) {
	s := New(1)
	live := make(map[int]bool)
	r := rand.New(rand.NewPCG(3, 9))
	for step := 0; step < 50000; step++ {
		v := r.IntN(64)
		if live[v] {
			s.Dec(0, v)
			delete(live, v)
		} else {
			s.Inc(0, v)
			live[v] = true
		}
		if step%977 == 0 {
			for w := range live {
				if s.Get(0, w) != 1 {
					t.Fatalf("step %d: live key %d unreachable", step, w)
				}
			}
		}
	}
}

func BenchmarkIncGetDec(b *testing.B) {
	s := New(1)
	r := rand.New(rand.NewPCG(1, 1))
	keys := make([]int, 256)
	for i := range keys {
		keys[i] = r.IntN(1 << 20)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		s.Inc(0, k)
		s.Get(0, k)
		s.Dec(0, k)
	}
}
