package core

import (
	"testing"

	"sgr/internal/gen"
	"sgr/internal/sampling"
)

// BenchmarkRestoreEndToEnd measures the whole proposed pipeline —
// estimation, target construction, half-edge wiring and rewiring — on one
// crawl, so adjacency-engine changes show up as end-to-end wall time and
// allocation deltas. Recorded alongside BenchmarkRewire by `make bench-json`.
func BenchmarkRestoreEndToEnd(b *testing.B) {
	g := gen.HolmeKim(3000, 4, 0.5, rng(1))
	c, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, 0.10, rng(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Restore(c, Options{RC: 25, Rand: rng(uint64(i))})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}
