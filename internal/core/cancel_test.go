package core

import (
	"context"
	"errors"
	"testing"

	"sgr/internal/graph"
)

// TestRestoreContextCancellation pins the cooperative-cancellation
// contract of the pipeline: a context only ever aborts a run — it never
// perturbs one that completes — and an abort surfaces the context's cause
// so callers can classify it.
func TestRestoreContextCancellation(t *testing.T) {
	g := testOriginal(t, 21)
	c := crawlOn(t, g, 0.15, 21)

	// A live context is invisible: bytes and stats are identical to a
	// context-free run at the same seed.
	base, err := Restore(c, Options{RC: 5, Rand: PipelineRand(9)})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Restore(c, Options{RC: 5, Rand: PipelineRand(9), Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(base.Graph, withCtx.Graph) {
		t.Fatal("a live context changed the restored graph")
	}
	if base.RewireStats != withCtx.RewireStats || base.NumAdded != withCtx.NumAdded {
		t.Fatalf("a live context changed the stats: %+v vs %+v", withCtx.RewireStats, base.RewireStats)
	}

	// A cancelled context aborts before any phase runs, and the abort
	// error wraps the cancellation cause.
	cause := errors.New("operator said stop")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	res, err := Restore(c, Options{RC: 5, Rand: PipelineRand(9), Ctx: ctx})
	if err == nil {
		t.Fatal("restore with a cancelled context succeeded")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("abort error %v does not wrap the cause %v", err, cause)
	}
	if res != nil && res.Graph != nil {
		t.Fatal("aborted restore leaked a partial graph")
	}

	// Same for a cause-less cancel (context.Canceled) and an expired
	// deadline (context.DeadlineExceeded) — the two stdlib shapes.
	plain, cancelPlain := context.WithCancel(context.Background())
	cancelPlain()
	if _, err := Restore(c, Options{RC: 5, Rand: PipelineRand(9), Ctx: plain}); !errors.Is(err, context.Canceled) {
		t.Fatalf("plain cancel surfaced %v, want context.Canceled", err)
	}
	expired, cancelExpired := context.WithTimeout(context.Background(), 0)
	defer cancelExpired()
	<-expired.Done()
	if _, err := Restore(c, Options{RC: 5, Rand: PipelineRand(9), Ctx: expired}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline surfaced %v, want context.DeadlineExceeded", err)
	}
}
