package core_test

import (
	"bytes"
	"fmt"
	"log"

	"sgr/internal/core"
	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/sampling"
)

// restoreBytes runs the full seeded pipeline on one crawl and returns the
// restored graph's binary encoding.
func restoreBytes(c *sampling.Crawl, rewireWorkers int) []byte {
	res, err := core.Restore(c, core.Options{
		RC:            5, // paper default is 500; small keeps the example fast
		RewireWorkers: rewireWorkers,
		Rand:          core.PipelineRand(7),
	})
	if err != nil {
		log.Fatal(err)
	}
	bin, err := graph.AppendBinary(nil, res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	return bin
}

// ExampleRestore_workerInvariance demonstrates the determinism contract of
// the parallel rewiring engine: a seeded restoration produces the same
// graph, byte for byte, at any Options.RewireWorkers value. The worker
// count buys wall clock only, which is why it is safe to tune per machine
// (restore -rewire-workers, restored -rewire-workers) without re-keying
// any cached or recorded result.
func ExampleRestore_workerInvariance() {
	// A hidden "original" and a random-walk crawl querying 15% of it —
	// the only input restoration sees.
	original := gen.HolmeKim(600, 4, 0.5, core.PipelineRand(3))
	crawl, err := sampling.RandomWalk(sampling.NewGraphAccess(original), 0, 0.15, core.PipelineRand(7))
	if err != nil {
		log.Fatal(err)
	}

	serial := restoreBytes(crawl, 1)
	wide := restoreBytes(crawl, 8)
	fmt.Println("identical at 1 and 8 workers:", bytes.Equal(serial, wide))
	// Output:
	// identical at 1 and 8 workers: true
}
