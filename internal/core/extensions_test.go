package core

import (
	"testing"

	"sgr/internal/estimate"
	"sgr/internal/props"
)

// oracleEstimates builds exact estimates from the original graph, as if the
// estimators were perfect.
func oracleEstimates(t *testing.T, gN int, avg float64, dd map[int]float64,
	jdd map[estimate.DegreePair]float64, cl map[int]float64) *estimate.Estimates {
	t.Helper()
	return &estimate.Estimates{
		N:          float64(gN),
		Collisions: 1,
		AvgDeg:     avg,
		DegreeDist: dd,
		JDD:        jdd,
		Clustering: cl,
		Lag:        1,
	}
}

func TestRestoreWithOracleEstimates(t *testing.T) {
	g := testOriginal(t, 70)
	c := crawlOn(t, g, 0.10, 71)

	// Exact properties of the hidden graph.
	dd := make(map[int]float64)
	for u := 0; u < g.N(); u++ {
		dd[g.Degree(u)]++
	}
	for k := range dd {
		dd[k] /= float64(g.N())
	}
	jdd := make(map[estimate.DegreePair]float64)
	twoM := 2 * float64(g.M())
	//sgr:nondet-ok Pair is injective on canonical JDM keys, so each iteration writes its own slot
	for kk, cnt := range g.JointDegreeMatrix() {
		mu := 1.0
		if kk[0] == kk[1] {
			mu = 2.0
		}
		jdd[estimate.Pair(kk[0], kk[1])] = mu * float64(cnt) / twoM
	}
	cl := props.DegreeClustering(g)

	est := oracleEstimates(t, g.N(), g.AvgDegree(), dd, jdd, cl)
	res, err := RestoreWithEstimates(c, est, Options{RC: 10, Rand: rng(72)})
	if err != nil {
		t.Fatal(err)
	}
	checkRealizes(t, res)
	// With oracle estimates the restored size must land very close to n.
	if d := float64(res.Graph.N()-g.N()) / float64(g.N()); d > 0.05 || d < -0.05 {
		t.Fatalf("oracle restoration size off by %.1f%%", 100*d)
	}
	// And the noisy-estimate restoration should be no closer on n than the
	// oracle one (sanity of the ablation direction).
	noisy, err := Restore(c, Options{RC: 10, Rand: rng(73)})
	if err != nil {
		t.Fatal(err)
	}
	oracleErr := abs(res.Graph.N() - g.N())
	noisyErr := abs(noisy.Graph.N() - g.N())
	if oracleErr > noisyErr {
		t.Logf("note: oracle n-error %d > noisy %d (possible on lucky walks)", oracleErr, noisyErr)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestRestoreForbidDegenerateReducesMultiEdges(t *testing.T) {
	g := testOriginal(t, 80)
	c := crawlOn(t, g, 0.10, 81)
	plain, err := Restore(c, Options{RC: 20, Rand: rng(82)})
	if err != nil {
		t.Fatal(err)
	}
	simple, err := Restore(c, Options{RC: 20, ForbidDegenerate: true, Rand: rng(82)})
	if err != nil {
		t.Fatal(err)
	}
	checkRealizes(t, simple)
	if simple.Graph.CountMultiEdges() > plain.Graph.CountMultiEdges() {
		t.Fatalf("ForbidDegenerate increased degeneracy: %d > %d",
			simple.Graph.CountMultiEdges(), plain.Graph.CountMultiEdges())
	}
}

func TestRestoreWithEstimatesRequiresRand(t *testing.T) {
	g := testOriginal(t, 90)
	c := crawlOn(t, g, 0.05, 91)
	if _, err := RestoreWithEstimates(c, &estimate.Estimates{}, Options{}); err == nil {
		t.Fatal("want error without Rand")
	}
}
