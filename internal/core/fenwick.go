package core

import "math/rand/v2"

// fenwick is a Fenwick (binary indexed) tree over degrees 1..n used to draw
// uniformly from the target-degree multiset Dseq(i) of Algorithm 2 without
// materializing it: entry k holds n*(k) - n'(k), and a weighted draw from
// [lo, n] takes O(log n).
type fenwick struct {
	n    int
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{n: n, tree: make([]int, n+1)} }

// add increases the weight at index i (1-based) by delta.
func (f *fenwick) add(i, delta int) {
	for ; i <= f.n; i += i & -i {
		f.tree[i] += delta
	}
}

// prefix returns the sum of weights in [1, i].
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum of weights in [lo, hi].
func (f *fenwick) rangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	if lo <= 1 {
		return f.prefix(hi)
	}
	return f.prefix(hi) - f.prefix(lo-1)
}

// sample draws an index from [lo, hi] with probability proportional to its
// weight, or returns -1 if the range holds no weight.
func (f *fenwick) sample(lo, hi int, r *rand.Rand) int {
	w := f.rangeSum(lo, hi)
	if w <= 0 {
		return -1
	}
	// Target cumulative rank within [1, hi].
	base := 0
	if lo > 1 {
		base = f.prefix(lo - 1)
	}
	target := base + 1 + r.IntN(w)
	// Find smallest i with prefix(i) >= target by descending the tree.
	idx := 0
	acc := 0
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && acc+f.tree[next] < target {
			idx = next
			acc += f.tree[next]
		}
	}
	return idx + 1
}
