package core

import (
	"math/rand/v2"
	"testing"
)

// FuzzFenwick drives the Fenwick tree behind Algorithm 2's weighted degree
// draws through arbitrary add/rangeSum/sample sequences and checks every
// answer against a naive array. Weights stay non-negative, as in real use
// (entry k holds the remaining multiplicity of target degree k).
func FuzzFenwick(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3})
	f.Add(uint64(42), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(uint64(7), []byte{255, 0, 128, 64, 32, 16})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		const n = 13
		fw := newFenwick(n)
		ref := make([]int, n+1) // 1-based like the tree
		r := rand.New(rand.NewPCG(seed, 0x5eed))
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			switch op % 3 {
			case 0: // add
				idx := int(arg)%n + 1
				delta := int(op/3)%5 - 2
				if ref[idx]+delta < 0 {
					delta = -ref[idx]
				}
				fw.add(idx, delta)
				ref[idx] += delta
			case 1: // rangeSum
				lo := int(arg)%n + 1
				hi := lo + int(op/3)%(n-lo+1)
				want := 0
				for j := lo; j <= hi; j++ {
					want += ref[j]
				}
				if got := fw.rangeSum(lo, hi); got != want {
					t.Fatalf("rangeSum(%d, %d) = %d, want %d (ref %v)", lo, hi, got, want, ref)
				}
			case 2: // sample
				lo := int(arg)%n + 1
				hi := lo + int(op/3)%(n-lo+1)
				want := 0
				for j := lo; j <= hi; j++ {
					want += ref[j]
				}
				got := fw.sample(lo, hi, r)
				if want == 0 {
					if got != -1 {
						t.Fatalf("sample(%d, %d) = %d on empty range (ref %v)", lo, hi, got, ref)
					}
					continue
				}
				if got < lo || got > hi {
					t.Fatalf("sample(%d, %d) = %d outside range (ref %v)", lo, hi, got, ref)
				}
				if ref[got] == 0 {
					t.Fatalf("sample(%d, %d) = %d has zero weight (ref %v)", lo, hi, got, ref)
				}
			}
		}
		// Invariant: prefix(n) equals the total reference weight.
		total := 0
		for j := 1; j <= n; j++ {
			total += ref[j]
		}
		if got := fw.prefix(n); got != total {
			t.Fatalf("prefix(%d) = %d, want %d", n, got, total)
		}
	})
}
