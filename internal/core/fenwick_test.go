package core

import (
	"math/rand/v2"
	"testing"
)

func TestFenwickPrefixAndRange(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 5)
	f.add(7, 2)
	f.add(10, 1)
	if got := f.prefix(2); got != 0 {
		t.Fatalf("prefix(2) = %d", got)
	}
	if got := f.prefix(3); got != 5 {
		t.Fatalf("prefix(3) = %d", got)
	}
	if got := f.prefix(10); got != 8 {
		t.Fatalf("prefix(10) = %d", got)
	}
	if got := f.rangeSum(4, 10); got != 3 {
		t.Fatalf("rangeSum(4,10) = %d", got)
	}
	if got := f.rangeSum(8, 6); got != 0 {
		t.Fatalf("rangeSum(8,6) = %d", got)
	}
	f.add(3, -5)
	if got := f.prefix(10); got != 3 {
		t.Fatalf("after removal prefix(10) = %d", got)
	}
}

func TestFenwickSampleRespectsRangeAndWeights(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	f := newFenwick(8)
	f.add(2, 10)
	f.add(5, 30)
	f.add(8, 60)
	counts := make(map[int]int)
	for i := 0; i < 10000; i++ {
		k := f.sample(1, 8, r)
		if k != 2 && k != 5 && k != 8 {
			t.Fatalf("sampled impossible index %d", k)
		}
		counts[k]++
	}
	// Expected proportions 10%, 30%, 60%.
	if counts[2] < 600 || counts[2] > 1400 {
		t.Errorf("weight-2 count %d far from 1000", counts[2])
	}
	if counts[8] < 5400 || counts[8] > 6600 {
		t.Errorf("weight-8 count %d far from 6000", counts[8])
	}
	// Range restriction excludes index 2.
	for i := 0; i < 200; i++ {
		if k := f.sample(3, 8, r); k != 5 && k != 8 {
			t.Fatalf("range sample returned %d", k)
		}
	}
	// Empty range.
	if k := f.sample(6, 7, r); k != -1 {
		t.Fatalf("empty range sample = %d want -1", k)
	}
}

func TestFenwickSampleSingleton(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	f := newFenwick(5)
	f.add(4, 1)
	for i := 0; i < 20; i++ {
		if k := f.sample(1, 5, r); k != 4 {
			t.Fatalf("singleton sample = %d", k)
		}
	}
}
