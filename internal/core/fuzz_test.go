package core

import (
	"math/rand/v2"
	"sort"
	"testing"

	"sgr/internal/dkseries"
	"sgr/internal/estimate"
	"sgr/internal/gen"
	"sgr/internal/sampling"
)

// randomEstimates fabricates a syntactically valid but statistically
// arbitrary estimate set: the phases must still produce realizable targets
// (or fail with a clean error) no matter how noisy the estimators were.
func randomEstimates(r *rand.Rand) *estimate.Estimates {
	kmax := 2 + r.IntN(30)
	nDegrees := 1 + r.IntN(kmax)
	dd := make(map[int]float64)
	total := 0.0
	for i := 0; i < nDegrees; i++ {
		k := 1 + r.IntN(kmax)
		w := r.Float64()
		dd[k] += w
		total += w
	}
	for k := range dd {
		dd[k] /= total
	}
	jdd := make(map[estimate.DegreePair]float64)
	degrees := make([]int, 0, len(dd))
	for k := range dd {
		degrees = append(degrees, k)
	}
	// Sorted so the r.IntN draws below pick the same degrees for the same
	// seed: map order would silently vary the fuzz case per process.
	sort.Ints(degrees)
	jTotal := 0.0
	for i := 0; i < 1+r.IntN(3*len(degrees)); i++ {
		a := degrees[r.IntN(len(degrees))]
		b := degrees[r.IntN(len(degrees))]
		w := r.Float64()
		jdd[estimate.Pair(a, b)] += w
		jTotal += w
	}
	for kk := range jdd {
		jdd[kk] /= jTotal
	}
	cl := make(map[int]float64)
	for _, k := range degrees {
		if k >= 2 {
			cl[k] = r.Float64()
		}
	}
	return &estimate.Estimates{
		N:          10 + 500*r.Float64(),
		Collisions: 1,
		AvgDeg:     1 + 9*r.Float64(),
		DegreeDist: dd,
		JDD:        jdd,
		Clustering: cl,
		Lag:        1,
	}
}

// TestPhasesSurviveArbitraryEstimates drives phases 1-2 with fabricated
// estimates, without a subgraph (the Gjoka path): the resulting targets
// must always satisfy DV-1..2 and JDM-1..3.
func TestPhasesSurviveArbitraryEstimates(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		r := rng(uint64(1000 + trial))
		est := randomEstimates(r)
		dvs, _, err := buildTargetDegreeVector(est, nil, r)
		if err != nil {
			t.Fatalf("trial %d phase 1: %v", trial, err)
		}
		jdm, err := buildTargetJDM(est, dvs.dv, nil, nil, r)
		if err != nil {
			t.Fatalf("trial %d phase 2: %v", trial, err)
		}
		if err := dvs.dv.Check(); err != nil {
			t.Fatalf("trial %d DV: %v", trial, err)
		}
		if err := jdm.Check(dvs.dv); err != nil {
			t.Fatalf("trial %d JDM: %v", trial, err)
		}
	}
}

// TestPhasesSurviveEstimateSubgraphMismatch drives the full proposed
// pipeline with estimates fabricated independently of the crawl: the
// modification steps must reconcile any such mismatch into valid targets.
func TestPhasesSurviveEstimateSubgraphMismatch(t *testing.T) {
	g := gen.HolmeKim(400, 3, 0.5, rng(2000))
	for trial := 0; trial < 30; trial++ {
		r := rng(uint64(3000 + trial))
		c, err := sampling.RandomWalk(sampling.NewGraphAccess(g), r.IntN(g.N()), 0.05, r)
		if err != nil {
			t.Fatal(err)
		}
		est := randomEstimates(r)
		res, err := RestoreWithEstimates(c, est, Options{SkipRewiring: true, Rand: r})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkRealizes(t, res)
		// The subgraph must be embedded regardless of estimate garbage.
		for _, e := range res.Subgraph.Graph.Edges() {
			if !res.Graph.HasEdge(e.U, e.V) {
				t.Fatalf("trial %d: subgraph edge (%d,%d) lost", trial, e.U, e.V)
			}
		}
	}
}

// TestAdjustJDMRespectsLowerLimits feeds Algorithm 3 explicit lower limits
// and checks they are honored.
func TestAdjustJDMRespectsLowerLimits(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := rng(uint64(4000 + trial))
		est := randomEstimates(r)
		dvs, _, err := buildTargetDegreeVector(est, nil, r)
		if err != nil {
			t.Fatal(err)
		}
		s := initJDM(est, dvs.dv)
		if err := s.adjustJDM(nil, r); err != nil {
			t.Fatal(err)
		}
		// Freeze the current matrix as lower limits, stress with another
		// adjustment round after raising some row targets.
		mmin := s.jdm.Clone()
		k := 1 + r.IntN(dvs.dv.KMax())
		dvs.dv[k] += 1 + r.IntN(3)
		if err := s.adjustJDM(mmin, r); err != nil {
			t.Fatal(err)
		}
		if err := s.jdm.CheckAgainstBase(mmin); err != nil {
			t.Fatalf("trial %d: lower limits violated: %v", trial, err)
		}
		if err := s.jdm.Check(dvs.dv); err != nil {
			t.Fatalf("trial %d: JDM-3 after stress: %v", trial, err)
		}
	}
}

// TestBuildRealizesFuzzedTargets closes the loop: fuzzed targets from the
// phases are handed to the dkseries builder, which must realize them
// exactly from an empty base.
func TestBuildRealizesFuzzedTargets(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		r := rng(uint64(5000 + trial))
		est := randomEstimates(r)
		dvs, _, err := buildTargetDegreeVector(est, nil, r)
		if err != nil {
			t.Fatal(err)
		}
		jdm, err := buildTargetJDM(est, dvs.dv, nil, nil, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dkseries.Build(nil, nil, dvs.dv, jdm, r)
		if err != nil {
			t.Fatalf("trial %d build: %v", trial, err)
		}
		got, err := dkseries.FromGraph(res.Graph)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for k := 1; k <= dvs.dv.KMax(); k++ {
			want := dvs.dv[k]
			have := 0
			if k <= got.KMax() {
				have = got[k]
			}
			if want != have {
				t.Fatalf("trial %d: n(%d) = %d want %d", trial, k, have, want)
			}
		}
	}
}
