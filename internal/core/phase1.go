// Package core implements the paper's primary contribution (Sec. IV): the
// four-phase social graph restoration method, plus the reproducible variant
// of Gjoka et al.'s 2.5K generation method (Appendix B) used as a baseline.
//
// Phase 1 builds the target degree vector {n*(k)} (Sec. IV-B, Algorithms
// 1-2), phase 2 the target joint degree matrix {m*(k,k')} (Sec. IV-C,
// Algorithms 3-4), phase 3 adds nodes and half-edge-wired edges to the
// sampled subgraph (Sec. IV-D, Algorithm 5, in internal/dkseries), and
// phase 4 rewires added edges toward the estimated degree-dependent
// clustering coefficient (Sec. IV-E, Algorithm 6, in internal/dkseries).
package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"sgr/internal/dkseries"
	"sgr/internal/estimate"
	"sgr/internal/sampling"
)

// nearInt is the paper's NearInt: nearest integer, halves away from zero.
func nearInt(a float64) int { return int(math.Round(a)) }

// dvState carries the target degree vector under construction together with
// the original estimates needed by the error terms Delta+-.
type dvState struct {
	dv    dkseries.DegreeVector
	nHatK []float64 // n-hat(k) = n-hat * P-hat(k); 0 where P-hat(k) = 0
}

// deltaPlus is the increase in relative error of n*(k) when incrementing it
// (Sec. IV-B); +Inf where the estimate gives no mass.
func (s *dvState) deltaPlus(k int) float64 {
	nh := s.nHatK[k]
	if nh <= 0 {
		return math.Inf(1)
	}
	cur := float64(s.dv[k])
	return (math.Abs(nh-(cur+1)) - math.Abs(nh-cur)) / nh
}

// initDegreeVector performs the initialization step of Sec. IV-B-1: kmax is
// the larger of the estimated support maximum and the subgraph maximum
// degree, and n*(k) = max(NearInt(n-hat P-hat(k)), 1) wherever P-hat(k) > 0.
func initDegreeVector(est *estimate.Estimates, subMaxDegree int) *dvState {
	kmax := est.MaxDegree()
	if subMaxDegree > kmax {
		kmax = subMaxDegree
	}
	if kmax < 1 {
		kmax = 1
	}
	s := &dvState{
		dv:    dkseries.NewDegreeVector(kmax),
		nHatK: make([]float64, kmax+1),
	}
	for k, p := range est.DegreeDist {
		if p <= 0 || k < 1 || k > kmax {
			continue
		}
		s.nHatK[k] = est.N * p
		n := nearInt(s.nHatK[k])
		if n < 1 {
			n = 1
		}
		s.dv[k] = n
	}
	return s
}

// adjustDegreeVector implements Algorithm 1: if the degree sum is odd,
// increment n*(k) for the odd degree k with the smallest error increase
// (smallest k on ties) so that DV-2 holds.
func (s *dvState) adjustDegreeVector() {
	if s.dv.DegreeSum()%2 == 0 {
		return
	}
	bestK := -1
	best := math.Inf(1)
	for k := 1; k <= s.dv.KMax(); k += 2 {
		if d := s.deltaPlus(k); d < best {
			best = d
			bestK = k
		}
	}
	if bestK < 0 {
		// Every odd degree has an infinite error term; take the smallest.
		bestK = 1
	}
	s.dv[bestK]++
}

// modifyDegreeVector implements Algorithm 2: assign target degrees to every
// subgraph node (queried nodes keep their true degree per Lemma 1, visible
// nodes draw a degree >= their partial degree) while raising n*(k) where
// needed so DV-3 holds. Returns the per-node target degrees, indexed like
// sub.Nodes.
func (s *dvState) modifyDegreeVector(sub *sampling.Subgraph, r *rand.Rand) []int {
	kmax := s.dv.KMax()
	n := sub.Graph.N()
	targetDeg := make([]int, n)
	nPrime := make([]int, kmax+1)

	// Queried nodes: d*_i = d'_i (lines 2-4).
	for i := 0; i < sub.NumQueried; i++ {
		d := sub.Graph.Degree(i)
		targetDeg[i] = d
		nPrime[d]++
	}
	// Raise n*(k) to n'(k) where violated (lines 5-6), and set up the
	// Fenwick tree over the residual weights n*(k) - n'(k).
	fw := newFenwick(kmax)
	for k := 1; k <= kmax; k++ {
		if s.dv[k] < nPrime[k] {
			s.dv[k] = nPrime[k]
		}
		if w := s.dv[k] - nPrime[k]; w > 0 {
			fw.add(k, w)
		}
	}

	// Visible nodes in decreasing subgraph-degree order (ties by node ID
	// for determinism).
	visible := make([]int, 0, n-sub.NumQueried)
	for i := sub.NumQueried; i < n; i++ {
		visible = append(visible, i)
	}
	sort.Slice(visible, func(a, b int) bool {
		da, db := sub.Graph.Degree(visible[a]), sub.Graph.Degree(visible[b])
		if da != db {
			return da > db
		}
		return visible[a] < visible[b]
	})

	for _, i := range visible {
		dPrime := sub.Graph.Degree(i)
		k := fw.sample(dPrime, kmax, r)
		if k < 0 {
			// Dseq(i) empty (lines 11-12): pick k in [d'_i, kmax] with the
			// smallest error increase, smallest k on ties.
			best := math.Inf(1)
			k = dPrime
			for cand := dPrime; cand <= kmax; cand++ {
				if d := s.deltaPlus(cand); d < best {
					best = d
					k = cand
				}
			}
			// n'(k) will exceed n*(k); raise n*(k) (line 15). The Fenwick
			// weight n*(k)-n'(k) stays zero.
			targetDeg[i] = k
			nPrime[k]++
			if s.dv[k] < nPrime[k] {
				s.dv[k] = nPrime[k]
			}
			continue
		}
		// Drawn from the residual multiset: consume one unit of weight.
		targetDeg[i] = k
		nPrime[k]++
		fw.add(k, -1)
	}
	return targetDeg
}

// buildTargetDegreeVector runs phase 1 end to end. sub may be nil (Gjoka
// et al.'s method skips the modification step). It returns the finished
// target degree vector and, when sub is given, the target degree of each
// subgraph node.
func buildTargetDegreeVector(est *estimate.Estimates, sub *sampling.Subgraph, r *rand.Rand) (*dvState, []int, error) {
	subMax := 0
	if sub != nil {
		subMax = sub.Graph.MaxDegree()
	}
	s := initDegreeVector(est, subMax)
	s.adjustDegreeVector()
	var targetDeg []int
	if sub != nil {
		targetDeg = s.modifyDegreeVector(sub, r)
		// The modification step may have broken DV-2; adjust again
		// (Sec. IV-B-3, final paragraph).
		s.adjustDegreeVector()
	}
	if err := s.dv.Check(); err != nil {
		return nil, nil, fmt.Errorf("core: phase 1 produced invalid degree vector: %w", err)
	}
	if sub != nil {
		counts := dkseries.BaseDegreeCounts(targetDeg, s.dv.KMax())
		if err := s.dv.CheckAgainstBase(counts); err != nil {
			return nil, nil, fmt.Errorf("core: phase 1 violated DV-3: %w", err)
		}
	}
	return s, targetDeg, nil
}
