package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sgr/internal/dkseries"
	"sgr/internal/estimate"
	"sgr/internal/graph"
)

// jdmState carries the target joint degree matrix under construction with
// the estimate-derived quantities behind the error terms Delta+-.
type jdmState struct {
	jdm  *dkseries.JDM
	mHat map[[2]int]float64 // m-hat(k,k') = n-hat kbar-hat P-hat(k,k')/mu
	dv   dkseries.DegreeVector
}

func jdmKey(k, kp int) [2]int {
	if k > kp {
		k, kp = kp, k
	}
	return [2]int{k, kp}
}

// deltaAdd is the relative-error increase of m*(k,k') when changing it by
// +1 (dir=+1) or -1 (dir=-1); +Inf where the estimate gives no mass.
func (s *jdmState) deltaAdd(k, kp, dir int) float64 {
	mh, ok := s.mHat[jdmKey(k, kp)]
	if !ok || mh <= 0 {
		return math.Inf(1)
	}
	cur := float64(s.jdm.Get(k, kp))
	return (math.Abs(mh-(cur+float64(dir))) - math.Abs(mh-cur)) / mh
}

// initJDM performs the initialization step of Sec. IV-C-1:
// m*(k,k') = max(NearInt(n-hat kbar-hat P-hat(k,k')/mu), 1) where the
// estimated joint degree distribution has mass.
func initJDM(est *estimate.Estimates, dv dkseries.DegreeVector) *jdmState {
	kmax := dv.KMax()
	s := &jdmState{
		jdm:  dkseries.NewJDM(kmax),
		mHat: make(map[[2]int]float64, len(est.JDD)),
		dv:   dv,
	}
	//sgr:nondet-ok each JDD key owns disjoint mHat/jdm cells and Add is an integer add, so the writes commute
	for kk, p := range est.JDD {
		if p <= 0 || kk.K < 1 || kk.Kp > kmax {
			continue
		}
		mu := 1.0
		if kk.K == kk.Kp {
			mu = 2.0
		}
		mh := est.N * est.AvgDeg * p / mu
		s.mHat[jdmKey(kk.K, kk.Kp)] = mh
		m := nearInt(mh)
		if m < 1 {
			m = 1
		}
		s.jdm.Add(kk.K, kk.Kp, m)
	}
	return s
}

// maxAdjustSteps caps the Algorithm-3 loop; it is a defensive bound far
// above what any valid input needs, turning a would-be hang into an error.
const maxAdjustSteps = 50_000_000

// adjustJDM implements Algorithm 3: make s(k) = k*n*(k) hold for every
// degree (JDM-3) by incrementing/decrementing cells, never dropping below
// mmin (nil means all-zero), possibly raising n*(k) when decrements are
// blocked. Processes degrees in decreasing order; within an adjustment only
// columns in the initial disequilibrium set D (plus degree 1) are touched.
func (s *jdmState) adjustJDM(mmin *dkseries.JDM, r *rand.Rand) error {
	kmax := s.dv.KMax()
	minAt := func(k, kp int) int {
		if mmin == nil {
			return 0
		}
		return mmin.Get(k, kp)
	}
	// D = {k : s(k) != s*(k)} ∪ {1}, iterated in decreasing order.
	inD := make([]bool, kmax+1)
	var d []int // ascending
	for k := 1; k <= kmax; k++ {
		if k == 1 || s.jdm.RowSum(k) != k*s.dv[k] {
			inD[k] = true
			d = append(d, k)
		}
	}

	steps := 0
	var cands []int
	for di := len(d) - 1; di >= 0; di-- {
		k := d[di]
		sk := func() int { return s.jdm.RowSum(k) }
		sStar := func() int { return k * s.dv[k] }
		if k == 1 && (sStar()-sk())%2 != 0 {
			s.dv[1]++ // lines 2-3: make |s(1)-s*(1)| even
		}
		for sk() != sStar() {
			steps++
			if steps > maxAdjustSteps {
				return fmt.Errorf("core: Algorithm 3 exceeded %d steps at degree %d (s=%d, s*=%d)",
					maxAdjustSteps, k, sk(), sStar())
			}
			if sk() < sStar() {
				// Increase branch (lines 5-9).
				excludeSelf := sk() == sStar()-1
				cands = cands[:0]
				best := math.Inf(1)
				for _, kp := range d {
					if kp > k {
						break
					}
					if kp == k && excludeSelf {
						continue
					}
					delta := s.deltaAdd(k, kp, +1)
					if delta < best {
						best = delta
						cands = append(cands[:0], kp)
					} else if delta == best {
						cands = append(cands, kp)
					}
				}
				if len(cands) == 0 {
					return fmt.Errorf("core: Algorithm 3: no increase candidate for degree %d", k)
				}
				kp := cands[r.IntN(len(cands))]
				s.jdm.Add(k, kp, 1)
			} else {
				// Decrease branch (lines 10-20).
				excludeSelf := sk() == sStar()+1
				cands = cands[:0]
				best := math.Inf(1)
				for _, kp := range d {
					if kp > k {
						break
					}
					if kp == k && excludeSelf {
						continue
					}
					if s.jdm.Get(k, kp) <= minAt(k, kp) {
						continue
					}
					delta := s.deltaAdd(k, kp, -1)
					if delta < best {
						best = delta
						cands = append(cands[:0], kp)
					} else if delta == best {
						cands = append(cands, kp)
					}
				}
				if len(cands) > 0 {
					kp := cands[r.IntN(len(cands))]
					s.jdm.Add(k, kp, -1)
				} else if k == 1 {
					s.dv[1] += 2 // keep |s(1)-s*(1)| even (line 18)
				} else {
					s.dv[k]++ // line 20
				}
			}
		}
	}
	return nil
}

// modifyJDM implements Algorithm 4: raise m*(k1,k2) up to the subgraph's
// m'(k1,k2) (JDM-4), compensating each increment by decrementing another
// cell in row k1 and row k2 (where possible above m') and restoring the
// affected rows with a final increment, so that JDM-3 violations and edge
// inflation are minimized.
func (s *jdmState) modifyJDM(mPrime *dkseries.JDM, r *rand.Rand) {
	kmax := s.dv.KMax()
	// pickDecrement finds k' with m*(row,k') > m'(row,k') minimizing
	// Delta-, excluding the listed degrees; returns -1 if none.
	pickDecrement := func(row int, exclude ...int) int {
		best := math.Inf(1)
		var cands []int
		for kp := 1; kp <= kmax; kp++ {
			skip := false
			for _, e := range exclude {
				if kp == e {
					skip = true
					break
				}
			}
			if skip || s.jdm.Get(row, kp) <= mPrime.Get(row, kp) {
				continue
			}
			delta := s.deltaAdd(row, kp, -1)
			if delta < best {
				best = delta
				cands = append(cands[:0], kp)
			} else if delta == best {
				cands = append(cands, kp)
			}
		}
		if len(cands) == 0 {
			return -1
		}
		return cands[r.IntN(len(cands))]
	}

	for k1 := 1; k1 <= kmax; k1++ {
		for k2 := k1; k2 <= kmax; k2++ {
			for s.jdm.Get(k1, k2) < mPrime.Get(k1, k2) {
				s.jdm.Add(k1, k2, 1)
				// Retain s(k1): decrement m*(k1,k3), k3 not in {k1,k2}.
				k3 := pickDecrement(k1, k1, k2)
				if k3 >= 0 {
					s.jdm.Add(k1, k3, -1)
				}
				// Retain s(k2): decrement m*(k2,k4), k4 not in {k1,k2}.
				k4 := pickDecrement(k2, k1, k2)
				if k4 >= 0 {
					s.jdm.Add(k2, k4, -1)
				}
				// Restore s(k3) and s(k4) together (lines 18-21).
				if k3 >= 0 && k4 >= 0 {
					s.jdm.Add(k3, k4, 1)
				}
			}
		}
	}
}

// buildTargetJDM runs phase 2 end to end. The degree vector dv is mutated
// in place when the adjustment needs extra nodes. sub's edges and target
// degrees are nil for Gjoka et al.'s method (no modification step).
func buildTargetJDM(est *estimate.Estimates, dv dkseries.DegreeVector, subGraph *graph.Graph, targetDeg []int, r *rand.Rand) (*dkseries.JDM, error) {
	s := initJDM(est, dv)
	if err := s.adjustJDM(nil, r); err != nil {
		return nil, err
	}
	if subGraph != nil {
		mPrime := dkseries.JDMFromBase(subGraph, targetDeg, dv.KMax())
		s.modifyJDM(mPrime, r)
		if err := s.adjustJDM(mPrime, r); err != nil {
			return nil, err
		}
		if err := s.jdm.CheckAgainstBase(mPrime); err != nil {
			return nil, fmt.Errorf("core: phase 2 violated JDM-4: %w", err)
		}
	}
	if err := s.jdm.Check(dv); err != nil {
		return nil, fmt.Errorf("core: phase 2 produced invalid JDM: %w", err)
	}
	return s.jdm, nil
}
