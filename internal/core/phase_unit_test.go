package core

import (
	"math"
	"testing"

	"sgr/internal/estimate"
	"sgr/internal/sampling"
)

// fixedEstimates builds an Estimates with exactly the given degree
// distribution and scalars (JDD/clustering empty unless set).
func fixedEstimates(n, avg float64, dd map[int]float64) *estimate.Estimates {
	return &estimate.Estimates{
		N: n, AvgDeg: avg, Collisions: 1, Lag: 1,
		DegreeDist: dd,
		JDD:        map[estimate.DegreePair]float64{},
		Clustering: map[int]float64{},
	}
}

func TestAlgorithm1PicksSmallestErrorOddDegree(t *testing.T) {
	// n-hat(1) = 10, n-hat(3) = 2.999.. so that n*(3)=3 and incrementing 3
	// costs 1/3 relative error while incrementing 1 costs 1/10: odd degree
	// 1 must win.
	est := fixedEstimates(13, 1.46, map[int]float64{1: 10.0 / 13, 3: 3.0 / 13})
	s := initDegreeVector(est, 0)
	if s.dv[1] != 10 || s.dv[3] != 3 {
		t.Fatalf("init: %v", s.dv)
	}
	// Degree sum = 10 + 9 = 19, odd -> adjustment must fire.
	s.adjustDegreeVector()
	if s.dv[1] != 11 || s.dv[3] != 3 {
		t.Fatalf("adjust picked wrong degree: %v", s.dv)
	}
	if s.dv.DegreeSum()%2 != 0 {
		t.Fatal("degree sum still odd")
	}
}

func TestAlgorithm1NoOpOnEvenSum(t *testing.T) {
	est := fixedEstimates(4, 1.0, map[int]float64{2: 1})
	s := initDegreeVector(est, 0)
	before := s.dv.Clone()
	s.adjustDegreeVector()
	for k := range before {
		if s.dv[k] != before[k] {
			t.Fatal("adjustment must not change an even-sum vector")
		}
	}
}

func TestInitDegreeVectorForcesPositiveCounts(t *testing.T) {
	// P(5) tiny but positive: n*(5) must still be at least 1.
	est := fixedEstimates(100, 2, map[int]float64{2: 0.999, 5: 0.001})
	s := initDegreeVector(est, 0)
	if s.dv[5] != 1 {
		t.Fatalf("n*(5) = %d want 1", s.dv[5])
	}
}

func TestInitDegreeVectorKmaxIncludesSubgraph(t *testing.T) {
	est := fixedEstimates(10, 2, map[int]float64{2: 1})
	s := initDegreeVector(est, 7) // subgraph has a degree-7 node
	if s.dv.KMax() != 7 {
		t.Fatalf("kmax = %d want 7", s.dv.KMax())
	}
}

func TestDeltaPlusInfiniteWithoutMass(t *testing.T) {
	est := fixedEstimates(10, 2, map[int]float64{2: 1})
	s := initDegreeVector(est, 5)
	if !math.IsInf(s.deltaPlus(3), 1) {
		t.Fatal("deltaPlus must be +Inf where the estimate has no mass")
	}
	if math.IsInf(s.deltaPlus(2), 1) {
		t.Fatal("deltaPlus must be finite where the estimate has mass")
	}
}

func TestModifyAssignsVisibleDegreesAtLeastSubgraphDegree(t *testing.T) {
	// Construct a crawl by hand: star center queried, 3 visible leaves.
	c := &sampling.Crawl{
		Queried:   []int{0},
		Neighbors: map[int][]int{0: {1, 2, 3}},
		Walk:      []int{0, 1, 0}, // unused here
	}
	sub := sampling.BuildSubgraph(c)
	est := fixedEstimates(8, 1.5, map[int]float64{1: 0.5, 3: 0.25, 2: 0.25})
	s, targetDeg, err := buildTargetDegreeVector(est, sub, rng(101))
	if err != nil {
		t.Fatal(err)
	}
	if targetDeg[0] != 3 {
		t.Fatalf("queried center target %d want 3", targetDeg[0])
	}
	for i := 1; i < 4; i++ {
		if targetDeg[i] < 1 {
			t.Fatalf("visible leaf %d target %d < 1", i, targetDeg[i])
		}
	}
	// DV-3 must hold.
	counts := make([]int, s.dv.KMax()+1)
	for _, d := range targetDeg {
		counts[d]++
	}
	for k, c := range counts {
		if c > s.dv[k] {
			t.Fatalf("DV-3 violated at k=%d: %d > %d", k, c, s.dv[k])
		}
	}
}

func TestAlgorithm3ReachesRowTargets(t *testing.T) {
	// Hand-built scenario: degrees 1..3, JDD mass only on (1,2) — the
	// adjustment must still satisfy every row sum.
	est := fixedEstimates(20, 1.6, map[int]float64{1: 0.5, 2: 0.3, 3: 0.2})
	est.JDD = map[estimate.DegreePair]float64{estimate.Pair(1, 2): 1.0}
	s, _, err := buildTargetDegreeVector(est, nil, rng(102))
	if err != nil {
		t.Fatal(err)
	}
	jdm, err := buildTargetJDM(est, s.dv, nil, nil, rng(103))
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= s.dv.KMax(); k++ {
		if jdm.RowSum(k) != k*s.dv[k] {
			t.Fatalf("row %d: s=%d want %d", k, jdm.RowSum(k), k*s.dv[k])
		}
	}
}

func TestAlgorithm3ParityHandlingForDegreeOne(t *testing.T) {
	// Force an odd |s(1) - s*(1)| situation: single degree 1 with odd
	// target count is impossible after Algorithm 1, so craft degree 1 and
	// 2 with JDD mass only on (2,2), leaving row 1 entirely to the
	// adjustment.
	est := fixedEstimates(9, 1.33, map[int]float64{1: 2.0 / 3, 2: 1.0 / 3})
	est.JDD = map[estimate.DegreePair]float64{estimate.Pair(2, 2): 1.0}
	s, _, err := buildTargetDegreeVector(est, nil, rng(104))
	if err != nil {
		t.Fatal(err)
	}
	jdm, err := buildTargetJDM(est, s.dv, nil, nil, rng(105))
	if err != nil {
		t.Fatal(err)
	}
	if err := jdm.Check(s.dv); err != nil {
		t.Fatal(err)
	}
	// Row 1 edges can only be m(1,1): its row sum must be even and match.
	if jdm.RowSum(1) != s.dv[1] {
		t.Fatalf("row 1 sum %d want %d", jdm.RowSum(1), s.dv[1])
	}
}

func TestInitJDMForcesPositiveCells(t *testing.T) {
	est := fixedEstimates(100, 4, map[int]float64{2: 0.5, 6: 0.5})
	est.JDD = map[estimate.DegreePair]float64{
		estimate.Pair(2, 6): 0.999,
		estimate.Pair(6, 6): 0.001, // tiny but positive -> at least 1 edge
	}
	s := initJDM(est, mustDV(t, est))
	if s.jdm.Get(6, 6) < 1 {
		t.Fatalf("m*(6,6) = %d want >= 1", s.jdm.Get(6, 6))
	}
}

func mustDV(t *testing.T, est *estimate.Estimates) []int {
	t.Helper()
	s := initDegreeVector(est, 0)
	s.adjustDegreeVector()
	return s.dv
}
