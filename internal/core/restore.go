package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"sgr/internal/dkseries"
	"sgr/internal/estimate"
	"sgr/internal/graph"
	"sgr/internal/obs"
	"sgr/internal/sampling"
)

// Options configures a restoration run.
type Options struct {
	// Ctx, when set, is polled cooperatively at pipeline phase boundaries
	// (and, through the sharded engine, at rewiring round boundaries): a
	// cancelled or expired context aborts the run with an error wrapping
	// the cancellation cause. The checks are reads of the context only —
	// they touch no RNG, no map, no float — so a run that completes does
	// so byte-identical to one with no context at all; cancellation can
	// only abort a result, never change one.
	Ctx context.Context
	// RC is the rewiring-attempt coefficient (Sec. V-E; paper default 500).
	// Zero selects dkseries.DefaultRC.
	RC float64
	// SkipRewiring disables phase 4 entirely (for ablation experiments).
	SkipRewiring bool
	// ForbidDegenerate makes phase 4 reject swaps that would create
	// self-loops or parallel edges, steering the output toward a simple
	// graph (extension; the paper's model permits both).
	ForbidDegenerate bool
	// RewireWorkers bounds the propose-phase parallelism of phase 4's
	// sharded rewiring engine (<= 0 selects parallel.DefaultWorkers).
	// The restored graph is byte-identical at any value — the knob buys
	// wall clock only — which is why the restored daemon may exclude it
	// from its job content address.
	RewireWorkers int
	// Trace, when set, receives one span per pipeline phase (estimate,
	// subgraph, phase1_degree_vector, phase2_jdm, phase3_construct,
	// phase4_rewire) plus the rewiring engine's aggregate propose/commit
	// round timers. Observability only: spans read the monotonic clock and
	// nothing else, so the restored graph is byte-identical with and
	// without one — the same wall-clock-only contract as RewireWorkers.
	Trace *obs.Trace
	// Rand is the random source; required.
	Rand *rand.Rand
}

func (o Options) rc() float64 {
	if o.RC <= 0 {
		return dkseries.DefaultRC
	}
	return o.RC
}

// ctxErr is the pipeline's cooperative cancellation poll: nil while the
// run may continue, an error wrapping the cancellation cause once
// Options.Ctx is done. A nil context never aborts.
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return fmt.Errorf("core: restoration aborted: %w", context.Cause(o.Ctx))
	default:
		return nil
	}
}

// PipelineRand returns the canonical RNG for a seeded restoration pipeline:
// the stream cmd/restore has always derived from its -seed flag. Every
// entry point that promises "byte-identical to cmd/restore at the same
// seed" — the restored job daemon above all — must draw its Options.Rand
// from here, so the promise is pinned to one constructor instead of
// duplicated constants.
func PipelineRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xc2b2ae35))
}

// Result is a restored graph plus everything needed to audit the run.
type Result struct {
	// Graph is the generated graph G-tilde.
	Graph *graph.Graph
	// TargetDV and TargetJDM are the phase 1-2 targets; the generated graph
	// realizes both exactly.
	TargetDV  dkseries.DegreeVector
	TargetJDM *dkseries.JDM
	// Estimates are the re-weighted random-walk estimates the run used.
	Estimates *estimate.Estimates
	// Subgraph is the sampled subgraph embedded in Graph (nil for Gjoka
	// et al.'s method). Its relabeled node i corresponds to Graph node i.
	Subgraph *sampling.Subgraph
	// NumAdded is the number of nodes added on top of the subgraph.
	NumAdded int
	// RewireStats reports phase 4 activity.
	RewireStats dkseries.RewireStats
	// TotalTime and RewireTime are the generation timings reported in
	// Tables IV and V.
	TotalTime  time.Duration
	RewireTime time.Duration
}

// Validate re-checks every guarantee the method makes about its output:
// graph integrity, exact realization of the target degree vector and joint
// degree matrix, and (for the proposed method) that the sampled subgraph
// survives verbatim. Useful as a post-condition in user pipelines.
func (res *Result) Validate() error {
	if err := res.Graph.Validate(); err != nil {
		return err
	}
	got, err := dkseries.FromGraph(res.Graph)
	if err != nil {
		return err
	}
	for k := 1; k <= res.TargetDV.KMax(); k++ {
		have := 0
		if k <= got.KMax() {
			have = got[k]
		}
		if have != res.TargetDV[k] {
			return fmt.Errorf("core: degree vector not realized at k=%d: got %d want %d", k, have, res.TargetDV[k])
		}
	}
	if got.KMax() > res.TargetDV.KMax() {
		return fmt.Errorf("core: graph max degree %d exceeds target kmax %d", got.KMax(), res.TargetDV.KMax())
	}
	gj := dkseries.JDMFromGraph(res.Graph)
	//sgr:nondet-ok validation sweep: any mismatched cell aborts identically, only the cell named in the error varies
	for ky, c := range res.TargetJDM.Cells() {
		if gj.Get(ky[0], ky[1]) != c {
			return fmt.Errorf("core: JDM not realized at (%d,%d): got %d want %d", ky[0], ky[1], gj.Get(ky[0], ky[1]), c)
		}
	}
	if gj.TotalEdges() != res.TargetJDM.TotalEdges() {
		return fmt.Errorf("core: edge total %d != target %d", gj.TotalEdges(), res.TargetJDM.TotalEdges())
	}
	if res.Subgraph != nil {
		// O(1) multiplicity probes via the flat indices instead of
		// per-query neighbor-list scans.
		ix := res.Graph.Index()
		subIx := res.Subgraph.Graph.Index()
		for _, e := range res.Subgraph.Graph.Edges() {
			if ix.Multiplicity(e.U, e.V) < subIx.Multiplicity(e.U, e.V) {
				return fmt.Errorf("core: subgraph edge (%d,%d) missing from output", e.U, e.V)
			}
		}
	}
	return nil
}

// Restore runs the proposed method (Sec. IV): from a random-walk crawl it
// builds the sampled subgraph, estimates the five local properties,
// constructs realizable targets consistent with the subgraph, completes the
// subgraph with half-edge wiring, and rewires the added edges toward the
// estimated clustering spectrum.
func Restore(c *sampling.Crawl, opts Options) (*Result, error) {
	return run(c, opts, true)
}

// RestoreGjoka runs the reproducible version of Gjoka et al.'s method
// (Appendix B): identical estimation, but the targets ignore the subgraph
// structure, construction starts from an empty graph, and every edge is a
// rewiring candidate.
func RestoreGjoka(c *sampling.Crawl, opts Options) (*Result, error) {
	return run(c, opts, false)
}

// RestoreWithEstimates runs the proposed method with externally supplied
// estimates instead of computing them from the walk. Passing the original
// graph's exact properties isolates construction error from estimation
// error — the "oracle estimates" ablation.
func RestoreWithEstimates(c *sampling.Crawl, est *estimate.Estimates, opts Options) (*Result, error) {
	return runWith(c, est, opts, true)
}

func run(c *sampling.Crawl, opts Options, useSubgraph bool) (*Result, error) {
	return runWith(c, nil, opts, useSubgraph)
}

func runWith(c *sampling.Crawl, est *estimate.Estimates, opts Options, useSubgraph bool) (*Result, error) {
	if opts.Rand == nil {
		return nil, fmt.Errorf("core: Options.Rand is required")
	}
	start := time.Now() //sgr:nondet-ok timing metadata for Result.TotalTime; never feeds graph bytes or the result key
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	if est == nil {
		endSpan := opts.Trace.Start("estimate")
		w, err := estimate.NewWalk(c)
		if err != nil {
			return nil, err
		}
		est = estimate.All(w)
		endSpan()
	}

	var sub *sampling.Subgraph
	if useSubgraph {
		endSpan := opts.Trace.Start("subgraph")
		sub = sampling.BuildSubgraph(c)
		endSpan()
	}

	// Phase 1: target degree vector.
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	endSpan := opts.Trace.Start("phase1_degree_vector")
	dvs, targetDeg, err := buildTargetDegreeVector(est, sub, opts.Rand)
	if err != nil {
		return nil, err
	}
	endSpan()

	// Phase 2: target joint degree matrix.
	var subGraph *graph.Graph
	if sub != nil {
		subGraph = sub.Graph
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	endSpan = opts.Trace.Start("phase2_jdm")
	jdm, err := buildTargetJDM(est, dvs.dv, subGraph, targetDeg, opts.Rand)
	if err != nil {
		return nil, err
	}
	endSpan()

	// Phase 3: add nodes and edges to the subgraph (Algorithm 5).
	base := graph.New(0)
	var baseTarget []int
	if sub != nil {
		base = sub.Graph
		baseTarget = targetDeg
	}
	if err := opts.ctxErr(); err != nil {
		return nil, err
	}
	endSpan = opts.Trace.Start("phase3_construct")
	built, err := dkseries.Build(base, baseTarget, dvs.dv, jdm, opts.Rand)
	if err != nil {
		return nil, err
	}
	endSpan()

	res := &Result{
		TargetDV:  dvs.dv,
		TargetJDM: jdm,
		Estimates: est,
		Subgraph:  sub,
		NumAdded:  built.Graph.N() - base.N(),
	}

	// Phase 4: rewire toward the estimated clustering (Algorithm 6). The
	// proposed method keeps subgraph edges fixed; Gjoka et al. rewire all.
	if opts.SkipRewiring {
		res.Graph = built.Graph
	} else {
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		rwStart := time.Now() //sgr:nondet-ok timing metadata for Result.RewireTime; never feeds graph bytes or the result key
		endSpan = opts.Trace.Start("phase4_rewire")
		var fixed []graph.Edge
		if sub != nil {
			fixed = sub.Graph.Edges()
		}
		// Two draws from the pipeline stream seed the sharded engine's
		// per-shard sub-streams. The engine's output is a function of the
		// seeds alone — never of RewireWorkers — so the pipeline remains a
		// deterministic function of Options.Rand's stream at any worker
		// count.
		seed1, seed2 := opts.Rand.Uint64(), opts.Rand.Uint64()
		g, stats := dkseries.RewireSharded(built.Graph.N(), fixed, built.Added, dkseries.ShardedRewireOptions{
			TargetClustering: est.Clustering,
			RC:               opts.rc(),
			Seed1:            seed1,
			Seed2:            seed2,
			ForbidDegenerate: opts.ForbidDegenerate,
			Workers:          opts.RewireWorkers,
			Trace:            opts.Trace,
			Ctx:              opts.Ctx,
		})
		endSpan()
		// The engine aborts between rounds when the context fires, handing
		// back a valid but partially rewired graph. That graph must never
		// leave the pipeline: re-check the context and discard it.
		if err := opts.ctxErr(); err != nil {
			return nil, err
		}
		res.Graph = g
		res.RewireStats = stats
		res.RewireTime = time.Since(rwStart) //sgr:nondet-ok timing metadata; never feeds graph bytes or the result key
	}
	res.TotalTime = time.Since(start) //sgr:nondet-ok timing metadata; never feeds graph bytes or the result key
	return res, nil
}
