package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"sgr/internal/dkseries"
	"sgr/internal/estimate"
	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/obs"
	"sgr/internal/sampling"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xfeed)) }

// crawlOn random-walks g until fraction of nodes are queried.
func crawlOn(t *testing.T, g *graph.Graph, fraction float64, seed uint64) *sampling.Crawl {
	t.Helper()
	c, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 0, fraction, rng(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testOriginal(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	return gen.HolmeKim(1000, 4, 0.5, rng(seed))
}

func checkRealizes(t *testing.T, res *Result) {
	t.Helper()
	dv, err := dkseries.FromGraph(res.Graph)
	if err != nil {
		t.Fatalf("restored graph: %v", err)
	}
	for k := 1; k <= res.TargetDV.KMax(); k++ {
		got := 0
		if k <= dv.KMax() {
			got = dv[k]
		}
		if got != res.TargetDV[k] {
			t.Fatalf("degree vector not realized at k=%d: got %d want %d", k, got, res.TargetDV[k])
		}
	}
	gj := dkseries.JDMFromGraph(res.Graph)
	for ky, c := range res.TargetJDM.Cells() {
		if gj.Get(ky[0], ky[1]) != c {
			t.Fatalf("JDM not realized at %v: got %d want %d", ky, gj.Get(ky[0], ky[1]), c)
		}
	}
	if gj.TotalEdges() != res.TargetJDM.TotalEdges() {
		t.Fatalf("edge totals differ: %d vs %d", gj.TotalEdges(), res.TargetJDM.TotalEdges())
	}
}

func TestRestoreRealizesTargetsAndContainsSubgraph(t *testing.T) {
	g := testOriginal(t, 1)
	c := crawlOn(t, g, 0.10, 2)
	res, err := Restore(c, Options{RC: 10, Rand: rng(3)})
	if err != nil {
		t.Fatal(err)
	}
	checkRealizes(t, res)
	if res.Subgraph == nil {
		t.Fatal("proposed method must retain its subgraph")
	}
	// Every subgraph edge must exist in the restored graph (same IDs).
	for _, e := range res.Subgraph.Graph.Edges() {
		if !res.Graph.HasEdge(e.U, e.V) {
			t.Fatalf("subgraph edge (%d,%d) missing from restored graph", e.U, e.V)
		}
	}
	// Size sanity: n-tilde should be within a factor ~2 of the truth for a
	// 10% walk on this graph.
	nt := float64(res.Graph.N())
	if nt < 0.4*float64(g.N()) || nt > 2.5*float64(g.N()) {
		t.Fatalf("restored size %v wildly off from %d", nt, g.N())
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreGjokaRealizesTargets(t *testing.T) {
	g := testOriginal(t, 4)
	c := crawlOn(t, g, 0.10, 5)
	res, err := RestoreGjoka(c, Options{RC: 10, Rand: rng(6)})
	if err != nil {
		t.Fatal(err)
	}
	checkRealizes(t, res)
	if res.Subgraph != nil {
		t.Fatal("Gjoka method must not use the subgraph")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRequiresRand(t *testing.T) {
	g := testOriginal(t, 7)
	c := crawlOn(t, g, 0.05, 8)
	if _, err := Restore(c, Options{}); err == nil {
		t.Fatal("want error without Rand")
	}
}

func TestRestoreRejectsNonWalkCrawl(t *testing.T) {
	g := testOriginal(t, 9)
	bc, err := sampling.BFS(sampling.NewGraphAccess(g), 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bc, Options{Rand: rng(10)}); err == nil {
		t.Fatal("want error for crawl without walk sequence")
	}
}

func TestRestoreSkipRewiring(t *testing.T) {
	g := testOriginal(t, 11)
	c := crawlOn(t, g, 0.08, 12)
	res, err := Restore(c, Options{SkipRewiring: true, Rand: rng(13)})
	if err != nil {
		t.Fatal(err)
	}
	if res.RewireStats.Attempts != 0 || res.RewireTime != 0 {
		t.Fatal("SkipRewiring must skip phase 4")
	}
	checkRealizes(t, res)
}

func TestRestoreRewiringImprovesClustering(t *testing.T) {
	g := gen.HolmeKim(800, 4, 0.8, rng(14))
	c := crawlOn(t, g, 0.10, 15)
	res, err := Restore(c, Options{RC: 25, Rand: rng(16)})
	if err != nil {
		t.Fatal(err)
	}
	if res.RewireStats.FinalL1 >= res.RewireStats.InitialL1 {
		t.Fatalf("rewiring did not improve clustering distance: %v -> %v",
			res.RewireStats.InitialL1, res.RewireStats.FinalL1)
	}
}

func TestRestoreDeterministic(t *testing.T) {
	g := testOriginal(t, 17)
	c := crawlOn(t, g, 0.06, 18)
	a, err := Restore(c, Options{RC: 5, Rand: rng(19)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Restore(c, Options{RC: 5, Rand: rng(19)})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, different edge %d", i)
		}
	}
}

// TestRestoreTraceZeroNondeterminism is the observability acceptance gate
// at the pipeline layer: attaching a Trace changes not one output byte, and
// the captured spans are ordered phase records covering the run.
func TestRestoreTraceZeroNondeterminism(t *testing.T) {
	g := testOriginal(t, 17)
	c := crawlOn(t, g, 0.06, 18)
	plain, err := Restore(c, Options{RC: 5, Rand: rng(19)})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("restore-test")
	traced, err := Restore(c, Options{RC: 5, Rand: rng(19), Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := plain.Graph.Edges(), traced.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("tracing changed the edge count: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("tracing changed edge %d", i)
		}
	}

	spans := tr.Spans()
	byName := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	for _, want := range []string{
		"estimate", "subgraph", "phase1_degree_vector", "phase2_jdm",
		"phase3_construct", "phase4_rewire", "rewire/propose", "rewire/commit",
	} {
		sp, ok := byName[want]
		if !ok {
			t.Fatalf("trace missing span %q (got %d spans)", want, len(spans))
		}
		if sp.StartUS < 0 || sp.DurUS < 0 {
			t.Fatalf("span %q has negative timing: %+v", want, sp)
		}
	}
	// Phase spans appear in pipeline order.
	order := []string{"estimate", "subgraph", "phase1_degree_vector",
		"phase2_jdm", "phase3_construct", "phase4_rewire"}
	for i := 1; i < len(order); i++ {
		if byName[order[i]].StartUS < byName[order[i-1]].StartUS {
			t.Fatalf("span %q starts before %q", order[i], order[i-1])
		}
	}
	// The aggregate rewire timers fold thousands of rounds into two spans;
	// both must have seen every round.
	if byName["rewire/propose"].Count == 0 || byName["rewire/commit"].Count == 0 {
		t.Fatalf("rewire round timers recorded no episodes: propose=%d commit=%d",
			byName["rewire/propose"].Count, byName["rewire/commit"].Count)
	}
}

func TestRestorePreservesQueriedDegreesExactly(t *testing.T) {
	// Lemma 1 + phase 3: queried nodes must end with their true degree.
	g := testOriginal(t, 20)
	c := crawlOn(t, g, 0.08, 21)
	res, err := Restore(c, Options{RC: 5, Rand: rng(22)})
	if err != nil {
		t.Fatal(err)
	}
	sub := res.Subgraph
	for i := 0; i < sub.NumQueried; i++ {
		orig := sub.Nodes[i]
		if res.Graph.Degree(i) != g.Degree(orig) {
			t.Fatalf("queried node %d: restored degree %d != true %d",
				orig, res.Graph.Degree(i), g.Degree(orig))
		}
	}
	// Visible nodes end with degree >= their subgraph degree.
	for i := sub.NumQueried; i < sub.Graph.N(); i++ {
		if res.Graph.Degree(i) < sub.Graph.Degree(i) {
			t.Fatalf("visible node %d lost degree", i)
		}
	}
}

func TestRestoreAcrossSeedsNeverViolatesConditions(t *testing.T) {
	// Property-style sweep: many graph/walk/seed combinations; phases must
	// always produce valid, realizable targets.
	for trial := 0; trial < 8; trial++ {
		seed := uint64(100 + trial)
		g := gen.HolmeKim(300+50*trial, 2+trial%3, 0.3+0.05*float64(trial), rng(seed))
		c := crawlOn(t, g, 0.05+0.02*float64(trial%3), seed+1)
		res, err := Restore(c, Options{RC: 2, Rand: rng(seed + 2)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkRealizes(t, res)
		gj, err := RestoreGjoka(c, Options{RC: 2, Rand: rng(seed + 3)})
		if err != nil {
			t.Fatalf("trial %d gjoka: %v", trial, err)
		}
		checkRealizes(t, gj)
	}
}

func TestTargetsApproximateEstimates(t *testing.T) {
	// Without the subgraph-driven modification steps (Gjoka variant), the
	// adjusted targets must track the raw estimates closely — that is the
	// point of the minimal-error adjustments. The proposed method's targets
	// may legitimately exceed a low n-hat because DV-3 forces the target to
	// cover every subgraph node.
	g := testOriginal(t, 30)
	c := crawlOn(t, g, 0.10, 31)
	res, err := RestoreGjoka(c, Options{SkipRewiring: true, Rand: rng(32)})
	if err != nil {
		t.Fatal(err)
	}
	est := res.Estimates
	nTarget := float64(res.TargetDV.NumNodes())
	if math.Abs(nTarget-est.N)/est.N > 0.3 {
		t.Errorf("target n %v far from estimate %v", nTarget, est.N)
	}
	kTarget := float64(res.TargetDV.DegreeSum()) / nTarget
	if math.Abs(kTarget-est.AvgDeg)/est.AvgDeg > 0.3 {
		t.Errorf("target avg degree %v far from estimate %v", kTarget, est.AvgDeg)
	}
	// The proposed method's target must be at least the subgraph size.
	prop, err := Restore(c, Options{SkipRewiring: true, Rand: rng(33)})
	if err != nil {
		t.Fatal(err)
	}
	if prop.TargetDV.NumNodes() < prop.Subgraph.Graph.N() {
		t.Errorf("proposed target n %d below subgraph size %d",
			prop.TargetDV.NumNodes(), prop.Subgraph.Graph.N())
	}
}

func TestPhase1DirectInvariants(t *testing.T) {
	g := testOriginal(t, 40)
	c := crawlOn(t, g, 0.08, 41)
	w, err := estimate.NewWalk(c)
	if err != nil {
		t.Fatal(err)
	}
	est := estimate.All(w)
	sub := sampling.BuildSubgraph(c)
	s, targetDeg, err := buildTargetDegreeVector(est, sub, rng(42))
	if err != nil {
		t.Fatal(err)
	}
	// Queried nodes keep their true degree.
	for i := 0; i < sub.NumQueried; i++ {
		if targetDeg[i] != sub.Graph.Degree(i) {
			t.Fatalf("queried target degree %d != subgraph degree %d",
				targetDeg[i], sub.Graph.Degree(i))
		}
	}
	// Visible targets >= subgraph degree (Lemma 1).
	for i := sub.NumQueried; i < sub.Graph.N(); i++ {
		if targetDeg[i] < sub.Graph.Degree(i) {
			t.Fatalf("visible target degree %d < subgraph degree %d",
				targetDeg[i], sub.Graph.Degree(i))
		}
	}
	if err := s.dv.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPhase1GjokaNoSubgraph(t *testing.T) {
	g := testOriginal(t, 50)
	c := crawlOn(t, g, 0.08, 51)
	w, _ := estimate.NewWalk(c)
	est := estimate.All(w)
	s, targetDeg, err := buildTargetDegreeVector(est, nil, rng(52))
	if err != nil {
		t.Fatal(err)
	}
	if targetDeg != nil {
		t.Fatal("no subgraph must mean no per-node targets")
	}
	if err := s.dv.Check(); err != nil {
		t.Fatal(err)
	}
	// Positive estimate mass must force at least one node per degree.
	for k, p := range est.DegreeDist {
		if p > 0 && s.dv[k] < 1 {
			t.Fatalf("n*(%d) = 0 despite positive estimate", k)
		}
	}
}

func TestPhase2DirectInvariants(t *testing.T) {
	g := testOriginal(t, 60)
	c := crawlOn(t, g, 0.08, 61)
	w, _ := estimate.NewWalk(c)
	est := estimate.All(w)
	sub := sampling.BuildSubgraph(c)
	s, targetDeg, err := buildTargetDegreeVector(est, sub, rng(62))
	if err != nil {
		t.Fatal(err)
	}
	jdm, err := buildTargetJDM(est, s.dv, sub.Graph, targetDeg, rng(63))
	if err != nil {
		t.Fatal(err)
	}
	if err := jdm.Check(s.dv); err != nil {
		t.Fatalf("JDM-3 violated: %v", err)
	}
	mPrime := dkseries.JDMFromBase(sub.Graph, targetDeg, s.dv.KMax())
	if err := jdm.CheckAgainstBase(mPrime); err != nil {
		t.Fatalf("JDM-4 violated: %v", err)
	}
}

func TestNearInt(t *testing.T) {
	cases := map[float64]int{0.4: 0, 0.5: 1, 1.49: 1, 1.5: 2, 2.7: 3}
	for in, want := range cases {
		if got := nearInt(in); got != want {
			t.Errorf("nearInt(%v) = %d want %d", in, got, want)
		}
	}
}
