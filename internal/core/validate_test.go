package core

import "testing"

func TestResultValidatePasses(t *testing.T) {
	g := testOriginal(t, 120)
	c := crawlOn(t, g, 0.08, 121)
	res, err := Restore(c, Options{RC: 5, Rand: rng(122)})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("Validate on a fresh restoration: %v", err)
	}
	gj, err := RestoreGjoka(c, Options{RC: 5, Rand: rng(123)})
	if err != nil {
		t.Fatal(err)
	}
	if err := gj.Validate(); err != nil {
		t.Fatalf("Validate on Gjoka restoration: %v", err)
	}
}

func TestResultValidateDetectsTampering(t *testing.T) {
	g := testOriginal(t, 130)
	c := crawlOn(t, g, 0.08, 131)
	res, err := Restore(c, Options{SkipRewiring: true, Rand: rng(132)})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper: add an edge, which breaks the degree vector and JDM.
	res.Graph.AddEdge(0, 1)
	if err := res.Validate(); err == nil {
		t.Fatal("Validate must detect a tampered graph")
	}
}
