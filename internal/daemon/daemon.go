// Package daemon holds the plumbing shared by this repository's network
// daemons (graphd, restored): load-balancer endpoints (/v1/healthz and a
// plain-text /v1/metrics), the atomic address-file handshake that lets
// scripts bind random ports race-free, and graceful signal-driven shutdown.
// Keeping it in one place guarantees the daemons stay operationally
// interchangeable — one probe configuration, one metrics scrape format,
// one slowloris posture.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sgr/internal/obs"
)

// MetricsContentType is the Prometheus text exposition content type
// /v1/metrics answers with (format version 0.0.4 — what every Prometheus
// scraper negotiates for the text format).
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves an obs.Registry in the Prometheus text exposition
// format: # HELP/# TYPE lines, counters and gauges as "name value" lines
// (the subset the shell-script scrapes have always parsed), histograms as
// cumulative le-labeled buckets with _sum/_count plus derived
// _p50/_p99/_p999 gauges. Output is byte-stable between scrapes with no
// metric activity, in sorted metric-name order.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", MetricsContentType)
		reg.WritePrometheus(w)
	})
}

// HealthzHandler serves a liveness probe: 200 with {"status":"ok"} plus the
// daemon's details (node counts, queue depths — whatever the caller
// supplies). Details may be nil.
//
// The body is built in a map, yet its JSON key order is stable across
// calls and processes: encoding/json marshals map keys in sorted order,
// so probe scripts may diff or hash the body byte-for-byte. (The range
// over details below is order-insensitive — disjoint key writes — and
// the encoder re-sorts regardless.)
func HealthzHandler(details func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{"status": "ok"}
		if details != nil {
			for k, v := range details() {
				body[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})
}

// WriteAddrFile publishes a bound listen address for script consumers.
// Write-then-rename, so a watcher polling for the file never reads a
// partial address.
func WriteAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Serve timeouts applied when the corresponding ServeConfig field is zero.
const (
	// DefaultDrainTimeout bounds the graceful shutdown: in-flight requests
	// get this long to finish after SIGINT/SIGTERM before the server is
	// torn down under them.
	DefaultDrainTimeout = 5 * time.Second
	// DefaultReadHeaderTimeout caps how long a connection may dribble its
	// request header — the classic slowloris hold. Headers are tiny;
	// anything slower than this is an attack or a dead peer.
	DefaultReadHeaderTimeout = 10 * time.Second
	// DefaultReadTimeout caps the whole request read including the body.
	// It is sized for the largest legitimate upload (a maxSpecBytes crawl
	// on a slow link), not for interactive latency.
	DefaultReadTimeout = 5 * time.Minute
	// DefaultIdleTimeout reclaims keep-alive connections that have gone
	// quiet between requests.
	DefaultIdleTimeout = 2 * time.Minute
)

// ServeConfig tunes Serve. The zero value keeps the historical drain
// window (5s) and adds the default HTTP timeouts — previously the
// daemons ran with no read/idle timeouts at all, leaving every open
// connection free to hold a goroutine forever.
type ServeConfig struct {
	// Logf reports lifecycle events (log.Printf-shaped; nil is silent).
	Logf func(format string, args ...any)
	// DrainTimeout bounds the graceful shutdown after a signal (default
	// DefaultDrainTimeout). Operators sizing it should cover one worst-case
	// in-flight request — typically a restoration download, not a pipeline
	// run (jobs are asynchronous and survive a drain via the job WAL).
	DrainTimeout time.Duration
	// ReadHeaderTimeout, ReadTimeout and IdleTimeout are installed on the
	// http.Server verbatim (defaults above when zero; negative disables
	// the corresponding timeout).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
}

func (cfg ServeConfig) withDefaults() ServeConfig {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.ReadHeaderTimeout == 0 {
		cfg.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	return cfg
}

// newHTTPServer builds the http.Server Serve runs — extracted so tests can
// assert the timeout posture without binding sockets or raising signals.
func newHTTPServer(handler http.Handler, cfg ServeConfig) *http.Server {
	clamp := func(d time.Duration) time.Duration {
		if d < 0 {
			return 0 // negative config = explicitly disabled
		}
		return d
	}
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: clamp(cfg.ReadHeaderTimeout),
		ReadTimeout:       clamp(cfg.ReadTimeout),
		IdleTimeout:       clamp(cfg.IdleTimeout),
	}
}

// Serve runs handler on ln until SIGINT/SIGTERM arrives or the server
// fails, then drains in-flight requests within cfg.DrainTimeout. The
// returned error is non-nil only for a server failure, not a clean signal
// exit.
func Serve(ln net.Listener, handler http.Handler, cfg ServeConfig) error {
	cfg = cfg.withDefaults()
	hs := newHTTPServer(handler, cfg)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		return fmt.Errorf("daemon: serve: %w", err)
	case sig := <-sigc:
		cfg.Logf("caught %v, draining for up to %v", sig, cfg.DrainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		cfg.Logf("shutdown: %v", err)
	}
	return nil
}
