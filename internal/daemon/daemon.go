// Package daemon holds the plumbing shared by this repository's network
// daemons (graphd, restored): load-balancer endpoints (/v1/healthz and a
// plain-text /v1/metrics), the atomic address-file handshake that lets
// scripts bind random ports race-free, and graceful signal-driven shutdown.
// Keeping it in one place guarantees the daemons stay operationally
// interchangeable — one probe configuration, one metrics scrape format.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sgr/internal/obs"
)

// MetricsContentType is the Prometheus text exposition content type
// /v1/metrics answers with (format version 0.0.4 — what every Prometheus
// scraper negotiates for the text format).
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves an obs.Registry in the Prometheus text exposition
// format: # HELP/# TYPE lines, counters and gauges as "name value" lines
// (the subset the shell-script scrapes have always parsed), histograms as
// cumulative le-labeled buckets with _sum/_count plus derived
// _p50/_p99/_p999 gauges. Output is byte-stable between scrapes with no
// metric activity, in sorted metric-name order.
func MetricsHandler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", MetricsContentType)
		reg.WritePrometheus(w)
	})
}

// HealthzHandler serves a liveness probe: 200 with {"status":"ok"} plus the
// daemon's details (node counts, queue depths — whatever the caller
// supplies). Details may be nil.
//
// The body is built in a map, yet its JSON key order is stable across
// calls and processes: encoding/json marshals map keys in sorted order,
// so probe scripts may diff or hash the body byte-for-byte. (The range
// over details below is order-insensitive — disjoint key writes — and
// the encoder re-sorts regardless.)
func HealthzHandler(details func() map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := map[string]any{"status": "ok"}
		if details != nil {
			for k, v := range details() {
				body[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})
}

// WriteAddrFile publishes a bound listen address for script consumers.
// Write-then-rename, so a watcher polling for the file never reads a
// partial address.
func WriteAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Serve runs handler on ln until SIGINT/SIGTERM arrives or the server
// fails, then drains in-flight requests with a bounded graceful shutdown.
// logf reports lifecycle events (log.Printf-shaped); the returned error is
// non-nil only for a server failure, not a clean signal exit.
func Serve(ln net.Listener, handler http.Handler, logf func(format string, args ...any)) error {
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		return fmt.Errorf("daemon: serve: %w", err)
	case sig := <-sigc:
		logf("caught %v, shutting down", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logf("shutdown: %v", err)
	}
	return nil
}
