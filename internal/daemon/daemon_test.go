package daemon

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sgr/internal/obs"
)

func TestMetricsHandlerFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("svc_queries_served", "queries answered").Add(42)
	reg.Counter("svc_rate_limited", "429s issued")
	reg.Gauge("svc_active_clients", "distinct clients").Set(-1) // gauges may be negative
	h := MetricsHandler(reg)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/metrics", nil))
	// The exact Prometheus text-format content type: scrapers negotiate on
	// the version parameter.
	if ct := rr.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q, want the Prometheus text exposition type", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE svc_queries_served counter\n",
		"svc_queries_served 42\n",
		"svc_rate_limited 0\n",
		"svc_active_clients -1\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsHandlerByteStable pins the scrape-diff contract end to end
// through the handler, mirroring TestHealthzKeyOrderStable: 32 scrapes of
// an idle registry are byte-identical.
func TestMetricsHandlerByteStable(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("svc_served", "served").Add(7)
	reg.Histogram("svc_req_usec", "request latency").Observe(120)
	h := MetricsHandler(reg)
	first := ""
	for i := 0; i < 32; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/metrics", nil))
		if i == 0 {
			first = rr.Body.String()
			continue
		}
		if got := rr.Body.String(); got != first {
			t.Fatalf("scrape %d differs:\n%s\nvs first:\n%s", i, got, first)
		}
	}
	if !strings.Contains(first, `svc_req_usec_bucket{le="+Inf"} 1`) {
		t.Fatalf("histogram buckets missing from scrape:\n%s", first)
	}
}

func TestHealthzHandler(t *testing.T) {
	h := HealthzHandler(func() map[string]any { return map[string]any{"nodes": 7} })
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["nodes"] != float64(7) {
		t.Fatalf("healthz body = %v", body)
	}

	// nil details is allowed.
	rr = httptest.NewRecorder()
	HealthzHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"status":"ok"`) {
		t.Fatalf("nil-details healthz = %d %q", rr.Code, rr.Body.String())
	}
}

// TestHealthzKeyOrderStable pins the documented contract that the healthz
// body is byte-stable: encoding/json sorts map keys, so neither Go's
// randomized map iteration nor the detail map's insertion order can
// reorder the JSON. Probe scripts are allowed to hash the body.
func TestHealthzKeyOrderStable(t *testing.T) {
	h := HealthzHandler(func() map[string]any {
		return map[string]any{"zeta": 1, "alpha": 2, "mid": 3}
	})
	want := "{\"alpha\":2,\"mid\":3,\"status\":\"ok\",\"zeta\":1}\n"
	for i := 0; i < 32; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/healthz", nil))
		if got := rr.Body.String(); got != want {
			t.Fatalf("call %d: body = %q, want %q", i, got, want)
		}
	}
}

func TestWriteAddrFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr")
	if err := WriteAddrFile(path, "127.0.0.1:12345"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "127.0.0.1:12345\n" {
		t.Fatalf("addr file contents = %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Re-publishing (daemon restart on the same addr file) must replace.
	if err := WriteAddrFile(path, "127.0.0.1:54321"); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "127.0.0.1:54321\n" {
		t.Fatalf("rewritten addr file contents = %q", data)
	}
}

// TestWriteAddrFileAtomic exercises the write-then-rename sequencing: a
// reader that observes the destination path must see a complete address —
// the temp file carries the partial state, and a failed write must not
// disturb an already-published address.
func TestWriteAddrFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addr")
	if err := WriteAddrFile(path, "127.0.0.1:1111"); err != nil {
		t.Fatal(err)
	}

	// Pre-create a stale temp file: the next publish must clobber it and
	// still land atomically.
	if err := os.WriteFile(path+".tmp", []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteAddrFile(path, "127.0.0.1:2222"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "127.0.0.1:2222\n" {
		t.Fatalf("addr file contents = %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteAddrFileUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "addr")
	if err := WriteAddrFile(path, "127.0.0.1:3333"); err == nil {
		t.Fatal("WriteAddrFile into read-only dir succeeded, want error")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Fatalf("addr file unexpectedly exists after failed write: %v", statErr)
	}
}

// TestServerTimeoutPosture pins the slow-client defenses both daemons
// inherit: defaults applied, explicit values honored, negatives meaning
// "explicitly disabled", and the drain default.
func TestServerTimeoutPosture(t *testing.T) {
	defaults := ServeConfig{}.withDefaults()
	hs := newHTTPServer(nil, defaults)
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", hs.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if hs.ReadTimeout != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", hs.ReadTimeout, DefaultReadTimeout)
	}
	if hs.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", hs.IdleTimeout, DefaultIdleTimeout)
	}
	if defaults.DrainTimeout != DefaultDrainTimeout {
		t.Errorf("DrainTimeout = %v, want %v", defaults.DrainTimeout, DefaultDrainTimeout)
	}

	custom := ServeConfig{
		DrainTimeout:      time.Minute,
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       -1, // disabled: streaming endpoints may outlive any bound
		IdleTimeout:       3 * time.Second,
	}.withDefaults()
	hs = newHTTPServer(nil, custom)
	if hs.ReadHeaderTimeout != 2*time.Second || hs.ReadTimeout != 0 || hs.IdleTimeout != 3*time.Second {
		t.Errorf("custom posture not honored: header=%v read=%v idle=%v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout)
	}
	if custom.DrainTimeout != time.Minute {
		t.Errorf("DrainTimeout = %v, want 1m", custom.DrainTimeout)
	}
}
