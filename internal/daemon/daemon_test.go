package daemon

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMetricsHandlerFormat(t *testing.T) {
	h := MetricsHandler(func() []Metric {
		return []Metric{
			{Name: "svc_queries_served", Value: 42},
			{Name: "svc_rate_limited", Value: 0},
			{Name: "svc_active_clients", Value: -1}, // gauges may be negative
		}
	})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	want := "svc_queries_served 42\nsvc_rate_limited 0\nsvc_active_clients -1\n"
	if got := rr.Body.String(); got != want {
		t.Fatalf("metrics body = %q, want %q", got, want)
	}
}

func TestHealthzHandler(t *testing.T) {
	h := HealthzHandler(func() map[string]any { return map[string]any{"nodes": 7} })
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["nodes"] != float64(7) {
		t.Fatalf("healthz body = %v", body)
	}

	// nil details is allowed.
	rr = httptest.NewRecorder()
	HealthzHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"status":"ok"`) {
		t.Fatalf("nil-details healthz = %d %q", rr.Code, rr.Body.String())
	}
}

func TestWriteAddrFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr")
	if err := WriteAddrFile(path, "127.0.0.1:12345"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "127.0.0.1:12345\n" {
		t.Fatalf("addr file contents = %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Re-publishing (daemon restart on the same addr file) must replace.
	if err := WriteAddrFile(path, "127.0.0.1:54321"); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "127.0.0.1:54321\n" {
		t.Fatalf("rewritten addr file contents = %q", data)
	}
}
