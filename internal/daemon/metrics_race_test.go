package daemon

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"

	"sgr/internal/obs"
)

// TestMetricsHandlerConcurrentScrapes hammers MetricsHandler while every
// registered instrument is being written concurrently, and requires each
// scrape to be a complete, well-formed exposition — parsed with
// obs.ParseExposition, which validates histogram bucket monotonicity and
// count agreement, so a torn scrape (half-updated buckets violating
// cumulative order, _count disagreeing with +Inf) fails loudly. Run under
// -race this is also the data-race gate for the whole registry→handler
// path.
func TestMetricsHandlerConcurrentScrapes(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("cc_requests_total", "requests")
	g := reg.Gauge("cc_depth", "depth")
	h := reg.Histogram("cc_latency_usec", "latency")
	reg.GaugeFunc("cc_workers", "workers", func() int64 { return 3 })
	handler := MetricsHandler(reg)

	const (
		writers           = 4
		scrapers          = 4
		writesPerWriter   = 5000
		scrapesPerScraper = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPerWriter; i++ {
				c.Add(1)
				g.Set(int64(i - w))
				h.Observe(int64(i%7000 + 1))
			}
		}(w)
	}
	errs := make(chan error, scrapers*scrapesPerScraper)
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scrapesPerScraper; i++ {
				rr := httptest.NewRecorder()
				handler.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/metrics", nil))
				scrape, err := obs.ParseExposition(bytes.NewReader(rr.Body.Bytes()))
				if err != nil {
					errs <- err
					return
				}
				if _, ok := scrape.Histogram("cc_latency_usec"); !ok {
					errs <- errMissing("cc_latency_usec")
					return
				}
				if _, ok := scrape.Value("cc_requests_total"); !ok {
					errs <- errMissing("cc_requests_total")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("mid-write scrape not well-formed: %v", err)
	}

	// After the dust settles, the final scrape reports the final totals.
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/metrics", nil))
	scrape, err := obs.ParseExposition(bytes.NewReader(rr.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := scrape.Value("cc_requests_total"); v != writers*writesPerWriter {
		t.Fatalf("final counter = %v, want %d", v, writers*writesPerWriter)
	}
	f, ok := scrape.Histogram("cc_latency_usec")
	if !ok {
		t.Fatal("final scrape lost the histogram")
	}
	if int64(f.Count) != int64(writers*writesPerWriter) {
		t.Fatalf("final histogram count = %v, want %d", f.Count, writers*writesPerWriter)
	}
}

type errMissing string

func (e errMissing) Error() string { return "scrape missing " + string(e) }
