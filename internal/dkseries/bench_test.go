package dkseries

import (
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func benchSource(b *testing.B, n int) *graph.Graph {
	b.Helper()
	return gen.HolmeKim(n, 4, 0.5, rng(1))
}

func BenchmarkBuild2K(b *testing.B) {
	src := benchSource(b, 3000)
	dv, err := FromGraph(src)
	if err != nil {
		b.Fatal(err)
	}
	jdm := JDMFromGraph(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(nil, nil, dv, jdm, rng(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewire drives the full Algorithm-6 loop on an identical
// workload through both engines: the flat adjset implementation behind
// Rewire and the frozen map-based reference (rewire_mapref_test.go).
// `make bench-json` records both in BENCH_rewire.json; the adjset variant
// must stay at least 2x lower in allocs/op with wall time no worse than
// the recorded mapref baseline.
func BenchmarkRewire(b *testing.B) {
	src := benchSource(b, 2000)
	dv, err := FromGraph(src)
	if err != nil {
		b.Fatal(err)
	}
	jdm := JDMFromGraph(src)
	res, err := Build(nil, nil, dv, jdm, rng(2))
	if err != nil {
		b.Fatal(err)
	}
	target := DegreeClustering(src)
	run := func(b *testing.B, engine func(int, []graph.Edge, []graph.Edge, RewireOptions) (*graph.Graph, RewireStats)) {
		b.ReportAllocs()
		var accepted int
		for i := 0; i < b.N; i++ {
			cands := append([]graph.Edge(nil), res.Added...)
			_, st := engine(src.N(), nil, cands, RewireOptions{
				TargetClustering: target,
				RC:               5,
				Rand:             rng(uint64(i)),
			})
			accepted = st.Accepted
		}
		b.ReportMetric(float64(accepted), "accepted/op")
	}
	b.Run("adjset", func(b *testing.B) { run(b, Rewire) })
	b.Run("mapref", func(b *testing.B) { run(b, rewireMapRef) })
	// The sharded engine on the same workload. sharded1 vs sharded8
	// isolates parallel scaling; sharded1 vs adjset isolates the
	// algorithmic win (rejections never mutate, so they never revert).
	runSharded := func(b *testing.B, workers int) {
		b.ReportAllocs()
		var accepted int
		for i := 0; i < b.N; i++ {
			cands := append([]graph.Edge(nil), res.Added...)
			_, st := RewireSharded(src.N(), nil, cands, ShardedRewireOptions{
				TargetClustering: target,
				RC:               5,
				Seed1:            uint64(i),
				Seed2:            uint64(i) ^ 0x5eed,
				Workers:          workers,
			})
			accepted = st.Accepted
		}
		b.ReportMetric(float64(accepted), "accepted/op")
	}
	b.Run("sharded1", func(b *testing.B) { runSharded(b, 1) })
	b.Run("sharded8", func(b *testing.B) { runSharded(b, 8) })
}

func BenchmarkRewireAttempts(b *testing.B) {
	src := benchSource(b, 2000)
	dv, _ := FromGraph(src)
	jdm := JDMFromGraph(src)
	res, err := Build(nil, nil, dv, jdm, rng(2))
	if err != nil {
		b.Fatal(err)
	}
	target := DegreeClustering(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := append([]graph.Edge(nil), res.Added...)
		// RC=1 -> one attempt per candidate edge; ns/op / len(cands) is
		// the per-attempt cost.
		Rewire(src.N(), nil, cands, RewireOptions{
			TargetClustering: target,
			RC:               1,
			Rand:             rng(uint64(i)),
		})
	}
	b.ReportMetric(float64(len(res.Added)), "attempts/op")
}

func BenchmarkDegreeClustering(b *testing.B) {
	src := benchSource(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DegreeClustering(src)
	}
}

func BenchmarkDK25(b *testing.B) {
	src := benchSource(b, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DK25(src, 5, rng(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
