package dkseries

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"sgr/internal/graph"
)

// BuildResult is the outcome of Build: the constructed graph, the target
// degree of every node, and the edges added on top of the base (the rewiring
// candidate set of the proposed method).
type BuildResult struct {
	Graph     *graph.Graph
	TargetDeg []int
	Added     []graph.Edge
	NumBase   int // nodes [0, NumBase) come from the base subgraph
}

// Build implements Algorithm 5 generalized to an arbitrary base: it
// constructs a graph that contains base as a subgraph and exactly realizes
// the target degree vector dv and target joint degree matrix jdm. Passing a
// nil or empty base yields the classic 2K construction from an empty graph
// (used by Gjoka et al.'s method, Appendix B).
//
// baseTargetDeg assigns each base node its target degree (>= its degree in
// base). Build validates all realizability conditions and returns an error
// naming the violated one, so callers' target-construction bugs surface
// immediately rather than as panics mid-wiring.
func Build(base *graph.Graph, baseTargetDeg []int, dv DegreeVector, jdm *JDM, r *rand.Rand) (*BuildResult, error) {
	if base == nil {
		base = graph.New(0)
	}
	if base.N() != len(baseTargetDeg) {
		return nil, fmt.Errorf("dkseries: base has %d nodes but %d target degrees", base.N(), len(baseTargetDeg))
	}
	kmax := dv.KMax()
	for i, d := range baseTargetDeg {
		if d < base.Degree(i) {
			return nil, fmt.Errorf("dkseries: node %d target degree %d < base degree %d", i, d, base.Degree(i))
		}
		if d > kmax {
			return nil, fmt.Errorf("dkseries: node %d target degree %d > kmax %d", i, d, kmax)
		}
	}
	if err := dv.Check(); err != nil {
		return nil, err
	}
	baseCounts := BaseDegreeCounts(baseTargetDeg, kmax)
	if err := dv.CheckAgainstBase(baseCounts); err != nil {
		return nil, err
	}
	if err := jdm.Check(dv); err != nil {
		return nil, err
	}
	baseJDM := JDMFromBase(base, baseTargetDeg, kmax)
	if err := jdm.CheckAgainstBase(baseJDM); err != nil {
		return nil, err
	}

	res := &BuildResult{Graph: base.Clone(), NumBase: base.N()}
	nTotal := dv.NumNodes()
	res.Graph.AddNodes(nTotal - base.N())

	// Assign target degrees: base nodes keep theirs; the remaining degree
	// slots are shuffled onto the added nodes (Algorithm 5 lines 3-8).
	res.TargetDeg = make([]int, nTotal)
	copy(res.TargetDeg, baseTargetDeg)
	seq := make([]int, 0, nTotal-base.N())
	for k := 1; k <= kmax; k++ {
		for i := 0; i < dv[k]-baseCounts[k]; i++ {
			seq = append(seq, k)
		}
	}
	if len(seq) != nTotal-base.N() {
		return nil, fmt.Errorf("dkseries: degree sequence length %d != added nodes %d", len(seq), nTotal-base.N())
	}
	r.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	for i, k := range seq {
		res.TargetDeg[base.N()+i] = k
	}

	// Free half-edges per degree class (lines 9-12): base nodes contribute
	// target - current, added nodes contribute their whole target degree.
	halves := make([][]int, kmax+1)
	for u := 0; u < nTotal; u++ {
		free := res.TargetDeg[u]
		if u < base.N() {
			free -= base.Degree(u)
		}
		k := res.TargetDeg[u]
		for i := 0; i < free; i++ {
			halves[k] = append(halves[k], u)
		}
	}

	// Wire m(k,k') - m'(k,k') random half pairs per degree pair
	// (lines 13-16).
	pop := func(k int) (int, error) {
		h := halves[k]
		if len(h) == 0 {
			return 0, fmt.Errorf("dkseries: class %d ran out of half-edges", k)
		}
		i := r.IntN(len(h))
		u := h[i]
		h[i] = h[len(h)-1]
		halves[k] = h[:len(h)-1]
		return u, nil
	}
	keys := make([][2]int, 0, jdm.NumCells())
	jdm.IterCells(func(k, kp, _ int) bool {
		keys = append(keys, [2]int{k, kp})
		return true
	})
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, ky := range keys {
		k, kp := ky[0], ky[1]
		need := jdm.Get(k, kp) - baseJDM.Get(k, kp)
		for i := 0; i < need; i++ {
			u, err := pop(k)
			if err != nil {
				return nil, err
			}
			v, err := pop(kp)
			if err != nil {
				return nil, err
			}
			res.Graph.AddEdge(u, v)
			res.Added = append(res.Added, graph.Edge{U: u, V: v})
		}
	}
	for k, h := range halves {
		if len(h) != 0 {
			return nil, fmt.Errorf("dkseries: %d unused half-edges in class %d", len(h), k)
		}
	}
	return res, nil
}
