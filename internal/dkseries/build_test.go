package dkseries

import (
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// verifyRealization checks that g exactly realizes dv and jdm.
func verifyRealization(t *testing.T, g *graph.Graph, dv DegreeVector, jdm *JDM) {
	t.Helper()
	got, err := FromGraph(g)
	if err != nil {
		t.Fatalf("realized graph: %v", err)
	}
	for k := 1; k <= max(dv.KMax(), got.KMax()); k++ {
		want, have := 0, 0
		if k <= dv.KMax() {
			want = dv[k]
		}
		if k <= got.KMax() {
			have = got[k]
		}
		if want != have {
			t.Fatalf("degree vector mismatch at k=%d: got %d want %d", k, have, want)
		}
	}
	gj := JDMFromGraph(g)
	for ky, c := range jdm.Cells() {
		if gj.Get(ky[0], ky[1]) != c {
			t.Fatalf("JDM mismatch at %v: got %d want %d", ky, gj.Get(ky[0], ky[1]), c)
		}
	}
	for ky, c := range gj.Cells() {
		if jdm.Get(ky[0], ky[1]) != c {
			t.Fatalf("extra JDM mass at %v: got %d want %d", ky, c, jdm.Get(ky[0], ky[1]))
		}
	}
}

func TestBuildFromEmptyRealizesTargets(t *testing.T) {
	src := gen.HolmeKim(400, 3, 0.5, rng(2))
	dv, err := FromGraph(src)
	if err != nil {
		t.Fatal(err)
	}
	jdm := JDMFromGraph(src)
	res, err := Build(graph.New(0), nil, dv, jdm, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBase != 0 || res.Graph.N() != src.N() || res.Graph.M() != src.M() {
		t.Fatalf("size mismatch: n=%d m=%d", res.Graph.N(), res.Graph.M())
	}
	if len(res.Added) != src.M() {
		t.Fatalf("added edges %d want %d", len(res.Added), src.M())
	}
	verifyRealization(t, res.Graph, dv, jdm)
}

func TestBuildFromBaseContainsBase(t *testing.T) {
	src := gen.HolmeKim(300, 3, 0.5, rng(4))
	// Base: induced subgraph on the first 60 nodes; target degrees are
	// their full degrees in src.
	nodes := make([]int, 60)
	for i := range nodes {
		nodes[i] = i
	}
	base, _ := src.InducedSubgraph(nodes)
	baseTarget := make([]int, 60)
	for i := range baseTarget {
		baseTarget[i] = src.Degree(i)
	}
	dv, err := FromGraph(src)
	if err != nil {
		t.Fatal(err)
	}
	jdm := JDMFromGraph(src)
	res, err := Build(base, baseTarget, dv, jdm, rng(5))
	if err != nil {
		t.Fatal(err)
	}
	verifyRealization(t, res.Graph, dv, jdm)
	// Every base edge must survive in the result.
	for _, e := range base.Edges() {
		if res.Graph.Multiplicity(e.U, e.V) < base.Multiplicity(e.U, e.V) {
			t.Fatalf("base edge (%d,%d) lost", e.U, e.V)
		}
	}
	// Node degrees must equal target degrees.
	for u := 0; u < res.Graph.N(); u++ {
		if res.Graph.Degree(u) != res.TargetDeg[u] {
			t.Fatalf("node %d degree %d != target %d", u, res.Graph.Degree(u), res.TargetDeg[u])
		}
	}
	if res.Graph.M()-base.M() != len(res.Added) {
		t.Fatalf("added edge bookkeeping: %d vs %d", res.Graph.M()-base.M(), len(res.Added))
	}
}

func TestBuildValidatesInputs(t *testing.T) {
	dv := NewDegreeVector(2)
	dv[1] = 2
	dv[2] = 1
	jdm := NewJDM(2)
	jdm.Add(1, 2, 2)

	// Mismatched base target length.
	if _, err := Build(graph.New(1), nil, dv, jdm, rng(6)); err == nil {
		t.Error("want error for target-degree length mismatch")
	}
	// Target degree below base degree.
	base := graph.New(2)
	base.AddEdge(0, 1)
	if _, err := Build(base, []int{0, 1}, dv, jdm, rng(6)); err == nil {
		t.Error("want error for target < base degree")
	}
	// Odd degree sum.
	bad := NewDegreeVector(2)
	bad[1] = 1
	bad[2] = 1
	if _, err := Build(graph.New(0), nil, bad, NewJDM(2), rng(6)); err == nil {
		t.Error("want DV-2 error")
	}
	// JDM-3 violation.
	badJ := NewJDM(2)
	badJ.Add(1, 1, 1)
	if _, err := Build(graph.New(0), nil, dv, badJ, rng(6)); err == nil {
		t.Error("want JDM-3 error")
	}
	// DV-3 violation: base has more degree-2 nodes than the target allows.
	p := graph.New(3)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	p.AddEdge(2, 0)
	if _, err := Build(p, []int{2, 2, 2}, dv, jdm, rng(6)); err == nil {
		t.Error("want DV-3 error")
	}
}

func TestBuildDeterministicGivenSeed(t *testing.T) {
	src := gen.HolmeKim(150, 2, 0.4, rng(7))
	dv, _ := FromGraph(src)
	jdm := JDMFromGraph(src)
	a, err := Build(graph.New(0), nil, dv, jdm, rng(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(graph.New(0), nil, dv, jdm, rng(9))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed produced different graphs at edge %d", i)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
