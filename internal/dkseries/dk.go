package dkseries

import (
	"math/rand/v2"

	"sgr/internal/graph"
)

// DK0 generates a 0K-graph of g: a random multigraph preserving only the
// number of nodes and edges (hence the average degree).
func DK0(g *graph.Graph, r *rand.Rand) *graph.Graph {
	out := graph.New(g.N())
	for i := 0; i < g.M(); i++ {
		out.AddEdge(r.IntN(g.N()), r.IntN(g.N()))
	}
	return out
}

// DK1 generates a 1K-graph of g: a configuration-model multigraph with
// exactly g's degree sequence.
func DK1(g *graph.Graph, r *rand.Rand) *graph.Graph {
	stubs := make([]int, 0, 2*g.M())
	for u := 0; u < g.N(); u++ {
		for i := 0; i < g.Degree(u); i++ {
			stubs = append(stubs, u)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	out := graph.New(g.N())
	for i := 0; i+1 < len(stubs); i += 2 {
		out.AddEdge(stubs[i], stubs[i+1])
	}
	return out
}

// DK2 generates a 2K-graph of g: a random graph exactly preserving g's
// degree vector and joint degree matrix, built from an empty base. Isolated
// nodes in g are not supported (the paper's graphs are connected).
func DK2(g *graph.Graph, r *rand.Rand) (*graph.Graph, error) {
	dv, err := FromGraph(g)
	if err != nil {
		return nil, err
	}
	jdm := JDMFromGraph(g)
	res, err := Build(graph.New(0), nil, dv, jdm, r)
	if err != nil {
		return nil, err
	}
	return res.Graph, nil
}

// DK25 generates a 2.5K-graph of g: a 2K-graph rewired toward g's true
// degree-dependent clustering coefficient with attempt coefficient rc.
func DK25(g *graph.Graph, rc float64, r *rand.Rand) (*graph.Graph, RewireStats, error) {
	dv, err := FromGraph(g)
	if err != nil {
		return nil, RewireStats{}, err
	}
	jdm := JDMFromGraph(g)
	res, err := Build(graph.New(0), nil, dv, jdm, r)
	if err != nil {
		return nil, RewireStats{}, err
	}
	target := DegreeClustering(g)
	out, stats := Rewire(g.N(), nil, res.Added, RewireOptions{
		TargetClustering: target,
		RC:               rc,
		Rand:             r,
	})
	return out, stats, nil
}

// DegreeClustering computes the exact degree-dependent clustering
// coefficient c(k) of g (Sec. III-C): the mean of 2 t_i / (k (k-1)) over
// nodes of degree k, with c(k) = 0 for k < 2.
func DegreeClustering(g *graph.Graph) map[int]float64 {
	t := g.TriangleCounts()
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		k := g.Degree(u)
		cnt[k]++
		if k >= 2 {
			sum[k] += 2 * float64(t[u]) / (float64(k) * float64(k-1))
		}
	}
	out := make(map[int]float64, len(cnt))
	for k, c := range cnt {
		if k >= 2 {
			out[k] = sum[k] / float64(c)
		} else {
			out[k] = 0
		}
	}
	return out
}
