package dkseries

import (
	mrand "math/rand"
	"testing"
	"testing/quick"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// TestQuickBuildRealizesRandomGraphTargets: targets extracted from any
// random connected-ish multigraph are realizable, and Build realizes them
// exactly.
func TestQuickBuildRealizesRandomGraphTargets(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		r := rng(uint64(seed))
		degrees := make([]int, n)
		total := 0
		for i := range degrees {
			degrees[i] = 1 + r.IntN(6)
			total += degrees[i]
		}
		if total%2 != 0 {
			degrees[0]++
		}
		src := gen.ConfigurationModel(degrees, r)
		dv, err := FromGraph(src)
		if err != nil {
			return true // isolated node (degree 0 impossible here, but safe)
		}
		jdm := JDMFromGraph(src)
		res, err := Build(nil, nil, dv, jdm, r)
		if err != nil {
			t.Logf("build failed: %v", err)
			return false
		}
		got, err := FromGraph(res.Graph)
		if err != nil {
			return false
		}
		if got.KMax() > dv.KMax() {
			return false
		}
		for k := 1; k <= dv.KMax(); k++ {
			have := 0
			if k <= got.KMax() {
				have = got[k]
			}
			if have != dv[k] {
				return false
			}
		}
		gj := JDMFromGraph(res.Graph)
		for ky, c := range jdm.Cells() {
			if gj.Get(ky[0], ky[1]) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: mrand.New(mrand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// TestQuickRewireInvariants: for any random multigraph and any split into
// fixed/candidate edges, rewiring preserves every node degree, the total
// edge count, the fixed edges, and never increases the clustering distance.
func TestQuickRewireInvariants(t *testing.T) {
	f := func(seed int64, splitRaw uint8) bool {
		r := rng(uint64(seed))
		n := 30 + r.IntN(40)
		g := gen.HolmeKim(n, 2+r.IntN(2), r.Float64(), r)
		edges := g.Edges()
		split := int(splitRaw) % len(edges)
		fixed := edges[:split]
		cands := append([]graph.Edge(nil), edges[split:]...)
		target := map[int]float64{}
		for k := 2; k < 8; k++ {
			target[k] = r.Float64()
		}
		out, stats := Rewire(g.N(), fixed, cands, RewireOptions{
			TargetClustering: target,
			RC:               5,
			Rand:             r,
		})
		if stats.FinalL1 > stats.InitialL1+1e-12 {
			return false
		}
		if out.M() != g.M() {
			return false
		}
		for u := 0; u < g.N(); u++ {
			if out.Degree(u) != g.Degree(u) {
				return false
			}
		}
		for _, e := range fixed {
			if !out.HasEdge(e.U, e.V) {
				return false
			}
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: mrand.New(mrand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

// TestRewireForbidDegenerateNeverAddsDegeneracy: with the simple-graph
// option, the number of loops plus parallel edges never grows.
func TestRewireForbidDegenerateNeverAddsDegeneracy(t *testing.T) {
	f := func(seed int64) bool {
		r := rng(uint64(seed))
		n := 30 + r.IntN(30)
		g := gen.HolmeKim(n, 3, 0.5, r)
		cands := g.Edges()
		before := g.CountMultiEdges()
		target := map[int]float64{3: 0.9, 4: 0.7, 5: 0.4}
		out, _ := Rewire(g.N(), nil, cands, RewireOptions{
			TargetClustering: target,
			RC:               10,
			Rand:             r,
			ForbidDegenerate: true,
		})
		return out.CountMultiEdges() <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: mrand.New(mrand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}
