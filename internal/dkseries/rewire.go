package dkseries

import (
	"math/rand/v2"
	"slices"

	"sgr/internal/adjset"
	"sgr/internal/graph"
)

// RewireOptions configures the Algorithm-6 rewiring loop.
type RewireOptions struct {
	// TargetClustering is the estimated degree-dependent clustering
	// coefficient c-hat(k) the rewiring tries to match.
	TargetClustering map[int]float64
	// RC is the coefficient of the number of rewiring attempts: the loop
	// runs RC * len(candidates) attempts (paper default 500).
	RC float64
	// Rand drives edge selection.
	Rand *rand.Rand
	// ForbidDegenerate rejects swaps that would create a self-loop or a
	// parallel edge, steering the output toward a simple graph (a 2K+
	// style extension; the paper's model permits both).
	ForbidDegenerate bool
}

// DefaultRC is the paper's rewiring-attempt coefficient (Sec. V-E).
const DefaultRC = 500

// RewireStats reports what the rewiring loop did. Attempts, Accepted and
// the L1 fields are filled by both engines; Rounds and Recomputed are
// sharded-engine activity counters and stay zero under the serial engine.
type RewireStats struct {
	Attempts  int
	Accepted  int
	InitialL1 float64 // normalized L1 distance of c(k) before rewiring
	FinalL1   float64 // and after
	// Rounds is the number of propose/commit rounds RewireSharded ran.
	Rounds int
	// Recomputed counts proposals whose precomputed delta was invalidated
	// by an earlier commit of the same round and re-evaluated serially.
	Recomputed int
}

// Rewire implements Algorithm 6: given a graph expressed as fixed edges
// (the sampled subgraph E', never touched) plus candidate edges (the added
// edges, E-tilde \ E'), it repeatedly picks two candidate edges whose chosen
// endpoints have equal degree and swaps their partners iff the normalized L1
// distance between the present and target degree-dependent clustering
// coefficients strictly decreases. Degrees, the degree vector and the joint
// degree matrix are all invariant. Gjoka et al.'s variant passes every edge
// as a candidate.
//
// n is the node count; candidates is mutated in place (final endpoints).
// The returned graph is assembled from fixed plus the rewired candidates.
//
// This is the serial reference engine, and its seeded trajectory is
// frozen (pinned byte-for-byte to the map-based reference in
// rewire_mapref_test.go). The restoration pipeline runs the parallel
// RewireSharded instead; use Rewire when a single *rand.Rand must drive
// the whole attempt sequence, as DK25 does.
func Rewire(n int, fixed []graph.Edge, candidates []graph.Edge, opts RewireOptions) (*graph.Graph, RewireStats) {
	st := newRewireState(n, fixed, candidates, opts.TargetClustering)
	stats := RewireStats{InitialL1: st.distance()}
	if len(candidates) > 0 && st.normC > 0 {
		attempts := int(opts.RC * float64(len(candidates)))
		for i := 0; i < attempts; i++ {
			stats.Attempts++
			if st.attempt(opts.Rand, opts.ForbidDegenerate) {
				stats.Accepted++
			}
		}
	}
	stats.FinalL1 = st.distance()
	// Assemble the final graph. Rewiring preserves every degree, so the
	// state's degree vector pre-sizes the adjacency exactly: assembly does
	// no per-edge allocation.
	g := graph.NewWithDegrees(st.deg)
	for _, e := range fixed {
		g.AddEdge(e.U, e.V)
	}
	for i, e := range st.ends {
		candidates[i] = e
		g.AddEdge(e.U, e.V)
	}
	return g, stats
}

// halfRef identifies one side of a candidate edge.
type halfRef struct {
	edge int
	side int // 0 -> U, 1 -> V
}

type rewireState struct {
	deg   []int       // node degrees (invariant)
	adj   *adjset.Set // multiplicity between distinct nodes, flat rows
	t     []int64     // per-node triangle counts
	nk    []int64     // nodes per degree
	sumT  []int64     // sum of t over nodes of each degree
	tgt   []float64   // target c-hat(k)
	normC float64     // sum_k c-hat(k)
	term  []float64   // |present c(k) - target c(k)| per degree
	sum   float64     // sum of term

	ends    []graph.Edge // current candidate edge endpoints
	buckets [][]halfRef  // per-degree candidate half-edges
	pos     [][2]int     // pos[edge][side] = index within its bucket

	dirty   []int // scratch: degrees touched by the in-flight swap
	inDirty []bool
}

func newRewireState(n int, fixed, candidates []graph.Edge, target map[int]float64) *rewireState {
	st := &rewireState{
		deg: make([]int, n),
		t:   make([]int64, n),
	}
	// Degrees first: the degree of a node bounds its distinct-neighbor
	// count, so the adjacency rows can be carved from one arena up front.
	bumpDeg := func(e graph.Edge) {
		if e.U == e.V {
			st.deg[e.U] += 2
			return
		}
		st.deg[e.U]++
		st.deg[e.V]++
	}
	for _, e := range fixed {
		bumpDeg(e)
	}
	for _, e := range candidates {
		bumpDeg(e)
	}
	st.adj = adjset.NewSized(st.deg)
	addAdj := func(e graph.Edge) {
		if e.U == e.V {
			return // loops carry degree but no adjacency
		}
		st.adj.Inc(e.U, e.V)
		st.adj.Inc(e.V, e.U)
	}
	for _, e := range fixed {
		addAdj(e)
	}
	for _, e := range candidates {
		addAdj(e)
	}

	kmax := 0
	for _, d := range st.deg {
		if d > kmax {
			kmax = d
		}
	}
	for k := range target {
		if k > kmax {
			kmax = k
		}
	}
	st.nk = make([]int64, kmax+1)
	st.sumT = make([]int64, kmax+1)
	st.tgt = make([]float64, kmax+1)
	st.term = make([]float64, kmax+1)
	st.inDirty = make([]bool, kmax+1)
	for _, d := range st.deg {
		st.nk[d]++
	}
	// Accumulate normC in ascending degree order: float addition is not
	// associative, and map range order would make the normalization — and
	// the reported L1 distances — vary between runs in the last bits.
	for k, c := range target {
		st.tgt[k] = c
	}
	for k := range st.tgt {
		st.normC += st.tgt[k]
	}

	// Initial triangle counts: unordered distinct neighbor pairs straight
	// off the flat slots, A_ab via an O(1) probe. Rows never contain their
	// own node (self-loops are inert here), so no self skip is needed.
	for u := 0; u < n; u++ {
		if st.adj.Len(u) < 2 {
			continue
		}
		keys, counts := st.adj.Row(u)
		for i := 0; i < len(keys); i++ {
			if keys[i] == adjset.Empty {
				continue
			}
			for j := i + 1; j < len(keys); j++ {
				if keys[j] == adjset.Empty {
					continue
				}
				if ab := st.adj.Get(int(keys[i]), int(keys[j])); ab > 0 {
					st.t[u] += int64(counts[i]) * int64(counts[j]) * int64(ab)
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		st.sumT[st.deg[u]] += st.t[u]
	}
	for k := range st.term {
		st.term[k] = st.termAt(k)
		st.sum += st.term[k]
	}

	// Candidate half-edge buckets keyed by endpoint degree.
	st.ends = append([]graph.Edge(nil), candidates...)
	st.buckets = make([][]halfRef, kmax+1)
	st.pos = make([][2]int, len(candidates))
	for i, e := range st.ends {
		st.placeHalf(halfRef{i, 0}, st.deg[e.U])
		st.placeHalf(halfRef{i, 1}, st.deg[e.V])
	}
	return st
}

func (st *rewireState) placeHalf(h halfRef, k int) {
	st.pos[h.edge][h.side] = len(st.buckets[k])
	st.buckets[k] = append(st.buckets[k], h)
}

func (st *rewireState) removeHalf(h halfRef, k int) {
	b := st.buckets[k]
	i := st.pos[h.edge][h.side]
	last := b[len(b)-1]
	b[i] = last
	st.pos[last.edge][last.side] = i
	st.buckets[k] = b[:len(b)-1]
}

// endpoint returns the node on the given side of candidate edge e.
func (st *rewireState) endpoint(e, side int) int {
	if side == 0 {
		return st.ends[e].U
	}
	return st.ends[e].V
}

func (st *rewireState) setEndpoint(e, side, node int) {
	if side == 0 {
		st.ends[e].U = node
	} else {
		st.ends[e].V = node
	}
}

// termAt computes |c(k) - target(k)| from current sums.
func (st *rewireState) termAt(k int) float64 {
	return st.termWith(k, st.sumT[k])
}

// termWith computes |c(k) - target(k)| for a hypothetical triangle sum,
// letting the sharded engine's accept test evaluate a proposal without
// mutating sumT. The expression is identical to the serial path bit for
// bit — both engines must make the same float for the same sums.
func (st *rewireState) termWith(k int, sumT int64) float64 {
	var present float64
	if k >= 2 && st.nk[k] > 0 {
		present = 2 * float64(sumT) / (float64(st.nk[k]) * float64(k) * float64(k-1))
	}
	d := present - st.tgt[k]
	if d < 0 {
		d = -d
	}
	return d
}

// distance returns the normalized L1 distance D between present and target
// degree-dependent clustering (0 when the target is all-zero).
func (st *rewireState) distance() float64 {
	if st.normC == 0 {
		return 0
	}
	return st.sum / st.normC
}

func (st *rewireState) markDirty(k int) {
	if !st.inDirty[k] {
		st.inDirty[k] = true
		st.dirty = append(st.dirty, k)
	}
}

// bumpT adjusts node x's triangle count by delta, updating per-degree sums.
func (st *rewireState) bumpT(x int, delta int64) {
	st.t[x] += delta
	st.sumT[st.deg[x]] += delta
	st.markDirty(st.deg[x])
}

// commonNeighbors visits every common neighbor w of u and v, scanning the
// endpoint with fewer distinct neighbors and probing the other in O(1).
// fn receives w and the product A_uw * A_vw; the total is returned.
// Allocation-free: the row slots are read in place.
func (st *rewireState) commonNeighbors(u, v int, fn func(w int, prod int64)) int64 {
	small, large := u, v
	if st.adj.Len(small) > st.adj.Len(large) {
		small, large = large, small
	}
	keys, counts := st.adj.Row(small)
	var cn int64
	for i, wk := range keys {
		if wk == adjset.Empty {
			continue
		}
		w := int(wk)
		if w == u || w == v {
			continue
		}
		if cl := st.adj.Get(large, w); cl > 0 {
			prod := int64(counts[i]) * int64(cl)
			cn += prod
			fn(w, prod)
		}
	}
	return cn
}

// addEdge inserts one (u,v) instance, updating triangles. Loops are inert.
func (st *rewireState) addEdge(u, v int) {
	if u == v {
		return
	}
	cn := st.commonNeighbors(u, v, func(w int, prod int64) { st.bumpT(w, prod) })
	st.bumpT(u, cn)
	st.bumpT(v, cn)
	st.adj.Inc(u, v)
	st.adj.Inc(v, u)
}

// removeEdge deletes one (u,v) instance, updating triangles.
func (st *rewireState) removeEdge(u, v int) {
	if u == v {
		return
	}
	st.adj.Dec(u, v)
	st.adj.Dec(v, u)
	cn := st.commonNeighbors(u, v, func(w int, prod int64) { st.bumpT(w, -prod) })
	st.bumpT(u, -cn)
	st.bumpT(v, -cn)
}

// settleDirty refreshes term/sum for touched degrees and clears the dirty
// set. Returns the updated total distance numerator. The dirty degrees are
// settled in ascending order: float additions into sum are not associative,
// so a fixed order makes the accumulated distance — and therefore every
// accept/reject decision — independent of adjacency iteration order.
func (st *rewireState) settleDirty() {
	slices.Sort(st.dirty) // unlike sort.Ints, no interface boxing
	for _, k := range st.dirty {
		nt := st.termAt(k)
		st.sum += nt - st.term[k]
		st.term[k] = nt
		st.inDirty[k] = false
	}
	st.dirty = st.dirty[:0]
}

// attempt performs one rewiring attempt; reports whether it was accepted.
func (st *rewireState) attempt(r *rand.Rand, forbidDegenerate bool) bool {
	// Pick a random candidate half (i of edge e1), then a same-degree half
	// (a of edge e2); swap partners: (i,j),(a,b) -> (i,b),(a,j).
	e1 := r.IntN(len(st.ends))
	s1 := r.IntN(2)
	i := st.endpoint(e1, s1)
	j := st.endpoint(e1, 1-s1)
	bucket := st.buckets[st.deg[i]]
	h2 := bucket[r.IntN(len(bucket))]
	e2, s2 := h2.edge, h2.side
	if e2 == e1 {
		return false
	}
	a := st.endpoint(e2, s2)
	b := st.endpoint(e2, 1-s2)
	if i == a || j == b {
		return false // swap would be a no-op
	}
	if forbidDegenerate {
		// Reject swaps introducing loops or parallel edges.
		if i == b || a == j || st.adj.Get(i, b) > 0 || st.adj.Get(a, j) > 0 {
			return false
		}
	}

	before := st.sum
	st.removeEdge(i, j)
	st.removeEdge(a, b)
	st.addEdge(i, b)
	st.addEdge(a, j)
	st.settleDirty()
	if st.sum < before {
		// Accept: re-point the partner halves and their buckets.
		st.removeHalf(halfRef{e1, 1 - s1}, st.deg[j])
		st.removeHalf(halfRef{e2, 1 - s2}, st.deg[b])
		st.setEndpoint(e1, 1-s1, b)
		st.setEndpoint(e2, 1-s2, j)
		st.placeHalf(halfRef{e1, 1 - s1}, st.deg[b])
		st.placeHalf(halfRef{e2, 1 - s2}, st.deg[j])
		return true
	}
	// Revert.
	st.removeEdge(i, b)
	st.removeEdge(a, j)
	st.addEdge(i, j)
	st.addEdge(a, b)
	st.settleDirty()
	return false
}
