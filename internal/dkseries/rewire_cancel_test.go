package dkseries

import (
	"context"
	"testing"

	"sgr/internal/graph"
)

// TestRewireShardedContext pins the engine's side of the cancellation
// contract: a live context never changes a single byte of the trajectory,
// and a cancelled one stops the round loop — returning a valid (merely
// under-rewired) graph that still realizes DV and JDM, which the caller
// is expected to discard.
func TestRewireShardedContext(t *testing.T) {
	fixed, cands, target := shardedInput(5, 200)
	n := nodeCount(fixed, cands)
	run := func(ctx context.Context) (*graph.Graph, RewireStats, []graph.Edge) {
		cc := append([]graph.Edge(nil), cands...)
		g, st := RewireSharded(n, fixed, cc, ShardedRewireOptions{
			TargetClustering: target,
			RC:               6,
			Seed1:            5,
			Seed2:            5 ^ 0xabcdef,
			Workers:          2,
			Ctx:              ctx,
		})
		return g, st, cc
	}

	gNil, stNil, ccNil := run(nil)
	gLive, stLive, ccLive := run(context.Background())
	if stNil != stLive || !graph.Equal(gNil, gLive) {
		t.Fatal("a live context changed the rewiring trajectory")
	}
	for i := range ccNil {
		if ccNil[i] != ccLive[i] {
			t.Fatalf("candidate %d endpoints diverge under a live context", i)
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	gStop, stStop, _ := run(cancelled)
	if stStop.Rounds != 0 || stStop.Attempts != 0 {
		t.Fatalf("cancelled run still rewired: %+v", stStop)
	}
	// The aborted graph is structurally whole: same node count, same edge
	// multiset cardinality as the input edge set — rewiring only ever
	// swaps endpoints, and an abort between rounds leaves no half-swap.
	if gStop.N() != gNil.N() || gStop.M() != gNil.M() {
		t.Fatalf("aborted graph shape n=%d m=%d, want n=%d m=%d", gStop.N(), gStop.M(), gNil.N(), gNil.M())
	}
}
