package dkseries

import (
	"math"
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// diffInput builds one randomized rewiring problem: a clustered source
// graph split into fixed and candidate edge sets plus a noisy clustering
// target, exercising multi-edges via duplicated candidates.
func diffInput(seed uint64, n int) (fixed, cands []graph.Edge, target map[int]float64) {
	r := rand.New(rand.NewPCG(seed, seed^0x5eed))
	src := gen.HolmeKim(n, 2+int(seed%3), 0.4, r)
	edges := src.Edges()
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	cut := len(edges) / 3
	fixed = edges[:cut]
	cands = append([]graph.Edge(nil), edges[cut:]...)
	// A few parallel candidate edges to exercise multiplicities > 1.
	for i := 0; i < 5 && i < len(cands); i++ {
		cands = append(cands, cands[i*7%len(cands)])
	}
	target = DegreeClustering(src)
	for k := range target {
		target[k] *= 0.5 + r.Float64()
	}
	return fixed, cands, target
}

// TestRewireDifferentialAdjsetVsMap is the guard behind the adjset swap:
// on randomized fixed-seed inputs, the flat-adjacency Rewire must produce
// byte-identical RewireStats (including the float64 L1 distances), the
// same output graph, and the same final candidate endpoints as the frozen
// map-based reference engine.
func TestRewireDifferentialAdjsetVsMap(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		fixed, cands, target := diffInput(seed, 120+int(seed)*30)
		for _, forbid := range []bool{false, true} {
			candsA := append([]graph.Edge(nil), cands...)
			candsB := append([]graph.Edge(nil), cands...)
			optsA := RewireOptions{TargetClustering: target, RC: 6,
				Rand: rand.New(rand.NewPCG(seed, 99)), ForbidDegenerate: forbid}
			optsB := RewireOptions{TargetClustering: target, RC: 6,
				Rand: rand.New(rand.NewPCG(seed, 99)), ForbidDegenerate: forbid}
			n := 0
			for _, e := range append(append([]graph.Edge(nil), fixed...), cands...) {
				if e.U >= n {
					n = e.U + 1
				}
				if e.V >= n {
					n = e.V + 1
				}
			}
			gA, stA := Rewire(n, fixed, candsA, optsA)
			gB, stB := rewireMapRef(n, fixed, candsB, optsB)
			if stA != stB {
				t.Fatalf("seed %d forbid=%v: stats diverge: adjset %+v map %+v",
					seed, forbid, stA, stB)
			}
			if math.Float64bits(stA.InitialL1) != math.Float64bits(stB.InitialL1) ||
				math.Float64bits(stA.FinalL1) != math.Float64bits(stB.FinalL1) {
				t.Fatalf("seed %d forbid=%v: L1 bits diverge", seed, forbid)
			}
			if !graph.Equal(gA, gB) {
				t.Fatalf("seed %d forbid=%v: output graphs diverge", seed, forbid)
			}
			for i := range candsA {
				if candsA[i] != candsB[i] {
					t.Fatalf("seed %d forbid=%v: candidate %d endpoints diverge: %v vs %v",
						seed, forbid, i, candsA[i], candsB[i])
				}
			}
			if stA.Accepted == 0 {
				t.Errorf("seed %d forbid=%v: rewiring accepted nothing — weak differential input", seed, forbid)
			}
		}
	}
}
