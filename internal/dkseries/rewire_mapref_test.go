package dkseries

// This file freezes the original []map[int]int-based rewiring engine as a
// reference implementation. It exists only for tests: the differential
// guard (TestRewireDifferentialAdjsetVsMap) checks that the flat adjset
// engine in rewire.go reproduces it byte-for-byte on randomized inputs,
// and BenchmarkRewire/mapref keeps its cost as the recorded baseline in
// BENCH_rewire.json. Do not "optimize" this file.

import (
	"math/rand/v2"
	"slices"

	"sgr/internal/graph"
)

// rewireMapRef is the map-based twin of Rewire.
func rewireMapRef(n int, fixed []graph.Edge, candidates []graph.Edge, opts RewireOptions) (*graph.Graph, RewireStats) {
	st := newMapRewireState(n, fixed, candidates, opts.TargetClustering)
	stats := RewireStats{InitialL1: st.distance()}
	if len(candidates) > 0 && st.normC > 0 {
		attempts := int(opts.RC * float64(len(candidates)))
		for i := 0; i < attempts; i++ {
			stats.Attempts++
			if st.attempt(opts.Rand, opts.ForbidDegenerate) {
				stats.Accepted++
			}
		}
	}
	stats.FinalL1 = st.distance()
	g := graph.New(n)
	for _, e := range fixed {
		g.AddEdge(e.U, e.V)
	}
	for i, e := range st.ends {
		candidates[i] = e
		g.AddEdge(e.U, e.V)
	}
	return g, stats
}

type mapRewireState struct {
	deg   []int         // node degrees (invariant)
	adj   []map[int]int // multiplicity between distinct nodes
	t     []int64       // per-node triangle counts
	nk    []int64       // nodes per degree
	sumT  []int64       // sum of t over nodes of each degree
	tgt   []float64     // target c-hat(k)
	normC float64       // sum_k c-hat(k)
	term  []float64     // |present c(k) - target c(k)| per degree
	sum   float64       // sum of term

	ends    []graph.Edge // current candidate edge endpoints
	buckets [][]halfRef  // per-degree candidate half-edges
	pos     [][2]int     // pos[edge][side] = index within its bucket

	dirty   []int // scratch: degrees touched by the in-flight swap
	inDirty []bool
}

func newMapRewireState(n int, fixed, candidates []graph.Edge, target map[int]float64) *mapRewireState {
	st := &mapRewireState{
		deg: make([]int, n),
		adj: make([]map[int]int, n),
		t:   make([]int64, n),
	}
	for i := range st.adj {
		st.adj[i] = make(map[int]int, 4)
	}
	addAdj := func(e graph.Edge) {
		if e.U == e.V {
			st.deg[e.U] += 2
			return
		}
		st.deg[e.U]++
		st.deg[e.V]++
		st.adj[e.U][e.V]++
		st.adj[e.V][e.U]++
	}
	for _, e := range fixed {
		addAdj(e)
	}
	for _, e := range candidates {
		addAdj(e)
	}

	kmax := 0
	for _, d := range st.deg {
		if d > kmax {
			kmax = d
		}
	}
	for k := range target {
		if k > kmax {
			kmax = k
		}
	}
	st.nk = make([]int64, kmax+1)
	st.sumT = make([]int64, kmax+1)
	st.tgt = make([]float64, kmax+1)
	st.term = make([]float64, kmax+1)
	st.inDirty = make([]bool, kmax+1)
	for _, d := range st.deg {
		st.nk[d]++
	}
	// Sorted-order normC accumulation, matching the adjset engine.
	for k, c := range target {
		st.tgt[k] = c
	}
	for k := range st.tgt {
		st.normC += st.tgt[k]
	}

	// Initial triangle counts.
	for u := 0; u < n; u++ {
		row := st.adj[u]
		if len(row) < 2 {
			continue
		}
		nbrs := make([]int, 0, len(row))
		//sgr:nondet-ok nbrs only feeds the unordered-pair sweep below, whose integer bumps commute
		for v := range row {
			nbrs = append(nbrs, v)
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				ra, rb := st.adj[a], st.adj[b]
				if len(ra) > len(rb) {
					a, b = b, a
					ra = st.adj[a]
				}
				if ab := ra[b]; ab > 0 {
					st.t[u] += int64(row[nbrs[i]]) * int64(row[nbrs[j]]) * int64(ab)
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		st.sumT[st.deg[u]] += st.t[u]
	}
	for k := range st.term {
		st.term[k] = st.termAt(k)
		st.sum += st.term[k]
	}

	// Candidate half-edge buckets keyed by endpoint degree.
	st.ends = append([]graph.Edge(nil), candidates...)
	st.buckets = make([][]halfRef, kmax+1)
	st.pos = make([][2]int, len(candidates))
	for i, e := range st.ends {
		st.placeHalf(halfRef{i, 0}, st.deg[e.U])
		st.placeHalf(halfRef{i, 1}, st.deg[e.V])
	}
	return st
}

func (st *mapRewireState) placeHalf(h halfRef, k int) {
	st.pos[h.edge][h.side] = len(st.buckets[k])
	st.buckets[k] = append(st.buckets[k], h)
}

func (st *mapRewireState) removeHalf(h halfRef, k int) {
	b := st.buckets[k]
	i := st.pos[h.edge][h.side]
	last := b[len(b)-1]
	b[i] = last
	st.pos[last.edge][last.side] = i
	st.buckets[k] = b[:len(b)-1]
}

func (st *mapRewireState) endpoint(e, side int) int {
	if side == 0 {
		return st.ends[e].U
	}
	return st.ends[e].V
}

func (st *mapRewireState) setEndpoint(e, side, node int) {
	if side == 0 {
		st.ends[e].U = node
	} else {
		st.ends[e].V = node
	}
}

func (st *mapRewireState) termAt(k int) float64 {
	var present float64
	if k >= 2 && st.nk[k] > 0 {
		present = 2 * float64(st.sumT[k]) / (float64(st.nk[k]) * float64(k) * float64(k-1))
	}
	d := present - st.tgt[k]
	if d < 0 {
		d = -d
	}
	return d
}

func (st *mapRewireState) distance() float64 {
	if st.normC == 0 {
		return 0
	}
	return st.sum / st.normC
}

func (st *mapRewireState) markDirty(k int) {
	if !st.inDirty[k] {
		st.inDirty[k] = true
		st.dirty = append(st.dirty, k)
	}
}

func (st *mapRewireState) bumpT(x int, delta int64) {
	st.t[x] += delta
	st.sumT[st.deg[x]] += delta
	st.markDirty(st.deg[x])
}

func (st *mapRewireState) addEdge(u, v int) {
	if u == v {
		return
	}
	var cn int64
	ru, rv := st.adj[u], st.adj[v]
	small, large := ru, rv
	if len(small) > len(large) {
		small, large = large, small
	}
	//sgr:nondet-ok common-neighbor sweep: integer adds into cn and per-node bumpT slots commute
	for w, cw := range small {
		if w == u || w == v {
			continue
		}
		if cl := large[w]; cl > 0 {
			prod := int64(cw) * int64(cl)
			cn += prod
			st.bumpT(w, prod)
		}
	}
	st.bumpT(u, cn)
	st.bumpT(v, cn)
	ru[v]++
	rv[u]++
}

func (st *mapRewireState) removeEdge(u, v int) {
	if u == v {
		return
	}
	ru, rv := st.adj[u], st.adj[v]
	if ru[v] == 1 {
		delete(ru, v)
		delete(rv, u)
	} else {
		ru[v]--
		rv[u]--
	}
	var cn int64
	small, large := ru, rv
	if len(small) > len(large) {
		small, large = large, small
	}
	//sgr:nondet-ok common-neighbor sweep: integer subtractions from cn and per-node bumpT slots commute
	for w, cw := range small {
		if w == u || w == v {
			continue
		}
		if cl := large[w]; cl > 0 {
			prod := int64(cw) * int64(cl)
			cn += prod
			st.bumpT(w, -prod)
		}
	}
	st.bumpT(u, -cn)
	st.bumpT(v, -cn)
}

// settleDirty matches the adjset engine's sorted settle order (see
// rewire.go): with map iteration the dirty list order is random, and the
// float accumulation into sum is order-sensitive, so sorting is what makes
// an exact differential comparison possible at all.
func (st *mapRewireState) settleDirty() {
	slices.Sort(st.dirty)
	for _, k := range st.dirty {
		nt := st.termAt(k)
		st.sum += nt - st.term[k]
		st.term[k] = nt
		st.inDirty[k] = false
	}
	st.dirty = st.dirty[:0]
}

func (st *mapRewireState) attempt(r *rand.Rand, forbidDegenerate bool) bool {
	e1 := r.IntN(len(st.ends))
	s1 := r.IntN(2)
	i := st.endpoint(e1, s1)
	j := st.endpoint(e1, 1-s1)
	bucket := st.buckets[st.deg[i]]
	h2 := bucket[r.IntN(len(bucket))]
	e2, s2 := h2.edge, h2.side
	if e2 == e1 {
		return false
	}
	a := st.endpoint(e2, s2)
	b := st.endpoint(e2, 1-s2)
	if i == a || j == b {
		return false
	}
	if forbidDegenerate {
		if i == b || a == j || st.adj[i][b] > 0 || st.adj[a][j] > 0 {
			return false
		}
	}

	before := st.sum
	st.removeEdge(i, j)
	st.removeEdge(a, b)
	st.addEdge(i, b)
	st.addEdge(a, j)
	st.settleDirty()
	if st.sum < before {
		st.removeHalf(halfRef{e1, 1 - s1}, st.deg[j])
		st.removeHalf(halfRef{e2, 1 - s2}, st.deg[b])
		st.setEndpoint(e1, 1-s1, b)
		st.setEndpoint(e2, 1-s2, j)
		st.placeHalf(halfRef{e1, 1 - s1}, st.deg[b])
		st.placeHalf(halfRef{e2, 1 - s2}, st.deg[j])
		return true
	}
	st.removeEdge(i, b)
	st.removeEdge(a, j)
	st.addEdge(i, j)
	st.addEdge(a, b)
	st.settleDirty()
	return false
}
