package dkseries

import (
	"context"
	"math/rand/v2"
	"slices"

	"sgr/internal/adjset"
	"sgr/internal/graph"
	"sgr/internal/obs"
	"sgr/internal/parallel"
	"sgr/internal/sampling"
)

// This file implements the sharded, parallel variant of Algorithm 6. The
// serial engine in rewire.go mutates the adjacency on every attempt and
// reverts on rejection — correct, but inherently sequential and twice as
// expensive as necessary on the ~97% of attempts that are rejected. The
// sharded engine restructures the loop into deterministic rounds:
//
//  1. Propose (parallel, read-only). The candidate half-edge space is
//     partitioned by degree bucket into a fixed number of shards. Each
//     shard draws a quota of swap proposals from its own PCG sub-stream
//     (sampling.SubStream) and evaluates the exact triangle-count delta
//     of each proposal against the round-start adjacency without
//     mutating it. The four scans of the serial engine fuse into one
//     sweep: for any node w outside the swap's endpoint set, the net
//     delta of remove(i,j), remove(a,b), add(i,b), add(a,j) factors as
//
//         delta_w = (A_iw - A_aw) * (A_bw - A_jw)
//
//     so a single ordered intersection of the unions N(i)|N(a) and
//     N(b)|N(j) over the sorted neighbor rows (sortedRows) yields every
//     delta, while the handful of endpoint-internal contributions go
//     through a 4x4 overlay matrix that replays the serial op order
//     exactly. Shards write disjoint buffers, so any number of workers
//     may execute them.
//  2. Commit (serial, fixed order). Proposals are applied in a fixed
//     interleaved shard order. A proposal whose four endpoints are
//     untouched by earlier commits of the same round reuses its
//     precomputed per-degree delta verbatim (degrees are invariant, so
//     it is still exact); a conflicting proposal is re-evaluated against
//     the live state. Rejected proposals — the overwhelming majority —
//     cost one pass over a handful of per-degree deltas and mutate
//     nothing.
//
// Because shard decomposition, sub-stream seeding, quota allocation and
// commit order are all functions of (input, Seed1, Seed2, Shards,
// RoundSize) — never of scheduling — the output graph, the final
// candidate endpoints and every RewireStats field are byte-identical at
// any Workers value, including 1. Workers is a wall-clock knob only.
//
// What DOES change the bytes: Seed1/Seed2 (by design), Shards and
// RoundSize (they define the proposal sequence). Their defaults are
// therefore part of the determinism contract and as frozen as the
// serial engine's accept rule.

// DefaultRewireShards is the default shard count of RewireSharded: the
// number of independent proposal streams the degree-bucket space is
// partitioned into. It bounds useful parallelism and is part of the
// output contract — changing it re-keys every seeded result.
const DefaultRewireShards = 16

// DefaultRewireRoundSize is the default number of proposals evaluated per
// round across all shards. Larger rounds amortize the propose/commit
// barrier but raise the chance a proposal conflicts with an earlier
// commit of the same round (forcing a serial re-evaluation). Part of the
// output contract, like DefaultRewireShards.
const DefaultRewireRoundSize = 256

// ShardedRewireOptions configures RewireSharded. The zero value of every
// field except TargetClustering selects a documented default.
type ShardedRewireOptions struct {
	// TargetClustering is the estimated degree-dependent clustering
	// coefficient c-hat(k) the rewiring tries to match.
	TargetClustering map[int]float64
	// RC is the rewiring-attempt coefficient: the engine issues
	// RC * len(candidates) proposals in total (paper default 500).
	RC float64
	// Seed1, Seed2 seed the per-shard proposal streams through
	// sampling.SubStream(Seed1, Seed2, shard). They select the result.
	Seed1, Seed2 uint64
	// ForbidDegenerate rejects swaps that would create a self-loop or a
	// parallel edge (same semantics as RewireOptions.ForbidDegenerate).
	ForbidDegenerate bool
	// Workers bounds how many shards evaluate concurrently during the
	// propose phase. <= 0 selects parallel.DefaultWorkers. Workers never
	// affects the output, only the wall clock.
	Workers int
	// Trace, when set, receives two aggregate timers — "rewire/propose"
	// and "rewire/commit" — accumulating the per-round phase split across
	// every round of the run. Like Workers it is wall-clock-only: the
	// timers read the monotonic clock and nothing else, so the output
	// graph and RewireStats are byte-identical with and without one.
	Trace *obs.Trace
	// Ctx, when set, is polled non-blockingly at the top of every
	// propose/commit round: once it is done the engine stops issuing
	// rounds and returns the graph as committed so far — valid (it still
	// realizes the degree vector and JDM) but only partially rewired, with
	// RewireStats reporting the rounds actually run. Callers that must not
	// observe partial results (core.Restore) re-check the context after
	// the engine returns and discard the graph. The poll reads the context
	// and nothing else — no RNG draw, no map walk — so a run the context
	// never interrupts is byte-identical to one with Ctx nil: cancellation
	// can abort an output, never alter one.
	Ctx context.Context

	// forceMergeEval pins the evaluator to the merge walk regardless of
	// graph size. Test hook: the two evaluators must produce identical
	// bytes, and this is how the equivalence test forces the slow one.
	forceMergeEval bool
	// Shards overrides DefaultRewireShards (<= 0 selects the default).
	// Part of the output contract.
	Shards int
	// RoundSize overrides DefaultRewireRoundSize (<= 0 selects the
	// default). Part of the output contract.
	RoundSize int
}

func (o ShardedRewireOptions) shards() int {
	if o.Shards <= 0 {
		return DefaultRewireShards
	}
	return o.Shards
}

func (o ShardedRewireOptions) roundSize() int {
	if o.RoundSize <= 0 {
		return DefaultRewireRoundSize
	}
	return o.RoundSize
}

// RewireSharded runs Algorithm-6 rewiring with sharded parallel proposal
// evaluation. Inputs and outputs mirror Rewire: fixed edges are never
// touched, candidates is mutated in place to its final endpoints, and the
// returned graph realizes the same degree vector and joint degree matrix
// as fixed+candidates. The result is a deterministic function of the
// inputs and (Seed1, Seed2, Shards, RoundSize) — identical at any worker
// count — but it is a different (equally valid) rewiring trajectory than
// the serial engine's for any seed: the two engines share state and
// accept semantics, not proposal sequences.
func RewireSharded(n int, fixed []graph.Edge, candidates []graph.Edge, opts ShardedRewireOptions) (*graph.Graph, RewireStats) {
	st, rows := newShardedState(n, fixed, candidates, opts.TargetClustering)
	stats := RewireStats{InitialL1: st.distance()}
	if len(candidates) > 0 && st.normC > 0 {
		total := int(opts.RC * float64(len(candidates)))
		newShardedRun(st, rows, opts).run(total, &stats)
	}
	stats.FinalL1 = st.distance()
	g := graph.NewWithDegrees(st.deg)
	for _, e := range fixed {
		g.AddEdge(e.U, e.V)
	}
	for i, e := range st.ends {
		candidates[i] = e
		g.AddEdge(e.U, e.V)
	}
	return g, stats
}

// sortedRows is the rewiring adjacency as per-node sorted neighbor rows
// with parallel multiplicity and neighbor-degree arrays, all carved from
// flat arenas. The propose phase reads it concurrently (merge and gallop
// intersections instead of hash probes); only commit-phase accepts mutate
// it — a few ordered memmoves per accepted swap. Node degrees are
// rewiring invariants, so the dg array never goes stale. Row capacity is
// deg[u]: a node's distinct-neighbor count can never exceed its degree.
type sortedRows struct {
	off []int   // row start in the arenas
	ln  []int32 // current distinct-neighbor count of each row
	nbr []int32 // sorted neighbor IDs
	cnt []int32 // multiplicities, parallel to nbr
	dg  []int32 // neighbor degrees, parallel to nbr

	// sig holds a sigWords-word Bloom signature of each row's neighbor
	// set (one hashed bit per neighbor, from hw/hm). A clear bit proves
	// absence; set bits prove nothing — exactly the one-sided error the
	// emptyEval fast-reject filter needs. Signatures are a pure
	// performance cache: they influence which proposals skip the sweep,
	// never what any proposal evaluates to.
	sig []uint64
	hw  []uint8  // node -> signature word index of its hashed bit
	hm  []uint64 // node -> signature bit mask
}

// sigWords is the per-row signature width: 8 words = 512 bits = one cache
// line per node.
const sigWords = 8

// initSig sizes the signature arrays and precomputes each node's hashed
// bit (SplitMix64 finalizer — one multiplicative hash is plenty for a
// one-bit-per-member filter).
func (sr *sortedRows) initSig(n int) {
	sr.sig = make([]uint64, n*sigWords)
	sr.hw = make([]uint8, n)
	sr.hm = make([]uint64, n)
	for u := 0; u < n; u++ {
		h := (uint64(u) + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
		h ^= h >> 29
		sr.hw[u] = uint8((h >> 6) % sigWords)
		sr.hm[u] = 1 << (h & 63)
	}
}

// rebuildSig recomputes node u's signature from its current row.
func (sr *sortedRows) rebuildSig(u int32) {
	base := int(u) * sigWords
	for t := 0; t < sigWords; t++ {
		sr.sig[base+t] = 0
	}
	o, l := sr.off[u], int(sr.ln[u])
	for _, w := range sr.nbr[o : o+l] {
		sr.sig[base+int(sr.hw[w])] |= sr.hm[w]
	}
}

// emptyEval reports whether the swap (i,j)+(a,b) -> (i,b)+(a,j) provably
// produces an empty delta set, i.e. is a guaranteed rejection, without
// walking any row. That holds when (1) the unions N(i)|N(a) and N(b)|N(j)
// share no node — no sweep term — and (2) none of the four cross pairs
// (i,a), (i,b), (j,a), (j,b) is adjacent — every endpoint-matrix product
// then contains a zero factor (the always-adjacent pairs (i,j) and (a,b)
// only ever multiply a cross pair). Both facts are established through
// clear signature bits, so a true result is exact; a false result merely
// falls through to the full evaluation. Degenerate proposals (shared or
// self-looped endpoints) put one row on both sides and fail the
// signature test on their own overlap, so they are never fast-rejected.
func (sr *sortedRows) emptyEval(i, j, a, b int32) bool {
	si := sr.sig[int(i)*sigWords:]
	sa := sr.sig[int(a)*sigWords:]
	sb := sr.sig[int(b)*sigWords:]
	sj := sr.sig[int(j)*sigWords:]
	var and uint64
	for t := 0; t < sigWords; t++ {
		and |= (si[t] | sa[t]) & (sb[t] | sj[t])
	}
	if and != 0 {
		return false
	}
	return si[sr.hw[a]]&sr.hm[a] == 0 && si[sr.hw[b]]&sr.hm[b] == 0 &&
		sj[sr.hw[a]]&sr.hm[a] == 0 && sj[sr.hw[b]]&sr.hm[b] == 0
}

// newShardedState builds the rewiring state for the sharded engine
// directly from the edge lists: sorted neighbor rows instead of the
// serial engine's hash-based adjset (st.adj stays nil — nothing in the
// sharded path touches it), and triangle counts via ordered row
// intersections instead of per-pair hash probes. The resulting state is
// value-identical to newRewireState on the same input (triangle counts
// are exact integers, and term/sum use the same expressions in the same
// accumulation order), which TestShardedStateMatchesSerial pins.
func newShardedState(n int, fixed, candidates []graph.Edge, target map[int]float64) (*rewireState, *sortedRows) {
	st := &rewireState{
		deg: make([]int, n),
		t:   make([]int64, n),
	}
	bumpDeg := func(e graph.Edge) {
		if e.U == e.V {
			st.deg[e.U] += 2
			return
		}
		st.deg[e.U]++
		st.deg[e.V]++
	}
	for _, e := range fixed {
		bumpDeg(e)
	}
	for _, e := range candidates {
		bumpDeg(e)
	}

	// Sorted rows straight from the edges: raw neighbor fill, per-row
	// sort, then run-length compression into (nbr, cnt).
	sr := &sortedRows{off: make([]int, n+1), ln: make([]int32, n)}
	total := 0
	for u, d := range st.deg {
		sr.off[u] = total
		total += d
	}
	sr.off[n] = total
	sr.nbr = make([]int32, total)
	sr.cnt = make([]int32, total)
	sr.dg = make([]int32, total)
	fill := make([]int32, n) // raw entries written per row so far
	addRaw := func(e graph.Edge) {
		if e.U == e.V {
			return // loops carry degree but no adjacency
		}
		sr.nbr[sr.off[e.U]+int(fill[e.U])] = int32(e.V)
		fill[e.U]++
		sr.nbr[sr.off[e.V]+int(fill[e.V])] = int32(e.U)
		fill[e.V]++
	}
	for _, e := range fixed {
		addRaw(e)
	}
	for _, e := range candidates {
		addRaw(e)
	}
	for u := 0; u < n; u++ {
		o, raw := sr.off[u], int(fill[u])
		row := sr.nbr[o : o+raw]
		slices.Sort(row)
		w := 0
		for x := 0; x < raw; {
			y := x + 1
			for y < raw && row[y] == row[x] {
				y++
			}
			row[w] = row[x]
			sr.cnt[o+w] = int32(y - x)
			w++
			x = y
		}
		sr.ln[u] = int32(w)
		for x := 0; x < w; x++ {
			sr.dg[o+x] = int32(st.deg[row[x]])
		}
	}
	sr.initSig(n)
	for u := 0; u < n; u++ {
		sr.rebuildSig(int32(u))
	}

	kmax := 0
	for _, d := range st.deg {
		if d > kmax {
			kmax = d
		}
	}
	for k := range target {
		if k > kmax {
			kmax = k
		}
	}
	st.nk = make([]int64, kmax+1)
	st.sumT = make([]int64, kmax+1)
	st.tgt = make([]float64, kmax+1)
	st.term = make([]float64, kmax+1)
	st.inDirty = make([]bool, kmax+1)
	for _, d := range st.deg {
		st.nk[d]++
	}
	for k, c := range target {
		st.tgt[k] = c
	}
	for k := range st.tgt {
		st.normC += st.tgt[k]
	}

	// Triangle counts by mark-and-probe: every adjacent pair u < v
	// contributes A_uv * A_uw * A_vw to t[w] for each common neighbor w —
	// exactly the unordered neighbor-pair sum the serial init computes.
	// Row u's multiplicities are stamped into a dense array once, then
	// each higher-numbered neighbor row is probed against the stamps; the
	// integer sums commute, so t is value-identical to the serial init.
	mark := make([]int64, n)
	for u := 0; u < n; u++ {
		ou, lu := sr.off[u], int(sr.ln[u])
		for x := 0; x < lu; x++ {
			mark[sr.nbr[ou+x]] = int64(sr.cnt[ou+x])
		}
		for x := 0; x < lu; x++ {
			v := sr.nbr[ou+x]
			if int(v) <= u {
				continue
			}
			auv := int64(sr.cnt[ou+x])
			ov, endV := sr.off[v], sr.off[v]+int(sr.ln[v])
			for yi := ov; yi < endV; yi++ {
				w := sr.nbr[yi]
				// Row v never contains v itself, and w == u only when u is
				// in both rows' intersection position — skip it; everything
				// else marked is a common neighbor.
				if int(w) != u && mark[w] != 0 {
					st.t[w] += auv * mark[w] * int64(sr.cnt[yi])
				}
			}
		}
		for x := 0; x < lu; x++ {
			mark[sr.nbr[ou+x]] = 0
		}
	}
	for u := 0; u < n; u++ {
		st.sumT[st.deg[u]] += st.t[u]
	}
	for k := range st.term {
		st.term[k] = st.termAt(k)
		st.sum += st.term[k]
	}

	st.ends = append([]graph.Edge(nil), candidates...)
	st.buckets = make([][]halfRef, kmax+1)
	st.pos = make([][2]int, len(candidates))
	for i, e := range st.ends {
		st.placeHalf(halfRef{i, 0}, st.deg[e.U])
		st.placeHalf(halfRef{i, 1}, st.deg[e.V])
	}
	return st, sr
}

// buildRows constructs the sorted mirror of an existing serial state's
// adjset adjacency. The engine itself uses newShardedState; this is the
// bridge the white-box differential tests use to run the read-only
// evaluator against a state the serial mutate path owns.
func buildRows(st *rewireState) *sortedRows {
	n := len(st.deg)
	sr := &sortedRows{off: make([]int, n+1), ln: make([]int32, n)}
	total := 0
	for u, d := range st.deg {
		sr.off[u] = total
		total += d
	}
	sr.off[n] = total
	sr.nbr = make([]int32, total)
	sr.cnt = make([]int32, total)
	sr.dg = make([]int32, total)
	for u := 0; u < n; u++ {
		keys, counts := st.adj.Row(u)
		o := sr.off[u]
		w := o
		for i, k := range keys {
			if k == adjset.Empty {
				continue
			}
			sr.nbr[w] = k
			sr.cnt[w] = counts[i]
			w++
		}
		sr.ln[u] = int32(w - o)
		row := sr.nbr[o:w]
		// Keep nbr/cnt aligned while sorting: insertion sort, rows are
		// small and nearly always fit in cache.
		for x := 1; x < len(row); x++ {
			for y := x; y > 0 && row[y] < row[y-1]; y-- {
				row[y], row[y-1] = row[y-1], row[y]
				sr.cnt[o+y], sr.cnt[o+y-1] = sr.cnt[o+y-1], sr.cnt[o+y]
			}
		}
		for x := o; x < w; x++ {
			sr.dg[x] = int32(st.deg[sr.nbr[x]])
		}
	}
	sr.initSig(n)
	for u := 0; u < n; u++ {
		sr.rebuildSig(int32(u))
	}
	return sr
}

// get returns the multiplicity of {u,w}: a forward scan with early exit
// on short rows (they are sorted), binary search on long ones.
func (sr *sortedRows) get(u, w int32) int32 {
	o, l := sr.off[u], int(sr.ln[u])
	row := sr.nbr[o : o+l]
	if l <= 24 {
		for x, n := range row {
			if n >= w {
				if n == w {
					return sr.cnt[o+x]
				}
				return 0
			}
		}
		return 0
	}
	lo, hi := 0, l
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < l && row[lo] == w {
		return sr.cnt[o+lo]
	}
	return 0
}

func (sr *sortedRows) find(u, w int32) int {
	o, l := sr.off[u], int(sr.ln[u])
	row := sr.nbr[o : o+l]
	lo, hi := 0, l
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return o + lo
}

// inc adds one {u,w} instance to u's row, keeping it sorted.
func (sr *sortedRows) inc(u, w int32, degW int) {
	at := sr.find(u, w)
	o, l := sr.off[u], int(sr.ln[u])
	if at < o+l && sr.nbr[at] == w {
		sr.cnt[at]++
		return
	}
	end := o + l
	copy(sr.nbr[at+1:end+1], sr.nbr[at:end])
	copy(sr.cnt[at+1:end+1], sr.cnt[at:end])
	copy(sr.dg[at+1:end+1], sr.dg[at:end])
	sr.nbr[at] = w
	sr.cnt[at] = 1
	sr.dg[at] = int32(degW)
	sr.ln[u]++
	sr.sig[int(u)*sigWords+int(sr.hw[w])] |= sr.hm[w]
}

// dec removes one {u,w} instance from u's row.
func (sr *sortedRows) dec(u, w int32) {
	at := sr.find(u, w)
	if sr.cnt[at] > 1 {
		sr.cnt[at]--
		return
	}
	end := sr.off[u] + int(sr.ln[u])
	copy(sr.nbr[at:end-1], sr.nbr[at+1:end])
	copy(sr.cnt[at:end-1], sr.cnt[at+1:end])
	copy(sr.dg[at:end-1], sr.dg[at+1:end])
	sr.ln[u]--
	sr.rebuildSig(u)
}

// tDelta is one node's triangle-count delta under a proposed swap.
type tDelta struct {
	w int32
	d int64
}

// kDelta is one degree class's triangle-sum delta under a proposed swap —
// all the accept test needs. Spans of these are what makes rejects cheap.
type kDelta struct {
	k int32
	d int64
}

// propEvaluated marks a proposal whose delta was computed in the propose
// phase (as opposed to rejected before evaluation).
const propEvaluated uint8 = 1

// proposal is one candidate edge swap: exchange the partners of half
// (e1,s1) and half (e2,s2). i,j,a,b snapshot the endpoints the propose
// phase evaluated, so the commit phase can detect staleness. t0:t1 and
// k0:k1 are the delta spans in the owning shard's scratch buffers.
type proposal struct {
	e1, e2     int32
	s1, s2     uint8
	flags      uint8
	i, j, a, b int32
	t0, t1     int32
	k0, k1     int32
}

// denseEvalMaxN bounds the graph size for which the dense mark-and-probe
// evaluator is used: its per-scratch mark arrays cost 12 bytes per node.
// Larger graphs fall back to the four-pointer merge walk, which needs no
// per-node scratch. Both evaluators emit the identical delta set, so the
// cutover never changes result bytes — it is a time/space trade only.
const denseEvalMaxN = 1 << 15

// uline is one U-side intersection hit of the dense evaluator: node w
// with its multiplicities in the rows of i and a.
type uline struct {
	w      int32
	iw, aw int32
}

// vmark is the dense evaluator's per-node V-side mark: the stamp says
// whether the entry belongs to the current evaluation, b/j are the node's
// multiplicities in the rows of b and j. One struct keeps the three
// fields on one cache line — the mark array is hit at random indices.
type vmark struct {
	stamp uint32
	b, j  int32
}

// evalScratch is the reusable buffer set of one evaluation stream — one
// per shard plus one for commit-phase re-evaluations.
type evalScratch struct {
	ds    []int64 // per-degree accumulator, always zero between proposals
	inD   []bool
	dirty []int32
	touch []tDelta // per-node deltas, consumed only on accept
	kd    []kDelta // per-degree deltas sorted by degree, drive the accept test

	// Dense-evaluator mark array (nil beyond denseEvalMaxN): one entry
	// per node, epoch-stamped so no clearing is needed between
	// proposals; ul collects U-side hits.
	vm    []vmark
	epoch uint32
	ul    []uline
}

func newEvalScratch(kmax, n int) *evalScratch {
	sc := &evalScratch{ds: make([]int64, kmax+1), inD: make([]bool, kmax+1)}
	if n <= denseEvalMaxN {
		sc.vm = make([]vmark, n)
	}
	return sc
}

// shardedRun is the engine state of one RewireSharded call on top of the
// shared rewireState.
type shardedRun struct {
	st        *rewireState
	rows      *sortedRows
	forbid    bool
	workers   int
	shards    int
	roundSize int

	round      uint32          // current round number; stamps refer to it
	forceMerge bool            // test hook, see ShardedRewireOptions.forceMergeEval
	ctx        context.Context // round-boundary cancellation; nil = never
	rngs       []*rand.Rand
	degsOf     [][]int32 // shard -> degree values it owns

	// Per-shard propose-phase outputs, reused across rounds. Only shard
	// s's job writes index s, so the propose phase is race-free.
	props   [][]proposal
	scratch []*evalScratch
	cumK    [][]int32
	cumH    [][]int32

	// Commit-phase state.
	stamp   []uint32 // node -> round of last adjacency mutation
	estamp  []uint32 // candidate edge -> round of last half re-pointing
	csc     *evalScratch
	newTerm []float64

	// Aggregate round timers (nil when untraced): the propose/commit
	// wall-clock split across every round. Observability only.
	proposeTm, commitTm *obs.Timer

	hs, quotas []int // per-round pairable-half counts and quotas
	remOrder   []int // largest-remainder allocation scratch
}

func newShardedRun(st *rewireState, rows *sortedRows, opts ShardedRewireOptions) *shardedRun {
	r := &shardedRun{
		st:         st,
		rows:       rows,
		forceMerge: opts.forceMergeEval,
		ctx:        opts.Ctx,
		forbid:     opts.ForbidDegenerate,
		workers:    opts.Workers,
		shards:     opts.shards(),
		roundSize:  opts.roundSize(),
		proposeTm:  opts.Trace.Timer("rewire/propose"),
		commitTm:   opts.Trace.Timer("rewire/commit"),
	}
	kmax := len(st.buckets) - 1
	// Assign degree buckets to shards by greedy longest-processing-time
	// on the initial half counts (size desc, degree asc): hub buckets
	// land on separate shards, so hub-heavy graphs spread their proposal
	// load instead of serializing it on one stream. The assignment is a
	// pure function of the input and stays fixed for the whole run.
	type kv struct{ k, size int }
	order := make([]kv, 0, kmax+1)
	for k := 0; k <= kmax; k++ {
		order = append(order, kv{k, len(st.buckets[k])})
	}
	slices.SortFunc(order, func(a, b kv) int {
		if a.size != b.size {
			return b.size - a.size
		}
		return a.k - b.k
	})
	r.degsOf = make([][]int32, r.shards)
	load := make([]int, r.shards)
	for _, e := range order {
		s := 0
		for t := 1; t < r.shards; t++ {
			if load[t] < load[s] {
				s = t
			}
		}
		load[s] += e.size
		r.degsOf[s] = append(r.degsOf[s], int32(e.k))
	}
	// Selection walks each shard's degrees in ascending order.
	for s := range r.degsOf {
		slices.Sort(r.degsOf[s])
	}
	r.rngs = make([]*rand.Rand, r.shards)
	r.scratch = make([]*evalScratch, r.shards)
	for s := range r.rngs {
		r.rngs[s] = sampling.SubStream(opts.Seed1, opts.Seed2, uint64(s))
		r.scratch[s] = newEvalScratch(kmax, len(st.deg))
	}
	r.props = make([][]proposal, r.shards)
	r.cumK = make([][]int32, r.shards)
	r.cumH = make([][]int32, r.shards)
	r.stamp = make([]uint32, len(st.deg))
	r.estamp = make([]uint32, len(st.ends))
	r.csc = newEvalScratch(kmax, len(st.deg))
	r.hs = make([]int, r.shards)
	r.quotas = make([]int, r.shards)
	r.remOrder = make([]int, r.shards)
	return r
}

// run drives the propose/commit rounds until the attempt budget of
// `total` proposals is spent or the context fires between rounds.
// Attempts is bumped exactly total times when the run completes — the
// same budget accounting as the serial loop; a cancelled run leaves the
// unspent budget uncounted, which is how RewireStats reports the abort.
func (r *shardedRun) run(total int, stats *RewireStats) {
	for done := 0; done < total; {
		if r.ctx != nil {
			select {
			case <-r.ctx.Done():
				// Cooperative abort at a round boundary: the committed
				// prefix of rounds is a valid (degree- and JDM-preserving)
				// graph, and no state from the abandoned rounds — RNG
				// positions included — has been touched.
				return
			default:
			}
		}
		p := min(r.roundSize, total-done)
		if !r.allocate(p) {
			// No degree bucket holds two candidate halves: every
			// remaining proposal would be rejected before evaluation.
			stats.Attempts += total - done
			return
		}
		r.round++
		stats.Rounds++
		r.proposeTm.Start()
		parallel.ForEach(r.workers, r.shards, func(s int) error {
			r.shardJob(s, r.quotas[s])
			return nil
		})
		r.proposeTm.Stop()
		r.commitTm.Start()
		r.commitRound(stats)
		r.commitTm.Stop()
		done += p
	}
}

// allocate computes each shard's proposal quota for a round of p
// proposals, proportional to its current pairable half count (buckets
// with at least two halves) via largest-remainder rounding. Reports
// whether any proposals are possible at all.
func (r *shardedRun) allocate(p int) bool {
	st := r.st
	total := 0
	for s, degs := range r.degsOf {
		h := 0
		for _, k := range degs {
			if n := len(st.buckets[k]); n >= 2 {
				h += n
			}
		}
		r.hs[s] = h
		total += h
	}
	if total == 0 {
		return false
	}
	assigned := 0
	for s := range r.quotas {
		q := p * r.hs[s] / total
		r.quotas[s] = q
		assigned += q
		r.remOrder[s] = s
	}
	if rest := p - assigned; rest > 0 {
		// Largest fractional remainder first, shard index breaking ties:
		// deterministic, and never selects a shard with no halves (its
		// remainder is zero and at least `rest` shards have a larger one).
		slices.SortFunc(r.remOrder, func(a, b int) int {
			ra, rb := p*r.hs[a]%total, p*r.hs[b]%total
			if ra != rb {
				return rb - ra
			}
			return a - b
		})
		for k := 0; k < rest; k++ {
			r.quotas[r.remOrder[k]]++
		}
	}
	return true
}

// shardJob draws and evaluates one shard's proposals for the current
// round. It reads shared state (adjacency rows, endpoints, buckets) that
// no one mutates during the propose phase and writes only shard-owned
// buffers, so jobs are race-free and their outputs independent of how
// they are scheduled onto workers.
func (r *shardedRun) shardJob(s, quota int) {
	props := r.props[s][:0]
	if quota == 0 {
		r.props[s] = props
		return
	}
	st := r.st
	rng := r.rngs[s]
	sc := r.scratch[s]
	sc.touch = sc.touch[:0]
	sc.kd = sc.kd[:0]
	// Pairable-bucket prefix sums: the shard's proposal index. Buckets
	// with fewer than two halves cannot form a swap, so they are excluded
	// from selection entirely — on hub-heavy graphs this is what keeps
	// near-singleton hub buckets from burning the attempt budget on
	// self-pairings.
	cumK, cumH := r.cumK[s][:0], r.cumH[s][:0]
	h := int32(0)
	for _, k := range r.degsOf[s] {
		if n := len(st.buckets[k]); n >= 2 {
			h += int32(n)
			cumK = append(cumK, k)
			cumH = append(cumH, h)
		}
	}
	r.cumK[s], r.cumH[s] = cumK, cumH
	for q := 0; q < quota; q++ {
		var p proposal
		if h > 0 {
			// First half uniform over the shard's pairable halves, second
			// uniform over the first's bucket — the same two-draw shape as
			// the serial engine, restricted to pairable buckets.
			x := int32(rng.IntN(int(h)))
			lo := 0 // first cumH[lo] > x; shards own a handful of buckets
			for cumH[lo] <= x {
				lo++
			}
			base := int32(0)
			if lo > 0 {
				base = cumH[lo-1]
			}
			b := st.buckets[cumK[lo]]
			h1 := b[x-base]
			h2 := b[rng.IntN(len(b))]
			p = proposal{e1: int32(h1.edge), s1: uint8(h1.side), e2: int32(h2.edge), s2: uint8(h2.side)}
			r.evalProposal(&p, sc)
		}
		props = append(props, p)
	}
	r.props[s] = props
}

// evalProposal applies the serial engine's pre-checks and, if they pass,
// computes the proposal's exact delta against the round-start state.
// Read-only on shared state.
func (r *shardedRun) evalProposal(p *proposal, sc *evalScratch) {
	st := r.st
	if p.e1 == p.e2 {
		return
	}
	i := st.endpoint(int(p.e1), int(p.s1))
	j := st.endpoint(int(p.e1), 1-int(p.s1))
	a := st.endpoint(int(p.e2), int(p.s2))
	b := st.endpoint(int(p.e2), 1-int(p.s2))
	p.i, p.j, p.a, p.b = int32(i), int32(j), int32(a), int32(b)
	if i == a || j == b {
		return
	}
	if r.forbid && (i == b || a == j || r.rows.get(int32(i), int32(b)) > 0 || r.rows.get(int32(a), int32(j)) > 0) {
		return
	}
	p.t0, p.k0 = int32(len(sc.touch)), int32(len(sc.kd))
	if !r.rows.emptyEval(int32(i), int32(j), int32(a), int32(b)) {
		r.evalSwap(sc, int32(i), int32(j), int32(a), int32(b))
	}
	p.t1, p.k1 = int32(len(sc.touch)), int32(len(sc.kd))
	p.flags = propEvaluated
}

// commitRound applies the round's proposals serially, interleaving the
// shards position-by-position — a fixed order, so the result does not
// depend on how the propose phase was scheduled.
func (r *shardedRun) commitRound(stats *RewireStats) {
	maxq := 0
	for _, q := range r.quotas {
		if q > maxq {
			maxq = q
		}
	}
	for pi := 0; pi < maxq; pi++ {
		for s := 0; s < r.shards; s++ {
			if pi < r.quotas[s] {
				r.commitOne(s, pi, stats)
			}
		}
	}
}

// commitOne re-validates one proposal against the live state and applies
// it if the clustering distance strictly decreases. The precomputed delta
// is reused when no earlier commit of this round touched any of the four
// endpoints (it is then still exact); otherwise the swap is re-evaluated
// in place — the only serial evaluation work in the engine.
func (r *shardedRun) commitOne(s, pi int, stats *RewireStats) {
	st := r.st
	p := &r.props[s][pi]
	stats.Attempts++
	if p.e1 == p.e2 {
		// Same edge drawn twice, or the zero proposal of a shard that ran
		// out of pairable halves mid-round. Either way: burn the attempt.
		return
	}
	var i, j, a, b int
	var touch []tDelta
	var kd []kDelta
	if r.estamp[p.e1] != r.round && r.estamp[p.e2] != r.round {
		// Neither edge was re-pointed this round, so the endpoints still
		// match the propose-phase snapshot and every pre-check verdict
		// stands. A proposal rejected before evaluation rejects again.
		if p.flags&propEvaluated == 0 {
			return
		}
		i, j, a, b = int(p.i), int(p.j), int(p.a), int(p.b)
		if r.stamp[i] != r.round && r.stamp[j] != r.round && r.stamp[a] != r.round && r.stamp[b] != r.round {
			// No endpoint's adjacency changed either: the precomputed
			// delta (and any forbid verdict) is still exact.
			sc := r.scratch[s]
			touch = sc.touch[p.t0:p.t1]
			kd = sc.kd[p.k0:p.k1]
			r.resolve(p, i, j, a, b, touch, kd, stats)
			return
		}
	} else {
		i = st.endpoint(int(p.e1), int(p.s1))
		j = st.endpoint(int(p.e1), 1-int(p.s1))
		a = st.endpoint(int(p.e2), int(p.s2))
		b = st.endpoint(int(p.e2), 1-int(p.s2))
		if st.deg[i] != st.deg[a] {
			// A re-pointed half landed in a different bucket; the pairing
			// no longer preserves the JDM.
			return
		}
		if i == a || j == b {
			return
		}
	}
	if r.forbid && (i == b || a == j || r.rows.get(int32(i), int32(b)) > 0 || r.rows.get(int32(a), int32(j)) > 0) {
		return
	}
	stats.Recomputed++
	sc := r.csc
	sc.touch = sc.touch[:0]
	sc.kd = sc.kd[:0]
	if !r.rows.emptyEval(int32(i), int32(j), int32(a), int32(b)) {
		r.evalSwap(sc, int32(i), int32(j), int32(a), int32(b))
	}
	touch = sc.touch
	kd = sc.kd
	r.resolve(p, i, j, a, b, touch, kd, stats)
}

// resolve runs the accept test for a validated proposal and applies the
// swap when the clustering distance strictly decreases.
func (r *shardedRun) resolve(p *proposal, i, j, a, b int, touch []tDelta, kd []kDelta, stats *RewireStats) {
	st := r.st
	// The accept test: replay the serial engine's settle — term deltas
	// accumulated in ascending degree order (kd is sorted) so the float
	// sum has one fixed order.
	newSum := st.sum
	nt := r.newTerm[:0]
	for _, e := range kd {
		v := st.termWith(int(e.k), st.sumT[e.k]+e.d)
		nt = append(nt, v)
		newSum += v - st.term[e.k]
	}
	r.newTerm = nt
	if newSum < st.sum {
		for _, td := range touch {
			st.t[td.w] += td.d
		}
		for idx, e := range kd {
			st.sumT[e.k] += e.d
			st.term[e.k] = nt[idx]
		}
		st.sum = newSum
		degJ, degB := st.deg[j], st.deg[b]
		if i != j {
			r.rows.dec(int32(i), int32(j))
			r.rows.dec(int32(j), int32(i))
		}
		if a != b {
			r.rows.dec(int32(a), int32(b))
			r.rows.dec(int32(b), int32(a))
		}
		if i != b {
			r.rows.inc(int32(i), int32(b), degB)
			r.rows.inc(int32(b), int32(i), st.deg[i])
		}
		if a != j {
			r.rows.inc(int32(a), int32(j), degJ)
			r.rows.inc(int32(j), int32(a), st.deg[a])
		}
		e1, s1 := int(p.e1), int(p.s1)
		e2, s2 := int(p.e2), int(p.s2)
		st.removeHalf(halfRef{e1, 1 - s1}, degJ)
		st.removeHalf(halfRef{e2, 1 - s2}, degB)
		st.setEndpoint(e1, 1-s1, b)
		st.setEndpoint(e2, 1-s2, j)
		st.placeHalf(halfRef{e1, 1 - s1}, degB)
		st.placeHalf(halfRef{e2, 1 - s2}, degJ)
		r.stamp[i], r.stamp[j], r.stamp[a], r.stamp[b] = r.round, r.round, r.round, r.round
		r.estamp[e1], r.estamp[e2] = r.round, r.round
		stats.Accepted++
	}
}

// add records one node's delta in both the per-node and per-degree
// accumulators.
func (sc *evalScratch) add(w, k int32, d int64) {
	sc.touch = append(sc.touch, tDelta{w, d})
	if !sc.inD[k] {
		sc.inD[k] = true
		sc.dirty = append(sc.dirty, k)
	}
	sc.ds[k] += d
}

// evalSwap appends the exact per-node (touch) and per-degree (kd) deltas
// of the swap (i,j)+(a,b) -> (i,b)+(a,j) to the scratch, never writing
// shared state — evaluations may run concurrently.
//
// For nodes outside the endpoint set {i,j,a,b} the four serial ops net to
// delta_w = (A_iw - A_aw)*(A_bw - A_jw), with the per-op common-neighbor
// sums cn1..cn4 recovered from the same products, so one ordered sweep of
// the four rows replaces the serial engine's four scans (fuseWalk; a
// gallop variant handles hub-lopsided row sets). The overlay corrections
// of half-applied ops only ever concern endpoint pairs, which the sweep
// skips; those go through a 4x4 matrix replaying the exact serial op
// order: remove(i,j), remove(a,b), add(i,b), add(a,j), each removal
// decrementing before its scan, each addition scanning before its
// increment.
//
// kd comes out sorted by degree with exact-zero deltas omitted; touch may
// repeat a node (entries sum).
func (r *shardedRun) evalSwap(sc *evalScratch, i, j, a, b int32) {
	var nodes [4]int32
	nn := 0
	idx := func(x int32) int {
		for k := 0; k < nn; k++ {
			if nodes[k] == x {
				return k
			}
		}
		nodes[nn] = x
		nn++
		return nn - 1
	}
	ii := idx(i)
	ji := idx(j)
	ai := idx(a)
	bi := idx(b)

	op1, op2, op3, op4 := i != j, a != b, i != b, a != j
	// mat holds the endpoint-pair adjacencies plus the overlay of
	// half-applied ops; the dense walk captures the pair values during
	// its row scans, the merge walk cannot see them (an endpoint on one
	// side only never aligns) and probes the rows instead.
	var mat [4][4]int64
	var cn1, cn2, cn3, cn4 int64
	if sc.vm != nil && !r.forceMerge {
		cn1, cn2, cn3, cn4 = r.denseWalk(sc, i, j, a, b, nodes, nn, op1, op2, op3, op4, &mat, ii, ji, ai, bi)
	} else {
		cn1, cn2, cn3, cn4 = r.fuseWalk(sc, i, j, a, b, nodes, nn, op1, op2, op3, op4)
		for x := 1; x < nn; x++ {
			for y := 0; y < x; y++ {
				m := int64(r.rows.get(nodes[x], nodes[y]))
				mat[x][y] = m
				mat[y][x] = m
			}
		}
	}
	deg := r.st.deg
	if nn == 4 && mat[ii][ai]|mat[ii][bi]|mat[ai][ji]|mat[ji][bi] == 0 {
		// No cross pair (i,a), (i,b), (a,j), (j,b) is adjacent, so every
		// endpoint-fixup product carries a zero factor — the always-set
		// pair adjacencies A(i,j), A(a,b) only ever multiply a cross
		// pair. Skip the overlay replay; the walk's cn values are final.
		if d := cn3 - cn1; d != 0 {
			sc.add(i, int32(deg[i]), d)
		}
		if d := cn4 - cn1; d != 0 {
			sc.add(j, int32(deg[j]), d)
		}
		if d := cn4 - cn2; d != 0 {
			sc.add(a, int32(deg[a]), d)
		}
		if d := cn3 - cn2; d != 0 {
			sc.add(b, int32(deg[b]), d)
		}
		sc.drain()
		return
	}
	opFix := func(ui, vi int, sign int64) int64 {
		var cn int64
		u, v := nodes[ui], nodes[vi]
		for k := 0; k < nn; k++ {
			w := nodes[k]
			if w == u || w == v {
				continue
			}
			pu, pv := mat[ui][k], mat[vi][k]
			if pu > 0 && pv > 0 {
				prod := pu * pv
				cn += prod
				sc.add(w, int32(deg[w]), sign*prod)
			}
		}
		return cn
	}
	if op1 {
		mat[ii][ji]--
		mat[ji][ii]--
		cn1 += opFix(ii, ji, -1)
	}
	if op2 {
		mat[ai][bi]--
		mat[bi][ai]--
		cn2 += opFix(ai, bi, -1)
	}
	if op3 {
		cn3 += opFix(ii, bi, +1)
		mat[ii][bi]++
		mat[bi][ii]++
	}
	if op4 {
		cn4 += opFix(ai, ji, +1)
		mat[ai][ji]++
		mat[ji][ai]++
	}
	if d := cn3 - cn1; d != 0 {
		sc.add(i, int32(deg[i]), d)
	}
	if d := cn4 - cn1; d != 0 {
		sc.add(j, int32(deg[j]), d)
	}
	if d := cn4 - cn2; d != 0 {
		sc.add(a, int32(deg[a]), d)
	}
	if d := cn3 - cn2; d != 0 {
		sc.add(b, int32(deg[b]), d)
	}
	sc.drain()
}

// drain flushes the per-degree accumulator into a degree-sorted kd span.
// Insertion sort: the dirty set is a handful of degrees.
func (sc *evalScratch) drain() {
	dirty := sc.dirty
	for x := 1; x < len(dirty); x++ {
		for y := x; y > 0 && dirty[y] < dirty[y-1]; y-- {
			dirty[y], dirty[y-1] = dirty[y-1], dirty[y]
		}
	}
	for _, k := range dirty {
		if d := sc.ds[k]; d != 0 {
			sc.kd = append(sc.kd, kDelta{k, d})
		}
		sc.ds[k] = 0
		sc.inD[k] = false
	}
	sc.dirty = sc.dirty[:0]
}

const walkEnd = int32(0x7fffffff)

// fuseWalk performs the fused sweep: it intersects the merged unions
// N(i)|N(a) and N(b)|N(j), and for every aligned non-endpoint node w
// emits delta_w and accumulates the four per-op common-neighbor sums.
// Rows are short (mean distinct degree of the workload), so a plain
// four-pointer merge beats galloping; proposals whose row sets provably
// cannot intersect never reach this walk at all — the signature filter
// in evalProposal rejects them first.
func (r *shardedRun) fuseWalk(sc *evalScratch, i, j, a, b int32, nodes [4]int32, nn int, op1, op2, op3, op4 bool) (cn1, cn2, cn3, cn4 int64) {
	sr := r.rows
	pi, ei := sr.off[i], sr.off[i]+int(sr.ln[i])
	pa, ea := sr.off[a], sr.off[a]+int(sr.ln[a])
	pb, eb := sr.off[b], sr.off[b]+int(sr.ln[b])
	pj, ej := sr.off[j], sr.off[j]+int(sr.ln[j])
	n0, n1, n2, n3 := nodes[0], int32(-1), int32(-1), int32(-1)
	if nn > 1 {
		n1 = nodes[1]
	}
	if nn > 2 {
		n2 = nodes[2]
	}
	if nn > 3 {
		n3 = nodes[3]
	}

	wi, wa, wb, wj := walkEnd, walkEnd, walkEnd, walkEnd
	if pi < ei {
		wi = sr.nbr[pi]
	}
	if pa < ea {
		wa = sr.nbr[pa]
	}
	if pb < eb {
		wb = sr.nbr[pb]
	}
	if pj < ej {
		wj = sr.nbr[pj]
	}
	for {
		wu := wi
		if wa < wu {
			wu = wa
		}
		wv := wb
		if wj < wv {
			wv = wj
		}
		if wu == walkEnd || wv == walkEnd {
			break
		}
		if wu < wv {
			if wi == wu {
				pi++
				wi = walkEnd
				if pi < ei {
					wi = sr.nbr[pi]
				}
			}
			if wa == wu {
				pa++
				wa = walkEnd
				if pa < ea {
					wa = sr.nbr[pa]
				}
			}
			continue
		}
		if wv < wu {
			if wb == wv {
				pb++
				wb = walkEnd
				if pb < eb {
					wb = sr.nbr[pb]
				}
			}
			if wj == wv {
				pj++
				wj = walkEnd
				if pj < ej {
					wj = sr.nbr[pj]
				}
			}
			continue
		}
		w := wu
		var iw, aw, bw, jw int64
		var k int32
		if wi == w {
			iw = int64(sr.cnt[pi])
			k = sr.dg[pi]
			pi++
			wi = walkEnd
			if pi < ei {
				wi = sr.nbr[pi]
			}
		}
		if wa == w {
			aw = int64(sr.cnt[pa])
			k = sr.dg[pa]
			pa++
			wa = walkEnd
			if pa < ea {
				wa = sr.nbr[pa]
			}
		}
		if wb == w {
			bw = int64(sr.cnt[pb])
			k = sr.dg[pb]
			pb++
			wb = walkEnd
			if pb < eb {
				wb = sr.nbr[pb]
			}
		}
		if wj == w {
			jw = int64(sr.cnt[pj])
			k = sr.dg[pj]
			pj++
			wj = walkEnd
			if pj < ej {
				wj = sr.nbr[pj]
			}
		}
		if w == n0 || w == n1 || w == n2 || w == n3 {
			continue
		}
		pij, pab, pib, paj := iw*jw, aw*bw, iw*bw, aw*jw
		var d int64
		if op1 {
			cn1 += pij
			d -= pij
		}
		if op2 {
			cn2 += pab
			d -= pab
		}
		if op3 {
			cn3 += pib
			d += pib
		}
		if op4 {
			cn4 += paj
			d += paj
		}
		if d != 0 {
			sc.add(w, k, d)
		}
	}
	return cn1, cn2, cn3, cn4
}

// denseWalk is the dense mark-and-probe evaluator: it computes the same
// delta set as fuseWalk by marking the V-side rows (N(b), N(j)) in the
// scratch's epoch-stamped per-node mark array and probing the marks while
// scanning the U-side rows (N(i), N(a)). Four short linear scans with one
// L1-resident random access each replace the merge's data-dependent
// branching, and the scans capture the six endpoint-pair adjacencies as
// they stream by, filling mat for free (aliased endpoints leave their
// diagonal entries zero, matching the probe-based fill: a row never
// contains its own node). Emission order differs from fuseWalk, but the
// emitted multiset of (node, delta) pairs — and therefore the
// degree-sorted kd span and every downstream byte — is identical: deltas
// are integers and their accumulation is order-free.
func (r *shardedRun) denseWalk(sc *evalScratch, i, j, a, b int32, nodes [4]int32, nn int, op1, op2, op3, op4 bool, mat *[4][4]int64, ii, ji, ai, bi int) (cn1, cn2, cn3, cn4 int64) {
	sr := r.rows
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.vm)
		sc.epoch = 1
	}
	cur := sc.epoch
	vm := sc.vm
	var aij, aia, aib, aaj, ajb, aab int64
	o, l := sr.off[b], int(sr.ln[b])
	for x := o; x < o+l; x++ {
		w := sr.nbr[x]
		c := sr.cnt[x]
		vm[w] = vmark{stamp: cur, b: c}
		if w == j {
			ajb = int64(c)
		}
		if w == i {
			aib = int64(c)
		}
		if w == a {
			aab = int64(c)
		}
	}
	o, l = sr.off[j], int(sr.ln[j])
	for x := o; x < o+l; x++ {
		w := sr.nbr[x]
		c := sr.cnt[x]
		if vm[w].stamp == cur {
			vm[w].j = c
		} else {
			vm[w] = vmark{stamp: cur, j: c}
		}
		if w == i {
			aij = int64(c)
		}
		if w == a {
			aaj = int64(c)
		}
	}
	ul := sc.ul[:0]
	o, l = sr.off[i], int(sr.ln[i])
	for x := o; x < o+l; x++ {
		w := sr.nbr[x]
		if w == a {
			aia = int64(sr.cnt[x])
		}
		if vm[w].stamp == cur {
			ul = append(ul, uline{w, sr.cnt[x], 0})
		}
	}
	o, l = sr.off[a], int(sr.ln[a])
	for x := o; x < o+l; x++ {
		if w := sr.nbr[x]; vm[w].stamp == cur {
			hit := false
			for t := range ul {
				if ul[t].w == w {
					ul[t].aw = sr.cnt[x]
					hit = true
					break
				}
			}
			if !hit {
				ul = append(ul, uline{w, 0, sr.cnt[x]})
			}
		}
	}
	sc.ul = ul
	set := func(x, y int, v int64) {
		if x != y {
			mat[x][y] = v
			mat[y][x] = v
		}
	}
	set(ii, ji, aij)
	set(ii, ai, aia)
	set(ii, bi, aib)
	set(ai, ji, aaj)
	set(ji, bi, ajb)
	set(ai, bi, aab)
	n0, n1, n2, n3 := nodes[0], int32(-1), int32(-1), int32(-1)
	if nn > 1 {
		n1 = nodes[1]
	}
	if nn > 2 {
		n2 = nodes[2]
	}
	if nn > 3 {
		n3 = nodes[3]
	}
	deg := r.st.deg
	for _, e := range ul {
		w := e.w
		if w == n0 || w == n1 || w == n2 || w == n3 {
			continue
		}
		iw, aw := int64(e.iw), int64(e.aw)
		bw, jw := int64(vm[w].b), int64(vm[w].j)
		pij, pab, pib, paj := iw*jw, aw*bw, iw*bw, aw*jw
		var d int64
		if op1 {
			cn1 += pij
			d -= pij
		}
		if op2 {
			cn2 += pab
			d -= pab
		}
		if op3 {
			cn3 += pib
			d += pib
		}
		if op4 {
			cn4 += paj
			d += paj
		}
		if d != 0 {
			sc.add(w, int32(deg[w]), d)
		}
	}
	return cn1, cn2, cn3, cn4
}
