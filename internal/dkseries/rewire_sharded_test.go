package dkseries

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"sgr/internal/graph"
)

// shardedInput reuses the randomized differential inputs and spikes them
// with explicit self-loops so the overlay evaluator's loop-handling paths
// run (HolmeKim alone produces none, and loops only arise mid-rewiring).
func shardedInput(seed uint64, n int) (fixed, cands []graph.Edge, target map[int]float64) {
	fixed, cands, target = diffInput(seed, n)
	for i := 0; i < 3 && i < len(cands); i++ {
		v := cands[i*11%len(cands)].U
		cands = append(cands, graph.Edge{U: v, V: v})
	}
	return fixed, cands, target
}

func nodeCount(fixed, cands []graph.Edge) int {
	n := 0
	for _, e := range append(append([]graph.Edge(nil), fixed...), cands...) {
		if e.U >= n {
			n = e.U + 1
		}
		if e.V >= n {
			n = e.V + 1
		}
	}
	return n
}

// TestRewireShardedWorkerInvariance is the acceptance guard of the
// parallel engine: stats (including float bits), the output graph and the
// final candidate endpoints must be byte-identical at every worker count.
// Run under -race this also exercises the propose-phase concurrency.
func TestRewireShardedWorkerInvariance(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		fixed, cands, target := shardedInput(seed, 120+int(seed)*40)
		n := nodeCount(fixed, cands)
		for _, forbid := range []bool{false, true} {
			type out struct {
				g     *graph.Graph
				st    RewireStats
				cands []graph.Edge
			}
			var ref *out
			for _, workers := range []int{1, 2, 8} {
				cc := append([]graph.Edge(nil), cands...)
				g, st := RewireSharded(n, fixed, cc, ShardedRewireOptions{
					TargetClustering: target,
					RC:               6,
					Seed1:            seed,
					Seed2:            seed ^ 0xabcdef,
					ForbidDegenerate: forbid,
					Workers:          workers,
				})
				cur := &out{g, st, cc}
				if ref == nil {
					ref = cur
					if st.Accepted == 0 {
						t.Errorf("seed %d forbid=%v: sharded rewiring accepted nothing — weak input", seed, forbid)
					}
					continue
				}
				if cur.st != ref.st {
					t.Fatalf("seed %d forbid=%v workers=%d: stats diverge: %+v vs %+v",
						seed, forbid, workers, cur.st, ref.st)
				}
				if math.Float64bits(cur.st.FinalL1) != math.Float64bits(ref.st.FinalL1) {
					t.Fatalf("seed %d forbid=%v workers=%d: FinalL1 bits diverge", seed, forbid, workers)
				}
				if !graph.Equal(cur.g, ref.g) {
					t.Fatalf("seed %d forbid=%v workers=%d: output graphs diverge", seed, forbid, workers)
				}
				for i := range cur.cands {
					if cur.cands[i] != ref.cands[i] {
						t.Fatalf("seed %d forbid=%v workers=%d: candidate %d endpoints diverge",
							seed, forbid, workers, i)
					}
				}
			}
		}
	}
}

// TestRewireShardedShapeInvariance pins the other half of the contract:
// Shards and RoundSize DO select the trajectory (they are part of the
// output contract), while Workers never does — even for non-default
// shard shapes.
func TestRewireShardedShapeInvariance(t *testing.T) {
	fixed, cands, target := shardedInput(3, 150)
	n := nodeCount(fixed, cands)
	run := func(workers, shards, roundSize int) RewireStats {
		cc := append([]graph.Edge(nil), cands...)
		_, st := RewireSharded(n, fixed, cc, ShardedRewireOptions{
			TargetClustering: target,
			RC:               6,
			Seed1:            7,
			Seed2:            11,
			Workers:          workers,
			Shards:           shards,
			RoundSize:        roundSize,
		})
		return st
	}
	odd := run(1, 3, 17) // stress quota allocation with awkward shapes
	if odd != run(8, 3, 17) {
		t.Fatal("workers changed the result at non-default shard shape")
	}
	def := run(1, 0, 0)
	if odd == def {
		t.Fatal("distinct shard shapes produced identical stats — shape is not keying the trajectory")
	}
}

// TestRewireShardedDeltaExact is the white-box differential behind the
// read-only evaluator: for random swap proposals, evalSwap's predicted
// per-node triangle deltas and the sorted-dirty accept sum must match
// what the serial engine's mutate path (removeEdge/addEdge/settleDirty)
// actually produces — bit for bit on the float side.
func TestRewireShardedDeltaExact(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		fixed, cands, target := shardedInput(seed, 100+int(seed)*25)
		n := nodeCount(fixed, cands)
		st := newRewireState(n, fixed, cands, target)
		run := &shardedRun{st: st, rows: buildRows(st)}
		sc := newEvalScratch(len(st.buckets)-1, len(st.deg))
		r := rand.New(rand.NewPCG(seed, 0xd1ff))
		kmax := len(st.buckets) - 1
		dsum := make([]int64, kmax+1)
		trials, exercised := 200, 0
		for trial := 0; trial < trials; trial++ {
			e1 := r.IntN(len(st.ends))
			e2 := r.IntN(len(st.ends))
			if e1 == e2 {
				continue
			}
			s1, s2 := r.IntN(2), r.IntN(2)
			i := st.endpoint(e1, s1)
			j := st.endpoint(e1, 1-s1)
			a := st.endpoint(e2, s2)
			b := st.endpoint(e2, 1-s2)
			if i == a || j == b {
				continue
			}
			exercised++

			sc.touch, sc.kd = sc.touch[:0], sc.kd[:0]
			run.evalSwap(sc, int32(i), int32(j), int32(a), int32(b))
			pred := map[int32]int64{}
			for _, td := range sc.touch {
				pred[td.w] += td.d
				dsum[st.deg[td.w]] += td.d
			}
			// The kd span must agree with an independent per-degree
			// aggregation of touch, be degree-sorted, and omit zeros.
			predSum := st.sum
			prevK := int32(-1)
			for _, e := range sc.kd {
				if e.k <= prevK {
					t.Fatalf("seed %d trial %d: kd not strictly degree-sorted", seed, trial)
				}
				prevK = e.k
				if e.d != dsum[e.k] {
					t.Fatalf("seed %d trial %d: kd[%d] = %d, touch aggregates to %d",
						seed, trial, e.k, e.d, dsum[e.k])
				}
				predSum += st.termWith(int(e.k), st.sumT[e.k]+e.d) - st.term[e.k]
			}
			for k, d := range dsum {
				if d == 0 {
					continue
				}
				found := false
				for _, e := range sc.kd {
					if int(e.k) == k {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d trial %d: degree %d missing from kd", seed, trial, k)
				}
			}

			t0 := append([]int64(nil), st.t...)
			sumT0 := append([]int64(nil), st.sumT...)

			// Ground truth: the serial mutate path.
			st.removeEdge(i, j)
			st.removeEdge(a, b)
			st.addEdge(i, b)
			st.addEdge(a, j)
			st.settleDirty()

			for w := 0; w < n; w++ {
				if st.t[w] != t0[w]+pred[int32(w)] {
					t.Fatalf("seed %d trial %d: t[%d] = %d, predicted %d (was %d)",
						seed, trial, w, st.t[w], t0[w]+pred[int32(w)], t0[w])
				}
			}
			for k := range st.sumT {
				if st.sumT[k] != sumT0[k]+dsum[k] {
					t.Fatalf("seed %d trial %d: sumT[%d] diverges", seed, trial, k)
				}
			}
			if math.Float64bits(st.sum) != math.Float64bits(predSum) {
				t.Fatalf("seed %d trial %d: accept sum bits diverge: serial %v sharded %v",
					seed, trial, st.sum, predSum)
			}

			// Keep some mutations (re-pointing halves like an accept) so later
			// trials run against evolved states with loops and multi-edges;
			// revert the rest. The sorted-row mirror only tracks the serial
			// ground-truth mutations through a rebuild.
			if trial%3 == 0 {
				st.removeHalf(halfRef{e1, 1 - s1}, st.deg[j])
				st.removeHalf(halfRef{e2, 1 - s2}, st.deg[b])
				st.setEndpoint(e1, 1-s1, b)
				st.setEndpoint(e2, 1-s2, j)
				st.placeHalf(halfRef{e1, 1 - s1}, st.deg[b])
				st.placeHalf(halfRef{e2, 1 - s2}, st.deg[j])
				run.rows = buildRows(st)
			} else {
				st.removeEdge(i, b)
				st.removeEdge(a, j)
				st.addEdge(i, j)
				st.addEdge(a, b)
				st.settleDirty()
			}
			for k := range dsum {
				dsum[k] = 0
			}
		}
		if exercised < trials/2 {
			t.Fatalf("seed %d: only %d/%d trials exercised the evaluator", seed, exercised, trials)
		}
	}
}

// TestRewireShardedInvariants checks the Algorithm-6 conservation laws on
// the parallel engine's output: degree vector and joint degree matrix are
// untouched, fixed edges survive verbatim, the attempt budget is spent
// exactly, and the distance never gets worse.
func TestRewireShardedInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		fixed, cands, target := shardedInput(seed, 140)
		n := nodeCount(fixed, cands)
		before := graph.New(n)
		for _, e := range append(append([]graph.Edge(nil), fixed...), cands...) {
			before.AddEdge(e.U, e.V)
		}
		cc := append([]graph.Edge(nil), cands...)
		g, st := RewireSharded(n, fixed, cc, ShardedRewireOptions{
			TargetClustering: target,
			RC:               6,
			Seed1:            seed,
			Seed2:            seed * 3,
		})
		if want := int(6 * float64(len(cands))); st.Attempts != want {
			t.Fatalf("seed %d: attempts %d, want exactly %d", seed, st.Attempts, want)
		}
		if st.FinalL1 > st.InitialL1 {
			t.Fatalf("seed %d: distance got worse: %g -> %g", seed, st.InitialL1, st.FinalL1)
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != before.Degree(v) {
				t.Fatalf("seed %d: degree of %d changed: %d -> %d", seed, v, before.Degree(v), g.Degree(v))
			}
		}
		jb, ja := before.JointDegreeMatrix(), g.JointDegreeMatrix()
		if len(jb) != len(ja) {
			t.Fatalf("seed %d: JDM support changed", seed)
		}
		for k, v := range jb {
			if ja[k] != v {
				t.Fatalf("seed %d: JDM[%v] changed: %d -> %d", seed, k, v, ja[k])
			}
		}
		// Fixed edges must appear in the output with at least their input
		// multiplicity (candidates may stack on top).
		fm := map[graph.Edge]int{}
		for _, e := range fixed {
			if e.V < e.U {
				e.U, e.V = e.V, e.U
			}
			fm[e]++
		}
		om := map[graph.Edge]int{}
		for _, e := range g.Edges() {
			if e.V < e.U {
				e.U, e.V = e.V, e.U
			}
			om[e]++
		}
		for e, c := range fm {
			if om[e] < c {
				t.Fatalf("seed %d: fixed edge %v lost", seed, e)
			}
		}
	}
}

// TestRewireShardedQuality keeps the engines honest against each other:
// on identical inputs and budgets the sharded trajectory differs from the
// serial one, but it must converge comparably — the whole point of the
// rewiring phase.
func TestRewireShardedQuality(t *testing.T) {
	var serialSum, shardedSum float64
	for seed := uint64(1); seed <= 4; seed++ {
		fixed, cands, target := diffInput(seed, 160)
		n := nodeCount(fixed, cands)
		cs := append([]graph.Edge(nil), cands...)
		_, serial := Rewire(n, fixed, cs, RewireOptions{
			TargetClustering: target, RC: 10,
			Rand: rand.New(rand.NewPCG(seed, 42)),
		})
		cp := append([]graph.Edge(nil), cands...)
		_, sharded := RewireSharded(n, fixed, cp, ShardedRewireOptions{
			TargetClustering: target, RC: 10, Seed1: seed, Seed2: 42,
		})
		serialSum += serial.FinalL1
		shardedSum += sharded.FinalL1
		if sharded.Accepted == 0 {
			t.Fatalf("seed %d: sharded engine accepted nothing", seed)
		}
	}
	// Averaged over seeds the sharded engine must land within 20% of the
	// serial engine's final distance (it usually lands below: the pairable
	// index stops it wasting draws on unpairable buckets).
	if shardedSum > serialSum*1.2 {
		t.Fatalf("sharded converges worse than serial: avg L1 %.4f vs %.4f",
			shardedSum/4, serialSum/4)
	}
}

// TestShardedStateMatchesSerial pins the sharded engine's direct state
// constructor (sorted rows from edges, triangles by row intersection) to
// the serial newRewireState: every scalar, array and float bit must
// match, and the direct rows must equal buildRows over the serial state.
func TestShardedStateMatchesSerial(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		fixed, cands, target := shardedInput(seed, 300)
		n := nodeCount(fixed, cands)
		ref := newRewireState(n, fixed, cands, target)
		refRows := buildRows(ref)
		st, rows := newShardedState(n, fixed, cands, target)

		if !slices.Equal(st.deg, ref.deg) || !slices.Equal(st.t, ref.t) {
			t.Fatalf("seed %d: deg/t mismatch", seed)
		}
		if !slices.Equal(st.nk, ref.nk) || !slices.Equal(st.sumT, ref.sumT) {
			t.Fatalf("seed %d: nk/sumT mismatch", seed)
		}
		for k := range ref.tgt {
			if math.Float64bits(st.tgt[k]) != math.Float64bits(ref.tgt[k]) ||
				math.Float64bits(st.term[k]) != math.Float64bits(ref.term[k]) {
				t.Fatalf("seed %d: tgt/term bits differ at k=%d", seed, k)
			}
		}
		if math.Float64bits(st.normC) != math.Float64bits(ref.normC) ||
			math.Float64bits(st.sum) != math.Float64bits(ref.sum) {
			t.Fatalf("seed %d: normC/sum bits differ", seed)
		}
		if !slices.Equal(st.ends, ref.ends) || !slices.Equal(st.pos, ref.pos) {
			t.Fatalf("seed %d: ends/pos mismatch", seed)
		}
		if len(st.buckets) != len(ref.buckets) {
			t.Fatalf("seed %d: bucket count mismatch", seed)
		}
		for k := range ref.buckets {
			if !slices.Equal(st.buckets[k], ref.buckets[k]) {
				t.Fatalf("seed %d: bucket %d mismatch", seed, k)
			}
		}
		if !slices.Equal(rows.off, refRows.off) || !slices.Equal(rows.ln, refRows.ln) {
			t.Fatalf("seed %d: row shape mismatch", seed)
		}
		for u := 0; u < n; u++ {
			o, l := rows.off[u], int(rows.ln[u])
			if !slices.Equal(rows.nbr[o:o+l], refRows.nbr[o:o+l]) ||
				!slices.Equal(rows.cnt[o:o+l], refRows.cnt[o:o+l]) ||
				!slices.Equal(rows.dg[o:o+l], refRows.dg[o:o+l]) {
				t.Fatalf("seed %d: row %d content mismatch", seed, u)
			}
		}
	}
}

// TestRewireShardedEvaluatorEquivalence pins the two proposal evaluators
// to each other: the dense mark-and-probe walk (used for graphs up to
// denseEvalMaxN nodes) and the ordered-merge walk must drive identical
// trajectories — same stats bits, same output graph, same final candidate
// endpoints. The walks emit per-node deltas in different orders, but
// integer accumulation commutes and kd spans are degree-sorted at drain,
// so any divergence here is an evaluator bug, not float noise.
func TestRewireShardedEvaluatorEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		fixed, cands, target := shardedInput(seed, 140+int(seed)*30)
		n := nodeCount(fixed, cands)
		for _, forbid := range []bool{false, true} {
			var refG *graph.Graph
			var refSt RewireStats
			var refCands []graph.Edge
			for _, merge := range []bool{false, true} {
				cc := append([]graph.Edge(nil), cands...)
				g, st := RewireSharded(n, fixed, cc, ShardedRewireOptions{
					TargetClustering: target,
					RC:               6,
					Seed1:            seed,
					Seed2:            seed ^ 0xfeed,
					ForbidDegenerate: forbid,
					forceMergeEval:   merge,
				})
				if !merge {
					refG, refSt, refCands = g, st, cc
					if st.Accepted == 0 {
						t.Errorf("seed %d forbid=%v: accepted nothing — weak input", seed, forbid)
					}
					continue
				}
				if st != refSt {
					t.Fatalf("seed %d forbid=%v: merge evaluator stats diverge: %+v vs %+v",
						seed, forbid, st, refSt)
				}
				if math.Float64bits(st.FinalL1) != math.Float64bits(refSt.FinalL1) {
					t.Fatalf("seed %d forbid=%v: FinalL1 bits diverge across evaluators", seed, forbid)
				}
				if !graph.Equal(g, refG) {
					t.Fatalf("seed %d forbid=%v: output graphs diverge across evaluators", seed, forbid)
				}
				for i := range cc {
					if cc[i] != refCands[i] {
						t.Fatalf("seed %d forbid=%v: candidate %d endpoints diverge across evaluators",
							seed, forbid, i)
					}
				}
			}
		}
	}
}
