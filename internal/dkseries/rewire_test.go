package dkseries

import (
	"math"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func TestRewirePreservesDegreesAndJDM(t *testing.T) {
	src := gen.HolmeKim(300, 3, 0.6, rng(10))
	dv, _ := FromGraph(src)
	jdm := JDMFromGraph(src)
	res, err := Build(graph.New(0), nil, dv, jdm, rng(11))
	if err != nil {
		t.Fatal(err)
	}
	target := DegreeClustering(src)
	out, stats := Rewire(src.N(), nil, res.Added, RewireOptions{
		TargetClustering: target,
		RC:               30,
		Rand:             rng(12),
	})
	if stats.Accepted == 0 {
		t.Fatal("expected some accepted rewirings")
	}
	verifyRealization(t, out, dv, jdm)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRewireDecreasesClusteringDistance(t *testing.T) {
	src := gen.HolmeKim(400, 3, 0.8, rng(13))
	dv, _ := FromGraph(src)
	jdm := JDMFromGraph(src)
	res, err := Build(graph.New(0), nil, dv, jdm, rng(14))
	if err != nil {
		t.Fatal(err)
	}
	target := DegreeClustering(src)
	out, stats := Rewire(src.N(), nil, res.Added, RewireOptions{
		TargetClustering: target,
		RC:               50,
		Rand:             rng(15),
	})
	if stats.FinalL1 >= stats.InitialL1 {
		t.Fatalf("rewiring did not improve: initial %v final %v", stats.InitialL1, stats.FinalL1)
	}
	// The reported final distance must match a from-scratch recomputation.
	recomputed := clusteringL1(out, target)
	if math.Abs(recomputed-stats.FinalL1) > 1e-9 {
		t.Fatalf("incremental distance drifted: incremental %v recomputed %v",
			stats.FinalL1, recomputed)
	}
}

// clusteringL1 recomputes the normalized L1 distance between g's
// degree-dependent clustering and the target, from scratch.
func clusteringL1(g *graph.Graph, target map[int]float64) float64 {
	present := DegreeClustering(g)
	num, den := 0.0, 0.0
	kmax := g.MaxDegree()
	for k := range target {
		if k > kmax {
			kmax = k
		}
	}
	for k := 1; k <= kmax; k++ {
		num += math.Abs(present[k] - target[k])
		den += target[k]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestRewireFixedEdgesUntouched(t *testing.T) {
	src := gen.HolmeKim(200, 3, 0.6, rng(16))
	// Split edges: first half fixed, second half candidates.
	edges := src.Edges()
	half := len(edges) / 2
	fixed := edges[:half]
	cands := append([]graph.Edge(nil), edges[half:]...)
	target := map[int]float64{3: 0.9, 4: 0.8, 5: 0.5}
	out, _ := Rewire(src.N(), fixed, cands, RewireOptions{
		TargetClustering: target,
		RC:               20,
		Rand:             rng(17),
	})
	// All fixed edges must still exist.
	for _, e := range fixed {
		if !out.HasEdge(e.U, e.V) {
			t.Fatalf("fixed edge (%d,%d) removed", e.U, e.V)
		}
	}
	// Degrees must be preserved overall.
	for u := 0; u < src.N(); u++ {
		if out.Degree(u) != src.Degree(u) {
			t.Fatalf("degree of %d changed: %d -> %d", u, src.Degree(u), out.Degree(u))
		}
	}
	if out.M() != src.M() {
		t.Fatalf("edge count changed: %d -> %d", out.M(), src.M())
	}
}

func TestRewireNoCandidatesIsIdentity(t *testing.T) {
	g := gen.HolmeKim(50, 2, 0.5, rng(18))
	out, stats := Rewire(g.N(), g.Edges(), nil, RewireOptions{
		TargetClustering: map[int]float64{2: 0.5},
		RC:               100,
		Rand:             rng(19),
	})
	if stats.Attempts != 0 {
		t.Fatal("no candidates must mean no attempts")
	}
	if out.M() != g.M() {
		t.Fatal("graph changed without candidates")
	}
}

func TestRewireZeroTargetSkips(t *testing.T) {
	g := gen.HolmeKim(50, 2, 0.5, rng(20))
	_, stats := Rewire(g.N(), nil, g.Edges(), RewireOptions{
		TargetClustering: nil,
		RC:               100,
		Rand:             rng(21),
	})
	if stats.Attempts != 0 {
		t.Fatal("zero target must skip rewiring")
	}
}

func TestRewireHandlesLoopsAndMultiEdges(t *testing.T) {
	// A multigraph with loops among the candidates must not corrupt state.
	g := graph.New(6)
	edges := []graph.Edge{{U: 0, V: 0}, {U: 1, V: 2}, {U: 1, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5}, {U: 0, V: 1}, {U: 2, V: 3}}
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	target := map[int]float64{2: 1.0, 3: 1.0}
	out, _ := Rewire(6, nil, append([]graph.Edge(nil), edges...), RewireOptions{
		TargetClustering: target,
		RC:               200,
		Rand:             rng(22),
	})
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 6; u++ {
		if out.Degree(u) != g.Degree(u) {
			t.Fatalf("degree of %d changed", u)
		}
	}
}

func TestDK0PreservesNM(t *testing.T) {
	g := gen.HolmeKim(200, 3, 0.5, rng(23))
	d0 := DK0(g, rng(24))
	if d0.N() != g.N() || d0.M() != g.M() {
		t.Fatal("0K must preserve n and m")
	}
}

func TestDK1PreservesDegrees(t *testing.T) {
	g := gen.HolmeKim(200, 3, 0.5, rng(25))
	d1 := DK1(g, rng(26))
	for u := 0; u < g.N(); u++ {
		if d1.Degree(u) != g.Degree(u) {
			t.Fatalf("1K degree of %d: %d want %d", u, d1.Degree(u), g.Degree(u))
		}
	}
}

func TestDK2PreservesJDM(t *testing.T) {
	g := gen.HolmeKim(250, 3, 0.5, rng(27))
	d2, err := DK2(g, rng(28))
	if err != nil {
		t.Fatal(err)
	}
	dv, _ := FromGraph(g)
	verifyRealization(t, d2, dv, JDMFromGraph(g))
}

func TestDK25ImprovesClustering(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.8, rng(29))
	d25, stats, err := DK25(g, 30, rng(30))
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalL1 >= stats.InitialL1 {
		t.Fatalf("2.5K rewiring did not improve: %v -> %v", stats.InitialL1, stats.FinalL1)
	}
	dv, _ := FromGraph(g)
	verifyRealization(t, d25, dv, JDMFromGraph(g))
}

func TestDegreeClusteringExactValues(t *testing.T) {
	// Triangle: c(2) = 1.
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	c := DegreeClustering(tri)
	if math.Abs(c[2]-1) > 1e-12 {
		t.Fatalf("triangle c(2) = %v", c[2])
	}
	// Star: center c(k)=0, leaves c(1)=0.
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	c = DegreeClustering(star)
	for k, v := range c {
		if v != 0 {
			t.Fatalf("star c(%d) = %v", k, v)
		}
	}
}
