// Package dkseries implements the dK-series machinery of Sec. III-C: target
// degree vectors and joint degree matrices with their realizability
// conditions (DV-1..DV-3, JDM-1..JDM-4), half-edge graph construction that
// extends a fixed base subgraph (Algorithm 5), clustering-targeted edge
// rewiring with incremental triangle maintenance (Algorithm 6), and
// standalone 0K/1K/2K/2.5K graph generators.
//
// Rewiring ships as two engines. Rewire is the serial reference: it
// mutates the adjacency on every attempt and reverts on rejection, and
// its trajectory is frozen byte-for-byte against the map-based
// implementation it replaced. RewireSharded is the parallel engine the
// restoration pipeline runs: deterministic shards propose read-only from
// independent PCG sub-streams and accepted swaps merge in fixed order,
// so its output is byte-identical at any worker count (see the
// rewire_sharded.go file comment for the full determinism contract).
// The engines share state and accept semantics but not proposal
// sequences: for one seed they produce different, equally valid
// rewirings.
package dkseries

import (
	"fmt"

	"sgr/internal/graph"
)

// DegreeVector is a target degree vector {n*(k)}: index k holds the number
// of nodes that must have degree k in the generated graph. Index 0 is
// unused and must stay zero (the paper's graphs have no isolated nodes).
type DegreeVector []int

// NewDegreeVector returns an all-zero vector supporting degrees 1..kmax.
func NewDegreeVector(kmax int) DegreeVector { return make(DegreeVector, kmax+1) }

// KMax returns the largest supported degree.
func (dv DegreeVector) KMax() int { return len(dv) - 1 }

// NumNodes returns the total number of nodes, sum_k n(k).
func (dv DegreeVector) NumNodes() int {
	s := 0
	for _, c := range dv {
		s += c
	}
	return s
}

// DegreeSum returns sum_k k*n(k) (twice the edge count of any realization).
func (dv DegreeVector) DegreeSum() int {
	s := 0
	for k, c := range dv {
		s += k * c
	}
	return s
}

// Clone returns a copy.
func (dv DegreeVector) Clone() DegreeVector { return append(DegreeVector(nil), dv...) }

// Check verifies realizability conditions DV-1 (nonnegative integers) and
// DV-2 (even degree sum). DV-3 (n(k) >= subgraph count) is context
// dependent and checked by CheckAgainstBase.
func (dv DegreeVector) Check() error {
	if len(dv) > 0 && dv[0] != 0 {
		return fmt.Errorf("dkseries: degree vector has %d isolated nodes", dv[0])
	}
	for k, c := range dv {
		if c < 0 {
			return fmt.Errorf("dkseries: n(%d) = %d negative (DV-1)", k, c)
		}
	}
	if dv.DegreeSum()%2 != 0 {
		return fmt.Errorf("dkseries: odd degree sum %d (DV-2)", dv.DegreeSum())
	}
	return nil
}

// CheckAgainstBase verifies DV-3: n(k) >= baseCount(k) for every degree,
// where baseCount counts base-subgraph nodes by their assigned target degree.
func (dv DegreeVector) CheckAgainstBase(baseCount []int) error {
	for k, c := range baseCount {
		if k >= len(dv) {
			if c > 0 {
				return fmt.Errorf("dkseries: base has %d nodes of degree %d beyond kmax %d (DV-3)", c, k, dv.KMax())
			}
			continue
		}
		if dv[k] < c {
			return fmt.Errorf("dkseries: n(%d) = %d < base count %d (DV-3)", k, dv[k], c)
		}
	}
	return nil
}

// FromGraph extracts the degree vector of g (requires min degree >= 1).
func FromGraph(g *graph.Graph) (DegreeVector, error) {
	dv := NewDegreeVector(g.MaxDegree())
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		if d == 0 {
			return nil, fmt.Errorf("dkseries: node %d is isolated", u)
		}
		dv[d]++
	}
	return dv, nil
}

// JDM is a target joint degree matrix {m*(k,k')} stored sparsely with
// canonical keys (k <= k'), together with maintained row sums
// s(k) = sum_k' mu(k,k') m(k,k').
type JDM struct {
	kmax  int
	cells map[[2]int]int
	row   []int // s(k), indexed by degree
}

// NewJDM returns an empty matrix supporting degrees 1..kmax.
func NewJDM(kmax int) *JDM {
	return &JDM{kmax: kmax, cells: make(map[[2]int]int), row: make([]int, kmax+1)}
}

// KMax returns the largest supported degree.
func (j *JDM) KMax() int { return j.kmax }

func key(k, kp int) [2]int {
	if k > kp {
		k, kp = kp, k
	}
	return [2]int{k, kp}
}

// Get returns m(k,k') (symmetric).
func (j *JDM) Get(k, kp int) int { return j.cells[key(k, kp)] }

// Add changes m(k,k') by delta, maintaining row sums. Panics if the result
// would be negative (JDM-1 must never be violated by callers).
func (j *JDM) Add(k, kp, delta int) {
	ky := key(k, kp)
	nv := j.cells[ky] + delta
	if nv < 0 {
		panic(fmt.Sprintf("dkseries: m(%d,%d) would become %d", k, kp, nv))
	}
	if nv == 0 {
		delete(j.cells, ky)
	} else {
		j.cells[ky] = nv
	}
	if k == kp {
		j.row[k] += 2 * delta
	} else {
		j.row[k] += delta
		j.row[kp] += delta
	}
}

// RowSum returns s(k) = sum_k' mu(k,k') m(k,k').
func (j *JDM) RowSum(k int) int { return j.row[k] }

// NumCells returns the number of nonzero canonical entries.
func (j *JDM) NumCells() int { return len(j.cells) }

// TotalEdges returns sum_{k<=k'} m(k,k').
func (j *JDM) TotalEdges() int {
	s := 0
	for _, c := range j.cells {
		s += c
	}
	return s
}

// Cells returns a copy of the nonzero canonical entries. Callers may
// mutate the returned map freely; the matrix's internal state (and its
// maintained row sums) cannot be corrupted through it. For allocation-free
// iteration use IterCells.
func (j *JDM) Cells() map[[2]int]int {
	out := make(map[[2]int]int, len(j.cells))
	for ky, v := range j.cells {
		out[ky] = v
	}
	return out
}

// IterCells calls fn for every nonzero canonical entry (k <= k') in
// unspecified order, stopping early if fn returns false. The matrix must
// not be mutated during iteration.
func (j *JDM) IterCells(fn func(k, kp, count int) bool) {
	for ky, v := range j.cells {
		if !fn(ky[0], ky[1], v) {
			return
		}
	}
}

// Clone returns a deep copy.
func (j *JDM) Clone() *JDM {
	c := NewJDM(j.kmax)
	for ky, v := range j.cells {
		c.cells[ky] = v
	}
	copy(c.row, j.row)
	return c
}

// Check verifies JDM-1 (nonnegative; enforced structurally), JDM-2
// (symmetric; enforced by canonical storage) and JDM-3: s(k) == k*n(k) for
// every degree of the target vector.
func (j *JDM) Check(dv DegreeVector) error {
	if j.kmax < dv.KMax() {
		return fmt.Errorf("dkseries: JDM kmax %d < degree vector kmax %d", j.kmax, dv.KMax())
	}
	for k := 1; k <= dv.KMax(); k++ {
		if j.row[k] != k*dv[k] {
			return fmt.Errorf("dkseries: s(%d) = %d != k*n(k) = %d (JDM-3)", k, j.row[k], k*dv[k])
		}
	}
	for k := dv.KMax() + 1; k <= j.kmax; k++ {
		if j.row[k] != 0 {
			return fmt.Errorf("dkseries: s(%d) = %d but n(%d) = 0 (JDM-3)", k, j.row[k], k)
		}
	}
	return nil
}

// CheckAgainstBase verifies JDM-4: m(k,k') >= base m'(k,k') for all pairs.
func (j *JDM) CheckAgainstBase(base *JDM) error {
	//sgr:nondet-ok validation sweep: any violating cell fails identically, only the cell named in the error varies
	for ky, c := range base.cells {
		if j.cells[ky] < c {
			return fmt.Errorf("dkseries: m(%d,%d) = %d < base %d (JDM-4)", ky[0], ky[1], j.cells[ky], c)
		}
	}
	return nil
}

// JDMFromGraph extracts the joint degree matrix of g using each node's
// actual degree.
func JDMFromGraph(g *graph.Graph) *JDM {
	j := NewJDM(g.MaxDegree())
	//sgr:nondet-ok each key owns a disjoint JDM cell and Add is an integer add, so the writes commute
	for kk, c := range g.JointDegreeMatrix() {
		j.Add(kk[0], kk[1], c)
	}
	return j
}

// JDMFromBase extracts m'(k,k') of a base graph where node i counts as
// having target degree targetDeg[i] (which may exceed its current degree).
func JDMFromBase(base *graph.Graph, targetDeg []int, kmax int) *JDM {
	j := NewJDM(kmax)
	for _, e := range base.Edges() {
		j.Add(targetDeg[e.U], targetDeg[e.V], 1)
	}
	return j
}

// BaseDegreeCounts returns n'(k): the number of base nodes with each target
// degree, sized kmax+1.
func BaseDegreeCounts(targetDeg []int, kmax int) []int {
	counts := make([]int, kmax+1)
	for _, d := range targetDeg {
		counts[d]++
	}
	return counts
}
