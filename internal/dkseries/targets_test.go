package dkseries

import (
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x77)) }

func TestDegreeVectorBasics(t *testing.T) {
	dv := NewDegreeVector(4)
	dv[1] = 3
	dv[2] = 2
	dv[3] = 1
	if dv.NumNodes() != 6 {
		t.Fatalf("NumNodes: %d", dv.NumNodes())
	}
	if dv.DegreeSum() != 10 {
		t.Fatalf("DegreeSum: %d", dv.DegreeSum())
	}
	if err := dv.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	dv[3] = 2 // degree sum 13: odd
	if err := dv.Check(); err == nil {
		t.Fatal("Check must reject odd degree sum (DV-2)")
	}
	dv2 := NewDegreeVector(2)
	dv2[1] = -1
	if err := dv2.Check(); err == nil {
		t.Fatal("Check must reject negative counts (DV-1)")
	}
	dv3 := NewDegreeVector(2)
	dv3[0] = 1
	if err := dv3.Check(); err == nil {
		t.Fatal("Check must reject isolated nodes")
	}
}

func TestDegreeVectorAgainstBase(t *testing.T) {
	dv := NewDegreeVector(3)
	dv[1] = 2
	dv[2] = 1
	base := []int{0, 2, 1, 0}
	if err := dv.CheckAgainstBase(base); err != nil {
		t.Fatalf("CheckAgainstBase: %v", err)
	}
	base[2] = 2
	if err := dv.CheckAgainstBase(base); err == nil {
		t.Fatal("want DV-3 violation")
	}
}

func TestFromGraph(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	dv, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if dv[1] != 2 || dv[2] != 1 {
		t.Fatalf("FromGraph: %v", dv)
	}
	iso := graph.New(2)
	iso.AddEdge(0, 0)
	if _, err := FromGraph(iso); err == nil {
		t.Fatal("want error for isolated node")
	}
}

func TestJDMAddAndRowSums(t *testing.T) {
	j := NewJDM(4)
	j.Add(1, 2, 3)
	j.Add(2, 2, 1)
	if j.Get(2, 1) != 3 {
		t.Fatalf("Get symmetric: %d", j.Get(2, 1))
	}
	if j.RowSum(1) != 3 {
		t.Fatalf("RowSum(1): %d", j.RowSum(1))
	}
	if j.RowSum(2) != 3+2 { // 3 edges to degree-1 plus mu(2,2)*1
		t.Fatalf("RowSum(2): %d", j.RowSum(2))
	}
	if j.TotalEdges() != 4 {
		t.Fatalf("TotalEdges: %d", j.TotalEdges())
	}
	j.Add(1, 2, -3)
	if j.Get(1, 2) != 0 || j.RowSum(1) != 0 {
		t.Fatal("Add(-3) bookkeeping wrong")
	}
}

func TestJDMAddPanicsBelowZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for negative cell")
		}
	}()
	NewJDM(3).Add(1, 2, -1)
}

func TestJDMCheck(t *testing.T) {
	// Path 0-1-2: degrees 1,2,1. m(1,2)=2.
	dv := NewDegreeVector(2)
	dv[1] = 2
	dv[2] = 1
	j := NewJDM(2)
	j.Add(1, 2, 2)
	if err := j.Check(dv); err != nil {
		t.Fatalf("Check: %v", err)
	}
	j.Add(1, 1, 1)
	if err := j.Check(dv); err == nil {
		t.Fatal("want JDM-3 violation")
	}
}

func TestJDMFromGraphMatchesCheck(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, rng(1))
	dv, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	j := JDMFromGraph(g)
	if err := j.Check(dv); err != nil {
		t.Fatalf("real graph JDM must satisfy JDM-3: %v", err)
	}
	if j.TotalEdges() != g.M() {
		t.Fatalf("TotalEdges %d != m %d", j.TotalEdges(), g.M())
	}
}

func TestJDMAgainstBase(t *testing.T) {
	big := NewJDM(3)
	big.Add(1, 2, 2)
	small := NewJDM(3)
	small.Add(1, 2, 1)
	if err := big.CheckAgainstBase(small); err != nil {
		t.Fatal(err)
	}
	if err := small.CheckAgainstBase(big); err == nil {
		t.Fatal("want JDM-4 violation")
	}
}

func TestJDMFromBaseUsesTargetDegrees(t *testing.T) {
	// Edge (0,1); node 0 target degree 5, node 1 target degree 2.
	base := graph.New(2)
	base.AddEdge(0, 1)
	j := JDMFromBase(base, []int{5, 2}, 6)
	if j.Get(2, 5) != 1 {
		t.Fatalf("JDMFromBase: %v", j.Cells())
	}
	// Loop counts once on the diagonal.
	lg := graph.New(1)
	lg.AddEdge(0, 0)
	j2 := JDMFromBase(lg, []int{3}, 3)
	if j2.Get(3, 3) != 1 {
		t.Fatalf("loop base JDM: %v", j2.Cells())
	}
}

func TestCloneIsDeep(t *testing.T) {
	j := NewJDM(3)
	j.Add(1, 2, 1)
	c := j.Clone()
	c.Add(1, 2, 5)
	if j.Get(1, 2) != 1 || c.Get(1, 2) != 6 {
		t.Fatal("Clone not deep")
	}
	dv := NewDegreeVector(2)
	dv[1] = 1
	dc := dv.Clone()
	dc[1] = 9
	if dv[1] != 1 {
		t.Fatal("DegreeVector Clone not deep")
	}
}

// TestCellsDoesNotAliasInternalState is the regression test for the
// Cells() aliasing hazard: mutating the returned map must not corrupt the
// matrix or its maintained row sums.
func TestCellsDoesNotAliasInternalState(t *testing.T) {
	j := NewJDM(4)
	j.Add(1, 2, 3)
	j.Add(2, 2, 2)
	cells := j.Cells()
	cells[[2]int{1, 2}] = 99    // corrupt an existing entry
	delete(cells, [2]int{2, 2}) // drop another
	cells[[2]int{3, 4}] = 7     // invent a new one
	if got := j.Get(1, 2); got != 3 {
		t.Fatalf("m(1,2) = %d after caller mutated Cells() copy, want 3", got)
	}
	if got := j.Get(2, 2); got != 2 {
		t.Fatalf("m(2,2) = %d, want 2", got)
	}
	if got := j.Get(3, 4); got != 0 {
		t.Fatalf("m(3,4) = %d, want 0", got)
	}
	if j.RowSum(1) != 3 || j.RowSum(2) != 7 {
		t.Fatalf("row sums corrupted: s(1)=%d s(2)=%d, want 3 and 7", j.RowSum(1), j.RowSum(2))
	}
	if j.TotalEdges() != 5 {
		t.Fatalf("TotalEdges = %d, want 5", j.TotalEdges())
	}
}

// TestIterCellsMatchesCells: the allocation-free iterator visits exactly
// the nonzero canonical entries, and early exit stops the walk.
func TestIterCellsMatchesCells(t *testing.T) {
	j := NewJDM(5)
	j.Add(1, 2, 3)
	j.Add(2, 5, 1)
	j.Add(4, 4, 2)
	got := make(map[[2]int]int)
	j.IterCells(func(k, kp, c int) bool {
		got[[2]int{k, kp}] = c
		return true
	})
	want := j.Cells()
	if len(got) != len(want) {
		t.Fatalf("IterCells visited %d entries, want %d", len(got), len(want))
	}
	for ky, c := range want {
		if got[ky] != c {
			t.Fatalf("IterCells[%v] = %d, want %d", ky, got[ky], c)
		}
	}
	visits := 0
	j.IterCells(func(_, _, _ int) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("early-exit IterCells made %d visits, want 1", visits)
	}
}
