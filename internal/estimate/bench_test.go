package estimate

import (
	"testing"

	"sgr/internal/gen"
	"sgr/internal/sampling"
)

func benchWalk(b *testing.B, steps int) *Walk {
	b.Helper()
	g := gen.HolmeKim(5000, 4, 0.5, rng(1))
	c, err := sampling.RandomWalkSteps(sampling.NewGraphAccess(g), 0, steps, rng(2))
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWalk(c)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkNumNodes(b *testing.B) {
	w := benchWalk(b, 5000)
	m := w.Lag()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.NumNodes(m)
	}
}

func BenchmarkJDDHybrid(b *testing.B) {
	w := benchWalk(b, 5000)
	nHat, _ := w.NumNodes(w.Lag())
	kHat := w.AvgDegree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.JDDHybrid(nHat, kHat, w.Lag())
	}
}

func BenchmarkDegreeClusteringEstimator(b *testing.B) {
	w := benchWalk(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DegreeClustering()
	}
}

func BenchmarkAllEstimators(b *testing.B) {
	w := benchWalk(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		All(w)
	}
}

func BenchmarkNewWalk(b *testing.B) {
	g := gen.HolmeKim(5000, 4, 0.5, rng(3))
	c, err := sampling.RandomWalkSteps(sampling.NewGraphAccess(g), 0, 5000, rng(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewWalk(c); err != nil {
			b.Fatal(err)
		}
	}
}
