// Package estimate implements the re-weighted random-walk estimators of
// Sec. III-E: the number of nodes (Katzir et al. / Hardiman–Katzir), the
// average degree (Gjoka et al. / Dasgupta et al.), the degree distribution,
// the hybrid induced-edges/traversed-edges joint degree distribution
// estimator (Gjoka et al., proved unbiased in the paper's Appendix A), and
// the degree-dependent clustering coefficient (Hardiman–Katzir).
//
// All estimators consume only the sampling list of a simple random walk: the
// node sequence x_1..x_r and the neighbor list of each queried node. The
// quadratic pair sums over I = {(i,j) : |i-j| >= M} are computed with
// sliding-window and two-pointer reductions in O(r + near-pairs) time; naive
// O(r^2) references live in the test suite as cross-checks.
package estimate

import (
	"fmt"
	"math"
	"sort"

	"sgr/internal/adjset"
	"sgr/internal/sampling"
)

// DefaultLagFactor is the paper's choice M = 0.025*r for the minimum index
// separation of pair estimators (after Hardiman & Katzir).
const DefaultLagFactor = 0.025

// Walk is a preprocessed random-walk sample ready for estimation.
type Walk struct {
	Seq []int // x_1..x_r (original node IDs)
	Deg []int // Deg[i] = true degree of Seq[i]

	degOf map[int]int   // queried node -> true degree
	pos   map[int][]int // queried node -> sorted positions in Seq
	idx   map[int]int   // queried node -> dense index into ids/adj
	ids   []int         // dense index -> queried node, first-query order
	adj   *adjset.Set   // adjacency among queried nodes (dense, multiplicity)
}

// NewWalk validates and indexes a random-walk crawl. The crawl must contain
// a walk sequence with at least 3 steps.
func NewWalk(c *sampling.Crawl) (*Walk, error) {
	if len(c.Walk) < 3 {
		return nil, fmt.Errorf("estimate: walk too short (r=%d, need >= 3)", len(c.Walk))
	}
	w := &Walk{
		Seq:   c.Walk,
		degOf: make(map[int]int, len(c.Neighbors)),
		pos:   make(map[int][]int),
		idx:   make(map[int]int, len(c.Neighbors)),
	}
	for u, nb := range c.Neighbors {
		w.degOf[u] = len(nb)
	}
	w.Deg = make([]int, len(c.Walk))
	for i, u := range c.Walk {
		d, ok := w.degOf[u]
		if !ok {
			return nil, fmt.Errorf("estimate: walk node %d missing from sampling list", u)
		}
		if d == 0 {
			return nil, fmt.Errorf("estimate: walk visits isolated node %d", u)
		}
		w.Deg[i] = d
		w.pos[u] = append(w.pos[u], i)
	}
	// Dense remap of queried nodes in first-query order, so adjacency
	// iteration (JDDIE) is deterministic; fall back to the Neighbors keys
	// for hand-built crawls that carry no Queried list.
	for _, u := range c.Queried {
		if _, ok := c.Neighbors[u]; !ok {
			continue
		}
		if _, dup := w.idx[u]; dup {
			continue
		}
		w.idx[u] = len(w.ids)
		w.ids = append(w.ids, u)
	}
	var rest []int
	for u := range c.Neighbors {
		if _, ok := w.idx[u]; !ok {
			rest = append(rest, u)
		}
	}
	sort.Ints(rest) // map order would leak into the dense order
	for _, u := range rest {
		w.idx[u] = len(w.ids)
		w.ids = append(w.ids, u)
	}
	// Adjacency restricted to queried nodes (all the estimators need),
	// stored as flat multiset rows over the dense indices.
	w.adj = adjset.New(len(w.ids))
	for ui, u := range w.ids {
		for _, v := range c.Neighbors[u] {
			if v == u {
				continue
			}
			if vi, queried := w.idx[v]; queried {
				w.adj.Inc(ui, vi)
			}
		}
	}
	return w, nil
}

// R returns the walk length r.
func (w *Walk) R() int { return len(w.Seq) }

// Lag returns the paper's index-separation threshold M = max(1, 0.025*r).
func (w *Walk) Lag() int {
	m := int(math.Round(DefaultLagFactor * float64(w.R())))
	if m < 1 {
		m = 1
	}
	return m
}

// multiplicity returns A[u][v] restricted to queried nodes.
func (w *Walk) multiplicity(u, v int) int {
	if u == v {
		return 0 // the hidden graphs are simple
	}
	ui, ok := w.idx[u]
	if !ok {
		return 0
	}
	vi, ok := w.idx[v]
	if !ok {
		return 0
	}
	return w.adj.Get(ui, vi)
}

// numOrderedFarPairs returns |I| = (r-M)(r-M+1), the number of ordered index
// pairs (i,j), i != j, with |i-j| >= M.
func numOrderedFarPairs(r, m int) float64 {
	if m >= r {
		return 0
	}
	return float64(r-m) * float64(r-m+1)
}

// NumNodes computes the unbiased estimator n-hat of Sec. III-E with lag M:
//
//	n-hat = sum_{(i,j) in I} d_{x_i}/d_{x_j}  /  sum_{(i,j) in I} 1{x_i = x_j}
//
// It also returns the collision count (the denominator). If the walk
// produced no far collisions the estimator is undefined; the function then
// divides by 1 and the caller can detect this via collisions == 0.
func (w *Walk) NumNodes(m int) (est float64, collisions int) {
	r := w.R()
	if m < 1 {
		m = 1
	}
	// Numerator: (sum d_i)(sum 1/d_j) - sum_{|i-j|<M} d_i/d_j.
	var sd, sinv float64
	for _, d := range w.Deg {
		sd += float64(d)
		sinv += 1 / float64(d)
	}
	// Sliding window over j in (i-M, i+M).
	var near float64
	window := 0.0
	lo, hi := 0, 0 // window covers [lo, hi)
	for i := 0; i < r; i++ {
		for hi < r && hi < i+m {
			window += 1 / float64(w.Deg[hi])
			hi++
		}
		for lo < i-m+1 {
			window -= 1 / float64(w.Deg[lo])
			lo++
		}
		near += float64(w.Deg[i]) * window
	}
	num := sd*sinv - near

	// Collisions: total ordered same-node pairs minus near ones.
	total := 0
	nearColl := 0
	for _, ps := range w.pos {
		c := len(ps)
		total += c * (c - 1)
		// ordered near pairs: 2 * #{p<q : q-p < M}
		j := 0
		for i := range ps {
			if j < i {
				j = i
			}
			for j+1 < len(ps) && ps[j+1]-ps[i] < m {
				j++
			}
			nearColl += 2 * (j - i)
		}
	}
	collisions = total - nearColl
	den := float64(collisions)
	if collisions == 0 {
		den = 1
	}
	return num / den, collisions
}

// AvgDegree computes the unbiased average-degree estimator
// k-bar-hat = 1 / ((1/r) sum_i 1/d_{x_i}).
func (w *Walk) AvgDegree() float64 {
	var s float64
	for _, d := range w.Deg {
		s += 1 / float64(d)
	}
	return float64(w.R()) / s
}

// phi returns Phi(k) = (1/(k r)) sum_i 1{d_{x_i} = k} for all observed k.
func (w *Walk) phi() map[int]float64 {
	counts := make(map[int]int)
	for _, d := range w.Deg {
		counts[d]++
	}
	out := make(map[int]float64, len(counts))
	r := float64(w.R())
	for k, c := range counts {
		out[k] = float64(c) / (float64(k) * r)
	}
	return out
}

// DegreeDist computes the unbiased degree-distribution estimator
// P-hat(k) = Phi(k)/Phi-bar, returned as a map over observed degrees.
// The estimates sum to 1 over the observed support.
func (w *Walk) DegreeDist() map[int]float64 {
	phi := w.phi()
	var phiBar float64
	for _, d := range w.Deg {
		phiBar += 1 / float64(d)
	}
	phiBar /= float64(w.R())
	out := make(map[int]float64, len(phi))
	for k, p := range phi {
		out[k] = p / phiBar
	}
	return out
}

// DegreeClustering computes the Hardiman–Katzir estimator of the
// degree-dependent clustering coefficient,
// c-hat(k) = Phi_c(k) / Phi(k), clamped to [0, 1], for every observed
// degree k >= 2 (c(1) = 0 by definition).
func (w *Walk) DegreeClustering() map[int]float64 {
	r := w.R()
	phi := w.phi()
	raw := make(map[int]float64)
	for i := 1; i+1 < r; i++ {
		k := w.Deg[i]
		if k < 2 {
			continue
		}
		if a := w.multiplicity(w.Seq[i-1], w.Seq[i+1]); a > 0 {
			raw[k] += float64(a)
		}
	}
	out := make(map[int]float64, len(phi))
	for k := range phi {
		if k < 2 {
			out[k] = 0
			continue
		}
		phiC := raw[k] / (float64(k-1) * float64(r-2))
		c := phiC / phi[k]
		if c > 1 {
			c = 1
		}
		out[k] = c
	}
	return out
}

// sortedDegrees returns the observed degree support in ascending order.
func (w *Walk) sortedDegrees() []int {
	seen := make(map[int]struct{})
	for _, d := range w.Deg {
		seen[d] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
