package estimate

import (
	"math"
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/sampling"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x5151)) }

func walkOn(t *testing.T, g *graph.Graph, steps int, seed uint64) *Walk {
	t.Helper()
	c, err := sampling.RandomWalkSteps(sampling.NewGraphAccess(g), 0, steps, rng(seed))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWalk(c)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWalkValidation(t *testing.T) {
	if _, err := NewWalk(&sampling.Crawl{Walk: []int{1, 2}}); err == nil {
		t.Error("want error for short walk")
	}
	c := &sampling.Crawl{
		Walk:      []int{0, 1, 0},
		Neighbors: map[int][]int{0: {1}}, // node 1 missing
	}
	if _, err := NewWalk(c); err == nil {
		t.Error("want error for missing neighbor list")
	}
}

func TestLag(t *testing.T) {
	g := gen.HolmeKim(100, 2, 0.3, rng(1))
	w := walkOn(t, g, 1000, 2)
	if got := w.Lag(); got != 25 {
		t.Fatalf("Lag for r=1000: got %d want 25", got)
	}
	w2 := walkOn(t, g, 10, 2)
	if got := w2.Lag(); got != 1 {
		t.Fatalf("Lag must clamp to 1, got %d", got)
	}
}

// --- Naive reference implementations (straight from the formulas) ---

func naiveNumNodes(w *Walk, m int) (float64, int) {
	r := w.R()
	num := 0.0
	coll := 0
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if abs(i-j) < m {
				continue
			}
			num += float64(w.Deg[i]) / float64(w.Deg[j])
			if w.Seq[i] == w.Seq[j] {
				coll++
			}
		}
	}
	den := float64(coll)
	if coll == 0 {
		den = 1
	}
	return num / den, coll
}

// naivePhiIE computes the full ordered matrix Phi(k,k') straight from the
// formula, then returns the canonical (k<=k') entries, checking symmetry.
func naivePhiIE(t *testing.T, w *Walk, m int) map[DegreePair]float64 {
	t.Helper()
	r := w.R()
	full := make(map[[2]int]float64)
	absI := 0.0
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if abs(i-j) < m {
				continue
			}
			absI++
			a := w.multiplicity(w.Seq[i], w.Seq[j])
			if a == 0 {
				continue
			}
			full[[2]int{w.Deg[i], w.Deg[j]}] += float64(a)
		}
	}
	out := make(map[DegreePair]float64)
	//sgr:nondet-ok Pair is injective on symmetric full-matrix keys, so each iteration writes its own slot
	for kk, v := range full {
		k, kp := kk[0], kk[1]
		if sym := full[[2]int{kp, k}]; math.Abs(sym-v) > 1e-9 {
			t.Fatalf("naive Phi asymmetric at (%d,%d): %v vs %v", k, kp, v, sym)
		}
		out[Pair(k, kp)] = v / (float64(k) * float64(kp) * absI)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestNumNodesMatchesNaive(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.4, rng(3))
	w := walkOn(t, g, 400, 4)
	for _, m := range []int{1, 5, 10, 40} {
		fast, collFast := w.NumNodes(m)
		slow, collSlow := naiveNumNodes(w, m)
		if collFast != collSlow {
			t.Fatalf("m=%d: collisions fast=%d naive=%d", m, collFast, collSlow)
		}
		if math.Abs(fast-slow) > 1e-6*math.Max(1, math.Abs(slow)) {
			t.Fatalf("m=%d: n-hat fast=%v naive=%v", m, fast, slow)
		}
	}
}

func TestJDDIEMatchesNaive(t *testing.T) {
	g := gen.HolmeKim(200, 3, 0.4, rng(5))
	w := walkOn(t, g, 300, 6)
	for _, m := range []int{1, 7, 30} {
		// Compare raw Phi by passing nHat=avgDegHat=1.
		fast := w.JDDIE(1, 1, m)
		slow := naivePhiIE(t, w, m)
		if len(fast) != len(slow) {
			t.Fatalf("m=%d: support sizes differ: %d vs %d", m, len(fast), len(slow))
		}
		for kk, v := range slow {
			if math.Abs(fast[kk]-v) > 1e-9*math.Max(1, v) {
				t.Fatalf("m=%d: Phi(%d,%d) fast=%v naive=%v", m, kk.K, kk.Kp, fast[kk], v)
			}
		}
	}
}

func TestAvgDegreeOnRegularGraph(t *testing.T) {
	// On a k-regular graph the estimator is exact for any walk.
	g := gen.WattsStrogatz(200, 6, 0, rng(7))
	w := walkOn(t, g, 100, 8)
	if got := w.AvgDegree(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("avg degree on 6-regular: got %v", got)
	}
}

func TestAvgDegreeConverges(t *testing.T) {
	g := gen.HolmeKim(2000, 4, 0.5, rng(9))
	truth := g.AvgDegree()
	w := walkOn(t, g, 8000, 10)
	got := w.AvgDegree()
	if relErr(got, truth) > 0.1 {
		t.Fatalf("avg degree: got %v want ~%v", got, truth)
	}
}

func TestNumNodesConverges(t *testing.T) {
	g := gen.HolmeKim(1500, 4, 0.5, rng(11))
	w := walkOn(t, g, 6000, 12)
	nHat, coll := w.NumNodes(w.Lag())
	if coll == 0 {
		t.Fatal("expected collisions on a long walk")
	}
	if relErr(nHat, float64(g.N())) > 0.25 {
		t.Fatalf("n-hat: got %v want ~%d", nHat, g.N())
	}
}

func TestDegreeDistSumsToOneAndConverges(t *testing.T) {
	g := gen.HolmeKim(1500, 3, 0.5, rng(13))
	w := walkOn(t, g, 6000, 14)
	dist := w.DegreeDist()
	sum := 0.0
	//sgr:nondet-ok float-order tail of the sum is far below the 1e-9 assertion tolerance
	for _, p := range dist {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("degree dist sums to %v", sum)
	}
	// L1 distance to the true distribution should be modest.
	truth := trueDegreeDist(g)
	l1 := 0.0
	//sgr:nondet-ok float-order tail of the L1 sum is far below the 0.35 assertion threshold
	for k, p := range truth {
		l1 += math.Abs(dist[k] - p)
	}
	//sgr:nondet-ok float-order tail of the L1 sum is far below the 0.35 assertion threshold
	for k, p := range dist {
		if _, ok := truth[k]; !ok {
			l1 += p
		}
	}
	if l1 > 0.35 {
		t.Fatalf("degree dist L1 = %v too large", l1)
	}
}

func trueDegreeDist(g *graph.Graph) map[int]float64 {
	out := make(map[int]float64)
	for u := 0; u < g.N(); u++ {
		out[g.Degree(u)]++
	}
	for k := range out {
		out[k] /= float64(g.N())
	}
	return out
}

func trueJDD(g *graph.Graph) map[DegreePair]float64 {
	out := make(map[DegreePair]float64)
	twoM := 2 * float64(g.M())
	//sgr:nondet-ok Pair is injective on canonical JDM keys, so each iteration writes its own slot
	for kk, c := range g.JointDegreeMatrix() {
		mu := 1.0
		if kk[0] == kk[1] {
			mu = 2.0
		}
		out[Pair(kk[0], kk[1])] = mu * float64(c) / twoM
	}
	return out
}

func TestJDDTESumsToOne(t *testing.T) {
	g := gen.HolmeKim(500, 3, 0.5, rng(15))
	w := walkOn(t, g, 1000, 16)
	te := w.JDDTE()
	// Full-matrix sum: off-diagonal entries count twice.
	sum := 0.0
	//sgr:nondet-ok float-order tail of the sum is far below the 1e-9 assertion tolerance
	for kk, v := range te {
		if kk.K == kk.Kp {
			sum += v
		} else {
			sum += 2 * v
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("TE full-matrix sum = %v want 1", sum)
	}
}

func TestJDDHybridConverges(t *testing.T) {
	g := gen.HolmeKim(1200, 3, 0.5, rng(17))
	w := walkOn(t, g, 10000, 18)
	nHat, _ := w.NumNodes(w.Lag())
	kHat := w.AvgDegree()
	hyb := w.JDDHybrid(nHat, kHat, w.Lag())
	truth := trueJDD(g)
	l1, norm := 0.0, 0.0
	//sgr:nondet-ok float-order tail of the L1 sums is far below the 0.8 assertion threshold
	for kk, p := range truth {
		mult := 2.0
		if kk.K == kk.Kp {
			mult = 1.0
		}
		l1 += mult * math.Abs(hyb[kk]-p)
		norm += mult * p
	}
	//sgr:nondet-ok float-order tail of the L1 sum is far below the 0.8 assertion threshold
	for kk, p := range hyb {
		if _, ok := truth[kk]; !ok {
			mult := 2.0
			if kk.K == kk.Kp {
				mult = 1.0
			}
			l1 += mult * p
		}
	}
	if l1/norm > 0.8 {
		t.Fatalf("hybrid JDD normalized L1 = %v too large", l1/norm)
	}
}

// TestJointDegreeEstimatorUnbiasedTE verifies Appendix A empirically for the
// TE part: averaged over many walks, P-hat_TE(k,k') approaches P(k,k').
func TestJointDegreeEstimatorUnbiasedTE(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, rng(19))
	truth := trueJDD(g)
	acc := make(map[DegreePair]float64)
	const runs = 60
	for i := 0; i < runs; i++ {
		w := walkOn(t, g, 2500, uint64(100+i))
		for kk, v := range w.JDDTE() {
			acc[kk] += v / runs
		}
	}
	// Compare the heaviest true entries.
	for kk, p := range truth {
		if p < 0.01 {
			continue
		}
		if relErr(acc[kk], p) > 0.2 {
			t.Errorf("TE biased at (%d,%d): avg=%v truth=%v", kk.K, kk.Kp, acc[kk], p)
		}
	}
}

func TestDegreeClusteringRange(t *testing.T) {
	g := gen.HolmeKim(800, 3, 0.8, rng(21))
	w := walkOn(t, g, 3000, 22)
	cl := w.DegreeClustering()
	if len(cl) == 0 {
		t.Fatal("no clustering estimates")
	}
	for k, c := range cl {
		if c < 0 || c > 1 {
			t.Errorf("c(%d) = %v out of [0,1]", k, c)
		}
		if k == 1 && c != 0 {
			t.Errorf("c(1) must be 0, got %v", c)
		}
	}
}

func TestDegreeClusteringDetectsTriangles(t *testing.T) {
	// Clique: clustering ~1 (the estimator is unbiased, not exact, because
	// the walk may backtrack: prev == next contributes A = 0). Star: 0.
	clique := graph.New(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			clique.AddEdge(i, j)
		}
	}
	w := walkOn(t, clique, 5000, 23)
	for k, c := range w.DegreeClustering() {
		if math.Abs(c-1) > 0.05 {
			t.Errorf("clique c(%d) = %v want ~1", k, c)
		}
	}
	star := graph.New(6)
	for i := 1; i < 6; i++ {
		star.AddEdge(0, i)
	}
	w2 := walkOn(t, star, 500, 24)
	for k, c := range w2.DegreeClustering() {
		if c != 0 {
			t.Errorf("star c(%d) = %v want 0", k, c)
		}
	}
}

func TestAllBundlesEverything(t *testing.T) {
	g := gen.HolmeKim(600, 3, 0.5, rng(25))
	w := walkOn(t, g, 2000, 26)
	e := All(w)
	if e.N <= 0 || e.AvgDeg <= 0 {
		t.Fatalf("bad scalar estimates: %+v", e)
	}
	if len(e.DegreeDist) == 0 || len(e.JDD) == 0 || len(e.Clustering) == 0 {
		t.Fatal("missing distribution estimates")
	}
	if e.MaxDegree() <= 0 {
		t.Fatal("MaxDegree must be positive")
	}
	if e.Lag != w.Lag() {
		t.Fatal("Lag mismatch")
	}
}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}
