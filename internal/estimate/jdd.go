package estimate

import (
	"sort"

	"sgr/internal/adjset"
)

// DegreePair is a canonical (K <= Kp) degree pair keying joint-degree maps.
// The stored value is the full-matrix entry P(k,k') = P(k',k).
type DegreePair struct{ K, Kp int }

// Pair canonicalizes (k, k') into a DegreePair.
func Pair(k, kp int) DegreePair {
	if k > kp {
		k, kp = kp, k
	}
	return DegreePair{k, kp}
}

// JDDIE computes the induced-edges estimator
// P-hat_IE(k,k') = n-hat * kbar-hat * Phi(k,k') with
// Phi(k,k') = (1/(k k' |I|)) * sum_{(i,j) in I} 1{d_{x_i}=k, d_{x_j}=k'} A_{x_i x_j},
// using lag m. Keys are canonical pairs holding the full-matrix entry value.
func (w *Walk) JDDIE(nHat, avgDegHat float64, m int) map[DegreePair]float64 {
	r := w.R()
	if m < 1 {
		m = 1
	}
	absI := numOrderedFarPairs(r, m)
	out := make(map[DegreePair]float64)
	if absI == 0 {
		return out
	}
	// For each adjacent queried pair {u,v}, count ordered far position
	// pairs. Both orders contribute, so the diagonal entry (k,k)
	// accumulates twice the unordered count. Each unordered pair is
	// visited once via the dense-index guard (adj stores both directions);
	// the dense first-query order makes the float accumulation order — and
	// thus the estimate bits — reproducible across runs.
	for ui, u := range w.ids {
		pu := w.pos[u]
		if len(pu) == 0 {
			continue
		}
		keys, counts := w.adj.Row(ui)
		for si, vk := range keys {
			if vk == adjset.Empty || ui > int(vk) {
				continue
			}
			v := w.ids[vk]
			pv := w.pos[v]
			if len(pv) == 0 {
				continue
			}
			far := float64(len(pu)*len(pv) - nearPositionPairs(pu, pv, m))
			if far <= 0 {
				continue
			}
			du, dv := w.degOf[u], w.degOf[v]
			contrib := far * float64(counts[si])
			if du == dv {
				contrib *= 2
			}
			out[Pair(du, dv)] += contrib
		}
	}
	for kk := range out {
		out[kk] *= nHat * avgDegHat / (float64(kk.K) * float64(kk.Kp) * absI)
	}
	return out
}

// nearPositionPairs counts pairs (p in pu, q in pv) with |p - q| < m, for
// sorted position lists, via a sliding window.
func nearPositionPairs(pu, pv []int, m int) int {
	count := 0
	lo, hi := 0, 0
	for _, p := range pu {
		for hi < len(pv) && pv[hi] < p+m {
			hi++
		}
		for lo < len(pv) && pv[lo] <= p-m {
			lo++
		}
		if hi > lo {
			count += hi - lo
		}
	}
	return count
}

// JDDTE computes the traversed-edges estimator
// P-hat_TE(k,k') = (1/(2(r-1))) sum_i (1{d_i=k, d_{i+1}=k'} + 1{d_i=k', d_{i+1}=k}).
// Keys are canonical pairs holding the full-matrix entry value.
func (w *Walk) JDDTE() map[DegreePair]float64 {
	r := w.R()
	out := make(map[DegreePair]float64)
	for i := 0; i+1 < r; i++ {
		k, kp := w.Deg[i], w.Deg[i+1]
		contrib := 1.0
		if k == kp {
			contrib = 2.0
		}
		out[Pair(k, kp)] += contrib
	}
	norm := 2 * float64(r-1)
	for kk := range out {
		out[kk] /= norm
	}
	return out
}

// JDDHybrid computes the paper's hybrid estimator: the IE estimate for
// degree pairs with k + k' >= 2*kbar-hat (where induced edges are plentiful)
// and the TE estimate otherwise. This matches Sec. III-E and is proved
// asymptotically unbiased in Appendix A.
func (w *Walk) JDDHybrid(nHat, avgDegHat float64, m int) map[DegreePair]float64 {
	ie := w.JDDIE(nHat, avgDegHat, m)
	te := w.JDDTE()
	out := make(map[DegreePair]float64, len(ie)+len(te))
	threshold := 2 * avgDegHat
	for kk, v := range te {
		if float64(kk.K+kk.Kp) < threshold {
			out[kk] = v
		}
	}
	for kk, v := range ie {
		if float64(kk.K+kk.Kp) >= threshold {
			out[kk] = v
		}
	}
	return out
}

// Estimates bundles the five local-property estimates consumed by the
// restoration method (Sec. IV overview).
type Estimates struct {
	N          float64                // n-hat, estimated number of nodes
	Collisions int                    // far-collision count behind n-hat
	AvgDeg     float64                // kbar-hat, estimated average degree
	DegreeDist map[int]float64        // P-hat(k)
	JDD        map[DegreePair]float64 // hybrid P-hat(k,k')
	Clustering map[int]float64        // c-bar-hat(k)
	Lag        int                    // M used for pair estimators
}

// TriangleCount composes the estimates into the global triangle count,
// t-hat = (n-hat/3) * sum_k P-hat(k) c-hat(k) k(k-1)/2 — the quantity the
// triangle-counting literature (Refs. [10], [20] of the paper) estimates
// directly; here it falls out of the degree and clustering spectra.
func (e *Estimates) TriangleCount() float64 {
	// Accumulate in ascending degree order: float addition is not
	// associative, and map order would leak into the returned bits.
	ks := make([]int, 0, len(e.DegreeDist))
	for k := range e.DegreeDist {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var s float64
	for _, k := range ks {
		if k < 2 {
			continue
		}
		s += e.DegreeDist[k] * e.Clustering[k] * float64(k) * float64(k-1) / 2
	}
	return e.N * s / 3
}

// MaxDegree returns the largest degree with positive estimated probability.
func (e *Estimates) MaxDegree() int {
	max := 0
	for k, p := range e.DegreeDist {
		if p > 0 && k > max {
			max = k
		}
	}
	return max
}

// All runs every estimator with the paper's default lag M = 0.025r.
func All(w *Walk) *Estimates {
	m := w.Lag()
	nHat, coll := w.NumNodes(m)
	avg := w.AvgDegree()
	return &Estimates{
		N:          nHat,
		Collisions: coll,
		AvgDeg:     avg,
		DegreeDist: w.DegreeDist(),
		JDD:        w.JDDHybrid(nHat, avg, m),
		Clustering: w.DegreeClustering(),
		Lag:        m,
	}
}
