package estimate

import (
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func TestTriangleCountEstimator(t *testing.T) {
	g := gen.HolmeKim(1500, 4, 0.7, rng(80))
	truth := float64(g.GlobalTriangles())
	w := walkOn(t, g, 10000, 81)
	est := All(w)
	got := est.TriangleCount()
	if relErr(got, truth) > 0.5 {
		t.Fatalf("triangle estimate %v vs truth %v", got, truth)
	}
}

func TestTriangleCountExactComposition(t *testing.T) {
	// With oracle inputs the composition is exact: K5 has C(5,3)=10
	// triangles; every node degree 4, clustering 1.
	k5 := graph.New(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			k5.AddEdge(i, j)
		}
	}
	e := &Estimates{
		N:          5,
		DegreeDist: map[int]float64{4: 1},
		Clustering: map[int]float64{4: 1},
	}
	if got := e.TriangleCount(); got != 10 {
		t.Fatalf("K5 triangle composition: %v want 10", got)
	}
	if k5.GlobalTriangles() != 10 {
		t.Fatalf("K5 truth: %d", k5.GlobalTriangles())
	}
}

func TestTriangleCountZeroOnTriangleFree(t *testing.T) {
	star := graph.New(12)
	for i := 1; i < 12; i++ {
		star.AddEdge(0, i)
	}
	w := walkOn(t, star, 500, 82)
	if got := All(w).TriangleCount(); got != 0 {
		t.Fatalf("star triangle estimate %v want 0", got)
	}
}
