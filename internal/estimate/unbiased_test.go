package estimate

import (
	"testing"

	"sgr/internal/gen"
)

// TestJointDegreeEstimatorUnbiasedIE verifies Appendix A empirically for
// the induced-edges part: averaged over many walks, with the true n and
// kbar plugged in, P-hat_IE(k,k') approaches P(k,k') for heavy entries.
// (Plugging the true scalars isolates the IE kernel's bias from the noise
// of the scalar estimators, matching the structure of the proof.)
func TestJointDegreeEstimatorUnbiasedIE(t *testing.T) {
	g := gen.HolmeKim(300, 3, 0.5, rng(41))
	truth := trueJDD(g)
	acc := make(map[DegreePair]float64)
	const runs = 50
	for i := 0; i < runs; i++ {
		w := walkOn(t, g, 3000, uint64(500+i))
		ie := w.JDDIE(float64(g.N()), g.AvgDegree(), w.Lag())
		for kk, v := range ie {
			acc[kk] += v / runs
		}
	}
	checked := 0
	for kk, p := range truth {
		// IE is reliable for high-degree pairs (the hybrid's regime).
		if p < 0.01 || float64(kk.K+kk.Kp) < 2*g.AvgDegree() {
			continue
		}
		checked++
		if relErr(acc[kk], p) > 0.25 {
			t.Errorf("IE biased at (%d,%d): avg=%v truth=%v", kk.K, kk.Kp, acc[kk], p)
		}
	}
	if checked == 0 {
		t.Fatal("no heavy high-degree JDD entries to check; enlarge the graph")
	}
}

// TestHybridEstimatorBeatsPureVariants shows the design rationale of the
// hybrid (Sec. III-E): over the full matrix, the hybrid's normalized L1
// error is not worse than both pure variants on average.
func TestHybridEstimatorBeatsPureVariants(t *testing.T) {
	g := gen.HolmeKim(800, 3, 0.5, rng(42))
	truth := trueJDD(g)
	var hybridErr, ieErr, teErr float64
	const runs = 12
	for i := 0; i < runs; i++ {
		w := walkOn(t, g, 4000, uint64(700+i))
		nHat, _ := w.NumNodes(w.Lag())
		kHat := w.AvgDegree()
		hybridErr += jddNormL1(w.JDDHybrid(nHat, kHat, w.Lag()), truth) / runs
		ieErr += jddNormL1(w.JDDIE(nHat, kHat, w.Lag()), truth) / runs
		teErr += jddNormL1(w.JDDTE(), truth) / runs
	}
	t.Logf("JDD normalized L1: hybrid=%.3f ie=%.3f te=%.3f", hybridErr, ieErr, teErr)
	worst := ieErr
	if teErr > worst {
		worst = teErr
	}
	if hybridErr >= worst {
		t.Errorf("hybrid (%.3f) should beat the worse pure variant (%.3f)", hybridErr, worst)
	}
}

func jddNormL1(got, want map[DegreePair]float64) float64 {
	num, den := 0.0, 0.0
	//sgr:nondet-ok float-order tail of the L1 sums is far below the assertion thresholds of the callers
	for kk, p := range want {
		mult := 2.0
		if kk.K == kk.Kp {
			mult = 1.0
		}
		d := got[kk] - p
		if d < 0 {
			d = -d
		}
		num += mult * d
		den += mult * p
	}
	//sgr:nondet-ok float-order tail of the L1 sum is far below the assertion thresholds of the callers
	for kk, p := range got {
		if _, ok := want[kk]; !ok {
			mult := 2.0
			if kk.K == kk.Kp {
				mult = 1.0
			}
			num += mult * p
		}
	}
	return num / den
}
