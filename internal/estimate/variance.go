package estimate

import (
	"fmt"
	"math"
)

// Interval is a point estimate with a normal-approximation confidence
// interval.
type Interval struct {
	Estimate float64
	// StdErr is the batch-means standard error of the estimate.
	StdErr float64
	// Lo and Hi bound the 95% confidence interval.
	Lo, Hi float64
	// Batches is the number of batches used.
	Batches int
}

const z95 = 1.959963984540054

func newInterval(est, stderr float64, batches int) Interval {
	return Interval{
		Estimate: est,
		StdErr:   stderr,
		Lo:       est - z95*stderr,
		Hi:       est + z95*stderr,
		Batches:  batches,
	}
}

// batchMeans splits the walk into nb contiguous batches, applies f to each
// batch's index range to obtain per-batch estimates, and returns the grand
// mean with its batch-means standard error. This is the standard MCMC
// output-analysis technique for correlated samples such as random walks.
func (w *Walk) batchMeans(nb int, f func(lo, hi int) float64) (Interval, error) {
	r := w.R()
	if nb < 2 {
		return Interval{}, fmt.Errorf("estimate: need at least 2 batches, got %d", nb)
	}
	if r < 2*nb {
		return Interval{}, fmt.Errorf("estimate: walk of length %d too short for %d batches", r, nb)
	}
	means := make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo := b * r / nb
		hi := (b + 1) * r / nb
		means[b] = f(lo, hi)
	}
	grand := 0.0
	for _, m := range means {
		grand += m
	}
	grand /= float64(nb)
	varSum := 0.0
	for _, m := range means {
		d := m - grand
		varSum += d * d
	}
	se := math.Sqrt(varSum / float64(nb-1) / float64(nb))
	return newInterval(grand, se, nb), nil
}

// DefaultBatches is the default batch count for confidence intervals.
const DefaultBatches = 10

// AvgDegreeInterval returns the average-degree estimate with a batch-means
// 95% confidence interval.
func (w *Walk) AvgDegreeInterval(batches int) (Interval, error) {
	if batches <= 0 {
		batches = DefaultBatches
	}
	return w.batchMeans(batches, func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += 1 / float64(w.Deg[i])
		}
		return float64(hi-lo) / s
	})
}

// GlobalClusteringInterval returns the Hardiman–Katzir estimate of the
// network (mean local) clustering coefficient cbar with a batch-means 95%
// confidence interval. The per-sample statistic follows Sec. III-E's
// degree-dependent construction, collapsed over degrees:
// cbar ≈ sum_i phi_i / sum_i psi_i with
// phi_i = A(x_{i-1}, x_{i+1}) / (d_{x_i} - 1) and psi_i = 1/d_{x_i} terms
// re-weighted to node space.
func (w *Walk) GlobalClusteringInterval(batches int) (Interval, error) {
	if batches <= 0 {
		batches = DefaultBatches
	}
	return w.batchMeans(batches, func(lo, hi int) float64 {
		num, den := 0.0, 0.0
		if lo == 0 {
			lo = 1
		}
		if hi > w.R()-1 {
			hi = w.R() - 1
		}
		for i := lo; i < hi; i++ {
			d := w.Deg[i]
			den += 1 / float64(d)
			if d < 2 {
				continue
			}
			if a := w.multiplicity(w.Seq[i-1], w.Seq[i+1]); a > 0 {
				num += float64(a) / float64(d-1)
			}
		}
		if den == 0 {
			return 0
		}
		c := num / den
		if c > 1 {
			c = 1
		}
		return c
	})
}

// GlobalClustering returns the point estimate of the network clustering
// coefficient (mean local clustering) from the walk.
func (w *Walk) GlobalClustering() float64 {
	num, den := 0.0, 0.0
	for i := 1; i+1 < w.R(); i++ {
		d := w.Deg[i]
		den += 1 / float64(d)
		if d < 2 {
			continue
		}
		if a := w.multiplicity(w.Seq[i-1], w.Seq[i+1]); a > 0 {
			num += float64(a) / float64(d-1)
		}
	}
	if den == 0 {
		return 0
	}
	c := num / den
	if c > 1 {
		c = 1
	}
	return c
}

// NumNodesInterval returns the node-count estimate with a batch-means 95%
// confidence interval: each batch runs the collision estimator on its own
// index range (with the lag scaled to the batch length).
func (w *Walk) NumNodesInterval(batches int) (Interval, error) {
	if batches <= 0 {
		batches = DefaultBatches / 2
	}
	return w.batchMeans(batches, func(lo, hi int) float64 {
		sub := &Walk{
			Seq:   w.Seq[lo:hi],
			Deg:   w.Deg[lo:hi],
			degOf: w.degOf,
			adj:   w.adj,
			pos:   positionsOf(w.Seq[lo:hi]),
		}
		m := int(math.Round(DefaultLagFactor * float64(hi-lo)))
		if m < 1 {
			m = 1
		}
		est, _ := sub.NumNodes(m)
		return est
	})
}

func positionsOf(seq []int) map[int][]int {
	pos := make(map[int][]int)
	for i, u := range seq {
		pos[u] = append(pos[u], i)
	}
	return pos
}
