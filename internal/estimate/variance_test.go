package estimate

import (
	"math"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/props"
)

func TestAvgDegreeIntervalCoversTruth(t *testing.T) {
	g := gen.HolmeKim(2000, 4, 0.5, rng(31))
	truth := g.AvgDegree()
	covered := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		w := walkOn(t, g, 5000, uint64(300+i))
		iv, err := w.AvgDegreeInterval(10)
		if err != nil {
			t.Fatal(err)
		}
		if iv.StdErr <= 0 || iv.Lo > iv.Hi || iv.Batches != 10 {
			t.Fatalf("malformed interval: %+v", iv)
		}
		if iv.Lo <= truth && truth <= iv.Hi {
			covered++
		}
	}
	// A 95% interval should cover the truth most of the time; allow wide
	// slack for the small trial count.
	if covered < trials/2 {
		t.Fatalf("interval covered truth only %d/%d times", covered, trials)
	}
}

func TestIntervalErrors(t *testing.T) {
	g := gen.HolmeKim(100, 2, 0.3, rng(32))
	w := walkOn(t, g, 12, 33)
	if _, err := w.AvgDegreeInterval(1); err == nil {
		t.Error("want error for a single batch")
	}
	if _, err := w.AvgDegreeInterval(10); err == nil {
		t.Error("want error for walk shorter than 2*batches")
	}
}

func TestGlobalClusteringEstimator(t *testing.T) {
	g := gen.HolmeKim(1500, 3, 0.8, rng(34))
	truth := props.GlobalClustering(g)
	w := walkOn(t, g, 12000, 35)
	got := w.GlobalClustering()
	if math.Abs(got-truth) > 0.35*truth {
		t.Fatalf("cbar estimate %v vs truth %v", got, truth)
	}
	iv, err := w.GlobalClusteringInterval(10)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Estimate < 0 || iv.Estimate > 1 {
		t.Fatalf("cbar interval estimate out of range: %+v", iv)
	}
}

func TestGlobalClusteringOnCliqueAndStar(t *testing.T) {
	clique := graph.New(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			clique.AddEdge(i, j)
		}
	}
	w := walkOn(t, clique, 4000, 36)
	if got := w.GlobalClustering(); math.Abs(got-1) > 0.05 {
		t.Fatalf("clique cbar estimate %v", got)
	}
	star := graph.New(6)
	for i := 1; i < 6; i++ {
		star.AddEdge(0, i)
	}
	w2 := walkOn(t, star, 500, 37)
	if got := w2.GlobalClustering(); got != 0 {
		t.Fatalf("star cbar estimate %v", got)
	}
}

func TestNumNodesInterval(t *testing.T) {
	g := gen.HolmeKim(800, 4, 0.5, rng(38))
	w := walkOn(t, g, 8000, 39)
	iv, err := w.NumNodesInterval(5)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Estimate <= 0 {
		t.Fatalf("n interval: %+v", iv)
	}
	// The batched estimate should be in the right ballpark.
	if iv.Estimate < 0.3*float64(g.N()) || iv.Estimate > 3*float64(g.N()) {
		t.Fatalf("n interval estimate %v vs truth %d", iv.Estimate, g.N())
	}
}
