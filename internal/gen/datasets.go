package gen

import (
	"fmt"
	"math/rand/v2"

	"sgr/internal/graph"
)

// Dataset describes a synthetic stand-in for one of the paper's seven public
// social graphs (Table I). Since the real datasets are unavailable offline,
// each stand-in is a Holme–Kim power-law-cluster graph whose node count and
// attachment parameter are chosen so that, at Scale=1, n and the average
// degree match Table I. The largest connected component is extracted and the
// graph simplified, exactly as in the paper's preprocessing.
type Dataset struct {
	Name    string  // paper dataset this stands in for
	N       int     // target node count at scale 1 (Table I)
	MAttach int     // Holme–Kim attachment count, ≈ half of Table I's avg degree
	PTriad  float64 // triad-formation probability (higher -> more clustering)
}

// Datasets lists the stand-ins in the paper's Table I order.
// MAttach ≈ m/n from Table I; PTriad loosely reflects the clustering level
// typical of each network's domain (location-based services cluster more).
var Datasets = []Dataset{
	{Name: "anybeat", N: 12645, MAttach: 4, PTriad: 0.3},
	{Name: "brightkite", N: 56739, MAttach: 4, PTriad: 0.6},
	{Name: "epinions", N: 75877, MAttach: 5, PTriad: 0.4},
	{Name: "slashdot", N: 77360, MAttach: 6, PTriad: 0.3},
	{Name: "gowalla", N: 196591, MAttach: 5, PTriad: 0.5},
	{Name: "livemocha", N: 104103, MAttach: 21, PTriad: 0.2},
	{Name: "youtube", N: 1134890, MAttach: 3, PTriad: 0.2},
}

// ByName returns the stand-in dataset description by paper name.
func ByName(name string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", name)
}

// Build generates the stand-in graph at the given scale (0 < scale <= 1),
// preprocessed to its simplified largest connected component. Scale divides
// the node count; the attachment parameter (and hence average degree) is
// preserved so the structural shape survives scaling.
func (d Dataset) Build(scale float64, r *rand.Rand) *graph.Graph {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("gen: scale %v out of (0,1]", scale))
	}
	n := int(float64(d.N) * scale)
	min := d.MAttach + 2
	if n < min {
		n = min
	}
	g := HolmeKim(n, d.MAttach, d.PTriad, r)
	clean, _ := graph.Preprocess(g)
	return clean
}

// FigureDatasets returns the three datasets used in Fig. 3
// (Anybeat, Brightkite, Epinions).
func FigureDatasets() []Dataset { return Datasets[:3] }

// TableDatasets returns the six datasets used in Tables II–IV (all but
// YouTube).
func TableDatasets() []Dataset { return Datasets[:6] }
