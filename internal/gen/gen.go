// Package gen provides random-graph generators used as synthetic stand-ins
// for the paper's seven public social-graph datasets (Table I), which are not
// available in this offline build.
//
// The generators implement the classic models: Erdős–Rényi G(n,m),
// Barabási–Albert preferential attachment, Holme–Kim power-law cluster
// (Barabási–Albert with triad formation, giving both a heavy-tailed degree
// distribution and tunable clustering — the two features the restoration
// method exercises), Watts–Strogatz small world, the configuration model for
// an arbitrary degree sequence, and a planted-partition community model.
// All generators take an explicit random source for reproducibility.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sgr/internal/graph"
)

// ErdosRenyiGNM returns a uniform random simple graph with n nodes and m
// distinct edges (no loops, no multi-edges). Panics if m exceeds C(n,2).
func ErdosRenyiGNM(n, m int, r *rand.Rand) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("gen: m=%d exceeds C(%d,2)=%d", m, n, maxM))
	}
	g := graph.New(n)
	seen := make(map[[2]int]struct{}, m)
	for g.M() < m {
		u := r.IntN(n)
		v := r.IntN(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		g.AddEdge(u, v)
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// star on m0 = mAttach+1 nodes, each new node attaches mAttach edges to
// existing nodes chosen proportionally to degree (without duplicate targets).
func BarabasiAlbert(n, mAttach int, r *rand.Rand) *graph.Graph {
	if mAttach < 1 || n < mAttach+1 {
		panic(fmt.Sprintf("gen: BarabasiAlbert(n=%d, m=%d) invalid", n, mAttach))
	}
	g := graph.New(n)
	// repeated holds one entry per edge endpoint, so uniform sampling from it
	// is degree-proportional sampling.
	repeated := make([]int, 0, 2*n*mAttach)
	for i := 1; i <= mAttach; i++ {
		g.AddEdge(0, i)
		repeated = append(repeated, 0, i)
	}
	seen := make(map[int]struct{}, mAttach)
	targets := make([]int, 0, mAttach)
	for v := mAttach + 1; v < n; v++ {
		clear(seen)
		targets = targets[:0]
		for len(targets) < mAttach {
			t := repeated[r.IntN(len(repeated))]
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			targets = append(targets, t)
		}
		for _, t := range targets {
			g.AddEdge(v, t)
			repeated = append(repeated, v, t)
		}
	}
	return g
}

// HolmeKim returns a power-law cluster graph (Holme & Kim 2002):
// Barabási–Albert growth where, after each preferential attachment, with
// probability pTriad the next edge instead closes a triangle with a random
// neighbor of the previous target. Produces heavy-tailed degrees with
// clustering that grows with pTriad, which makes it a good synthetic
// stand-in for social graphs.
func HolmeKim(n, mAttach int, pTriad float64, r *rand.Rand) *graph.Graph {
	if mAttach < 1 || n < mAttach+1 {
		panic(fmt.Sprintf("gen: HolmeKim(n=%d, m=%d) invalid", n, mAttach))
	}
	if pTriad < 0 || pTriad > 1 {
		panic("gen: HolmeKim pTriad out of [0,1]")
	}
	g := graph.New(n)
	repeated := make([]int, 0, 2*n*mAttach)
	for i := 1; i <= mAttach; i++ {
		g.AddEdge(0, i)
		repeated = append(repeated, 0, i)
	}
	seen := make(map[int]struct{}, mAttach)
	targets := make([]int, 0, mAttach)
	for v := mAttach + 1; v < n; v++ {
		clear(seen)
		targets = targets[:0]
		prev := -1
		for len(targets) < mAttach {
			var t int
			if prev >= 0 && r.Float64() < pTriad {
				// Triad step: connect to a random neighbor of prev.
				nb := g.Neighbors(prev)
				t = nb[r.IntN(len(nb))]
				if t == v {
					prev = -1
					continue
				}
				if _, dup := seen[t]; dup {
					// Fall back to preferential attachment this round.
					prev = -1
					continue
				}
			} else {
				t = repeated[r.IntN(len(repeated))]
				if _, dup := seen[t]; dup {
					continue
				}
			}
			seen[t] = struct{}{}
			targets = append(targets, t)
			prev = t
		}
		for _, t := range targets {
			g.AddEdge(v, t)
			repeated = append(repeated, v, t)
		}
	}
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where each node
// connects to its k/2 nearest neighbors on each side, with each edge rewired
// to a uniform random target with probability beta (avoiding loops and
// duplicate edges).
func WattsStrogatz(n, k int, beta float64, r *rand.Rand) *graph.Graph {
	if k%2 != 0 || k >= n || k < 2 {
		panic(fmt.Sprintf("gen: WattsStrogatz(n=%d, k=%d) needs even k in [2,n)", n, k))
	}
	g := graph.New(n)
	has := make(map[[2]int]struct{}, n*k/2)
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	add := func(u, v int) {
		g.AddEdge(u, v)
		has[key(u, v)] = struct{}{}
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			add(u, (u+j)%n)
		}
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			if r.Float64() >= beta {
				continue
			}
			v := (u + j) % n
			if _, ok := has[key(u, v)]; !ok {
				continue // already rewired away
			}
			// Try a handful of random targets; keep the edge if unlucky.
			for try := 0; try < 16; try++ {
				w := r.IntN(n)
				if w == u || w == v {
					continue
				}
				if _, ok := has[key(u, w)]; ok {
					continue
				}
				g.RemoveEdge(u, v)
				delete(has, key(u, v))
				add(u, w)
				break
			}
		}
	}
	return g
}

// ConfigurationModel returns a random multigraph whose degree sequence is
// exactly degrees (stub matching). The degree sum must be even. The result
// may contain multi-edges and self-loops, as in the standard model.
func ConfigurationModel(degrees []int, r *rand.Rand) *graph.Graph {
	total := 0
	for _, d := range degrees {
		if d < 0 {
			panic("gen: negative degree")
		}
		total += d
	}
	if total%2 != 0 {
		panic("gen: odd degree sum")
	}
	stubs := make([]int, 0, total)
	for u, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(len(degrees))
	for i := 0; i+1 < len(stubs); i += 2 {
		g.AddEdge(stubs[i], stubs[i+1])
	}
	return g
}

// PowerLawDegrees samples n degrees from a discrete power law
// P(k) ∝ k^(-gamma) on [kMin, kMax], adjusting the last entry by +1 if
// needed to make the sum even.
func PowerLawDegrees(n int, gamma float64, kMin, kMax int, r *rand.Rand) []int {
	if kMin < 1 || kMax < kMin {
		panic("gen: bad degree bounds")
	}
	weights := make([]float64, kMax-kMin+1)
	sum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(kMin+i), -gamma)
		sum += weights[i]
	}
	degrees := make([]int, n)
	degSum := 0
	for i := range degrees {
		x := r.Float64() * sum
		acc := 0.0
		k := kMax
		for j, w := range weights {
			acc += w
			if x <= acc {
				k = kMin + j
				break
			}
		}
		degrees[i] = k
		degSum += k
	}
	if degSum%2 != 0 {
		degrees[n-1]++
	}
	return degrees
}

// PlantedPartition returns a planted-partition (stochastic block model)
// graph with the given community sizes, within-community edge probability
// pIn, and cross-community probability pOut.
func PlantedPartition(sizes []int, pIn, pOut float64, r *rand.Rand) *graph.Graph {
	n := 0
	comm := []int{}
	for c, s := range sizes {
		n += s
		for i := 0; i < s; i++ {
			comm = append(comm, c)
		}
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if comm[u] == comm[v] {
				p = pIn
			}
			if r.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}
