package gen

import (
	mrand "math/rand"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9e3779b9)) }

func TestErdosRenyiGNM(t *testing.T) {
	g := ErdosRenyiGNM(50, 100, rng(1))
	if g.N() != 50 || g.M() != 100 {
		t.Fatalf("ER: n=%d m=%d", g.N(), g.M())
	}
	if g.CountMultiEdges() != 0 {
		t.Fatal("ER produced multi-edges or loops")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiPanicsOnTooManyEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for m > C(n,2)")
		}
	}()
	ErdosRenyiGNM(4, 7, rng(1))
}

func TestBarabasiAlbert(t *testing.T) {
	n, m := 200, 3
	g := BarabasiAlbert(n, m, rng(2))
	// Edge count: m (initial star) + (n-m-1)*m.
	wantM := m + (n-m-1)*m
	if g.M() != wantM {
		t.Fatalf("BA edges: got %d want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
	if g.CountMultiEdges() != 0 {
		t.Fatal("BA produced multi-edges")
	}
	// Preferential attachment should create a hub much larger than m.
	if g.MaxDegree() < 3*m {
		t.Errorf("BA max degree %d suspiciously small", g.MaxDegree())
	}
}

func TestHolmeKim(t *testing.T) {
	n, m := 400, 4
	g := HolmeKim(n, m, 0.7, rng(3))
	wantM := m + (n-m-1)*m
	if g.M() != wantM {
		t.Fatalf("HK edges: got %d want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Fatal("HK graph must be connected")
	}
	if g.CountMultiEdges() != 0 {
		t.Fatal("HK produced multi-edges")
	}
	// Triad formation must yield materially more triangles than pTriad=0.
	g0 := HolmeKim(n, m, 0.0, rng(3))
	if g.GlobalTriangles() <= g0.GlobalTriangles() {
		t.Errorf("HK clustering: triangles %d (p=0.7) <= %d (p=0)",
			g.GlobalTriangles(), g0.GlobalTriangles())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(100, 4, 0.1, rng(4))
	if g.N() != 100 || g.M() != 200 {
		t.Fatalf("WS: n=%d m=%d want 100,200", g.N(), g.M())
	}
	if g.CountMultiEdges() != 0 {
		t.Fatal("WS produced multi-edges")
	}
	// beta=0 must be the pure ring lattice: all degrees k.
	ring := WattsStrogatz(30, 4, 0, rng(5))
	for u := 0; u < 30; u++ {
		if ring.Degree(u) != 4 {
			t.Fatalf("ring degree(%d)=%d want 4", u, ring.Degree(u))
		}
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for odd k")
		}
	}()
	WattsStrogatz(10, 3, 0.1, rng(1))
}

func TestConfigurationModelExactDegrees(t *testing.T) {
	degrees := []int{3, 2, 2, 1, 4, 2}
	g := ConfigurationModel(degrees, rng(6))
	for u, d := range degrees {
		if g.Degree(u) != d {
			t.Fatalf("config degree(%d)=%d want %d", u, g.Degree(u), d)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigurationModelOddSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for odd degree sum")
		}
	}()
	ConfigurationModel([]int{1, 2}, rng(1))
}

func TestPowerLawDegrees(t *testing.T) {
	deg := PowerLawDegrees(5000, 2.5, 2, 100, rng(7))
	sum := 0
	minD, maxD := deg[0], deg[0]
	for _, d := range deg {
		sum += d
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if sum%2 != 0 {
		t.Fatal("degree sum must be even")
	}
	if minD < 2 || maxD > 101 { // +1 allowed on the last entry
		t.Fatalf("degree bounds violated: min=%d max=%d", minD, maxD)
	}
	// Heavy tail: low degrees dominate.
	nLow := 0
	for _, d := range deg {
		if d <= 4 {
			nLow++
		}
	}
	if float64(nLow)/float64(len(deg)) < 0.5 {
		t.Errorf("power law not heavy-tailed: only %d/%d degrees <= 4", nLow, len(deg))
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition([]int{40, 40}, 0.3, 0.01, rng(8))
	if g.N() != 80 {
		t.Fatalf("PP: n=%d", g.N())
	}
	within, across := 0, 0
	for _, e := range g.Edges() {
		if (e.U < 40) == (e.V < 40) {
			within++
		} else {
			across++
		}
	}
	if within <= across {
		t.Errorf("planted partition: within=%d across=%d", within, across)
	}
}

func TestDatasetRegistry(t *testing.T) {
	if len(Datasets) != 7 {
		t.Fatalf("want 7 datasets, got %d", len(Datasets))
	}
	d, err := ByName("anybeat")
	if err != nil || d.N != 12645 {
		t.Fatalf("ByName(anybeat): %v %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should fail for unknown dataset")
	}
	if len(FigureDatasets()) != 3 || len(TableDatasets()) != 6 {
		t.Fatal("figure/table dataset slices wrong")
	}
}

func TestDatasetBuild(t *testing.T) {
	d, _ := ByName("anybeat")
	g := d.Build(0.05, rng(9))
	if g.N() < 500 {
		t.Fatalf("scaled anybeat too small: n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("dataset stand-in must be connected (LCC extracted)")
	}
	if g.CountMultiEdges() != 0 {
		t.Fatal("dataset stand-in must be simple")
	}
	// Average degree should be near 2*MAttach.
	avg := g.AvgDegree()
	if avg < float64(d.MAttach) || avg > float64(4*d.MAttach) {
		t.Errorf("avg degree %v far from 2*%d", avg, d.MAttach)
	}
}

func TestDatasetBuildPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for scale 0")
		}
	}()
	Datasets[0].Build(0, rng(1))
}

func TestQuickConfigModelHandshake(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		degrees := make([]int, len(raw))
		sum := 0
		for i, b := range raw {
			degrees[i] = int(b % 8)
			sum += degrees[i]
		}
		if sum%2 != 0 {
			degrees[0]++
		}
		g := ConfigurationModel(degrees, rng(uint64(seed)))
		return g.DegreeSum() == 2*g.M() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: mrand.New(mrand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := HolmeKim(300, 3, 0.5, rng(42))
	b := HolmeKim(300, 3, 0.5, rng(42))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed, different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, different edge %d: %v vs %v", i, ea[i], eb[i])
		}
	}
}
