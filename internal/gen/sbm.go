package gen

import (
	"math/rand/v2"
	"sort"

	"sgr/internal/graph"
)

// DegreeCorrectedSBM generates a degree-corrected stochastic block model
// graph (Karrer & Newman 2011): nodes carry target degrees and community
// labels; edge stubs pair within communities with probability mixing and
// across otherwise, which yields community structure with an arbitrary
// (e.g. heavy-tailed) degree sequence — a harder, more social-graph-like
// test case than the plain planted partition.
//
// degrees and comm must have equal length; mixing in [0,1] is the fraction
// of each node's stubs wired inside its own community (1 = fully
// assortative communities, 0 = ignore communities). The result is a
// multigraph like the configuration model.
func DegreeCorrectedSBM(degrees, comm []int, mixing float64, r *rand.Rand) *graph.Graph {
	if len(degrees) != len(comm) {
		panic("gen: degrees and comm length mismatch")
	}
	if mixing < 0 || mixing > 1 {
		panic("gen: mixing out of [0,1]")
	}
	// Split stubs into within-community pools and a global pool.
	within := make(map[int][]int)
	var global []int
	for u, d := range degrees {
		if d < 0 {
			panic("gen: negative degree")
		}
		for i := 0; i < d; i++ {
			if r.Float64() < mixing {
				within[comm[u]] = append(within[comm[u]], u)
			} else {
				global = append(global, u)
			}
		}
	}
	g := graph.New(len(degrees))
	pair := func(stubs []int) {
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		for i := 0; i+1 < len(stubs); i += 2 {
			g.AddEdge(stubs[i], stubs[i+1])
		}
		// An odd stub (if any) joins the global pool.
		if len(stubs)%2 == 1 {
			global = append(global, stubs[len(stubs)-1])
		}
	}
	comms := make([]int, 0, len(within))
	for c := range within {
		comms = append(comms, c)
	}
	// Deterministic order for reproducibility.
	sort.Ints(comms)
	for _, c := range comms {
		pair(within[c])
	}
	r.Shuffle(len(global), func(i, j int) { global[i], global[j] = global[j], global[i] })
	for i := 0; i+1 < len(global); i += 2 {
		g.AddEdge(global[i], global[i+1])
	}
	return g
}
