package gen

import (
	"testing"
)

func TestDegreeCorrectedSBMCommunities(t *testing.T) {
	n := 400
	degrees := PowerLawDegrees(n, 2.5, 2, 40, rng(40))
	comm := make([]int, n)
	for i := range comm {
		comm[i] = i % 4
	}
	g := DegreeCorrectedSBM(degrees, comm, 0.9, rng(41))
	// Degree sums match up to the odd-stub reassignments (at most 4 stubs
	// move pools, and all stubs are still paired except possibly one).
	total := 0
	for _, d := range degrees {
		total += d
	}
	if got := g.DegreeSum(); got < total-2 || got > total {
		t.Fatalf("degree sum %d want ~%d", got, total)
	}
	// Strong mixing should place most edges within communities.
	within, across := 0, 0
	for _, e := range g.Edges() {
		if comm[e.U] == comm[e.V] {
			within++
		} else {
			across++
		}
	}
	if within < 3*across {
		t.Fatalf("communities too weak: within=%d across=%d", within, across)
	}
	// mixing=0 should behave like a configuration model (no community bias).
	g0 := DegreeCorrectedSBM(degrees, comm, 0, rng(42))
	within0, across0 := 0, 0
	for _, e := range g0.Edges() {
		if comm[e.U] == comm[e.V] {
			within0++
		} else {
			across0++
		}
	}
	if within0 > across0 {
		t.Fatalf("mixing=0 still community biased: within=%d across=%d", within0, across0)
	}
}

func TestDegreeCorrectedSBMPanics(t *testing.T) {
	for _, tc := range []struct {
		deg, comm []int
		mix       float64
	}{
		{[]int{1, 2}, []int{0}, 0.5},
		{[]int{1, 2}, []int{0, 1}, 1.5},
		{[]int{-1, 2}, []int{0, 1}, 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("want panic for %+v", tc)
				}
			}()
			DegreeCorrectedSBM(tc.deg, tc.comm, tc.mix, rng(43))
		}()
	}
}

func TestDegreeCorrectedSBMDeterministic(t *testing.T) {
	degrees := PowerLawDegrees(200, 2.5, 2, 20, rng(44))
	comm := make([]int, 200)
	for i := range comm {
		comm[i] = i % 3
	}
	a := DegreeCorrectedSBM(degrees, comm, 0.7, rng(45))
	b := DegreeCorrectedSBM(degrees, comm, 0.7, rng(45))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("nondeterministic at edge %d", i)
		}
	}
}
