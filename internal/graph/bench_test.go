package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	r := rand.New(rand.NewSource(1))
	g := New(n)
	for i := 0; i < m; i++ {
		g.AddEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

func BenchmarkAddEdge(b *testing.B) {
	g := New(10000)
	r := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdge(r.Intn(10000), r.Intn(10000))
	}
}

func BenchmarkMultiplicity(b *testing.B) {
	g := benchGraph(b, 5000, 25000)
	r := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Multiplicity(r.Intn(5000), r.Intn(5000))
	}
}

func BenchmarkTriangleCounts(b *testing.B) {
	g := benchGraph(b, 3000, 15000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.TriangleCounts()
	}
}

func BenchmarkJointDegreeMatrix(b *testing.B) {
	g := benchGraph(b, 5000, 25000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.JointDegreeMatrix()
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := benchGraph(b, 10000, 30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConnectedComponents()
	}
}

func BenchmarkSimplify(b *testing.B) {
	g := benchGraph(b, 5000, 40000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Simplify()
	}
}
