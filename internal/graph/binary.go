package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary graph codec ("SGRB" format, version 1).
//
// The format is a length-prefixed CSR endpoint dump — exactly the adjacency
// the graph holds in memory, so encoding and decoding preserve multi-edges,
// self-loops, AND the per-node neighbor order (the order the oracle protocol
// pins and float accumulations depend on). A decoded graph is therefore not
// just Equal to the original as a labeled multigraph: its Neighbors lists
// are element-for-element identical, which makes the codec safe to insert
// anywhere in a byte-identical pipeline.
//
// Layout (all integers little-endian uint32):
//
//	offset  size        field
//	0       4           magic "SGRB"
//	4       4           version (1)
//	8       4           n, number of nodes
//	12      4           ends, number of edge endpoints (= 2m, always even)
//	16      4*n         per-node endpoint counts (degrees)
//	16+4n   4*ends      endpoints, node 0's list first, adjacency order
//	16+4n+4e  4         IEEE CRC-32 of bytes [4, 16+4n+4e)
//
// The trailing checksum covers everything after the magic, so torn writes
// and bit rot are detected before the decoder trusts any length field's
// product. Decoding additionally re-validates graph invariants (endpoint
// ranges, adjacency symmetry, paired self-loops), so a crafted file cannot
// produce a graph the rest of the repository's invariants don't hold for.
const (
	binaryMagic   = "SGRB"
	binaryVersion = 1
)

// binaryHeaderSize is the fixed prefix before the degree array; a file also
// carries the 4-byte trailing CRC.
const binaryHeaderSize = 16

// AppendBinary appends the binary encoding of g to buf and returns the
// extended slice. It is the allocation-conscious core of WriteBinary:
// content-addressed caches encode a result once and serve the returned
// bytes zero-copy.
func AppendBinary(buf []byte, g *Graph) ([]byte, error) {
	n := len(g.adj)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d nodes exceed the binary codec's int32 index space", n)
	}
	ends := 0
	for _, a := range g.adj {
		ends += len(a)
	}
	if ends > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d edge endpoints exceed the binary codec's int32 index space", ends)
	}
	need := binaryHeaderSize + 4*n + 4*ends + 4
	if cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	buf = append(buf, binaryMagic...)
	crcFrom := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, binaryVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ends))
	for _, a := range g.adj {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a)))
	}
	for _, a := range g.adj {
		for _, v := range a {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[crcFrom:])), nil
}

// WriteBinary writes g in the binary codec.
func WriteBinary(w io.Writer, g *Graph) error {
	buf, err := AppendBinary(nil, g)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeBinary decodes a graph from its complete binary encoding. The input
// must be exactly one encoded graph; trailing bytes are an error. The
// decoded graph passes Validate — corrupt or crafted inputs are rejected,
// not partially applied.
func DecodeBinary(data []byte) (*Graph, error) {
	if len(data) < binaryHeaderSize+4 {
		return nil, fmt.Errorf("graph: binary input truncated at %d bytes", len(data))
	}
	if string(data[:4]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not an SGRB graph file)", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary format version %d", v)
	}
	n := binary.LittleEndian.Uint32(data[8:])
	ends := binary.LittleEndian.Uint32(data[12:])
	if n > math.MaxInt32 || ends > math.MaxInt32 {
		return nil, fmt.Errorf("graph: declared sizes n=%d ends=%d exceed the int32 index space", n, ends)
	}
	want := binaryHeaderSize + 4*int64(n) + 4*int64(ends) + 4
	if int64(len(data)) != want {
		return nil, fmt.Errorf("graph: binary input is %d bytes, header declares %d", len(data), want)
	}
	if ends%2 != 0 {
		return nil, fmt.Errorf("graph: odd endpoint count %d violates the handshake identity", ends)
	}
	body := data[4 : len(data)-4]
	if got, wantCRC := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(data[len(data)-4:]); got != wantCRC {
		return nil, fmt.Errorf("graph: checksum mismatch (got %08x, recorded %08x)", got, wantCRC)
	}

	deg := data[binaryHeaderSize:]
	pts := data[binaryHeaderSize+4*int(n):]
	total := uint64(0)
	for u := 0; u < int(n); u++ {
		total += uint64(binary.LittleEndian.Uint32(deg[4*u:]))
	}
	if total != uint64(ends) {
		return nil, fmt.Errorf("graph: degree sum %d != declared endpoint count %d", total, ends)
	}
	// One arena backs every neighbor list, like NewWithDegrees.
	arena := make([]int, ends)
	g := &Graph{adj: make([][]int, n), m: int(ends) / 2}
	off := 0
	for u := 0; u < int(n); u++ {
		d := int(binary.LittleEndian.Uint32(deg[4*u:]))
		row := arena[off : off+d]
		for i := range row {
			v := binary.LittleEndian.Uint32(pts[4*(off+i):])
			if v >= n {
				return nil, fmt.Errorf("graph: node %d lists out-of-range neighbor %d", u, v)
			}
			row[i] = int(v)
		}
		g.adj[u] = row
		off += d
	}
	// Structural re-validation: symmetry and paired self-loops cannot be
	// checked from lengths alone, and a graph violating them would break
	// every downstream invariant.
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ReadBinary decodes a graph written by WriteBinary from r.
func ReadBinary(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeBinary(data)
}

// SaveBinary writes the graph to path in the binary codec.
func SaveBinary(path string, g *Graph) error {
	buf, err := AppendBinary(nil, g)
	if err != nil {
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// LoadBinary reads a binary graph file from disk.
func LoadBinary(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := DecodeBinary(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
