package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(711))
	cases := []*Graph{
		New(0),
		New(3), // isolated nodes only
		randomMultigraph(r, 1, 4),
		randomMultigraph(r, 25, 80),
		randomMultigraph(r, 200, 1000),
	}
	for ci, g := range cases {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("case %d: WriteBinary: %v", ci, err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("case %d: ReadBinary: %v", ci, err)
		}
		if !Equal(g, got) {
			t.Fatalf("case %d: decoded graph not Equal (n=%d m=%d vs n=%d m=%d)",
				ci, g.N(), g.M(), got.N(), got.M())
		}
		// Stronger than Equal: adjacency order must survive verbatim.
		for u := 0; u < g.N(); u++ {
			a, b := g.Neighbors(u), got.Neighbors(u)
			if len(a) != len(b) {
				t.Fatalf("case %d: node %d degree %d != %d", ci, u, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("case %d: node %d adjacency order changed at slot %d: %d != %d",
						ci, u, i, a[i], b[i])
				}
			}
		}
		// Re-encoding the decoded graph must reproduce the bytes exactly —
		// the property content-addressed caches build on.
		again, err := AppendBinary(nil, got)
		if err != nil {
			t.Fatalf("case %d: re-encode: %v", ci, err)
		}
		if !bytes.Equal(buf.Bytes(), again) {
			t.Fatalf("case %d: encode(decode(x)) != x", ci)
		}
	}
}

func TestBinaryAppendMatchesWrite(t *testing.T) {
	g := randomMultigraph(rand.New(rand.NewSource(35)), 40, 120)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	app, err := AppendBinary([]byte("prefix"), g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(app[len("prefix"):], buf.Bytes()) {
		t.Fatal("AppendBinary after a prefix differs from WriteBinary")
	}
}

func TestBinarySaveLoad(t *testing.T) {
	g := randomMultigraph(rand.New(rand.NewSource(92)), 30, 90)
	path := filepath.Join(t.TempDir(), "g.sgrb")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, got) {
		t.Fatal("LoadBinary(SaveBinary(g)) != g")
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	g := randomMultigraph(rand.New(rand.NewSource(11)), 20, 60)
	good, err := AppendBinary(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "truncated"},
		{"short", good[:8], "truncated"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), "bad magic"},
		{"bad version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 99)
			return b
		}), "version"},
		{"truncated body", good[:len(good)-8], "declares"},
		{"trailing garbage", append(append([]byte(nil), good...), 0, 0, 0, 0), "declares"},
		{"flipped payload bit", mutate(func(b []byte) []byte { b[20] ^= 1; return b }), "checksum"},
		{"flipped crc", mutate(func(b []byte) []byte { b[len(b)-1] ^= 1; return b }), "checksum"},
	}
	for _, tc := range cases {
		if _, err := DecodeBinary(tc.data); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestBinaryRejectsInvalidGraphs feeds structurally invalid but
// checksum-correct encodings: the decoder must re-validate graph
// invariants, not just framing.
func TestBinaryRejectsInvalidGraphs(t *testing.T) {
	// encode hand-builds an SGRB file from raw degree/endpoint arrays with a
	// valid CRC, bypassing the encoder's invariants.
	encode := func(n uint32, deg, pts []uint32) []byte {
		buf := []byte(binaryMagic)
		buf = binary.LittleEndian.AppendUint32(buf, binaryVersion)
		buf = binary.LittleEndian.AppendUint32(buf, n)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(pts)))
		for _, d := range deg {
			buf = binary.LittleEndian.AppendUint32(buf, d)
		}
		for _, p := range pts {
			buf = binary.LittleEndian.AppendUint32(buf, p)
		}
		crc := crc32.ChecksumIEEE(buf[4:])
		return binary.LittleEndian.AppendUint32(buf, crc)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"odd endpoints", encode(2, []uint32{1, 0}, []uint32{1})},
		{"degree sum mismatch", encode(2, []uint32{2, 2}, []uint32{1, 0})},
		{"out of range neighbor", encode(2, []uint32{1, 1}, []uint32{1, 5})},
		{"asymmetric adjacency", encode(3, []uint32{1, 1, 0}, []uint32{1, 2})},
		{"half self-loop", encode(2, []uint32{1, 1}, []uint32{0, 0})},
	}
	for _, tc := range cases {
		if _, err := DecodeBinary(tc.data); err == nil {
			t.Errorf("%s: decoder accepted an invalid graph", tc.name)
		}
	}
}
