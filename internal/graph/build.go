package graph

import "sort"

// FromEdges builds a graph with n nodes and the given edge instances.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// Simplify returns a copy of g with self-loops removed and multi-edges
// collapsed to a single edge. This mirrors the paper's dataset preprocessing.
func (g *Graph) Simplify() *Graph {
	s := New(g.N())
	seen := make(map[Edge]struct{})
	for u, a := range g.adj {
		for _, v := range a {
			if v <= u { // each unordered pair once; skips loops (v == u)
				continue
			}
			e := Edge{u, v}
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			s.AddEdge(u, v)
		}
	}
	return s
}

// ConnectedComponents returns the node sets of the connected components,
// largest first. Isolated nodes form singleton components.
func (g *Graph) ConnectedComponents() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		members := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
					members = append(members, v)
				}
			}
		}
		comps = append(comps, members)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// IsConnected reports whether the graph is connected (an empty graph is
// considered connected).
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}

// LargestComponent returns the subgraph induced by the largest connected
// component, with nodes relabeled to 0..k-1, and the mapping newID -> oldID.
func (g *Graph) LargestComponent() (*Graph, []int) {
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return New(0), nil
	}
	return g.InducedSubgraph(comps[0])
}

// InducedSubgraph returns the subgraph induced by the given node set, with
// nodes relabeled to 0..len(nodes)-1 in the order given, plus the mapping
// newID -> oldID. Edges (including multi-edges and loops) with both endpoints
// in the set are retained.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
	}
	sub := New(len(nodes))
	for i, u := range nodes {
		loops := 0
		for _, v := range g.adj[u] {
			if v == u {
				loops++
				continue
			}
			j, ok := idx[v]
			if !ok {
				continue
			}
			if j > i {
				sub.AddEdge(i, j)
			}
		}
		for l := 0; l < loops/2; l++ {
			sub.AddEdge(i, i)
		}
	}
	mapping := append([]int(nil), nodes...)
	return sub, mapping
}

// Preprocess mirrors the paper's dataset preparation: drop edge directions
// (inputs here are already undirected), remove multi-edges and self-loops,
// and extract the largest connected component. Returns the cleaned graph and
// the newID -> oldID mapping.
func Preprocess(g *Graph) (*Graph, []int) {
	return g.Simplify().LargestComponent()
}
