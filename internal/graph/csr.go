package graph

import (
	"fmt"
	"math"
)

// CSR is an immutable compressed-sparse-row snapshot of a Graph: the shared
// read path for everything that only consumes adjacency — property
// computation, the evaluation harness, and the oracle server. It carries two
// views of every node's row, both int32-indexed and carved out of flat
// arrays so hot loops touch contiguous memory instead of chasing [][]int:
//
//   - the endpoint view (Endpoints): one entry per incident edge endpoint in
//     the graph's original adjacency order — multi-edges repeat, a self-loop
//     contributes the node twice. This is the view whose order is
//     protocol-visible (the oracle serves neighbor pages from it zero-copy)
//     and whose iteration order float accumulations depend on.
//   - the distinct view (Row): distinct non-self neighbors in ascending
//     order with a parallel edge-multiplicity array, plus a per-node
//     self-loop count. Sorted rows turn neighborhood intersection — the
//     kernel of triangle counting and shared-partner statistics — into a
//     linear merge, and make float accumulation order reproducible.
//
// Obtain one via Graph.CSR(); it is cached next to Index() and invalidated
// by every mutating method. A CSR handle held across a mutation keeps
// answering for the snapshot it was built from. A CSR is safe for
// concurrent readers.
type CSR struct {
	n int
	m int

	// Endpoint view: endpoints[endOff[u]:endOff[u+1]] is u's neighbor list
	// in original adjacency order.
	endOff    []int32
	endpoints []int32

	// Distinct view: nbr/mult[off[u]:off[u+1]] are u's distinct non-self
	// neighbors ascending with multiplicities; loops[u] counts self-loops.
	off   []int32
	nbr   []int32
	mult  []int32
	loops []int32

	maxDeg int
}

// CSR returns the graph's CSR snapshot, building it on first use in
// O(n + m) and caching it on the graph. Any mutation (AddEdge, RemoveEdge,
// AddNode, AddNodes, SortAdjacency) invalidates the cache, so a later CSR()
// call rebuilds. Building is not goroutine-safe: call CSR() once before
// sharing a graph across goroutines that read it.
func (g *Graph) CSR() *CSR {
	if g.csr == nil {
		g.csr = g.buildCSR()
	}
	return g.csr
}

// buildCSR constructs a fresh snapshot from the current adjacency lists.
// The distinct rows come out sorted without any per-row sort: scanning
// source nodes v in ascending order and appending v to each neighbor's row
// produces ascending rows with duplicate endpoints adjacent, so
// multiplicities compress on the fly.
func (g *Graph) buildCSR() *CSR {
	n := len(g.adj)
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: %d nodes exceed the CSR int32 index space", n))
	}
	ends := 0
	for _, a := range g.adj {
		ends += len(a)
	}
	if ends > math.MaxInt32 {
		panic(fmt.Sprintf("graph: %d edge endpoints exceed the CSR int32 index space", ends))
	}
	c := &CSR{
		n:         n,
		m:         g.m,
		endOff:    make([]int32, n+1),
		endpoints: make([]int32, ends),
		off:       make([]int32, n+1),
		loops:     make([]int32, n),
	}
	// Endpoint view: flatten the adjacency lists verbatim.
	pos := int32(0)
	for u, a := range g.adj {
		c.endOff[u] = pos
		if len(a) > c.maxDeg {
			c.maxDeg = len(a)
		}
		for _, v := range a {
			c.endpoints[pos] = int32(v)
			pos++
		}
	}
	c.endOff[n] = pos

	// Distinct view, pass 1: count each row's distinct non-self neighbors.
	// lastSeen[u] tracks the previous v appended to u's row; v ascends, so
	// a repeat of the same v is always immediately preceding.
	lastSeen := make([]int32, n)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	cnt := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.adj[v] {
			if u == v {
				continue
			}
			if lastSeen[u] != int32(v) {
				lastSeen[u] = int32(v)
				cnt[u]++
			}
		}
	}
	total := int32(0)
	for u := 0; u < n; u++ {
		c.off[u] = total
		total += cnt[u]
	}
	c.off[n] = total
	c.nbr = make([]int32, total)
	c.mult = make([]int32, total)

	// Pass 2: fill rows in ascending neighbor order, compressing runs of
	// the same v into one slot with a multiplicity count.
	fill := make([]int32, n)
	copy(fill, c.off[:n])
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for v := 0; v < n; v++ {
		loopEnds := int32(0)
		for _, u := range g.adj[v] {
			if u == v {
				loopEnds++
				continue
			}
			if lastSeen[u] == int32(v) {
				c.mult[fill[u]-1]++
			} else {
				lastSeen[u] = int32(v)
				c.nbr[fill[u]] = int32(v)
				c.mult[fill[u]] = 1
				fill[u]++
			}
		}
		c.loops[v] = loopEnds / 2
	}
	return c
}

// N returns the number of nodes.
func (c *CSR) N() int { return c.n }

// M returns the number of edges (a self-loop counts as one edge).
func (c *CSR) M() int { return c.m }

// MaxDegree returns the maximum node degree (0 for an empty graph).
func (c *CSR) MaxDegree() int { return c.maxDeg }

// Degree returns the degree of u (self-loops count twice).
func (c *CSR) Degree(u int) int { return int(c.endOff[u+1] - c.endOff[u]) }

// Endpoints returns u's neighbor list in the graph's original adjacency
// order, one entry per incident edge endpoint (multi-edges repeat, a
// self-loop contributes u twice). The slice aliases the snapshot and must
// not be mutated.
func (c *CSR) Endpoints(u int) []int32 {
	return c.endpoints[c.endOff[u]:c.endOff[u+1]]
}

// Row returns u's distinct non-self neighbors in ascending order and the
// parallel edge multiplicities. The slices alias the snapshot and must not
// be mutated.
func (c *CSR) Row(u int) (nbr, mult []int32) {
	lo, hi := c.off[u], c.off[u+1]
	return c.nbr[lo:hi], c.mult[lo:hi]
}

// DistinctDegree returns the number of distinct non-self neighbors of u.
func (c *CSR) DistinctDegree(u int) int { return int(c.off[u+1] - c.off[u]) }

// Loops returns the number of self-loops at u.
func (c *CSR) Loops(u int) int { return int(c.loops[u]) }

// Multiplicity returns the adjacency-matrix entry A[u][v] by binary search
// on u's sorted distinct row: the number of edges between distinct u and v,
// or twice the number of self-loops if u == v.
func (c *CSR) Multiplicity(u, v int) int {
	if u == v {
		return 2 * int(c.loops[u])
	}
	nbr, mult := c.Row(u)
	lo, hi := 0, len(nbr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbr[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nbr) && nbr[lo] == int32(v) {
		return int(mult[lo])
	}
	return 0
}

// HasEdge reports whether at least one edge joins u and v.
func (c *CSR) HasEdge(u, v int) bool { return c.Multiplicity(u, v) > 0 }

// Rows exposes the distinct view's raw arrays — offsets, ascending
// neighbors, parallel multiplicities — for CSR-shaped consumers (the
// Brandes/BFS machinery). Read-only.
func (c *CSR) Rows() (off, nbr, mult []int32) { return c.off, c.nbr, c.mult }

// SharedPartners returns sp(u,v) = sum_{w != u,v} A_uw * A_vw, the
// multiplicity-weighted shared-neighbor count of Sec. V-B's edgewise
// shared partner statistic, by a linear merge of the two sorted distinct
// rows. The endpoints exclude themselves structurally: every common
// neighbor w lies in both distinct rows, so w != u and w != v. Runs in
// O(deg(u) + deg(v)) without allocating.
func (c *CSR) SharedPartners(u, v int) int64 {
	un, um := c.Row(u)
	vn, vm := c.Row(v)
	var s int64
	i, j := 0, 0
	for i < len(un) && j < len(vn) {
		a, b := un[i], vn[j]
		switch {
		case a < b:
			i++
		case a > b:
			j++
		default:
			s += int64(um[i]) * int64(vm[j])
			i++
			j++
		}
	}
	return s
}
