package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestCSRMatchesGraph(t *testing.T) {
	r := rand.New(rand.NewSource(901))
	for trial := 0; trial < 8; trial++ {
		g := randomMultigraph(r, 30+trial*7, 120+trial*30)
		c := g.CSR()
		if c.N() != g.N() || c.M() != g.M() || c.MaxDegree() != g.MaxDegree() {
			t.Fatalf("trial %d: N/M/MaxDegree mismatch", trial)
		}
		for u := 0; u < g.N(); u++ {
			if c.Degree(u) != g.Degree(u) {
				t.Fatalf("trial %d: Degree(%d) = %d want %d", trial, u, c.Degree(u), g.Degree(u))
			}
			// Endpoint view preserves the raw adjacency order exactly.
			want := g.Neighbors(u)
			got := c.Endpoints(u)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Endpoints(%d) length %d want %d", trial, u, len(got), len(want))
			}
			for i, v := range want {
				if int(got[i]) != v {
					t.Fatalf("trial %d: Endpoints(%d)[%d] = %d want %d", trial, u, i, got[i], v)
				}
			}
			// Distinct view: ascending, multiplicity-correct, loop-free.
			mm := g.NeighborMultiplicities(u)
			nbr, mult := c.Row(u)
			if len(nbr) != len(mm) || c.DistinctDegree(u) != len(mm) {
				t.Fatalf("trial %d: Row(%d) has %d entries want %d", trial, u, len(nbr), len(mm))
			}
			if !sort.SliceIsSorted(nbr, func(i, j int) bool { return nbr[i] < nbr[j] }) {
				t.Fatalf("trial %d: Row(%d) not ascending: %v", trial, u, nbr)
			}
			for i, v := range nbr {
				if int(v) == u {
					t.Fatalf("trial %d: Row(%d) contains a self-loop", trial, u)
				}
				if int(mult[i]) != mm[int(v)] {
					t.Fatalf("trial %d: mult(%d,%d) = %d want %d", trial, u, v, mult[i], mm[int(v)])
				}
			}
			if c.Loops(u) != g.LoopCount(u) {
				t.Fatalf("trial %d: Loops(%d) = %d want %d", trial, u, c.Loops(u), g.LoopCount(u))
			}
			for v := 0; v < g.N(); v++ {
				if got, want := c.Multiplicity(u, v), g.Multiplicity(u, v); got != want {
					t.Fatalf("trial %d: Multiplicity(%d,%d) = %d want %d", trial, u, v, got, want)
				}
				if c.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("trial %d: HasEdge(%d,%d) mismatch", trial, u, v)
				}
			}
		}
	}
}

func TestCSREmptyAndIsolated(t *testing.T) {
	if c := New(0).CSR(); c.N() != 0 || c.M() != 0 {
		t.Fatal("empty graph CSR")
	}
	g := New(3)
	g.AddEdge(0, 0) // only a self-loop
	c := g.CSR()
	if c.Degree(0) != 2 || c.DistinctDegree(0) != 0 || c.Loops(0) != 1 {
		t.Fatalf("loop-only node: deg=%d distinct=%d loops=%d", c.Degree(0), c.DistinctDegree(0), c.Loops(0))
	}
	if c.Multiplicity(0, 0) != 2 {
		t.Fatalf("A[0][0] = %d want 2 (Newman convention)", c.Multiplicity(0, 0))
	}
	if c.Degree(2) != 0 || len(c.Endpoints(2)) != 0 {
		t.Fatal("isolated node must have empty rows")
	}
}

// TestCSRInvalidatedByEveryMutator exercises each mutating method of Graph
// and requires both cached snapshots — Index and CSR — to be dropped, so no
// reader can observe a stale view after any mutation.
func TestCSRInvalidatedByEveryMutator(t *testing.T) {
	base := func() *Graph {
		g := New(4)
		g.AddEdge(2, 1)
		g.AddEdge(0, 1)
		g.AddEdge(0, 0)
		return g
	}
	cases := []struct {
		name   string
		mutate func(g *Graph)
	}{
		{"AddNode", func(g *Graph) { g.AddNode() }},
		{"AddNodes", func(g *Graph) { g.AddNodes(3) }},
		{"AddEdge", func(g *Graph) { g.AddEdge(1, 3) }},
		{"AddEdgeLoop", func(g *Graph) { g.AddEdge(3, 3) }},
		{"RemoveEdge", func(g *Graph) { g.RemoveEdge(0, 1) }},
		{"RemoveEdgeLoop", func(g *Graph) { g.RemoveEdge(0, 0) }},
		{"SortAdjacency", func(g *Graph) { g.SortAdjacency() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := base()
			ix, c := g.Index(), g.CSR()
			if g.Index() != ix || g.CSR() != c {
				t.Fatal("snapshots must be cached between calls without mutation")
			}
			tc.mutate(g)
			if g.idx != nil || g.csr != nil {
				t.Fatalf("%s left a cached snapshot in place (idx=%v csr=%v)",
					tc.name, g.idx != nil, g.csr != nil)
			}
			// The rebuilt snapshot reflects the mutation; the old handle
			// keeps answering for the snapshot it was built from.
			c2 := g.CSR()
			if c2 == c {
				t.Fatal("CSR() returned the invalidated snapshot")
			}
			for u := 0; u < g.N(); u++ {
				if c2.Degree(u) != g.Degree(u) {
					t.Fatalf("rebuilt CSR degree(%d) = %d want %d", u, c2.Degree(u), g.Degree(u))
				}
			}
		})
	}
}

// A failed RemoveEdge (no such edge) performs no mutation and may keep the
// caches; the snapshot must still match the untouched graph.
func TestCSRSurvivesFailedRemove(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.CSR()
	if g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge(1,2) should report no edge")
	}
	if got := g.CSR(); got.Multiplicity(0, 1) != 1 {
		t.Fatalf("CSR after failed remove: A[0][1] = %d want 1", got.Multiplicity(0, 1))
	}
	_ = c
}

func TestCloneDoesNotShareCSR(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	_ = g.CSR()
	c := g.Clone()
	c.AddEdge(1, 2)
	if !c.CSR().HasEdge(1, 2) || g.CSR().HasEdge(1, 2) {
		t.Fatal("clone CSR leaked into the original (or vice versa)")
	}
}

func TestSortAdjacencyReordersEndpointView(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 2)
	g.AddEdge(1, 0)
	before := g.CSR().Endpoints(1)
	if before[0] != 2 || before[1] != 0 {
		t.Fatalf("pre-sort endpoint order: %v", before)
	}
	g.SortAdjacency()
	after := g.CSR().Endpoints(1)
	if after[0] != 0 || after[1] != 2 {
		t.Fatalf("post-sort endpoint order: %v", after)
	}
}
