package graph

import "testing"

func TestEqual(t *testing.T) {
	a := New(3)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	b := New(3)
	b.AddEdge(1, 2)
	b.AddEdge(0, 1) // insertion order must not matter
	if !Equal(a, b) {
		t.Fatal("Equal must ignore insertion order")
	}
	c := a.Clone()
	c.AddEdge(0, 1)
	if Equal(a, c) {
		t.Fatal("Equal must distinguish multiplicities")
	}
	d := New(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	if Equal(a, d) {
		t.Fatal("Equal must compare node counts")
	}
	// Loops count.
	e := New(3)
	e.AddEdge(0, 1)
	e.AddEdge(2, 2)
	f := New(3)
	f.AddEdge(0, 1)
	f.AddEdge(1, 2)
	if Equal(e, f) {
		t.Fatal("Equal must distinguish loops from edges")
	}
}
