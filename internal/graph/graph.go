// Package graph implements the undirected multigraph substrate used by every
// other package in this repository.
//
// The conventions follow the paper (Sec. III-A) and Newman's textbook: graphs
// are undirected, multiple edges and self-loops are allowed, the adjacency
// matrix entry A[i][j] is the number of edges between distinct nodes i and j,
// and A[i][i] is twice the number of self-loops at i. The degree of a node is
// the number of edge endpoints incident to it, so a self-loop contributes two
// to its node's degree and the handshake identity sum(deg) == 2m always holds.
package graph

import (
	"fmt"
	"sort"

	"sgr/internal/adjset"
)

// Graph is an undirected multigraph over dense integer node IDs 0..N()-1.
//
// The zero value is an empty graph ready to use. Neighbor lists store one
// entry per edge endpoint: an edge (u,v) appends v to adj[u] and u to adj[v];
// a self-loop (u,u) appends u to adj[u] twice.
type Graph struct {
	adj [][]int
	m   int // number of edges (a self-loop counts as one edge)

	// idx caches the flat multiplicity index built by Index() and csr the
	// compressed-sparse-row snapshot built by CSR(); every mutating method
	// resets both to nil.
	idx *Index
	csr *CSR
}

// invalidate drops the cached read-path snapshots. Every mutating method
// calls it before changing the adjacency.
func (g *Graph) invalidate() {
	g.idx = nil
	g.csr = nil
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]int, n)}
}

// NewWithDegrees returns a graph with len(deg) isolated nodes whose
// neighbor lists are preallocated to the given endpoint capacities out of
// one shared arena (a self-loop consumes two endpoints). Callers that know
// the final degree sequence — e.g. rewiring, which preserves degrees —
// assemble the graph without any per-AddEdge allocation; exceeding a
// capacity is safe and merely reallocates that list.
func NewWithDegrees(deg []int) *Graph {
	total := 0
	for _, d := range deg {
		if d > 0 {
			total += d
		}
	}
	arena := make([]int, total)
	g := &Graph{adj: make([][]int, len(deg))}
	off := 0
	for u, d := range deg {
		if d <= 0 {
			continue
		}
		g.adj[u] = arena[off : off : off+d]
		off += d
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges. A self-loop counts as one edge.
func (g *Graph) M() int { return g.m }

// AddNode appends a new isolated node and returns its ID.
func (g *Graph) AddNode() int {
	g.invalidate()
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddNodes appends k new isolated nodes and returns the ID of the first.
func (g *Graph) AddNodes(k int) int {
	g.invalidate()
	first := len(g.adj)
	g.adj = append(g.adj, make([][]int, k)...)
	return first
}

// AddEdge inserts an undirected edge between u and v. Multi-edges and
// self-loops are permitted; a self-loop adds two endpoints at u.
func (g *Graph) AddEdge(u, v int) {
	g.checkNode(u)
	g.checkNode(v)
	g.invalidate()
	g.adj[u] = append(g.adj[u], v)
	if u != v {
		g.adj[v] = append(g.adj[v], u)
	} else {
		g.adj[u] = append(g.adj[u], u)
	}
	g.m++
}

// RemoveEdge deletes one instance of the edge (u,v). It reports whether an
// instance existed. Removing a self-loop removes both endpoints at u.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.checkNode(u)
	g.checkNode(v)
	if !g.removeEndpoint(u, v) {
		return false
	}
	g.invalidate()
	if u != v {
		if !g.removeEndpoint(v, u) {
			panic(fmt.Sprintf("graph: asymmetric adjacency between %d and %d", u, v))
		}
	} else if !g.removeEndpoint(u, u) {
		panic(fmt.Sprintf("graph: half self-loop at %d", u))
	}
	g.m--
	return true
}

func (g *Graph) removeEndpoint(u, v int) bool {
	a := g.adj[u]
	for i, w := range a {
		if w == v {
			a[i] = a[len(a)-1]
			g.adj[u] = a[:len(a)-1]
			return true
		}
	}
	return false
}

// Degree returns the degree of u (self-loops count twice).
func (g *Graph) Degree(u int) int {
	g.checkNode(u)
	return len(g.adj[u])
}

// Neighbors returns the neighbor list of u. One entry per incident edge
// endpoint, so multi-edges repeat and a self-loop contributes u twice.
// The returned slice is owned by the graph and must not be mutated.
func (g *Graph) Neighbors(u int) []int {
	g.checkNode(u)
	return g.adj[u]
}

// Multiplicity returns the adjacency-matrix entry A[u][v]: the number of
// edges between distinct u and v, or twice the number of self-loops if u == v.
func (g *Graph) Multiplicity(u, v int) int {
	g.checkNode(u)
	g.checkNode(v)
	// Scan the shorter list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	c := 0
	for _, w := range g.adj[u] {
		if w == v {
			c++
		}
	}
	return c
}

// HasEdge reports whether at least one edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool { return g.Multiplicity(u, v) > 0 }

// Index is a flat adjacency-multiset snapshot of a Graph offering O(1)
// Multiplicity and HasEdge, for callers that probe many node pairs (props,
// validation, rewiring audits). Obtain one via Graph.Index().
type Index struct {
	set *adjset.Set
}

// Index returns the graph's multiplicity index, building it on first use
// in O(n + m) and caching it on the graph. Any mutation (AddEdge,
// RemoveEdge, AddNode, AddNodes) invalidates the cache, so a later Index()
// call rebuilds; an Index handle held across a mutation keeps answering
// for the snapshot it was built from. Building is not goroutine-safe:
// call Index() once before sharing a graph across goroutines that read it.
func (g *Graph) Index() *Index {
	if g.idx == nil {
		g.idx = g.buildIndex()
	}
	return g.idx
}

// buildIndex constructs a fresh index from the current adjacency lists.
func (g *Graph) buildIndex() *Index {
	s := adjset.New(len(g.adj))
	for u, a := range g.adj {
		for _, v := range a {
			s.Inc(u, v)
		}
	}
	return &Index{set: s}
}

// Multiplicity returns A[u][v] in O(1): the number of edges between
// distinct u and v, or twice the number of self-loops if u == v.
func (ix *Index) Multiplicity(u, v int) int { return ix.set.Get(u, v) }

// HasEdge reports in O(1) whether at least one edge joins u and v.
func (ix *Index) HasEdge(u, v int) bool { return ix.set.Get(u, v) > 0 }

// DistinctNeighbors returns the number of distinct neighbors of u (a
// self-loop counts u itself as one neighbor).
func (ix *Index) DistinctNeighbors(u int) int { return ix.set.Len(u) }

// Row exposes u's raw (neighbor, multiplicity) slots for allocation-free
// iteration; slots with key adjset.Empty are vacant. Read-only.
func (ix *Index) Row(u int) (keys, counts []int32) { return ix.set.Row(u) }

// MaxDegree returns the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// AvgDegree returns 2m/n, the average degree, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Edge is an undirected edge instance.
type Edge struct{ U, V int }

// Canon returns the edge with endpoints ordered U <= V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Edges returns every edge instance exactly once, with U <= V, sorted
// lexicographically. Multi-edges appear with their multiplicity.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u, a := range g.adj {
		loops := 0
		for _, v := range a {
			if v > u {
				out = append(out, Edge{u, v})
			} else if v == u {
				loops++
			}
		}
		for i := 0; i < loops/2; i++ {
			out = append(out, Edge{u, u})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// DegreeVector returns nk where nk[k] is the number of nodes with degree k,
// for k = 0..MaxDegree().
func (g *Graph) DegreeVector() []int {
	nk := make([]int, g.MaxDegree()+1)
	for _, a := range g.adj {
		nk[len(a)]++
	}
	return nk
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]int, len(g.adj)), m: g.m}
	for i, a := range g.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	return c
}

// SortAdjacency sorts every neighbor list ascending, giving the graph a
// canonical in-memory form (useful for tests and deterministic iteration).
// It invalidates the cached snapshots: the CSR endpoint view mirrors the
// in-memory adjacency order, which this reorders.
func (g *Graph) SortAdjacency() {
	g.invalidate()
	for _, a := range g.adj {
		sort.Ints(a)
	}
}

func (g *Graph) checkNode(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Equal reports whether two graphs are identical as labeled multigraphs:
// same node count and the same edge multiset.
func Equal(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// Validate checks internal invariants (symmetric adjacency, handshake
// identity) and returns a descriptive error if any is violated.
func (g *Graph) Validate() error {
	ends := 0
	for u, a := range g.adj {
		ends += len(a)
		for _, v := range a {
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph: node %d lists out-of-range neighbor %d", u, v)
			}
		}
	}
	if ends != 2*g.m {
		return fmt.Errorf("graph: %d endpoints but m=%d (want %d endpoints)", ends, g.m, 2*g.m)
	}
	// Fresh index (not the cache: Validate must see the adjacency as-is
	// even if a caller corrupted it without going through a mutator).
	ix := g.buildIndex()
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u == v {
				continue
			}
			if ix.Multiplicity(u, v) != ix.Multiplicity(v, u) {
				return fmt.Errorf("graph: asymmetric multiplicity between %d and %d", u, v)
			}
		}
	}
	for u, a := range g.adj {
		self := 0
		for _, v := range a {
			if v == u {
				self++
			}
		}
		if self%2 != 0 {
			return fmt.Errorf("graph: odd self-loop endpoint count at node %d", u)
		}
	}
	return nil
}
