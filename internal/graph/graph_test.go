package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAddNode(t *testing.T) {
	g := New(3)
	if g.N() != 3 || g.M() != 0 {
		t.Fatalf("New(3): got n=%d m=%d", g.N(), g.M())
	}
	id := g.AddNode()
	if id != 3 || g.N() != 4 {
		t.Fatalf("AddNode: got id=%d n=%d", id, g.N())
	}
	first := g.AddNodes(5)
	if first != 4 || g.N() != 9 {
		t.Fatalf("AddNodes(5): got first=%d n=%d", first, g.N())
	}
}

func TestAddEdgeDegreesAndHandshake(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // multi-edge
	g.AddEdge(3, 3) // self-loop
	if g.M() != 4 {
		t.Fatalf("M: got %d want 4", g.M())
	}
	wantDeg := []int{1, 3, 2, 2}
	for u, want := range wantDeg {
		if got := g.Degree(u); got != want {
			t.Errorf("Degree(%d): got %d want %d", u, got, want)
		}
	}
	if g.DegreeSum() != 2*g.M() {
		t.Errorf("handshake: degree sum %d != 2m %d", g.DegreeSum(), 2*g.M())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMultiplicity(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(2, 2)
	if got := g.Multiplicity(0, 1); got != 2 {
		t.Errorf("Multiplicity(0,1): got %d want 2", got)
	}
	if got := g.Multiplicity(1, 0); got != 2 {
		t.Errorf("Multiplicity(1,0): got %d want 2", got)
	}
	if got := g.Multiplicity(2, 2); got != 2 {
		t.Errorf("Multiplicity(2,2) for one loop: got %d want 2 (Newman convention)", got)
	}
	if got := g.Multiplicity(0, 2); got != 0 {
		t.Errorf("Multiplicity(0,2): got %d want 0", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Errorf("HasEdge wrong")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(2, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) failed")
	}
	if g.Multiplicity(0, 1) != 1 || g.M() != 2 {
		t.Fatalf("after removal: mult=%d m=%d", g.Multiplicity(0, 1), g.M())
	}
	if !g.RemoveEdge(2, 2) {
		t.Fatal("RemoveEdge(2,2) failed")
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self-loop removal: degree %d want 0", g.Degree(2))
	}
	if g.RemoveEdge(0, 2) {
		t.Fatal("RemoveEdge(0,2) should report false")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestEdgesListing(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 1)
	g.AddEdge(0, 3)
	g.AddEdge(0, 3)
	g.AddEdge(1, 1)
	edges := g.Edges()
	want := []Edge{{0, 3}, {0, 3}, {1, 1}, {1, 2}}
	if len(edges) != len(want) {
		t.Fatalf("Edges: got %v want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges[%d]: got %v want %v", i, edges[i], want[i])
		}
	}
}

func TestDegreeVector(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	// degrees: 3,1,1,1,0
	nk := g.DegreeVector()
	want := []int{1, 3, 0, 1}
	if len(nk) != len(want) {
		t.Fatalf("DegreeVector: got %v want %v", nk, want)
	}
	for i := range want {
		if nk[i] != want[i] {
			t.Fatalf("DegreeVector[%d]: got %d want %d", i, nk[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(0, 1)
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("clone not independent: g.m=%d c.m=%d", g.M(), c.M())
	}
}

func TestSimplify(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 3)
	s := g.Simplify()
	if s.M() != 2 {
		t.Fatalf("Simplify: m=%d want 2", s.M())
	}
	if s.Multiplicity(0, 1) != 1 || s.Multiplicity(1, 2) != 1 || s.LoopCount(3) != 0 {
		t.Fatalf("Simplify wrong edges")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	comps := g.ConnectedComponents()
	if len(comps) != 4 {
		t.Fatalf("components: got %d want 4", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("component sizes: got %d,%d want 3,2", len(comps[0]), len(comps[1]))
	}
	if g.IsConnected() {
		t.Error("IsConnected should be false")
	}
	lcc, mapping := g.LargestComponent()
	if lcc.N() != 3 || lcc.M() != 2 {
		t.Fatalf("LCC: n=%d m=%d", lcc.N(), lcc.M())
	}
	if len(mapping) != 3 {
		t.Fatalf("LCC mapping len %d", len(mapping))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(4, 4)
	sub, mapping := g.InducedSubgraph([]int{0, 1, 3})
	if sub.N() != 3 || sub.M() != 2 { // edges (0,1) and (3,0)
		t.Fatalf("induced: n=%d m=%d want 3,2", sub.N(), sub.M())
	}
	if mapping[0] != 0 || mapping[1] != 1 || mapping[2] != 3 {
		t.Fatalf("mapping: %v", mapping)
	}
	// Self-loop retention.
	sub2, _ := g.InducedSubgraph([]int{4})
	if sub2.M() != 1 || sub2.LoopCount(0) != 1 {
		t.Fatalf("loop induced: m=%d loops=%d", sub2.M(), sub2.LoopCount(0))
	}
}

func TestPreprocess(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2)
	g.AddEdge(4, 5)
	clean, _ := Preprocess(g)
	if clean.N() != 3 || clean.M() != 2 {
		t.Fatalf("Preprocess: n=%d m=%d want 3,2", clean.N(), clean.M())
	}
	if clean.CountMultiEdges() != 0 {
		t.Fatal("Preprocess left multi-edges")
	}
}

func TestJointDegreeMatrix(t *testing.T) {
	// Path 0-1-2: degrees 1,2,1 -> m(1,2)=2.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	jdm := g.JointDegreeMatrix()
	if jdm[[2]int{1, 2}] != 2 || len(jdm) != 1 {
		t.Fatalf("path JDM: %v", jdm)
	}
	// Triangle: degrees all 2 -> m(2,2)=3.
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	jdm = tri.JointDegreeMatrix()
	if jdm[[2]int{2, 2}] != 3 || len(jdm) != 1 {
		t.Fatalf("triangle JDM: %v", jdm)
	}
	// Self-loop node: degree 2 -> m(2,2) gains 1.
	l := New(1)
	l.AddEdge(0, 0)
	jdm = l.JointDegreeMatrix()
	if jdm[[2]int{2, 2}] != 1 {
		t.Fatalf("loop JDM: %v", jdm)
	}
}

func TestJDMConsistentWithDegrees(t *testing.T) {
	// sum_{k'} mu(k,k') m(k,k') == k * n(k) for every k.
	g := randomMultigraph(rand.New(rand.NewSource(7)), 40, 90)
	jdm := g.JointDegreeMatrix()
	nk := g.DegreeVector()
	s := make(map[int]int)
	for kk, c := range jdm {
		k, kp := kk[0], kk[1]
		if k == kp {
			s[k] += 2 * c
		} else {
			s[k] += c
			s[kp] += c
		}
	}
	for k := 1; k < len(nk); k++ {
		if s[k] != k*nk[k] {
			t.Fatalf("JDM row sum for k=%d: got %d want %d", k, s[k], k*nk[k])
		}
	}
}

func TestTriangleCountsSmall(t *testing.T) {
	// Triangle graph: every node in exactly 1 triangle.
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	for u, c := range tri.TriangleCounts() {
		if c != 1 {
			t.Errorf("triangle t[%d]=%d want 1", u, c)
		}
	}
	if tri.GlobalTriangles() != 1 {
		t.Errorf("GlobalTriangles: %d want 1", tri.GlobalTriangles())
	}
	// K4: each node in C(3,2)=3 triangles, 4 total.
	k4 := New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.AddEdge(i, j)
		}
	}
	for u, c := range k4.TriangleCounts() {
		if c != 3 {
			t.Errorf("K4 t[%d]=%d want 3", u, c)
		}
	}
	if k4.GlobalTriangles() != 4 {
		t.Errorf("K4 triangles: %d want 4", k4.GlobalTriangles())
	}
	// Star: no triangles.
	star := New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if star.GlobalTriangles() != 0 {
		t.Error("star should have no triangles")
	}
}

func TestTriangleCountsMultiEdge(t *testing.T) {
	// Triangle with doubled edge (0,1): A_01=2 so each corner's count doubles.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	tc := g.TriangleCounts()
	want := []int64{2, 2, 2}
	for u := range want {
		if tc[u] != want[u] {
			t.Errorf("multi t[%d]=%d want %d", u, tc[u], want[u])
		}
	}
}

func TestTriangleLoopsIgnored(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	for u, c := range g.TriangleCounts() {
		if c != 0 {
			t.Errorf("loop graph t[%d]=%d want 0", u, c)
		}
	}
}

func TestCountMultiEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2)
	if got := g.CountMultiEdges(); got != 3 { // 2 excess + 1 loop
		t.Fatalf("CountMultiEdges: got %d want 3", got)
	}
}

// randomMultigraph builds a random multigraph (may include loops) for
// property-style tests.
func randomMultigraph(r *rand.Rand, n, m int) *Graph {
	g := New(n)
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

func TestQuickHandshakeInvariant(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%50) + 1
		m := int(mRaw % 200)
		g := randomMultigraph(rand.New(rand.NewSource(seed)), n, m)
		return g.DegreeSum() == 2*g.M() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRemoveInverseOfAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomMultigraph(r, 20, 40)
		before := g.Clone()
		before.SortAdjacency()
		u, v := r.Intn(20), r.Intn(20)
		g.AddEdge(u, v)
		if !g.RemoveEdge(u, v) {
			return false
		}
		g.SortAdjacency()
		if g.M() != before.M() {
			return false
		}
		for i := 0; i < g.N(); i++ {
			a, b := g.Neighbors(i), before.Neighbors(i)
			if len(a) != len(b) {
				return false
			}
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		g := randomMultigraph(rand.New(rand.NewSource(seed)), 15, 60)
		s1 := g.Simplify()
		s2 := s1.Simplify()
		return s1.M() == s2.M() && s1.CountMultiEdges() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := randomMultigraph(rand.New(rand.NewSource(seed)), 30, 25)
		comps := g.ConnectedComponents()
		seen := make(map[int]bool)
		total := 0
		for _, c := range comps {
			total += len(c)
			for _, u := range c {
				if seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return total == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.adj[0] = append(g.adj[0], 1) // inject asymmetry
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should detect corrupted adjacency")
	}
}

func TestPanicsOnBadNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range node")
		}
	}()
	g := New(1)
	g.AddEdge(0, 5)
}
