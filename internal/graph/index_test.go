package graph

import (
	"math/rand"
	"testing"
)

func TestIndexMatchesMultiplicity(t *testing.T) {
	r := rand.New(rand.NewSource(517))
	g := randomMultigraph(r, 40, 200)
	ix := g.Index()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			want := g.Multiplicity(u, v)
			if got := ix.Multiplicity(u, v); got != want {
				t.Fatalf("Index.Multiplicity(%d,%d)=%d want %d", u, v, got, want)
			}
			if got := ix.HasEdge(u, v); got != (want > 0) {
				t.Fatalf("Index.HasEdge(%d,%d)=%v want %v", u, v, got, want > 0)
			}
		}
	}
}

func TestIndexCachedAndInvalidated(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	ix := g.Index()
	if g.Index() != ix {
		t.Fatal("Index must be cached between calls without mutation")
	}
	g.AddEdge(1, 2)
	ix2 := g.Index()
	if ix2 == ix {
		t.Fatal("AddEdge must invalidate the cached index")
	}
	if !ix2.HasEdge(1, 2) {
		t.Fatal("rebuilt index missing new edge")
	}
	// The old handle still answers for its snapshot.
	if ix.HasEdge(1, 2) {
		t.Fatal("stale index handle must keep its snapshot")
	}

	g.RemoveEdge(0, 1)
	if g.Index() == ix2 {
		t.Fatal("RemoveEdge must invalidate the cached index")
	}
	if g.Index().HasEdge(0, 1) {
		t.Fatal("index still reports removed edge")
	}
	g.Index() // warm the cache
	g.AddNode()
	if g.Index().set.NumNodes() != 5 {
		t.Fatal("AddNode must invalidate so the index covers the new node")
	}
	g.Index()
	g.AddNodes(3)
	if g.Index().set.NumNodes() != 8 {
		t.Fatal("AddNodes must invalidate so the index covers the new nodes")
	}
}

func TestIndexSelfLoopConvention(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	ix := g.Index()
	if got := ix.Multiplicity(0, 0); got != 2 {
		t.Fatalf("A[0][0] for one loop: %d want 2 (Newman convention)", got)
	}
	if ix.DistinctNeighbors(0) != 1 {
		t.Fatalf("loop node distinct neighbors: %d want 1", ix.DistinctNeighbors(0))
	}
}

func TestCloneDoesNotShareIndex(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	_ = g.Index()
	c := g.Clone()
	c.AddEdge(1, 2)
	if !c.Index().HasEdge(1, 2) || g.Index().HasEdge(1, 2) {
		t.Fatal("clone index leaked into the original (or vice versa)")
	}
}
