package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines starting with '#' or '%' are comments. Node labels may be arbitrary
// non-negative integers; they are relabeled densely in order of first
// appearance. Returns the graph and the mapping newID -> original label.
func ReadEdgeList(r io.Reader) (*Graph, []int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := New(0)
	idx := make(map[int]int)
	var labels []int
	intern := func(label int) int {
		if id, ok := idx[label]; ok {
			return id
		}
		id := g.AddNode()
		idx[label] = id
		labels = append(labels, label)
		return id
	}
	line := 0
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "%") {
			continue
		}
		fields := strings.Fields(t)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want two fields, got %q", line, t)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		g.AddEdge(intern(u), intern(v))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}

// WriteEdgeList writes the graph as "u v" lines (U <= V, sorted).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string) (*Graph, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveEdgeList writes the graph to an edge-list file.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
