package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2

7 0
`
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("read: n=%d m=%d want 4,3", g.N(), g.M())
	}
	// labels follow first-appearance order: 0,1,2,7
	want := []int{0, 1, 2, 7}
	for i, w := range want {
		if labels[i] != w {
			t.Fatalf("labels: %v want %v", labels, want)
		}
	}
	if !g.HasEdge(3, 0) { // 7-0 relabeled
		t.Fatal("edge 7-0 missing after relabel")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Error("want error for one-field line")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("want error for non-integer")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2)
	g.AddEdge(3, 4)
	g.AddEdge(3, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d want %d,%d", g2.N(), g2.M(), g.N(), g.M())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 2 {
		t.Fatalf("loaded m=%d want 2", g2.M())
	}
	if _, _, err := LoadEdgeList(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("want error for missing file")
	}
}
