package graph

import (
	"sgr/internal/parallel"
)

// JointDegreeMatrix returns m(k,k') as a map keyed by canonical degree pairs
// (k <= k'): the number of edges between nodes with degree k and degree k'.
// Multi-edges count with multiplicity; a self-loop at a degree-k node counts
// as one edge in m(k,k).
func (g *Graph) JointDegreeMatrix() map[[2]int]int {
	jdm := make(map[[2]int]int)
	for u, a := range g.adj {
		du := len(a)
		loops := 0
		for _, v := range a {
			switch {
			case v > u:
				dv := len(g.adj[v])
				k, kp := du, dv
				if k > kp {
					k, kp = kp, k
				}
				jdm[[2]int{k, kp}]++
			case v == u:
				loops++
			}
		}
		jdm[[2]int{du, du}] += loops / 2
	}
	for k, v := range jdm {
		if v == 0 {
			delete(jdm, k)
		}
	}
	return jdm
}

// TriangleCounts returns t[i], the number of triangles node i belongs to,
// using the paper's multiplicity-aware definition
// t_i = sum_{j<l, j!=i, l!=i} A_ij * A_il * A_jl. Self-loops never form
// triangles under this definition. It parallelizes over all CPUs; use
// TriangleCountsWorkers to bound the pool.
func (g *Graph) TriangleCounts() []int64 { return g.TriangleCountsWorkers(0) }

// TriangleCountsWorkers is TriangleCounts on at most workers goroutines
// (<= 0 selects all CPUs). It parallelizes over nodes with index-disjoint
// writes, so the counts are identical at any worker count.
func (g *Graph) TriangleCountsWorkers(workers int) []int64 {
	n := g.N()
	t := make([]int64, n)
	// Shared CSR snapshot, built once serially and then read-only across
	// the worker goroutines. Sorted distinct rows turn the A_jl probe of
	// the naive formula into a linear sorted-merge intersection:
	// t_u = (1/2) sum_{j in N*(u)} A_uj * sp(u,j), where sp excludes both
	// endpoints structurally. Each unordered neighbor pair (j,l) of u is
	// counted once from j and once from l, hence the halving; the sum is
	// exact int64 arithmetic, so results are order-independent.
	c := g.CSR()
	parallel.Blocks(workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			nbr, mult := c.Row(u)
			if len(nbr) < 2 {
				continue
			}
			var s int64
			for i, j := range nbr {
				s += int64(mult[i]) * c.SharedPartners(u, int(j))
			}
			t[u] = s / 2
		}
	})
	return t
}

// GlobalTriangles returns the total number of triangles in the graph
// (each triangle counted once).
func (g *Graph) GlobalTriangles() int64 {
	var sum int64
	for _, t := range g.TriangleCounts() {
		sum += t
	}
	return sum / 3
}

// DegreeSum returns the sum of all node degrees (== 2*M()).
func (g *Graph) DegreeSum() int {
	s := 0
	for _, a := range g.adj {
		s += len(a)
	}
	return s
}

// NeighborMultiplicities returns, for node u, the map from each distinct
// non-self neighbor to the edge multiplicity A[u][v].
func (g *Graph) NeighborMultiplicities(u int) map[int]int {
	g.checkNode(u)
	m := make(map[int]int)
	for _, v := range g.adj[u] {
		if v != u {
			m[v]++
		}
	}
	return m
}

// LoopCount returns the number of self-loops at u.
func (g *Graph) LoopCount(u int) int {
	g.checkNode(u)
	c := 0
	for _, v := range g.adj[u] {
		if v == u {
			c++
		}
	}
	return c / 2
}

// CountMultiEdges returns the number of "excess" edge instances beyond the
// first between each distinct node pair, plus the number of self-loops.
// A simple graph returns 0.
func (g *Graph) CountMultiEdges() int {
	excess := 0
	for u, a := range g.adj {
		seen := make(map[int]int)
		loops := 0
		for _, v := range a {
			if v == u {
				loops++
				continue
			}
			if v > u {
				seen[v]++
			}
		}
		for _, c := range seen {
			excess += c - 1
		}
		excess += loops / 2
	}
	return excess
}
