package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"sgr/internal/metrics"
)

// WriteCSV emits the evaluation as tidy CSV rows
// (dataset, method, property, run, l1, total_seconds, rewire_seconds),
// one row per method/property/run — convenient for external plotting of
// Fig. 3 and the tables.
func (ev *Evaluation) WriteCSV(w io.Writer, dataset string) error {
	cw := csv.NewWriter(w)
	header := []string{"dataset", "method", "property", "run", "l1", "total_seconds", "rewire_seconds"}
	if err := cw.Write(header); err != nil {
		return err
	}
	methods := make([]Method, len(ev.Config.Methods))
	copy(methods, ev.Config.Methods)
	sort.Slice(methods, func(i, j int) bool { return methods[i] < methods[j] })
	for _, m := range methods {
		st := ev.Stats[m]
		for pi, name := range metrics.PropertyNames {
			for run, l1 := range st.PerProperty[pi] {
				rec := []string{
					dataset,
					string(m),
					name,
					strconv.Itoa(run),
					fmt.Sprintf("%.6f", l1),
					fmt.Sprintf("%.6f", st.TotalTimes[run].Seconds()),
					fmt.Sprintf("%.6f", st.RewireTimes[run].Seconds()),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig3CSV emits a Fig. 3 series as CSV rows
// (dataset, method, fraction, avg_l1).
func WriteFig3CSV(w io.Writer, dataset string, series Fig3Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "method", "fraction", "avg_l1"}); err != nil {
		return err
	}
	methods := make([]Method, 0, len(series))
	for m := range series {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i] < methods[j] })
	for _, m := range methods {
		for _, pt := range series[m] {
			rec := []string{
				dataset,
				string(m),
				fmt.Sprintf("%.4f", pt.Fraction),
				fmt.Sprintf("%.6f", pt.AvgL1),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
