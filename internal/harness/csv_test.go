package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Runs = 2
	cfg.Methods = []Method{MethodRW, MethodProposed}
	ev, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ev.WriteCSV(&buf, "toy"); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 methods * 12 properties * 2 runs.
	want := 1 + 2*12*2
	if len(recs) != want {
		t.Fatalf("csv rows: %d want %d", len(recs), want)
	}
	if recs[0][0] != "dataset" || len(recs[0]) != 7 {
		t.Fatalf("csv header: %v", recs[0])
	}
	for _, rec := range recs[1:] {
		if rec[0] != "toy" {
			t.Fatalf("dataset column: %v", rec)
		}
	}
}

func TestWriteFig3CSV(t *testing.T) {
	series := Fig3Series{
		MethodRW:       []Fig3Point{{0.02, 0.5}, {0.10, 0.3}},
		MethodProposed: []Fig3Point{{0.02, 0.2}, {0.10, 0.1}},
	}
	var buf bytes.Buffer
	if err := WriteFig3CSV(&buf, "toy", series); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("csv rows: %d want 5", len(recs))
	}
}
