// Package harness drives the paper's experiments (Sec. V-VI): it applies
// the six compared methods to an original graph under the paper's protocol —
// per run, one uniformly random seed node starts BFS, snowball, forest fire
// and a random walk, and the same random walk feeds subgraph sampling,
// Gjoka et al.'s method and the proposed method — then scores every
// generated graph on the 12 structural properties with the normalized L1
// distance, and renders the tables and figure series of the paper.
package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"sgr/internal/core"
	"sgr/internal/graph"
	"sgr/internal/metrics"
	"sgr/internal/props"
	"sgr/internal/sampling"
)

// Method identifies one of the six compared methods.
type Method string

// The six methods of the evaluation (Sec. V-D).
const (
	MethodBFS      Method = "BFS"
	MethodSnowball Method = "Snowball"
	MethodFF       Method = "FF"
	MethodRW       Method = "RW"
	MethodGjoka    Method = "Gjoka et al."
	MethodProposed Method = "Proposed"
)

// AllMethods lists the methods in the paper's table order.
var AllMethods = []Method{
	MethodBFS, MethodSnowball, MethodFF, MethodRW, MethodGjoka, MethodProposed,
}

// ParseMethod resolves a method name (case-sensitive, as printed).
func ParseMethod(s string) (Method, error) {
	for _, m := range AllMethods {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("harness: unknown method %q", s)
}

// Config controls one evaluation.
type Config struct {
	// Fraction is the percentage of queried nodes as a fraction (0.10 for
	// the paper's main tables, 0.01 for Table V).
	Fraction float64
	// Runs is the number of independent runs averaged (10 in the paper;
	// smaller values keep benches fast).
	Runs int
	// RC is the rewiring coefficient (paper 500).
	RC float64
	// SnowballK is snowball sampling's per-node neighbor cap (paper 50).
	SnowballK int
	// ForestFirePF is forest fire's burn probability (paper 0.7).
	ForestFirePF float64
	// Seed derives all per-run randomness.
	Seed uint64
	// Methods restricts evaluation to a subset (nil = all six).
	Methods []Method
	// Walker selects the random-walk variant feeding RW subgraph sampling
	// and the two generation methods (default WalkerSimple). The paper
	// suggests combining improved walks with the proposed method as future
	// work; WalkerNonBacktracking preserves the degree-proportional
	// stationary distribution the estimators assume and is the recommended
	// variant. WalkerFrontier interleaves several walkers, which weakens
	// the consecutive-step estimators (TE, clustering) — use with care.
	Walker Walker
	// FrontierDim is the walker count for WalkerFrontier (default 4).
	FrontierDim int
	// PropOpts tunes property computation (pivot thresholds etc.).
	PropOpts props.Options
}

// Walker selects the crawl variant used for the shared random walk.
type Walker string

// Walk variants available to the protocol.
const (
	WalkerSimple          Walker = ""         // simple random walk (paper)
	WalkerNonBacktracking Walker = "nbrw"     // Lee, Xu & Eun
	WalkerMetropolis      Walker = "mh"       // Metropolis-Hastings
	WalkerFrontier        Walker = "frontier" // Ribeiro & Towsley
)

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.RC <= 0 {
		c.RC = 500
	}
	if c.SnowballK <= 0 {
		c.SnowballK = 50
	}
	if c.ForestFirePF <= 0 {
		c.ForestFirePF = 0.7
	}
	if c.Methods == nil {
		c.Methods = AllMethods
	}
	return c
}

// MethodStats aggregates one method's results over runs.
type MethodStats struct {
	Method Method
	// PerProperty[i] holds the run-specific L1 distances of property i.
	PerProperty [12][]float64
	// TotalTimes and RewireTimes hold per-run generation timings; rewire
	// times stay zero for subgraph sampling.
	TotalTimes  []time.Duration
	RewireTimes []time.Duration
}

// PropertyMeans returns the mean L1 distance per property.
func (s *MethodStats) PropertyMeans() [12]float64 {
	var out [12]float64
	for i := range s.PerProperty {
		out[i] = metrics.Mean(s.PerProperty[i])
	}
	return out
}

// AvgSD returns the average and standard deviation of the L1 distance over
// the 12 properties, computed per the paper: first average each property
// over runs, then take mean and SD across the 12 property means.
func (s *MethodStats) AvgSD() (avg, sd float64) {
	means := s.PropertyMeans()
	return metrics.Mean(means[:]), metrics.StdDev(means[:])
}

// MeanTotalTime returns the mean generation time.
func (s *MethodStats) MeanTotalTime() time.Duration {
	return meanDuration(s.TotalTimes)
}

// MeanRewireTime returns the mean rewiring time.
func (s *MethodStats) MeanRewireTime() time.Duration {
	return meanDuration(s.RewireTimes)
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Evaluation is the outcome of Evaluate: per-method aggregated stats plus
// the original graph's property values.
type Evaluation struct {
	Original *props.Result
	Stats    map[Method]*MethodStats
	Config   Config
}

// Evaluate runs the full protocol on the original graph g.
func Evaluate(g *graph.Graph, cfg Config) (*Evaluation, error) {
	cfg = cfg.withDefaults()
	orig := props.Compute(g, cfg.PropOpts)
	ev := &Evaluation{Original: orig, Stats: make(map[Method]*MethodStats), Config: cfg}
	for _, m := range cfg.Methods {
		ev.Stats[m] = &MethodStats{Method: m}
	}
	for run := 0; run < cfg.Runs; run++ {
		if err := ev.runOnce(g, uint64(run)); err != nil {
			return nil, fmt.Errorf("harness: run %d: %w", run, err)
		}
	}
	return ev, nil
}

func (ev *Evaluation) runOnce(g *graph.Graph, run uint64) error {
	cfg := ev.Config
	r := rand.New(rand.NewPCG(cfg.Seed, run*0x9e3779b97f4a7c15+1))
	seed := r.IntN(g.N())

	wants := make(map[Method]bool, len(cfg.Methods))
	for _, m := range cfg.Methods {
		wants[m] = true
	}

	// Shared random walk for RW / Gjoka / Proposed.
	var walk *sampling.Crawl
	if wants[MethodRW] || wants[MethodGjoka] || wants[MethodProposed] {
		c, err := ev.crawlWalk(g, seed, r)
		if err != nil {
			return err
		}
		walk = c
	}

	for _, m := range cfg.Methods {
		gen, total, rewire, err := ev.generate(g, m, seed, walk, r)
		if err != nil {
			return fmt.Errorf("%s: %w", m, err)
		}
		genProps := props.Compute(gen, cfg.PropOpts)
		ds := metrics.PerProperty(genProps, ev.Original)
		st := ev.Stats[m]
		for i, d := range ds {
			st.PerProperty[i] = append(st.PerProperty[i], d)
		}
		st.TotalTimes = append(st.TotalTimes, total)
		st.RewireTimes = append(st.RewireTimes, rewire)
	}
	return nil
}

// crawlWalk performs the configured walk variant.
func (ev *Evaluation) crawlWalk(g *graph.Graph, seed int, r *rand.Rand) (*sampling.Crawl, error) {
	cfg := ev.Config
	access := sampling.NewGraphAccess(g)
	switch cfg.Walker {
	case WalkerSimple:
		return sampling.RandomWalk(access, seed, cfg.Fraction, r)
	case WalkerNonBacktracking:
		return sampling.NonBacktrackingWalk(access, seed, cfg.Fraction, r)
	case WalkerMetropolis:
		return sampling.MetropolisHastingsWalk(access, seed, cfg.Fraction, r)
	case WalkerFrontier:
		dim := cfg.FrontierDim
		if dim <= 0 {
			dim = 4
		}
		seeds := make([]int, dim)
		seeds[0] = seed
		for i := 1; i < dim; i++ {
			seeds[i] = r.IntN(g.N())
		}
		return sampling.FrontierSampling(access, seeds, cfg.Fraction, r)
	}
	return nil, fmt.Errorf("harness: unknown walker %q", cfg.Walker)
}

// generate produces the generated graph for one method in one run.
func (ev *Evaluation) generate(g *graph.Graph, m Method, seed int, walk *sampling.Crawl, r *rand.Rand) (*graph.Graph, time.Duration, time.Duration, error) {
	cfg := ev.Config
	subgraphOf := func(c *sampling.Crawl) (*graph.Graph, time.Duration) {
		start := time.Now()
		sub := sampling.BuildSubgraph(c)
		return sub.Graph, time.Since(start)
	}
	switch m {
	case MethodBFS:
		c, err := sampling.BFS(sampling.NewGraphAccess(g), seed, cfg.Fraction)
		if err != nil {
			return nil, 0, 0, err
		}
		sg, d := subgraphOf(c)
		return sg, d, 0, nil
	case MethodSnowball:
		c, err := sampling.Snowball(sampling.NewGraphAccess(g), seed, cfg.SnowballK, cfg.Fraction, r)
		if err != nil {
			return nil, 0, 0, err
		}
		sg, d := subgraphOf(c)
		return sg, d, 0, nil
	case MethodFF:
		c, err := sampling.ForestFire(sampling.NewGraphAccess(g), seed, cfg.ForestFirePF, cfg.Fraction, r)
		if err != nil {
			return nil, 0, 0, err
		}
		sg, d := subgraphOf(c)
		return sg, d, 0, nil
	case MethodRW:
		sg, d := subgraphOf(walk)
		return sg, d, 0, nil
	case MethodGjoka:
		res, err := core.RestoreGjoka(walk, core.Options{RC: cfg.RC, Rand: r})
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Graph, res.TotalTime, res.RewireTime, nil
	case MethodProposed:
		res, err := core.Restore(walk, core.Options{RC: cfg.RC, Rand: r})
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Graph, res.TotalTime, res.RewireTime, nil
	}
	return nil, 0, 0, fmt.Errorf("unknown method %q", m)
}
