// Package harness drives the paper's experiments (Sec. V-VI): it applies
// the six compared methods to an original graph under the paper's protocol —
// per run, one uniformly random seed node starts BFS, snowball, forest fire
// and a random walk, and the same random walk feeds subgraph sampling,
// Gjoka et al.'s method and the proposed method — then scores every
// generated graph on the 12 structural properties with the normalized L1
// distance, and renders the tables and figure series of the paper.
package harness

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"sgr/internal/core"
	"sgr/internal/graph"
	"sgr/internal/metrics"
	"sgr/internal/obs"
	"sgr/internal/parallel"
	"sgr/internal/props"
	"sgr/internal/sampling"
)

// Method identifies one of the six compared methods.
type Method string

// The six methods of the evaluation (Sec. V-D).
const (
	MethodBFS      Method = "BFS"
	MethodSnowball Method = "Snowball"
	MethodFF       Method = "FF"
	MethodRW       Method = "RW"
	MethodGjoka    Method = "Gjoka et al."
	MethodProposed Method = "Proposed"
)

// AllMethods lists the methods in the paper's table order.
var AllMethods = []Method{
	MethodBFS, MethodSnowball, MethodFF, MethodRW, MethodGjoka, MethodProposed,
}

// ParseMethod resolves a method name (case-sensitive, as printed).
func ParseMethod(s string) (Method, error) {
	for _, m := range AllMethods {
		if string(m) == s {
			return m, nil
		}
	}
	return "", fmt.Errorf("harness: unknown method %q", s)
}

// Config controls one evaluation.
type Config struct {
	// Fraction is the percentage of queried nodes as a fraction (0.10 for
	// the paper's main tables, 0.01 for Table V).
	Fraction float64
	// Runs is the number of independent runs averaged (10 in the paper;
	// smaller values keep benches fast).
	Runs int
	// RC is the rewiring coefficient (paper 500).
	RC float64
	// SnowballK is snowball sampling's per-node neighbor cap (paper 50).
	SnowballK int
	// ForestFirePF is forest fire's burn probability (paper 0.7).
	ForestFirePF float64
	// Seed derives all per-run randomness.
	Seed uint64
	// Methods restricts evaluation to a subset (nil = all six).
	Methods []Method
	// Walker selects the random-walk variant feeding RW subgraph sampling
	// and the two generation methods (default WalkerSimple). The paper
	// suggests combining improved walks with the proposed method as future
	// work; WalkerNonBacktracking preserves the degree-proportional
	// stationary distribution the estimators assume and is the recommended
	// variant. WalkerFrontier interleaves several walkers, which weakens
	// the consecutive-step estimators (TE, clustering) — use with care.
	Walker Walker
	// FrontierDim is the walker count for WalkerFrontier (default 4).
	FrontierDim int
	// Access, when non-nil, supplies the crawlers' view of the hidden
	// graph — e.g. an oracle.Client so the whole protocol crawls a remote
	// graphd instead of in-process memory (restoration then runs locally
	// on the fetched sampling lists). The factory is called once per
	// crawl; returning a shared concurrency-safe Access is fine, since
	// cells only ever read through it. The default wraps g in
	// sampling.NewGraphAccess. Evaluations are byte-identical across any
	// two Access implementations serving the same neighbor lists.
	Access func(g *graph.Graph) sampling.Access
	// Restorer, when non-nil, performs the generation step of the two
	// restoration methods (Gjoka et al., Proposed) in place of the
	// in-process core.Restore/RestoreGjoka calls — the
	// restoration-as-a-service seam, mirroring what Access is for crawling.
	// A deployment whose protocol pins per-cell seeds can route generation
	// through a shared restored job service and let its content-addressed
	// cache dedupe identical (crawl, options) cells across sweep
	// configurations. Implementations must be concurrency-safe (cells run
	// in parallel) and deterministic given (method, crawl, opts): Evaluate's
	// byte-identical-at-any-worker-count guarantee extends to any Restorer
	// honoring that contract, exactly as it does to Access.
	Restorer func(method Method, c *sampling.Crawl, opts core.Options) (*core.Result, error)
	// PropOpts tunes property computation (pivot thresholds etc.).
	PropOpts props.Options
	// Workers bounds how many evaluation cells — independent
	// (run, method) jobs — execute concurrently (<= 0 selects
	// parallel.DefaultWorkers). Every cell derives its own PCG stream
	// from Seed, so the results are byte-identical at any worker count.
	Workers int
	// RewireWorkers bounds the propose-phase parallelism inside each
	// cell's phase-4 rewiring (default 1: the engine's parallelism unit
	// is the cell, and nesting rewiring pools under Workers concurrent
	// cells multiplies the goroutine count for no determinism gain —
	// rewiring output is byte-identical at any value, the same reasoning
	// as PropOpts.Workers).
	RewireWorkers int
	// Original, when non-nil, is the precomputed property result of the
	// original graph (from ComputeOriginal), letting sweeps that evaluate
	// one graph under many configurations skip recomputing it per call.
	Original *props.Result
	// CellTime, when non-nil, receives one observation per evaluation cell:
	// the cell's generation wall time in microseconds. The histogram is a
	// pure observability output — it is fed during the ordered merge, after
	// all cells complete, so it never influences scheduling or results and
	// the byte-identical-at-any-worker-count guarantee is unaffected. Wire
	// it into an obs.Registry to watch a long sweep's cell latency p99 live.
	CellTime *obs.Histogram
}

// ComputeOriginal evaluates the original graph's 12 properties under this
// configuration's (defaulted) property options — exactly what Evaluate
// computes when Config.Original is nil.
func (c Config) ComputeOriginal(g *graph.Graph) *props.Result {
	c = c.withDefaults()
	return props.Compute(g, c.PropOpts)
}

// Walker selects the crawl variant used for the shared random walk.
type Walker string

// Walk variants available to the protocol.
const (
	WalkerSimple          Walker = ""         // simple random walk (paper)
	WalkerNonBacktracking Walker = "nbrw"     // Lee, Xu & Eun
	WalkerMetropolis      Walker = "mh"       // Metropolis-Hastings
	WalkerFrontier        Walker = "frontier" // Ribeiro & Towsley
)

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 1
	}
	if c.RC <= 0 {
		c.RC = 500
	}
	if c.SnowballK <= 0 {
		c.SnowballK = 50
	}
	if c.ForestFirePF <= 0 {
		c.ForestFirePF = 0.7
	}
	if c.Methods == nil {
		c.Methods = AllMethods
	}
	if c.Access == nil {
		c.Access = func(g *graph.Graph) sampling.Access { return sampling.NewGraphAccess(g) }
	}
	if c.Restorer == nil {
		c.Restorer = DefaultRestorer
	}
	// Property computation inside a cell defaults to serial: the engine's
	// parallelism unit is the cell, and nesting GOMAXPROCS-wide property
	// pools under Workers concurrent cells would square the goroutine
	// count and Brandes scratch. A fixed value also keeps the betweenness
	// float merges — deterministic only for a fixed worker count —
	// independent of both Workers and the host CPU count.
	if c.PropOpts.Workers <= 0 {
		c.PropOpts.Workers = 1
	}
	if c.RewireWorkers <= 0 {
		c.RewireWorkers = 1
	}
	return c
}

// MethodStats aggregates one method's results over runs.
type MethodStats struct {
	Method Method
	// PerProperty[i] holds the run-specific L1 distances of property i.
	PerProperty [12][]float64
	// TotalTimes and RewireTimes hold per-run generation timings; rewire
	// times stay zero for subgraph sampling.
	TotalTimes  []time.Duration
	RewireTimes []time.Duration
}

// PropertyMeans returns the mean L1 distance per property.
func (s *MethodStats) PropertyMeans() [12]float64 {
	var out [12]float64
	for i := range s.PerProperty {
		out[i] = metrics.Mean(s.PerProperty[i])
	}
	return out
}

// AvgSD returns the average and standard deviation of the L1 distance over
// the 12 properties, computed per the paper: first average each property
// over runs, then take mean and SD across the 12 property means.
func (s *MethodStats) AvgSD() (avg, sd float64) {
	means := s.PropertyMeans()
	return metrics.Mean(means[:]), metrics.StdDev(means[:])
}

// MeanTotalTime returns the mean generation time.
func (s *MethodStats) MeanTotalTime() time.Duration {
	return meanDuration(s.TotalTimes)
}

// MeanRewireTime returns the mean rewiring time.
func (s *MethodStats) MeanRewireTime() time.Duration {
	return meanDuration(s.RewireTimes)
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Evaluation is the outcome of Evaluate: per-method aggregated stats plus
// the original graph's property values.
type Evaluation struct {
	Original *props.Result
	Stats    map[Method]*MethodStats
	Config   Config
}

// runStream is the golden-ratio increment deriving the per-run PCG stream
// from the master seed (stream run*runStream+1 for run 0, 1, 2, ...).
const runStream = 0x9e3779b97f4a7c15

// cellStream is a second odd mixing constant separating the per-cell
// streams of the methods within one run from each other and from the run's
// walk stream.
const cellStream = 0xbf58476d1ce4e5b9

// runRand returns the RNG of run: it picks the run's seed node and drives
// the shared random walk.
func (c Config) runRand(run int) *rand.Rand {
	return rand.New(rand.NewPCG(c.Seed, uint64(run)*runStream+1))
}

// cellRand returns the RNG of one (run, method) evaluation cell. The
// stream is keyed by the method's position in AllMethods, not in
// cfg.Methods, so evaluating a subset replays exactly the streams the full
// evaluation would use.
func (c Config) cellRand(run int, m Method) *rand.Rand {
	mi := uint64(0)
	for i, am := range AllMethods {
		if am == m {
			mi = uint64(i)
			break
		}
	}
	return rand.New(rand.NewPCG(c.Seed, uint64(run)*runStream+1+(mi+1)*cellStream))
}

// runSetup is the per-run state shared by the run's cells. The walk is
// computed lazily by the first cell that needs it (sync.Once publishes it
// race-free) and released once the run's last cell finishes, so only the
// active runs' crawls occupy memory during a long sweep.
type runSetup struct {
	seed    int
	once    sync.Once
	walk    *sampling.Crawl
	walkErr error
	pending atomic.Int32
}

// sharedWalk returns the run's walk, crawling it on first use. The RNG
// replays the run stream past the seed-node draw, so the walk is identical
// no matter which cell triggers it.
func (s *runSetup) sharedWalk(g *graph.Graph, cfg Config, run int) (*sampling.Crawl, error) {
	s.once.Do(func() {
		r := cfg.runRand(run)
		r.IntN(g.N()) // replay the seed-node draw
		s.walk, s.walkErr = crawlWalk(g, cfg, s.seed, r)
	})
	return s.walk, s.walkErr
}

// cellResult is the outcome of one (run, method) cell.
type cellResult struct {
	dists  [12]float64
	total  time.Duration
	rewire time.Duration
}

// Evaluate runs the full protocol on the original graph g.
//
// Every (run, method) cell is an independent job on a bounded worker pool
// (Config.Workers wide) with its own PCG stream, and results are merged in
// (run, method) order — so for a fixed Seed the evaluation is
// deterministic and identical at any worker count. Cells only read the
// shared original graph and the run's shared crawl, which keeps the
// engine race-free.
func Evaluate(g *graph.Graph, cfg Config) (*Evaluation, error) {
	cfg = cfg.withDefaults()
	// Build the original graph's read-path snapshots once, serially,
	// before anything fans out: CSR()/Index() construction is not
	// goroutine-safe, and one immutable snapshot then serves every
	// property cell of this evaluation (and both sides of any D-measure
	// computed on the same graphs) for free. Each generated graph's
	// snapshot is likewise built once inside its cell's props.Compute and
	// shared across that graph's ten properties.
	g.CSR()
	g.Index()
	orig := cfg.Original
	if orig == nil {
		orig = props.Compute(g, cfg.PropOpts)
	}
	ev := &Evaluation{Original: orig, Stats: make(map[Method]*MethodStats), Config: cfg}
	for _, m := range cfg.Methods {
		ev.Stats[m] = &MethodStats{Method: m}
	}

	// Per-run seed nodes are drawn up front (cheap); the walks follow
	// lazily inside the cells.
	nm := len(cfg.Methods)
	setups := make([]*runSetup, cfg.Runs)
	for run := range setups {
		setups[run] = &runSetup{seed: cfg.runRand(run).IntN(g.N())}
		setups[run].pending.Store(int32(nm))
	}

	// The (run, method) cells, each on its own stream.
	cells, err := parallel.Map(cfg.Workers, cfg.Runs*nm, func(i int) (cellResult, error) {
		run, m := i/nm, cfg.Methods[i%nm]
		s := setups[run]
		defer func() {
			// Last cell of the run out turns off the lights: drop the
			// shared walk so long sweeps don't hold every run's crawl.
			if s.pending.Add(-1) == 0 {
				s.walk = nil
			}
		}()
		var walk *sampling.Crawl
		if m == MethodRW || m == MethodGjoka || m == MethodProposed {
			w, err := s.sharedWalk(g, cfg, run)
			if err != nil {
				return cellResult{}, fmt.Errorf("harness: run %d: %w", run, err)
			}
			walk = w
		}
		gg, total, rewire, err := generate(g, cfg, m, s.seed, walk, cfg.cellRand(run, m))
		if err != nil {
			return cellResult{}, fmt.Errorf("harness: run %d: %s: %w", run, m, err)
		}
		genProps := props.Compute(gg, cfg.PropOpts)
		var cr cellResult
		copy(cr.dists[:], metrics.PerProperty(genProps, orig))
		cr.total, cr.rewire = total, rewire
		return cr, nil
	})
	if err != nil {
		return nil, err
	}

	// Ordered merge, replicating the sequential loop's append order.
	for run := 0; run < cfg.Runs; run++ {
		for mi, m := range cfg.Methods {
			cr := cells[run*nm+mi]
			st := ev.Stats[m]
			for i, d := range cr.dists {
				st.PerProperty[i] = append(st.PerProperty[i], d)
			}
			st.TotalTimes = append(st.TotalTimes, cr.total)
			st.RewireTimes = append(st.RewireTimes, cr.rewire)
			if cfg.CellTime != nil {
				cfg.CellTime.Observe(cr.total.Microseconds())
			}
		}
	}
	return ev, nil
}

// accessErr surfaces a hard failure from Access implementations that
// carry one (oracle.Client.Err): NeighborsOf cannot return errors, so a
// dead oracle otherwise reads as empty neighbor lists — walks fail with a
// bogus "isolated node", and BFS-family crawls silently truncate below
// budget. Checked after every crawl, win or lose.
func accessErr(access sampling.Access) error {
	if a, ok := access.(interface{ Err() error }); ok && a.Err() != nil {
		return fmt.Errorf("harness: graph access failed: %w", a.Err())
	}
	return nil
}

// crawlWalk performs the configured walk variant.
func crawlWalk(g *graph.Graph, cfg Config, seed int, r *rand.Rand) (*sampling.Crawl, error) {
	access := cfg.Access(g)
	c, err := crawlWalkOn(access, cfg, seed, r)
	if aerr := accessErr(access); aerr != nil {
		return nil, aerr
	}
	return c, err
}

func crawlWalkOn(access sampling.Access, cfg Config, seed int, r *rand.Rand) (*sampling.Crawl, error) {
	switch cfg.Walker {
	case WalkerSimple:
		return sampling.RandomWalk(access, seed, cfg.Fraction, r)
	case WalkerNonBacktracking:
		return sampling.NonBacktrackingWalk(access, seed, cfg.Fraction, r)
	case WalkerMetropolis:
		return sampling.MetropolisHastingsWalk(access, seed, cfg.Fraction, r)
	case WalkerFrontier:
		dim := cfg.FrontierDim
		if dim <= 0 {
			dim = 4
		}
		seeds := make([]int, dim)
		seeds[0] = seed
		for i := 1; i < dim; i++ {
			seeds[i] = r.IntN(access.NumNodes())
		}
		return sampling.FrontierSampling(access, seeds, cfg.Fraction, r)
	}
	return nil, fmt.Errorf("harness: unknown walker %q", cfg.Walker)
}

// generate produces the generated graph for one method in one run. It only
// reads g and walk, so concurrent cells may share both.
func generate(g *graph.Graph, cfg Config, m Method, seed int, walk *sampling.Crawl, r *rand.Rand) (*graph.Graph, time.Duration, time.Duration, error) {
	subgraphOf := func(c *sampling.Crawl) (*graph.Graph, time.Duration) {
		start := time.Now()
		sub := sampling.BuildSubgraph(c)
		return sub.Graph, time.Since(start)
	}
	// crawlVia runs one crawler against a fresh Access, surfacing hard
	// access failures that crawlers cannot report themselves (BFS-family
	// methods would otherwise return silently truncated crawls when a
	// remote oracle dies).
	crawlVia := func(crawler func(sampling.Access) (*sampling.Crawl, error)) (*sampling.Crawl, error) {
		access := cfg.Access(g)
		c, err := crawler(access)
		if aerr := accessErr(access); aerr != nil {
			return nil, aerr
		}
		return c, err
	}
	switch m {
	case MethodBFS:
		c, err := crawlVia(func(a sampling.Access) (*sampling.Crawl, error) {
			return sampling.BFS(a, seed, cfg.Fraction)
		})
		if err != nil {
			return nil, 0, 0, err
		}
		sg, d := subgraphOf(c)
		return sg, d, 0, nil
	case MethodSnowball:
		c, err := crawlVia(func(a sampling.Access) (*sampling.Crawl, error) {
			return sampling.Snowball(a, seed, cfg.SnowballK, cfg.Fraction, r)
		})
		if err != nil {
			return nil, 0, 0, err
		}
		sg, d := subgraphOf(c)
		return sg, d, 0, nil
	case MethodFF:
		c, err := crawlVia(func(a sampling.Access) (*sampling.Crawl, error) {
			return sampling.ForestFire(a, seed, cfg.ForestFirePF, cfg.Fraction, r)
		})
		if err != nil {
			return nil, 0, 0, err
		}
		sg, d := subgraphOf(c)
		return sg, d, 0, nil
	case MethodRW:
		sg, d := subgraphOf(walk)
		return sg, d, 0, nil
	case MethodGjoka, MethodProposed:
		res, err := cfg.Restorer(m, walk, core.Options{RC: cfg.RC, RewireWorkers: cfg.RewireWorkers, Rand: r})
		if err != nil {
			return nil, 0, 0, err
		}
		return res.Graph, res.TotalTime, res.RewireTime, nil
	}
	return nil, 0, 0, fmt.Errorf("unknown method %q", m)
}

// DefaultRestorer is Config.Restorer's default: the in-process pipeline.
func DefaultRestorer(m Method, c *sampling.Crawl, opts core.Options) (*core.Result, error) {
	if m == MethodGjoka {
		return core.RestoreGjoka(c, opts)
	}
	return core.Restore(c, opts)
}
