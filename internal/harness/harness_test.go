package harness

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := gen.HolmeKim(600, 3, 0.5, rand.New(rand.NewPCG(7, 8)))
	return g
}

func quickConfig() Config {
	return Config{
		Fraction: 0.10,
		Runs:     2,
		RC:       3,
		Seed:     99,
	}
}

func TestEvaluateAllMethods(t *testing.T) {
	g := smallGraph(t)
	ev, err := Evaluate(g, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Stats) != 6 {
		t.Fatalf("want 6 methods, got %d", len(ev.Stats))
	}
	for m, st := range ev.Stats {
		for i := range st.PerProperty {
			if len(st.PerProperty[i]) != 2 {
				t.Fatalf("%s property %d: %d runs recorded", m, i, len(st.PerProperty[i]))
			}
			for _, v := range st.PerProperty[i] {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("%s property %d: bad distance %v", m, i, v)
				}
			}
		}
		if len(st.TotalTimes) != 2 {
			t.Fatalf("%s: %d timing entries", m, len(st.TotalTimes))
		}
	}
	// Subgraph-sampling methods must have zero rewiring time; generation
	// methods nonzero.
	if ev.Stats[MethodBFS].MeanRewireTime() != 0 {
		t.Error("BFS must not rewire")
	}
	if ev.Stats[MethodProposed].MeanRewireTime() <= 0 {
		t.Error("proposed method must report rewiring time")
	}
}

func TestEvaluateMethodSubset(t *testing.T) {
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Methods = []Method{MethodRW, MethodProposed}
	cfg.Runs = 1
	ev, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Stats) != 2 {
		t.Fatalf("want 2 methods, got %d", len(ev.Stats))
	}
}

func TestEvaluateDeterministicGivenSeed(t *testing.T) {
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Runs = 1
	cfg.Methods = []Method{MethodProposed}
	a, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Stats[MethodProposed].PerProperty {
		av := a.Stats[MethodProposed].PerProperty[i][0]
		bv := b.Stats[MethodProposed].PerProperty[i][0]
		if av != bv {
			t.Fatalf("property %d: %v vs %v", i, av, bv)
		}
	}
}

func TestProposedBeatsSubgraphOnN(t *testing.T) {
	// The subgraph under-counts nodes by construction; the proposed method
	// should get far closer to n (property index 0).
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Runs = 3
	ev, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	proposed := ev.Stats[MethodProposed].PropertyMeans()[0]
	rw := ev.Stats[MethodRW].PropertyMeans()[0]
	if proposed >= rw {
		t.Errorf("proposed n-distance %v should beat subgraph sampling %v", proposed, rw)
	}
}

func TestParseMethod(t *testing.T) {
	m, err := ParseMethod("Proposed")
	if err != nil || m != MethodProposed {
		t.Fatalf("ParseMethod: %v %v", m, err)
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Fatal("want error for unknown method")
	}
}

func TestAvgSDPerPaperDefinition(t *testing.T) {
	st := &MethodStats{}
	for i := 0; i < 12; i++ {
		st.PerProperty[i] = []float64{float64(i), float64(i) + 2} // mean i+1
	}
	avg, sd := st.AvgSD()
	// Property means are 1..12: mean 6.5.
	if math.Abs(avg-6.5) > 1e-12 {
		t.Fatalf("avg = %v", avg)
	}
	if sd <= 0 {
		t.Fatalf("sd = %v", sd)
	}
}

func TestRenderers(t *testing.T) {
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Runs = 1
	ev, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := RenderPerProperty("toy", ev)
	if !strings.Contains(tbl, "Proposed") || !strings.Contains(tbl, "lambda1") {
		t.Fatalf("per-property table malformed:\n%s", tbl)
	}
	avg := RenderAvgSD(map[string]*Evaluation{"toy": ev})
	if !strings.Contains(avg, "toy") || !strings.Contains(avg, "+-") {
		t.Fatalf("avg table malformed:\n%s", avg)
	}
	times := RenderTimes(map[string]*Evaluation{"toy": ev})
	if !strings.Contains(times, "rewire") {
		t.Fatalf("times table malformed:\n%s", times)
	}
	series := Fig3Series{}
	for _, m := range cfg.Methods {
		series[m] = []Fig3Point{{Fraction: 0.1, AvgL1: ev.AvgL1(m)}}
	}
	fig := RenderFig3("toy", series, cfg.Methods)
	if !strings.Contains(fig, "fraction") {
		t.Fatalf("fig3 render malformed:\n%s", fig)
	}
}
