package harness

import (
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
)

// TestHeadlineReproduction is the regression guard for the paper's main
// claim (Table III): on a clustered heavy-tailed social graph at a 10%
// query budget, the proposed method achieves a lower average L1 over the
// 12 properties than random-walk subgraph sampling, and its generation is
// faster than Gjoka et al.'s.
func TestHeadlineReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("headline reproduction is slow")
	}
	g := gen.HolmeKim(1500, 4, 0.5, rand.New(rand.NewPCG(21, 22)))
	ev, err := Evaluate(g, Config{
		Fraction: 0.10,
		Runs:     3,
		RC:       30,
		Seed:     77,
	})
	if err != nil {
		t.Fatal(err)
	}
	proposed := ev.AvgL1(MethodProposed)
	rw := ev.AvgL1(MethodRW)
	if proposed >= rw {
		t.Errorf("proposed avg L1 %.3f should beat RW subgraph sampling %.3f", proposed, rw)
	}
	// Timing claim: the proposed rewiring works on a smaller candidate set.
	pt := ev.Stats[MethodProposed].MeanTotalTime()
	gt := ev.Stats[MethodGjoka].MeanTotalTime()
	if pt >= gt {
		t.Errorf("proposed generation (%v) should be faster than Gjoka (%v)", pt, gt)
	}
	// Subgraph construction is orders of magnitude faster than generation.
	if st := ev.Stats[MethodRW].MeanTotalTime(); st*10 > pt {
		t.Errorf("subgraph sampling (%v) should be far faster than generation (%v)", st, pt)
	}
}
