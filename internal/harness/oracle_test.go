package harness

import (
	"net/http/httptest"
	"testing"
	"time"

	"sgr/internal/graph"
	"sgr/internal/oracle"
	"sgr/internal/sampling"
)

// TestEvaluateOverOracleMatchesInMemory runs the full paper protocol —
// every crawler fetching over HTTP from a graphd-style server (with
// injected latency and transient faults), restoration running locally —
// and requires results identical to the all-in-memory evaluation: the
// wire is invisible at equal seeds.
func TestEvaluateOverOracleMatchesInMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("full-protocol oracle evaluation is slow")
	}
	g := smallGraph(t)
	srv := oracle.NewServer(g, oracle.ServerConfig{
		PageSize:  32,
		Latency:   20 * time.Microsecond,
		ErrorRate: 0.02,
		FaultSeed: 12,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := oracle.NewClient(oracle.ClientConfig{
		BaseURL:     ts.URL,
		MaxRetries:  12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cfg := Config{Fraction: 0.10, Runs: 1, RC: 3, Seed: 99}
	inMem, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Access = func(*graph.Graph) sampling.Access { return client }
	remote, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatalf("oracle evaluation: %v (client: %v)", err, client.Err())
	}
	if client.Err() != nil {
		t.Fatalf("client error: %v", client.Err())
	}
	if client.NodesFetched() == 0 {
		t.Fatal("evaluation never touched the oracle")
	}

	for _, m := range AllMethods {
		a, b := inMem.Stats[m], remote.Stats[m]
		for i := range a.PerProperty {
			if len(a.PerProperty[i]) != len(b.PerProperty[i]) {
				t.Fatalf("%s property %d: run counts differ", m, i)
			}
			for r := range a.PerProperty[i] {
				if a.PerProperty[i][r] != b.PerProperty[i][r] {
					t.Fatalf("%s property %d run %d: in-memory %v, over oracle %v",
						m, i, r, a.PerProperty[i][r], b.PerProperty[i][r])
				}
			}
		}
	}
}
