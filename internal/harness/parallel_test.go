package harness

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
)

// evalWorkers evaluates the small test graph with a given worker count,
// holding everything else (master seed, prop options) fixed.
func evalWorkers(t testing.TB, workers, runs int) *Evaluation {
	t.Helper()
	g := gen.HolmeKim(600, 3, 0.5, rand.New(rand.NewPCG(7, 8)))
	cfg := Config{
		Fraction: 0.10,
		Runs:     runs,
		RC:       3,
		Seed:     99,
		Workers:  workers,
	}
	cfg.PropOpts.Workers = 2 // fixed, so prop floats can't vary with cfg.Workers
	ev, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestParallelMatchesSequential is the engine's core guarantee: the bounded
// worker pool at 4 workers reproduces the sequential (workers=1) evaluation
// bit for bit, because each (run, method) cell owns an independent PCG
// stream and results merge by index.
func TestParallelMatchesSequential(t *testing.T) {
	seq := evalWorkers(t, 1, 4)
	par := evalWorkers(t, 4, 4)
	for _, m := range AllMethods {
		ss, ps := seq.Stats[m], par.Stats[m]
		for i := range ss.PerProperty {
			if len(ss.PerProperty[i]) != len(ps.PerProperty[i]) {
				t.Fatalf("%s property %d: run counts differ", m, i)
			}
			for run := range ss.PerProperty[i] {
				if ss.PerProperty[i][run] != ps.PerProperty[i][run] {
					t.Errorf("%s property %d run %d: workers=1 %v != workers=4 %v",
						m, i, run, ss.PerProperty[i][run], ps.PerProperty[i][run])
				}
			}
		}
	}
	// Rendered tables (timing-free ones) must match byte for byte.
	if a, b := RenderPerProperty("toy", seq), RenderPerProperty("toy", par); a != b {
		t.Errorf("per-property tables differ:\n%s\nvs\n%s", a, b)
	}
	evA := map[string]*Evaluation{"toy": seq}
	evB := map[string]*Evaluation{"toy": par}
	if a, b := RenderAvgSD(evA), RenderAvgSD(evB); a != b {
		t.Errorf("avg tables differ:\n%s\nvs\n%s", a, b)
	}
}

// TestParallelCSVMatchesSequential checks the tidy-CSV path: every column
// except the wall-clock timings must be identical across worker counts.
func TestParallelCSVMatchesSequential(t *testing.T) {
	stripTimes := func(ev *Evaluation) string {
		var buf bytes.Buffer
		if err := ev.WriteCSV(&buf, "toy"); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 0, buf.Len())
		for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
			fields := bytes.Split(line, []byte(","))
			if len(fields) >= 7 {
				fields = fields[:5] // drop total_seconds, rewire_seconds
			}
			out = append(out, bytes.Join(fields, []byte(","))...)
			out = append(out, '\n')
		}
		return string(out)
	}
	if a, b := stripTimes(evalWorkers(t, 1, 3)), stripTimes(evalWorkers(t, 8, 3)); a != b {
		t.Errorf("CSV content differs between worker counts:\n%s\nvs\n%s", a, b)
	}
}

// TestWorkerCountInvariance sweeps several pool widths; all must agree.
func TestWorkerCountInvariance(t *testing.T) {
	ref := evalWorkers(t, 1, 2)
	for _, w := range []int{2, 3, 7} {
		got := evalWorkers(t, w, 2)
		for _, m := range AllMethods {
			if ref.AvgL1(m) != got.AvgL1(m) {
				t.Errorf("workers=%d: %s avg L1 %v != %v", w, m, got.AvgL1(m), ref.AvgL1(m))
			}
		}
	}
}

// TestConcurrentCellsShareGraphRaceFree exercises, under -race, many
// concurrent cells reading one dataset graph and per-run shared crawls.
// All six methods run so subgraph construction, Gjoka's method and the
// proposed method all hit the shared state concurrently.
func TestConcurrentCellsShareGraphRaceFree(t *testing.T) {
	ev := evalWorkers(t, 8, 4)
	for _, m := range AllMethods {
		if got := len(ev.Stats[m].TotalTimes); got != 4 {
			t.Fatalf("%s: %d runs recorded, want 4", m, got)
		}
	}
}

// TestPrecomputedOriginalMatches checks the sweep fast path: passing a
// ComputeOriginal result via Config.Original must reproduce the nil-path
// evaluation exactly.
func TestPrecomputedOriginalMatches(t *testing.T) {
	g := gen.HolmeKim(600, 3, 0.5, rand.New(rand.NewPCG(7, 8)))
	cfg := Config{Fraction: 0.10, Runs: 2, RC: 3, Seed: 99, Workers: 4}
	a, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Original = cfg.ComputeOriginal(g)
	b, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMethods {
		if a.AvgL1(m) != b.AvgL1(m) {
			t.Errorf("%s: precomputed-original avg L1 %v != %v", m, b.AvgL1(m), a.AvgL1(m))
		}
	}
}

// TestCellStreamsDistinct guards the PCG stream derivation: the walk stream
// of each run and the cell streams of all methods must be pairwise
// distinct for a realistic sweep size.
func TestCellStreamsDistinct(t *testing.T) {
	seen := make(map[uint64]string)
	record := func(stream uint64, what string) {
		if prev, ok := seen[stream]; ok {
			t.Fatalf("stream collision: %s and %s both use %#x", prev, what, stream)
		}
		seen[stream] = what
	}
	for run := 0; run < 100; run++ {
		record(uint64(run)*runStream+1, fmt.Sprintf("run %d walk", run))
		for mi := range AllMethods {
			record(uint64(run)*runStream+1+(uint64(mi)+1)*cellStream,
				fmt.Sprintf("run %d cell %d", run, mi))
		}
	}
}

// BenchmarkEvaluateWorkers measures the multi-run sweep at 1 and 4 workers;
// the 4-worker case should be at least ~2x faster on >= 4 CPUs (on fewer
// CPUs the two cases coincide — GOMAXPROCS caps real parallelism).
func BenchmarkEvaluateWorkers(b *testing.B) {
	g := gen.HolmeKim(1200, 4, 0.4, rand.New(rand.NewPCG(7, 8)))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := Config{
					Fraction: 0.10,
					Runs:     8,
					RC:       10,
					Seed:     42,
					Workers:  workers,
				}
				cfg.PropOpts.Workers = 1 // isolate cell-level parallelism
				if _, err := Evaluate(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
