package harness

import (
	"reflect"
	"sync/atomic"
	"testing"

	"sgr/internal/core"
	"sgr/internal/sampling"
)

// TestEvaluateRestorerHook proves Config.Restorer is the generation seam:
// a custom restorer observes every restoration cell, and one that honors
// the determinism contract (here: delegating to the default pipeline)
// leaves the evaluation's property distances bit-identical.
func TestEvaluateRestorerHook(t *testing.T) {
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Methods = []Method{MethodRW, MethodGjoka, MethodProposed}

	base, err := Evaluate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	var gjoka, proposed atomic.Int64
	hooked := cfg
	hooked.Restorer = func(m Method, c *sampling.Crawl, opts core.Options) (*core.Result, error) {
		calls.Add(1)
		switch m {
		case MethodGjoka:
			gjoka.Add(1)
		case MethodProposed:
			proposed.Add(1)
		default:
			t.Errorf("restorer called for non-restoration method %q", m)
		}
		if opts.Rand == nil {
			t.Error("restorer received nil Options.Rand")
		}
		if len(c.Walk) == 0 {
			t.Error("restorer received a walkless crawl")
		}
		return DefaultRestorer(m, c, opts)
	}
	got, err := Evaluate(g, hooked)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one call per (run, restoration-method) cell.
	if want := int64(cfg.Runs * 2); calls.Load() != want {
		t.Fatalf("restorer called %d times, want %d", calls.Load(), want)
	}
	if gjoka.Load() != int64(cfg.Runs) || proposed.Load() != int64(cfg.Runs) {
		t.Fatalf("per-method calls gjoka=%d proposed=%d, want %d each",
			gjoka.Load(), proposed.Load(), cfg.Runs)
	}
	// Bit-identical distances (timings legitimately differ run to run).
	for _, m := range cfg.Methods {
		if !reflect.DeepEqual(base.Stats[m].PerProperty, got.Stats[m].PerProperty) {
			t.Fatalf("%s: hooked evaluation distances differ from default", m)
		}
	}
}
