package harness

import (
	"fmt"
	"sort"
	"strings"

	"sgr/internal/metrics"
)

// RenderPerProperty renders a Table II / Table V style block: one row per
// method, one column per property, the lowest value per column starred.
func RenderPerProperty(dataset string, ev *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataset: %s (per-property normalized L1 distance; * = best)\n", dataset)
	fmt.Fprintf(&b, "%-14s", "Method")
	for _, name := range metrics.PropertyNames {
		fmt.Fprintf(&b, "%9s", name)
	}
	b.WriteString("\n")

	var best [12]float64
	for i := range best {
		best[i] = -1
	}
	for _, m := range ev.Config.Methods {
		means := ev.Stats[m].PropertyMeans()
		for i, v := range means {
			if best[i] < 0 || v < best[i] {
				best[i] = v
			}
		}
	}
	for _, m := range ev.Config.Methods {
		fmt.Fprintf(&b, "%-14s", m)
		means := ev.Stats[m].PropertyMeans()
		for i, v := range means {
			mark := " "
			if v == best[i] {
				mark = "*"
			}
			fmt.Fprintf(&b, "%8.3f%s", v, mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderAvgSD renders a Table III style block over several datasets: per
// dataset and method, avg ± sd of the L1 distance across the 12 properties.
func RenderAvgSD(evals map[string]*Evaluation) string {
	names := make([]string, 0, len(evals))
	for n := range evals {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("Average +- SD of the L1 distance over the 12 properties (* = best)\n")
	fmt.Fprintf(&b, "%-12s", "Dataset")
	var methods []Method
	if len(names) > 0 {
		methods = evals[names[0]].Config.Methods
	}
	for _, m := range methods {
		fmt.Fprintf(&b, "%11s      ", truncMethod(m))
	}
	b.WriteString("\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%-12s", n)
		best := -1.0
		for _, m := range methods {
			avg, _ := evals[n].Stats[m].AvgSD()
			if best < 0 || avg < best {
				best = avg
			}
		}
		for _, m := range methods {
			avg, sd := evals[n].Stats[m].AvgSD()
			mark := " "
			if avg == best {
				mark = "*"
			}
			fmt.Fprintf(&b, "%6.3f+-%.3f%s    ", avg, sd, mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTimes renders a Table IV style block: mean generation times, with
// total and rewiring time for the generation methods.
func RenderTimes(evals map[string]*Evaluation) string {
	names := make([]string, 0, len(evals))
	for n := range evals {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("Generation times (mean seconds; generation methods also list rewiring)\n")
	fmt.Fprintf(&b, "%-12s", "Dataset")
	var methods []Method
	if len(names) > 0 {
		methods = evals[names[0]].Config.Methods
	}
	for _, m := range methods {
		if m == MethodGjoka || m == MethodProposed {
			fmt.Fprintf(&b, "%12s (rewire)", truncMethod(m))
		} else {
			fmt.Fprintf(&b, "%12s", truncMethod(m))
		}
	}
	b.WriteString("\n")
	for _, n := range names {
		fmt.Fprintf(&b, "%-12s", n)
		for _, m := range methods {
			st := evals[n].Stats[m]
			if m == MethodGjoka || m == MethodProposed {
				fmt.Fprintf(&b, "%12.3f %8.3f", st.MeanTotalTime().Seconds(), st.MeanRewireTime().Seconds())
			} else {
				fmt.Fprintf(&b, "%12.4f", st.MeanTotalTime().Seconds())
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig3Point is one point of a Fig. 3 series.
type Fig3Point struct {
	Fraction float64
	AvgL1    float64
}

// Fig3Series holds, per method, the average-L1 curve over query fractions.
type Fig3Series map[Method][]Fig3Point

// RenderFig3 renders the series as aligned columns, one row per fraction.
func RenderFig3(dataset string, series Fig3Series, methods []Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.3 series for %s: average L1 over 12 properties vs fraction queried\n", dataset)
	fmt.Fprintf(&b, "%-10s", "fraction")
	for _, m := range methods {
		fmt.Fprintf(&b, "%14s", truncMethod(m))
	}
	b.WriteString("\n")
	if len(methods) == 0 {
		return b.String()
	}
	for i := range series[methods[0]] {
		fmt.Fprintf(&b, "%-10.2f", series[methods[0]][i].Fraction)
		for _, m := range methods {
			fmt.Fprintf(&b, "%14.3f", series[m][i].AvgL1)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func truncMethod(m Method) string {
	s := string(m)
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

// AvgL1 returns the mean over the 12 per-property mean distances for one
// method — the quantity plotted in Fig. 3.
func (ev *Evaluation) AvgL1(m Method) float64 {
	avg, _ := ev.Stats[m].AvgSD()
	return avg
}
