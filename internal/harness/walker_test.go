package harness

import (
	"testing"
)

// TestWalkerVariantsRunThroughRestoration exercises the future-work
// combination of improved walks with the proposed method: every walker
// variant must drive the full pipeline without error and yield finite
// distances.
func TestWalkerVariantsRunThroughRestoration(t *testing.T) {
	g := smallGraph(t)
	for _, w := range []Walker{WalkerSimple, WalkerNonBacktracking, WalkerMetropolis, WalkerFrontier} {
		w := w
		t.Run(string(w)+"/", func(t *testing.T) {
			cfg := quickConfig()
			cfg.Runs = 1
			cfg.Walker = w
			cfg.Methods = []Method{MethodRW, MethodProposed}
			ev, err := Evaluate(g, cfg)
			if err != nil {
				t.Fatalf("walker %q: %v", w, err)
			}
			avg := ev.AvgL1(MethodProposed)
			if avg < 0 || avg != avg { // NaN check
				t.Fatalf("walker %q: bad avg L1 %v", w, avg)
			}
		})
	}
}

func TestUnknownWalkerFails(t *testing.T) {
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Walker = Walker("bogus")
	cfg.Methods = []Method{MethodProposed}
	if _, err := Evaluate(g, cfg); err == nil {
		t.Fatal("want error for unknown walker")
	}
}

func TestFrontierDimDefault(t *testing.T) {
	g := smallGraph(t)
	cfg := quickConfig()
	cfg.Runs = 1
	cfg.Walker = WalkerFrontier
	cfg.FrontierDim = 0 // default 4
	cfg.Methods = []Method{MethodRW}
	if _, err := Evaluate(g, cfg); err != nil {
		t.Fatal(err)
	}
}
