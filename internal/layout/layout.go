// Package layout computes force-directed graph layouts and renders them to
// SVG, reproducing the paper's Fig. 4 visualization comparison (the paper
// uses Gephi; the same qualitative signal — crawlers capture the dense core
// but miss the low-degree periphery, the proposed method restores both — is
// visible in these renderings).
package layout

import (
	"math"
	"math/rand/v2"

	"sgr/internal/graph"
)

// Options configures the Fruchterman-Reingold layout.
type Options struct {
	// Iterations of force simulation (default 150).
	Iterations int
	// Rand seeds the initial positions; required.
	Rand *rand.Rand
}

// Point is a 2-D position.
type Point struct{ X, Y float64 }

// FruchtermanReingold computes node positions in the unit square using the
// classic attract/repel scheme with simulated annealing and a uniform grid
// that restricts repulsion to nearby nodes, keeping iterations near-linear.
func FruchtermanReingold(g *graph.Graph, opts Options) []Point {
	n := g.N()
	if opts.Iterations <= 0 {
		opts.Iterations = 150
	}
	r := opts.Rand
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{r.Float64(), r.Float64()}
	}
	if n <= 1 {
		return pos
	}
	k := math.Sqrt(1 / float64(n)) // ideal edge length
	disp := make([]Point, n)

	// Grid cell size ~ 2k: repulsion only against nodes within one cell
	// ring, a standard FR speedup.
	cell := 2 * k
	if cell <= 0 || cell > 0.5 {
		cell = 0.5
	}
	side := int(1/cell) + 1

	edges := g.Edges()
	temp := 0.1
	cool := temp / float64(opts.Iterations+1)

	grid := make(map[[2]int][]int, n)
	for iter := 0; iter < opts.Iterations; iter++ {
		for i := range disp {
			disp[i] = Point{}
		}
		// Repulsive forces within neighboring grid cells.
		clear(grid)
		cellOf := func(p Point) [2]int {
			cx := int(p.X / cell)
			cy := int(p.Y / cell)
			if cx < 0 {
				cx = 0
			}
			if cy < 0 {
				cy = 0
			}
			if cx >= side {
				cx = side - 1
			}
			if cy >= side {
				cy = side - 1
			}
			return [2]int{cx, cy}
		}
		for v := 0; v < n; v++ {
			c := cellOf(pos[v])
			grid[c] = append(grid[c], v)
		}
		for v := 0; v < n; v++ {
			c := cellOf(pos[v])
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for _, u := range grid[[2]int{c[0] + dx, c[1] + dy}] {
						if u == v {
							continue
						}
						ddx := pos[v].X - pos[u].X
						ddy := pos[v].Y - pos[u].Y
						d2 := ddx*ddx + ddy*ddy
						if d2 < 1e-9 {
							d2 = 1e-9
						}
						f := k * k / d2
						disp[v].X += ddx * f
						disp[v].Y += ddy * f
					}
				}
			}
		}
		// Attractive forces along edges.
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			dx := pos[e.U].X - pos[e.V].X
			dy := pos[e.U].Y - pos[e.V].Y
			d := math.Sqrt(dx*dx+dy*dy) + 1e-9
			// Standard FR attraction: d^2/k along the edge direction.
			sx := dx / d * (d * d / k)
			sy := dy / d * (d * d / k)
			disp[e.U].X -= sx
			disp[e.U].Y -= sy
			disp[e.V].X += sx
			disp[e.V].Y += sy
		}
		// Apply displacements, clamped by temperature, boxed to [0,1].
		for v := 0; v < n; v++ {
			dx, dy := disp[v].X, disp[v].Y
			d := math.Sqrt(dx*dx + dy*dy)
			if d > 0 {
				lim := math.Min(d, temp)
				pos[v].X += dx / d * lim
				pos[v].Y += dy / d * lim
			}
			pos[v].X = math.Min(1, math.Max(0, pos[v].X))
			pos[v].Y = math.Min(1, math.Max(0, pos[v].Y))
		}
		temp -= cool
		if temp < 1e-4 {
			temp = 1e-4
		}
	}
	return pos
}
