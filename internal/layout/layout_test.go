package layout

import (
	"bytes"
	"math"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func TestLayoutBoundsAndDeterminism(t *testing.T) {
	g := gen.HolmeKim(200, 3, 0.5, rng(1))
	a := FruchtermanReingold(g, Options{Iterations: 30, Rand: rng(2)})
	if len(a) != g.N() {
		t.Fatalf("positions: %d want %d", len(a), g.N())
	}
	for i, p := range a {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("node %d out of box: %+v", i, p)
		}
	}
	b := FruchtermanReingold(g, Options{Iterations: 30, Rand: rng(2)})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layout not deterministic at node %d", i)
		}
	}
}

func TestLayoutSeparatesComponentsFromCluster(t *testing.T) {
	// Two cliques joined by one edge should end farther apart than nodes
	// within one clique.
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j)
			g.AddEdge(i+5, j+5)
		}
	}
	g.AddEdge(0, 5)
	pos := FruchtermanReingold(g, Options{Iterations: 200, Rand: rng(3)})
	intra := dist(pos[1], pos[2])
	inter := dist(pos[1], pos[6])
	if inter <= intra {
		t.Errorf("cliques not separated: intra %v inter %v", intra, inter)
	}
}

func dist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

func TestLayoutTrivialGraphs(t *testing.T) {
	empty := graph.New(0)
	if got := FruchtermanReingold(empty, Options{Rand: rng(4)}); len(got) != 0 {
		t.Fatal("empty graph should have no positions")
	}
	single := graph.New(1)
	if got := FruchtermanReingold(single, Options{Rand: rng(5)}); len(got) != 1 {
		t.Fatal("single node should have one position")
	}
}

func TestWriteSVG(t *testing.T) {
	g := gen.HolmeKim(30, 2, 0.5, rng(6))
	pos := FruchtermanReingold(g, Options{Iterations: 10, Rand: rng(7)})
	var buf bytes.Buffer
	if err := WriteSVG(&buf, g, pos, SVGOptions{Title: "toy"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("malformed SVG envelope")
	}
	if !strings.Contains(out, "toy") {
		t.Fatal("missing title")
	}
	if strings.Count(out, "<circle") != g.N() {
		t.Fatalf("circle count %d want %d", strings.Count(out, "<circle"), g.N())
	}
	if strings.Count(out, "<line") != g.M() {
		t.Fatalf("line count %d want %d", strings.Count(out, "<line"), g.M())
	}
}

func TestSaveSVG(t *testing.T) {
	g := gen.HolmeKim(20, 2, 0.5, rng(8))
	path := filepath.Join(t.TempDir(), "g.svg")
	if err := SaveSVG(path, g, Options{Iterations: 5, Rand: rng(9)}, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
}
