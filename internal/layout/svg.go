package layout

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"sgr/internal/graph"
)

// SVGOptions styles the rendering.
type SVGOptions struct {
	// Size is the image side length in pixels (default 800).
	Size int
	// NodeRadius in pixels (default 1.5).
	NodeRadius float64
	// EdgeOpacity in (0,1] (default 0.15).
	EdgeOpacity float64
	// Title annotates the image.
	Title string
	// NodeColors optionally colors each node (e.g. queried vs. visible vs.
	// added in a restoration); nil renders all nodes black. Entries must be
	// SVG color strings; missing/empty entries fall back to black.
	NodeColors []string
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.Size <= 0 {
		o.Size = 800
	}
	if o.NodeRadius <= 0 {
		o.NodeRadius = 1.5
	}
	if o.EdgeOpacity <= 0 {
		o.EdgeOpacity = 0.15
	}
	return o
}

// WriteSVG renders the graph at the given positions, paper-style: gray
// edge curves under black node circles.
func WriteSVG(w io.Writer, g *graph.Graph, pos []Point, opts SVGOptions) error {
	opts = opts.withDefaults()
	bw := bufio.NewWriter(w)
	s := float64(opts.Size)
	margin := 0.03 * s
	scale := s - 2*margin
	px := func(p Point) (float64, float64) {
		return margin + p.X*scale, margin + p.Y*scale
	}
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Size, opts.Size, opts.Size, opts.Size)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if opts.Title != "" {
		fmt.Fprintf(bw, `<text x="%f" y="%f" font-size="%f" font-family="sans-serif">%s</text>`+"\n",
			margin, margin*0.8, 0.025*s, opts.Title)
	}
	fmt.Fprintf(bw, `<g stroke="#888888" stroke-opacity="%.3f" stroke-width="0.5">`+"\n", opts.EdgeOpacity)
	for _, e := range g.Edges() {
		if e.U == e.V {
			continue
		}
		x1, y1 := px(pos[e.U])
		x2, y2 := px(pos[e.V])
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x1, y1, x2, y2)
	}
	fmt.Fprintln(bw, "</g>")
	fmt.Fprintf(bw, `<g fill="black">`+"\n")
	for v := 0; v < g.N(); v++ {
		x, y := px(pos[v])
		color := ""
		if v < len(opts.NodeColors) && opts.NodeColors[v] != "" && opts.NodeColors[v] != "black" {
			color = fmt.Sprintf(` fill="%s"`, opts.NodeColors[v])
		}
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.2f"%s/>`+"\n", x, y, opts.NodeRadius, color)
	}
	fmt.Fprintln(bw, "</g>")
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// SaveSVG lays out g and writes the rendering to path.
func SaveSVG(path string, g *graph.Graph, lopts Options, sopts SVGOptions) error {
	pos := FruchtermanReingold(g, lopts)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSVG(f, g, pos, sopts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
