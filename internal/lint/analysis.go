// Package lint is sgrlint: a static-analysis suite that enforces this
// repository's determinism contracts at compile time instead of test time.
//
// The headline guarantee — restoration output byte-identical at any worker
// count, with stable content-addressed job ids — is a property of code
// *conventions*: no map-iteration order leaking into output, no unseeded or
// wall-clock-derived randomness, no float accumulation whose order depends
// on goroutine scheduling. The differential tests catch a violation after
// the fact; the analyzers in this package catch the class of bug before a
// single test runs. See ARCHITECTURE.md's determinism-contract inventory
// for which analyzer guards which contract.
//
// The suite:
//
//   - maprange: flags `range` over a map in determinism-critical code
//     unless the loop is provably order-insensitive or feeds a
//     collect-then-sort idiom.
//   - seededrand: flags global (implicitly seeded) math/rand calls,
//     legacy math/rand imports in non-test code, and time-derived seeds.
//   - wallclock: flags time.Now/Since/Until in pure pipeline code whose
//     output must be a function of the seed alone.
//   - floatorder: flags floating-point accumulation onto shared state from
//     inside goroutines or parallel-pool callbacks (the index-addressed
//     slot pattern is the required shape).
//   - direct: validates //sgr:nondet-ok suppression directives (reason
//     required, stale directives flagged).
//
// A finding is suppressed by writing, on the same line or the line above:
//
//	//sgr:nondet-ok <reason>
//
// The reason is mandatory, and a directive that suppresses nothing is
// itself a finding — so every escape hatch in the tree stays justified and
// load-bearing, and deleting either a fix or a directive turns the lint
// gate red.
//
// The types in this file deliberately mirror golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the suite can migrate to the official
// framework the day the dependency is available; the build environment for
// this repository is offline, so the framework here is a self-contained
// stdlib-only implementation, loading type information through
// `go list -export` and the gc export-data importer rather than
// go/packages.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis pass, mirroring the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and scope rules.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run executes the analyzer on one package-shaped unit, reporting
	// findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analysis unit — a type-checked package (possibly a test
// variant) — through an Analyzer.Run, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // the files in scope for this analyzer
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The suite attaches
// the analyzer name when rendering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled in by the suite runner.
	Analyzer string
}

// inspectStack walks every node of f in depth-first order, calling fn with
// the node and the path of its ancestors (outermost first, excluding the
// node itself). Returning false prunes the subtree. It is the stdlib-only
// stand-in for x/tools' inspector.WithStack.
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// calleeFunc resolves the called function or method of call, or nil when
// the callee is not a simple identifier/selector (e.g. a function value).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// funcPkgPath returns the import path of the package declaring fn, or "".
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isIntegerType reports whether t's underlying type is an integer kind
// (order-insensitive under + and -, unlike floats).
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloatType reports whether t's underlying type is float32/float64 (or a
// complex type, equally order-sensitive under accumulation).
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rootIdent peels index, selector, star and paren expressions off an
// lvalue and returns the identifier at its base, or nil (e.g. for
// compound expressions like f().x).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}
