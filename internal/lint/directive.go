package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix is the marker of an sgrlint suppression. It follows the
// Go toolchain's directive-comment form: `//sgr:` with no space, so gofmt
// never reflows it away from the code it annotates.
const directivePrefix = "//sgr:"

// directiveVerb is the one verb sgrlint accepts: //sgr:nondet-ok <reason>.
const directiveVerb = "nondet-ok"

// Directive is one parsed, well-formed //sgr:nondet-ok comment. It
// suppresses suite findings on its own line and on the following line
// (covering both end-of-line and own-line placement).
type Directive struct {
	Pos    token.Pos
	File   string
	Line   int
	Reason string
}

// parseDirectives scans a file's comments for //sgr: directives, returning
// the well-formed suppressions and a diagnostic for every malformed one
// (unknown verb, missing reason). Malformed directives never suppress —
// an escape hatch without a recorded justification is itself a finding.
func parseDirectives(fset *token.FileSet, f *ast.File) ([]Directive, []Diagnostic) {
	var (
		valid []Directive
		bad   []Diagnostic
	)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			verb, reason, _ := strings.Cut(rest, " ")
			if verb != directiveVerb {
				bad = append(bad, Diagnostic{
					Pos:     c.Pos(),
					Message: "unknown //sgr: directive //sgr:" + verb + " (only //sgr:nondet-ok <reason> is defined)",
				})
				continue
			}
			reason = strings.TrimSpace(reason)
			if reason == "" {
				bad = append(bad, Diagnostic{
					Pos:     c.Pos(),
					Message: "//sgr:nondet-ok needs a reason: every suppression must record why the flagged code cannot leak nondeterminism into output",
				})
				continue
			}
			p := fset.Position(c.Pos())
			valid = append(valid, Directive{Pos: c.Pos(), File: p.Filename, Line: p.Line, Reason: reason})
		}
	}
	return valid, bad
}

// Direct is the directive-validation analyzer: it reports malformed
// //sgr: directives. The suite runner additionally reports, under this
// analyzer's name, well-formed directives that suppress no finding — a
// stale directive survives the fix it once justified and must be deleted
// so the suppression inventory stays exact.
var Direct = &Analyzer{
	Name: "direct",
	Doc: "validate //sgr:nondet-ok suppression directives: a reason is " +
		"required, unknown //sgr: verbs are rejected, and (suite-wide) a " +
		"directive that suppresses nothing is flagged as stale",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			_, bad := parseDirectives(pass.Fset, f)
			for _, d := range bad {
				pass.Report(d)
			}
		}
		return nil
	},
}
