package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point compound accumulation (+=, -=, *=, /=)
// onto shared state from inside concurrently executed closures: goroutine
// bodies (`go func() { ... }()`) and callbacks handed to the
// internal/parallel pool. Float addition is not associative, so the
// scheduling order of such accumulation changes the low bits of the sum —
// exactly the class of bug PRs 1, 4 and 6 each rediscovered. The required
// shape is the index-addressed slot pattern: each worker writes
// out[i] (a slot only it owns), and the caller reduces serially in index
// order. Accumulation into non-constant index expressions is therefore
// exempt; plain captured variables, captured struct fields, pointer
// dereferences, and constant-indexed slots are flagged.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc: "flag float accumulation on shared state inside goroutines or " +
		"parallel-pool callbacks; require index-addressed per-worker slots",
	Run: runFloatOrder,
}

// parallelPkg is the worker pool whose callbacks run concurrently.
const parallelPkg = "sgr/internal/parallel"

func runFloatOrder(pass *Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			if !isConcurrentClosure(pass, lit, stack) {
				return true
			}
			checkFloatAccum(pass, lit)
			// Nested closures are reached through this walk; no need to
			// re-classify them.
			return false
		})
	}
	return nil
}

// isConcurrentClosure reports whether lit runs concurrently with its
// enclosing function: the callee of a go statement, or an argument to an
// internal/parallel entry point (Map, ForEach, Blocks — any of them).
func isConcurrentClosure(pass *Pass, lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok {
		return false
	}
	if ast.Unparen(call.Fun) == ast.Expr(lit) {
		// `go func() { ... }()`
		if len(stack) >= 2 {
			if g, ok := stack[len(stack)-2].(*ast.GoStmt); ok && g.Call == call {
				return true
			}
		}
		return false
	}
	// An argument of a parallel-pool call.
	fn := calleeFunc(pass.TypesInfo, call)
	if funcPkgPath(fn) != parallelPkg {
		return false
	}
	for _, arg := range call.Args {
		if ast.Unparen(arg) == ast.Expr(lit) {
			return true
		}
	}
	return false
}

// checkFloatAccum reports order-sensitive float accumulation on state
// captured from outside lit.
func checkFloatAccum(pass *Pass, lit *ast.FuncLit) {
	lo, hi := lit.Pos(), lit.End()
	captured := func(e ast.Expr) bool {
		root := rootIdent(e)
		if root == nil {
			return true // f().x and friends: can't prove it's worker-local
		}
		obj := pass.TypesInfo.ObjectOf(root)
		return obj != nil && !declaredWithin(obj, lo, hi)
	}
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"floating-point accumulation on shared %s inside a concurrently executed closure: scheduling order changes the sum bits; write to an index-addressed per-worker slot and reduce serially in index order", what)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			t := pass.TypesInfo.TypeOf(lhs)
			if t == nil || !isFloatType(t) {
				continue
			}
			switch e := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				// The slot pattern: out[i] with a per-worker index is the
				// required shape. A constant index is a single shared slot
				// wearing a slot pattern's clothes.
				if cv := pass.TypesInfo.Types[e.Index].Value; cv != nil && captured(e.X) {
					report(as.Pos(), "constant-indexed slot "+types.ExprString(e))
				}
			case *ast.Ident:
				if captured(e) {
					report(as.Pos(), "variable "+e.Name)
				}
			case *ast.SelectorExpr:
				if captured(e) {
					report(as.Pos(), "field "+types.ExprString(e))
				}
			case *ast.StarExpr:
				if captured(e) {
					report(as.Pos(), "pointer target "+types.ExprString(e))
				}
			}
		}
		return true
	})
}
