package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sgr/internal/lint"
	"sgr/internal/lint/linttest"
)

// Each analyzer has failing-then-fixed fixtures: the flagged shapes carry
// `// want` expectations, the fixed shapes (sorted keys, seeded PCG, slot
// pattern, justified directives) expect silence.

func TestMapRangeFixtures(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "maprange"), "maprange")
}

func TestSeededRandFixtures(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "seededrand"), "seededrand")
}

func TestWallClockFixtures(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "wallclock"), "wallclock")
}

func TestFloatOrderFixtures(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "floatorder"), "floatorder")
}

func TestDirectFixtures(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "direct"), "wallclock")
}

// TestKeyCanonFixtures pins the observability boundary from the locked
// side: code shaped like restored/key.go's content-address canonicalization
// is flagged the moment a clock read sneaks in, even though the obs package
// (wallclock-exempt by scope) reads clocks two doors down. Span capture is
// legal; timestamped cache keys are not.
func TestKeyCanonFixtures(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "keycanon"), "wallclock")
}

// TestFrozenReferenceShapesClean runs the whole suite over map-iteration
// shapes distilled from the frozen reference engines
// (rewire_mapref_test.go, csrdiff_test.go): all of them must pass without
// a single directive — the differential guards may not need escape
// hatches just to exist.
func TestFrozenReferenceShapesClean(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "src", "frozenref"),
		"maprange", "seededrand", "wallclock", "floatorder")
}

// TestRepoTreeClean is the acceptance gate: the scoped suite over the
// entire repository — test files included — reports nothing. Every
// determinism hazard in the tree is either fixed or carries a justified
// //sgr:nondet-ok, and no directive is stale. (This is the same run
// `make lint` and the CI lint job perform via cmd/sgrlint.)
func TestRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-tree lint in -short mode")
	}
	units, err := lint.Load(filepath.Join("..", ".."), true, []string{"./..."})
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	findings, err := lint.Run(units, lint.Analyzers(), true)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	// The frozen reference engines must be analyzed (not skipped) and
	// clean: their packages appear among the loaded units.
	for _, frozen := range []string{"sgr/internal/dkseries", "sgr/internal/props"} {
		found := false
		for _, u := range units {
			if u.PkgPath == frozen {
				for _, name := range u.Filenames {
					if strings.HasSuffix(name, "rewire_mapref_test.go") || strings.HasSuffix(name, "csrdiff_test.go") {
						found = true
					}
				}
			}
		}
		if !found {
			t.Errorf("frozen reference engine files of %s were not loaded for analysis", frozen)
		}
	}
}
