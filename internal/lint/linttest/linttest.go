// Package linttest is the golden-test harness for the sgrlint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: a fixture
// directory of Go files annotated with `// want "substring"` comments is
// type-checked and analyzed, and the produced findings are diffed against
// the expectations line by line. Fixtures always run through the full
// suite pipeline — scope-free, with //sgr:nondet-ok suppression and
// stale-directive detection active — so directive interplay is testable.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sgr/internal/lint"
)

// Run type-checks the fixture package in dir, runs the named analyzers
// (plus directive validation, which is always on), and compares findings
// against the fixtures' // want comments.
func Run(t *testing.T, dir string, analyzerNames ...string) {
	t.Helper()
	findings := analyze(t, dir, analyzerNames...)
	wants := expectations(t, dir)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		rendered := f.Analyzer + ": " + f.Message
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.Position.Filename) || w.line != f.Position.Line {
				continue
			}
			if strings.Contains(rendered, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(f.Position.Filename), f.Position.Line, rendered)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

// analyze loads and runs the suite over the fixture dir.
func analyze(t *testing.T, dir string, analyzerNames ...string) []lint.Finding {
	t.Helper()
	unit, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	selected := []*lint.Analyzer{lint.Direct}
	for _, name := range analyzerNames {
		if name == lint.Direct.Name {
			continue
		}
		a := byName(name)
		if a == nil {
			t.Fatalf("unknown analyzer %q", name)
		}
		selected = append(selected, a)
	}
	findings, err := lint.Run([]*lint.Unit{unit}, selected, false)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	return findings
}

func byName(name string) *lint.Analyzer {
	for _, a := range lint.Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// loadFixture parses every .go file in dir as one package and type-checks
// it with the same go-list-export machinery the real driver uses, so
// fixtures may import both the standard library and sgr packages.
func loadFixture(dir string) (*lint.Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var (
		files []*ast.File
		names []string
	)
	imports := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, path)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			imports[p] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var deps []string
	for p := range imports {
		deps = append(deps, p)
	}
	sort.Strings(deps)
	return lint.CheckFixture(fset, "fixture/"+filepath.Base(dir), files, names, deps)
}

// expectations collects // want "substr" ["substr" ...] comments.
func expectations(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	re := regexp.MustCompile(`//\s*want\s+(.*)$`)
	strRe := regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := re.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			// A want comment alone on its line asserts about the previous
			// line (needed when the previous line is itself a comment — a
			// //sgr: directive — that a trailing comment cannot follow).
			target := i + 1
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				target = i
			}
			quoted := strRe.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				t.Fatalf("%s:%d: // want comment without a quoted pattern", e.Name(), i+1)
			}
			for _, q := range quoted {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", e.Name(), i+1, q, err)
				}
				wants = append(wants, want{file: e.Name(), line: target, substr: s})
			}
		}
	}
	return wants
}

type want struct {
	file   string
	line   int
	substr string
}
