package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Unit is one analysis unit: a type-checked package variant. For a package
// with internal test files, the loader analyzes the test-augmented variant
// (library files + _test.go files, as the compiler builds it) instead of
// the plain package, so every file is analyzed exactly once; external
// test packages (package foo_test) are their own unit.
type Unit struct {
	PkgPath   string // the declared import path (without test-variant suffix)
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ForTest    string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over args and decodes
// the JSON stream. -export makes the go command produce gc export data for
// every package in the closure, which is how the type checker resolves
// imports without golang.org/x/tools/go/packages (unavailable offline).
func goList(dir string, withTests bool, patterns []string) (map[string]*listPkg, []*listPkg, error) {
	argv := []string{"list", "-e", "-export", "-deps"}
	if withTests {
		argv = append(argv, "-test")
	}
	argv = append(argv, "-json=ImportPath,Name,Dir,Standard,DepOnly,Export,GoFiles,ForTest,ImportMap,Incomplete,Error")
	argv = append(argv, patterns...)
	cmd := exec.Command("go", argv...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	byPath := make(map[string]*listPkg)
	var order []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list decode: %v", err)
		}
		byPath[p.ImportPath] = p
		order = append(order, p)
	}
	return byPath, order, nil
}

// Load type-checks the packages matching patterns (go list syntax, e.g.
// "./...") relative to dir and returns one Unit per package variant worth
// analyzing. withTests folds _test.go files into their package's unit and
// adds external-test packages.
func Load(dir string, withTests bool, patterns []string) ([]*Unit, error) {
	byPath, order, err := goList(dir, withTests, patterns)
	if err != nil {
		return nil, err
	}
	// A plain package is superseded by its test-augmented variant
	// "p [p.test]" (same files plus the internal test files).
	augmented := make(map[string]bool)
	for _, p := range order {
		if p.ForTest != "" && p.Name != "main" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
			augmented[p.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	var units []*Unit
	for _, p := range order {
		switch {
		case p.Standard || p.DepOnly:
			continue
		case p.Error != nil || p.Incomplete:
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, listErr(p))
		case strings.HasSuffix(p.ImportPath, ".test") && p.Name == "main":
			continue // synthesized test binary main
		case p.ForTest == "" && augmented[p.ImportPath]:
			continue // analyzed via its test-augmented variant instead
		}
		u, err := checkUnit(fset, p, byPath)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

func listErr(p *listPkg) string {
	if p.Error != nil {
		return p.Error.Err
	}
	return "incomplete (missing dependency?)"
}

// checkUnit parses and type-checks one go-list package entry against the
// gc export data of its dependency closure.
func checkUnit(fset *token.FileSet, p *listPkg, byPath map[string]*listPkg) (*Unit, error) {
	var (
		files []*ast.File
		names []string
	)
	for _, f := range p.GoFiles {
		path := filepath.Join(p.Dir, f)
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
		names = append(names, path)
	}
	// The import path a unit declares: test-augmented variants keep their
	// package's path; external test packages get path + "_test".
	declPath := p.ImportPath
	if i := strings.Index(declPath, " ["); i >= 0 {
		declPath = declPath[:i]
	}
	pkg, info, err := typecheck(fset, declPath, files, importerFor(fset, p, byPath))
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	// Scope rules key on the underlying package: external test packages
	// (path_test) are governed by the package they exercise.
	return &Unit{
		PkgPath:   strings.TrimSuffix(declPath, "_test"),
		Fset:      fset,
		Files:     files,
		Filenames: names,
		Pkg:       pkg,
		TypesInfo: info,
	}, nil
}

// importerFor builds a types.Importer resolving imports through the unit's
// ImportMap (test variants import test variants) and then the export data
// recorded by `go list -export`. A fresh importer per unit keeps the gc
// importer's path-keyed cache from mixing variant and plain packages.
func importerFor(fset *token.FileSet, p *listPkg, byPath map[string]*listPkg) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		dep := byPath[path]
		if dep == nil || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// CheckFixture type-checks an already-parsed fixture package (the
// linttest harness) whose imports are deps: `go list -export` at the
// module root produces the export data, exactly as the real driver does,
// so fixtures may import the standard library and sgr packages alike.
func CheckFixture(fset *token.FileSet, path string, files []*ast.File, names []string, deps []string) (*Unit, error) {
	var byPath map[string]*listPkg
	if len(deps) > 0 {
		root, err := moduleRoot()
		if err != nil {
			return nil, err
		}
		byPath, _, err = goList(root, false, deps)
		if err != nil {
			return nil, err
		}
	}
	imp := importerFor(fset, &listPkg{}, byPath)
	pkg, info, err := typecheck(fset, path, files, imp)
	if err != nil {
		return nil, err
	}
	return &Unit{PkgPath: path, Fset: fset, Files: files, Filenames: names, Pkg: pkg, TypesInfo: info}, nil
}

// moduleRoot locates the enclosing module's directory.
func moduleRoot() (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// typecheck runs go/types over files with full use/def/selection recording.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
