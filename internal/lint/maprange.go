package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange flags `range` over a map in determinism-critical code. Go
// randomizes map iteration order per run, so any map range whose effects
// depend on visit order leaks nondeterminism straight into pipeline
// output. Two shapes are recognized as safe and exempted:
//
//  1. Order-insensitive bodies — every effect in the loop is one of:
//     writes to loop-local variables; writes indexed by exactly the range
//     key (each key visited once, so keyed slots are disjoint); integer
//     compound accumulation (+ over ints is associative and commutative —
//     over floats it is not); min/max reductions (`if v > best { best = v }`
//     — the fold commutes); delete calls; and testing.TB method calls
//     (t.Errorf per bad key commutes for the pass/fail outcome, and
//     t.Run subtests are independently named). Early exits
//     (break/return) are allowed only in effect-free membership scans
//     returning literals — once the loop can stop early, visit order
//     decides which effects happen at all.
//  2. The collect-then-sort idiom — the body only appends to slices that
//     a later statement of the same block passes to sort/slices sorting.
//
// Everything else needs either a restructure or a justified
// //sgr:nondet-ok.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "flag map iteration whose effects can depend on Go's randomized " +
		"map order; require collect-and-sort or an order-insensitive body",
	Run: runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveRange(pass, rs) || sortedCollectRange(pass, rs, stack) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map %s: iteration order is randomized and this body is order-sensitive; collect-and-sort the keys, restructure into an order-insensitive loop, or justify with //sgr:nondet-ok",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil
}

// rangeKeyObj resolves the key variable of rs, or nil (no key, or blank).
func rangeKeyObj(pass *Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// orderInsensitiveRange reports whether every effect in rs.Body is
// independent of the order map entries are visited in.
func orderInsensitiveRange(pass *Pass, rs *ast.RangeStmt) bool {
	c := &orderChecker{
		pass:   pass,
		key:    rangeKeyObj(pass, rs),
		bodyLo: rs.Body.Pos(),
		bodyHi: rs.Body.End(),
	}
	// Early exits make even commutative accumulation order-dependent (how
	// much accumulates before the exit depends on visit order), so their
	// presence restricts the body to effect-free scans.
	c.strict = hasEarlyExit(rs.Body)
	return c.stmts(rs.Body.List)
}

type orderChecker struct {
	pass   *Pass
	key    types.Object // the range key variable, if named
	bodyLo token.Pos
	bodyHi token.Pos
	strict bool // body exits early: no effects allowed at all
}

// local reports whether the expression's root variable is declared inside
// the loop body — per-iteration state whose writes cannot leak order.
func (c *orderChecker) local(e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	return declaredWithin(c.pass.TypesInfo.ObjectOf(root), c.bodyLo, c.bodyHi)
}

// keyIndexed reports whether lvalue e is an index expression whose index
// is exactly the range key variable: each iteration owns a disjoint slot.
func (c *orderChecker) keyIndexed(e ast.Expr) bool {
	if c.key == nil {
		return false
	}
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && c.pass.TypesInfo.ObjectOf(id) == c.key
}

func (c *orderChecker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmt(s) {
			return false
		}
	}
	return true
}

func (c *orderChecker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE
	case *ast.ReturnStmt:
		// Allowed only for membership scans: `if cond(k) { return true }`.
		// strict mode has already banned all effects, and literal results
		// cannot encode which iteration triggered the return.
		for _, r := range s.Results {
			if !isPureLiteral(r) {
				return false
			}
		}
		return true
	case *ast.BlockStmt:
		return c.stmts(s.List)
	case *ast.IfStmt:
		if !c.strict && c.minMaxReduction(s) {
			return true
		}
		return c.stmt(s.Init) && c.stmt(s.Body) && c.stmt(s.Else)
	case *ast.ForStmt:
		return c.stmt(s.Init) && c.stmt(s.Post) && c.stmt(s.Body)
	case *ast.RangeStmt:
		// A nested loop's statements are judged by the same rules relative
		// to the outer map range (nested map ranges are additionally
		// visited on their own by the inspector).
		return c.stmt(s.Body)
	case *ast.SwitchStmt:
		if !c.stmt(s.Init) {
			return false
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok && !c.stmts(cc.Body) {
				return false
			}
		}
		return true
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok && !c.stmts(cc.Body) {
				return false
			}
		}
		return true
	case *ast.AssignStmt:
		if c.strict {
			return false
		}
		if s.Tok == token.DEFINE {
			return true // defines loop-local state
		}
		for _, lhs := range s.Lhs {
			if !c.assignTarget(lhs, s.Tok) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		if c.strict {
			return false
		}
		return c.accumTarget(s.X)
	case *ast.ExprStmt:
		if c.strict {
			return false
		}
		// delete(m, k) has a known-commutative effect, and testing.TB
		// methods only feed the per-test failure aggregate (the pass/fail
		// outcome is the same whichever key reports first); anything else
		// could observe order.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
			if fn := calleeFunc(c.pass.TypesInfo, call); fn != nil && isMethod(fn) && funcPkgPath(fn) == "testing" {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// assignTarget vets one assignment lvalue under order-insensitivity rules.
func (c *orderChecker) assignTarget(lhs ast.Expr, tok token.Token) bool {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	if c.local(lhs) || c.keyIndexed(lhs) {
		return true
	}
	if tok == token.ASSIGN {
		return false // last-writer-wins on shared state observes order
	}
	return c.accumTarget(lhs) // compound ops: integers commute, floats don't
}

// accumTarget vets an accumulation lvalue (x++, x += e, ...): loop-local
// and key-indexed slots always; shared state only when integer-typed.
func (c *orderChecker) accumTarget(e ast.Expr) bool {
	if c.local(e) || c.keyIndexed(e) {
		return true
	}
	t := c.pass.TypesInfo.TypeOf(e)
	return t != nil && isIntegerType(t)
}

// minMaxReduction recognizes a running min/max fold:
//
//	if expr OP acc { acc = expr }
//
// with OP a strict or non-strict inequality and optionally further
// &&-conjuncts that do not read the accumulator (pure per-iteration
// filters). Min and max are commutative and associative, so visit order
// cannot change the final value.
func (c *orderChecker) minMaxReduction(s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	acc, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	accObj := c.pass.TypesInfo.ObjectOf(acc)
	if accObj == nil || mentionsObj(c.pass.TypesInfo, as.Rhs[0], accObj) {
		return false
	}
	rhs := types.ExprString(ast.Unparen(as.Rhs[0]))
	matched := false
	for _, conj := range conjuncts(s.Cond) {
		if !matched && c.comparesToAcc(conj, accObj, rhs) {
			matched = true
			continue
		}
		if mentionsObj(c.pass.TypesInfo, conj, accObj) {
			return false
		}
	}
	return matched
}

// comparesToAcc reports whether conj is `expr OP acc` or `acc OP expr`
// where expr prints as rhs and OP is an inequality.
func (c *orderChecker) comparesToAcc(conj ast.Expr, accObj types.Object, rhs string) bool {
	b, ok := ast.Unparen(conj).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if id, ok := x.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(id) == accObj {
		return types.ExprString(y) == rhs
	}
	if id, ok := y.(*ast.Ident); ok && c.pass.TypesInfo.ObjectOf(id) == accObj {
		return types.ExprString(x) == rhs
	}
	return false
}

// conjuncts splits e on && into its top-level conjuncts.
func conjuncts(e ast.Expr) []ast.Expr {
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return append(conjuncts(b.X), conjuncts(b.Y)...)
	}
	return []ast.Expr{e}
}

// mentionsObj reports whether any identifier in e resolves to obj.
func mentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// hasEarlyExit reports whether body can leave the map range before
// visiting every entry: a return, a goto, a break targeting the range
// (depth counts the breakable constructs in between), or any labeled
// branch (conservatively — the label may name the range).
func hasEarlyExit(body *ast.BlockStmt) bool {
	var exits func(s ast.Stmt, depth int) bool
	exits = func(s ast.Stmt, depth int) bool {
		switch s := s.(type) {
		case nil:
			return false
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if s.Label != nil || s.Tok == token.GOTO {
				return true
			}
			return s.Tok == token.BREAK && depth == 0
		case *ast.BlockStmt:
			for _, t := range s.List {
				if exits(t, depth) {
					return true
				}
			}
		case *ast.IfStmt:
			return exits(s.Init, depth) || exits(s.Body, depth) || exits(s.Else, depth)
		case *ast.ForStmt:
			return exits(s.Init, depth) || exits(s.Body, depth+1)
		case *ast.RangeStmt:
			return exits(s.Body, depth+1)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var clauses []ast.Stmt
			switch sw := s.(type) {
			case *ast.SwitchStmt:
				clauses = sw.Body.List
			case *ast.TypeSwitchStmt:
				clauses = sw.Body.List
			case *ast.SelectStmt:
				clauses = sw.Body.List
			}
			for _, cl := range clauses {
				if exits(cl, depth+1) {
					return true
				}
			}
		case *ast.CaseClause:
			for _, t := range s.Body {
				if exits(t, depth) {
					return true
				}
			}
		case *ast.CommClause:
			for _, t := range s.Body {
				if exits(t, depth) {
					return true
				}
			}
		case *ast.LabeledStmt:
			return exits(s.Stmt, depth)
		}
		return false
	}
	return exits(body, 0)
}

// isPureLiteral reports whether e is a basic literal or one of the
// predeclared constants true/false/nil — a value that cannot identify the
// iteration that produced it.
func isPureLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "true" || e.Name == "false" || e.Name == "nil"
	}
	return false
}

// sortedCollectRange recognizes the canonical deterministic idiom:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Ints(keys)            // or any sort./slices. sorting call
//
// The body must consist solely of appends (possibly behind ifs) to outer
// slices, and every appended-to slice must be passed to a sorting function
// in a later statement of the block enclosing the range.
func sortedCollectRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	targets := appendOnlyTargets(pass, rs.Body.List)
	if len(targets) == 0 {
		return false
	}
	after := stmtsAfter(rs, stack)
	if after == nil {
		return false
	}
	for obj := range targets {
		if !sortedLater(pass, after, obj) {
			return false
		}
	}
	return true
}

// appendOnlyTargets returns the objects of outer slices the body appends
// to, or nil if any statement is not an append (ifs recurse).
func appendOnlyTargets(pass *Pass, list []ast.Stmt) map[types.Object]bool {
	targets := make(map[types.Object]bool)
	var collect func([]ast.Stmt) bool
	collect = func(list []ast.Stmt) bool {
		for _, s := range list {
			switch s := s.(type) {
			case *ast.IfStmt:
				if s.Init != nil {
					// A short-var-decl init (`if _, ok := seen[k]; !ok`)
					// only defines if-local state.
					as, ok := s.Init.(*ast.AssignStmt)
					if !ok || as.Tok != token.DEFINE {
						return false
					}
				}
				if s.Else != nil || !collect(s.Body.List) {
					return false
				}
			case *ast.AssignStmt:
				obj := appendTarget(pass, s)
				if obj == nil {
					return false
				}
				targets[obj] = true
			default:
				return false
			}
		}
		return true
	}
	if !collect(list) || len(targets) == 0 {
		return nil
	}
	return targets
}

// appendTarget matches `x = append(x, ...)` and returns x's object.
func appendTarget(pass *Pass, s *ast.AssignStmt) types.Object {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(lhs)
	if obj == nil || pass.TypesInfo.ObjectOf(first) != obj {
		return nil
	}
	return obj
}

// stmtsAfter returns the statements following rs in its innermost
// enclosing statement list.
func stmtsAfter(rs *ast.RangeStmt, stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		for j, s := range list {
			if s == ast.Stmt(rs) {
				return list[j+1:]
			}
		}
		return nil
	}
	return nil
}

// sortedLater reports whether any of the statements contains a sorting
// call over obj.
func sortedLater(pass *Pass, stmts []ast.Stmt, obj types.Object) bool {
	for _, s := range stmts {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !isSortFunc(fn) {
				return true
			}
			for _, arg := range call.Args {
				sees := false
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						sees = true
					}
					return !sees
				})
				if sees {
					found = true
					break
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortFunc recognizes the stdlib sorting entry points.
func isSortFunc(fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}
