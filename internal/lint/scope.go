package lint

import "strings"

// Scope rules: which analyzer runs on which file. The determinism
// contracts hold on the pipeline path — everything a restoration output
// byte or a content-addressed job id is computed from — while daemon,
// metrics and CLI code is free to read clocks and emit maps in whatever
// order it likes. These tables are the machine-readable form of that
// boundary; TestScopeRules pins them.
//
// The suite runner applies scope only when asked (cmd/sgrlint does, the
// linttest fixtures don't), so analyzers themselves stay scope-free.

// criticalPkgs are the packages whose code (including tests — the
// differential guards must themselves be deterministic) is on the
// byte-determinism path: the pipeline phases, their storage engines, the
// crawlers and estimators, the evaluation harness and the worker pool.
var criticalPkgs = map[string]bool{
	"sgr/internal/adjset":   true,
	"sgr/internal/core":     true,
	"sgr/internal/dkseries": true,
	"sgr/internal/estimate": true,
	"sgr/internal/gen":      true,
	"sgr/internal/graph":    true,
	"sgr/internal/harness":  true,
	"sgr/internal/parallel": true,
	"sgr/internal/props":    true,
	"sgr/internal/sampling": true,
}

const (
	oraclePkg   = "sgr/internal/oracle"
	restoredPkg = "sgr/internal/restored"
	// obsPkg is the observability layer. Its exposition output is part of
	// the byte-stable contract (32 identical scrapes), so map order and
	// unseeded randomness are in scope — but it is the ONE package whose
	// whole point is reading monotonic clocks, so the wallclock analyzer
	// stays out. Span capture is legal there; anything feeding the
	// content-address path (restored/key.go) stays locked.
	obsPkg = "sgr/internal/obs"
)

// restoredKeyFiles is the content-address computation inside the restored
// daemon: the one corner of that package where map order, clocks and
// unseeded randomness would silently re-key every cached result.
var restoredKeyFiles = map[string]bool{
	"key.go":      true,
	"key_test.go": true,
}

// inScope reports whether analyzer applies to file base of package
// pkgPath. base is the file's basename; test-variant packages report the
// underlying package's import path.
func inScope(analyzer, pkgPath, base string) bool {
	isTest := strings.HasSuffix(base, "_test.go")
	switch analyzer {
	case "direct":
		// Directives are validated wherever they appear.
		return true
	case "maprange":
		// obs is in scope: its Prometheus exposition promises byte-stable
		// order, which a map range would silently break.
		return criticalPkgs[pkgPath] || pkgPath == obsPkg ||
			(pkgPath == restoredPkg && restoredKeyFiles[base])
	case "seededrand":
		// The oracle's injected faults and the restored daemon are part of
		// the byte-identical crawl/restore contracts, so their randomness
		// must be explicitly seeded too.
		return criticalPkgs[pkgPath] || pkgPath == oraclePkg ||
			pkgPath == restoredPkg || pkgPath == obsPkg
	case "floatorder":
		return criticalPkgs[pkgPath] || pkgPath == oraclePkg ||
			pkgPath == restoredPkg || pkgPath == obsPkg
	case "wallclock":
		// Tests may poll deadlines, and the harness times restorer calls
		// for its reports — wall time there is measurement, not output.
		if isTest {
			return false
		}
		if pkgPath == "sgr/internal/harness" {
			return false
		}
		// obs exists to read monotonic clocks (spans, timers, histograms
		// of wall latency); it is measurement by construction and out of
		// scope. The boundary holds because the locked packages (core,
		// dkseries, restored/key.go) may only *call* obs's nil-safe hooks,
		// never read clocks themselves — a time.Now() smuggled into key
		// canonicalization is still flagged (see the keycanon fixture).
		if pkgPath == obsPkg {
			return false
		}
		return criticalPkgs[pkgPath] || (pkgPath == restoredPkg && base == "key.go")
	default:
		return false
	}
}
