package lint

import "testing"

// TestScopeRules pins the analyzer/package boundary: the determinism
// contracts hold on the pipeline path, while daemon, metrics and CLI code
// may read clocks and iterate maps freely.
func TestScopeRules(t *testing.T) {
	cases := []struct {
		analyzer string
		pkg      string
		base     string
		want     bool
	}{
		// The pipeline path is covered, tests included.
		{"maprange", "sgr/internal/dkseries", "rewire.go", true},
		{"maprange", "sgr/internal/dkseries", "rewire_mapref_test.go", true},
		{"maprange", "sgr/internal/props", "csrdiff_test.go", true},
		{"maprange", "sgr/internal/sampling", "walks.go", true},
		{"floatorder", "sgr/internal/parallel", "parallel.go", true},
		{"floatorder", "sgr/internal/harness", "harness.go", true},
		{"seededrand", "sgr/internal/oracle", "server.go", true},
		{"seededrand", "sgr/internal/gen", "gen.go", true},
		{"wallclock", "sgr/internal/core", "restore.go", true},
		{"wallclock", "sgr/internal/estimate", "estimate.go", true},

		// The restored daemon is covered only on its content-address path:
		// map order or clock reads in key.go would re-key every cached
		// result, while the job daemon around it times and logs freely.
		{"maprange", "sgr/internal/restored", "key.go", true},
		{"maprange", "sgr/internal/restored", "key_test.go", true},
		{"maprange", "sgr/internal/restored", "service.go", false},
		{"wallclock", "sgr/internal/restored", "key.go", true},
		{"wallclock", "sgr/internal/restored", "service.go", false},
		{"seededrand", "sgr/internal/restored", "service.go", true},

		// The observability layer: byte-stable exposition keeps it inside
		// maprange/floatorder/seededrand scope, but reading monotonic
		// clocks is its job, so wallclock stays out — span capture is
		// legal in obs while the key path below stays locked.
		{"maprange", "sgr/internal/obs", "obs.go", true},
		{"floatorder", "sgr/internal/obs", "histogram.go", true},
		{"seededrand", "sgr/internal/obs", "trace.go", true},
		{"wallclock", "sgr/internal/obs", "trace.go", false},
		{"wallclock", "sgr/internal/obs", "histogram.go", false},

		// Measurement code is out of wallclock scope: tests poll
		// deadlines, the harness times restorers for its reports.
		{"wallclock", "sgr/internal/sampling", "sampling_test.go", false},
		{"wallclock", "sgr/internal/harness", "harness.go", false},

		// Daemon plumbing, metrics and CLIs are off the byte path.
		{"maprange", "sgr/internal/daemon", "daemon.go", false},
		{"maprange", "sgr/internal/oracle", "server.go", false},
		{"maprange", "sgr/internal/metrics", "l1.go", false},
		{"wallclock", "sgr/internal/daemon", "daemon.go", false},
		{"floatorder", "sgr/internal/layout", "layout.go", false},
		{"seededrand", "sgr/internal/daemon", "daemon.go", false},

		// Directives are validated everywhere.
		{"direct", "sgr/internal/daemon", "daemon.go", true},
		{"direct", "sgr", "sgr.go", true},
	}
	for _, c := range cases {
		if got := inScope(c.analyzer, c.pkg, c.base); got != c.want {
			t.Errorf("inScope(%q, %q, %q) = %v, want %v", c.analyzer, c.pkg, c.base, got, c.want)
		}
	}
}
