package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// SeededRand enforces the repository's randomness contract: every stream
// is an explicitly seeded generator — rand.New(rand.NewPCG(s1, s2)) or a
// sampling.SubStream derivation — never the process-global source and
// never a wall-clock-derived seed. It flags:
//
//   - calls to math/rand/v2 (and legacy math/rand) package-level functions
//     that draw from the global, implicitly seeded generator (rand.IntN,
//     rand.Float64, rand.Shuffle, ...);
//   - importing legacy math/rand from non-test code at all (its API
//     invites global-source use; new code takes math/rand/v2);
//   - any time-derived seed: a time.* call anywhere inside the arguments
//     of a source constructor (rand.NewPCG, rand.NewChaCha8, rand.New,
//     legacy rand.NewSource) or of sampling.SubStream/SubSeeds.
//
// Methods on a *rand.Rand value are fine — the construction site is where
// the contract is checked.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "flag implicitly seeded global math/rand use and time-derived " +
		"seeds; randomness must come from explicitly seeded PCG streams",
	Run: runSeededRand,
}

const (
	randV1 = "math/rand"
	randV2 = "math/rand/v2"
)

// randConstructors are the package-level functions of math/rand{,/v2} that
// build explicitly seeded values rather than drawing from the global
// source. Everything else at package level is (or feeds) the global
// generator.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true, // legacy math/rand
	"NewZipf":    true,
}

// isSeedSink reports whether fn's arguments are RNG seed material that
// must not involve the wall clock. rand.New and rand.NewZipf take sources,
// not seeds — the constructor inside them is checked on its own.
func isSeedSink(fn *types.Func) bool {
	switch funcPkgPath(fn) {
	case randV1, randV2:
		switch fn.Name() {
		case "NewPCG", "NewChaCha8", "NewSource":
			return true
		}
	case "sgr/internal/sampling":
		return fn.Name() == "SubStream" || fn.Name() == "SubSeeds"
	}
	return false
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(file, "_test.go") {
			for _, imp := range f.Imports {
				if path, _ := strconv.Unquote(imp.Path.Value); path == randV1 {
					pass.Reportf(imp.Pos(),
						"legacy math/rand import in non-test code: use math/rand/v2 with an explicitly seeded rand.NewPCG (or sampling.SubStream)")
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if pkg := funcPkgPath(fn); (pkg == randV1 || pkg == randV2) && !isMethod(fn) && !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global implicitly seeded generator: construct an explicit stream with rand.New(rand.NewPCG(s1, s2)) or sampling.SubStream", fn.Name())
			}
			if isSeedSink(fn) {
				for _, arg := range call.Args {
					if tc := timeCallIn(pass.TypesInfo, arg); tc != nil {
						pass.Reportf(tc.Pos(),
							"time-derived RNG seed (argument of %s.%s): a wall-clock seed makes every run a different stream; thread an explicit seed instead", fn.Pkg().Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}

// timeCallIn returns a call into package time found anywhere inside e.
func timeCallIn(info *types.Info, e ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); funcPkgPath(fn) == "time" {
			found = call
			return false
		}
		return true
	})
	return found
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}
