package lint

import (
	"go/token"
	"path/filepath"
	"sort"
)

// Analyzers returns the full sgrlint suite in rendering order.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapRange, SeededRand, WallClock, FloatOrder, Direct}
}

// Finding is a rendered diagnostic: a resolved position plus the analyzer
// that produced it.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return f.Position.String() + ": " + f.Message + " [" + f.Analyzer + "]"
}

// directiveUse tracks whether a directive suppressed anything this run.
type directiveUse struct {
	d    Directive
	used bool
}

// Run executes analyzers over units, applies //sgr:nondet-ok suppression,
// and flags stale directives. With scoped=true each analyzer sees only the
// files the scope tables put on its path (the cmd/sgrlint configuration);
// unscoped runs see everything (the fixture-test configuration).
//
// Suppression contract: a well-formed directive at line L hides non-direct
// findings at L and L+1 in the same file; a directive that hides nothing
// is reported as stale. Malformed directives (no reason) hide nothing and
// are findings themselves — so the lint gate fails both when a fix is
// deleted and when a justification is.
func Run(units []*Unit, analyzers []*Analyzer, scoped bool) ([]Finding, error) {
	var (
		raw        []Finding
		directives = make(map[string][]*directiveUse) // file -> directives
		seenFile   = make(map[string]bool)
	)
	for _, u := range units {
		for i, f := range u.Files {
			name := u.Filenames[i]
			if seenFile[name] {
				continue
			}
			seenFile[name] = true
			valid, _ := parseDirectives(u.Fset, f)
			for _, d := range valid {
				directives[d.File] = append(directives[d.File], &directiveUse{d: d})
			}
		}
	}
	for _, u := range units {
		for _, a := range analyzers {
			files := u.Files
			if scoped {
				files = nil
				for i, f := range u.Files {
					if inScope(a.Name, u.PkgPath, filepath.Base(u.Filenames[i])) {
						files = append(files, f)
					}
				}
			}
			if len(files) == 0 {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     files,
				Pkg:       u.Pkg,
				TypesInfo: u.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				raw = append(raw, Finding{
					Position: u.Fset.Position(d.Pos),
					Analyzer: name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}

	var out []Finding
	for _, f := range raw {
		if f.Analyzer != Direct.Name {
			if d := suppressing(directives[f.Position.Filename], f.Position.Line); d != nil {
				d.used = true
				continue
			}
		}
		out = append(out, f)
	}
	for _, ds := range directives {
		for _, du := range ds {
			if !du.used {
				out = append(out, Finding{
					Position: token.Position{Filename: du.d.File, Line: du.d.Line, Column: 1},
					Analyzer: Direct.Name,
					Message:  "stale //sgr:nondet-ok (suppresses no finding): delete it, or it will justify the next regression instead of the code it was written for",
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return dedup(out), nil
}

// suppressing returns the directive covering a finding at line, if any: a
// directive suppresses its own line and the next (end-of-line and
// own-line-above placement).
func suppressing(ds []*directiveUse, line int) *directiveUse {
	for _, du := range ds {
		if du.d.Line == line || du.d.Line == line-1 {
			return du
		}
	}
	return nil
}

// dedup removes identical findings (a file shared by a package and its
// external-test unit would otherwise report twice).
func dedup(fs []Finding) []Finding {
	var out []Finding
	for i, f := range fs {
		if i > 0 && f == fs[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}
