// Fixture for the direct analyzer: //sgr:nondet-ok directives need a
// reason, unknown verbs are rejected, and a directive that suppresses
// nothing is stale. The wallclock analyzer runs alongside to provide
// findings for the suppression cases.
package direct

import "time"

// A justified directive suppressing a real finding: no diagnostics.
func suppressed() int64 {
	//sgr:nondet-ok boot jitter is intentional; value feeds a local log only
	return time.Now().UnixNano()
}

// End-of-line placement works too.
func suppressedInline() time.Time {
	return time.Now() //sgr:nondet-ok fixture demo of same-line suppression
}

// A directive without a reason is malformed — and it does NOT suppress,
// so the underlying finding surfaces as well.
func unjustified() time.Time {
	//sgr:nondet-ok
	// want "needs a reason"
	return time.Now() // want "time.Now in deterministic pipeline code"
}

// Unknown verbs are rejected.
func unknownVerb() int {
	//sgr:nondet-okay close but no
	// want "unknown //sgr: directive"
	return 7
}

// A directive with nothing to suppress is stale.
func stale() int {
	//sgr:nondet-ok this code was fixed long ago
	// want "stale //sgr:nondet-ok"
	return 1 + 2
}
