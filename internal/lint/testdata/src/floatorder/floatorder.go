// Fixture for the floatorder analyzer: no float accumulation on shared
// state from concurrently executed closures; the index-addressed slot
// pattern is the required shape.
package floatorder

import (
	"sync"

	"sgr/internal/parallel"
)

// Accumulating into a captured variable from goroutines: the scheduling
// order changes the sum bits, flagged.
func sharedGoroutine(xs []float64) float64 {
	var total float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += x // want "floating-point accumulation on shared variable total"
		}()
	}
	wg.Wait()
	return total
}

// The index-addressed slot pattern: each worker owns out[i], the caller
// reduces serially in index order. Exempt.
func slotPattern(xs []float64) float64 {
	out := make([]float64, len(xs))
	_ = parallel.ForEach(0, len(xs), func(i int) error {
		out[i] += xs[i] * 2
		return nil
	})
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}

// A constant index is one shared slot wearing the slot pattern's clothes:
// flagged.
func constantSlot(xs []float64) float64 {
	acc := make([]float64, 1)
	_ = parallel.ForEach(0, len(xs), func(i int) error {
		acc[0] += xs[i] // want "constant-indexed slot acc"
		return nil
	})
	return acc[0]
}

type stats struct{ mean float64 }

// Captured struct fields are shared state too: flagged.
func sharedField(xs []float64, s *stats) {
	_ = parallel.ForEach(0, len(xs), func(i int) error {
		s.mean -= xs[i] // want "floating-point accumulation on shared field s.mean"
		return nil
	})
}

// A serial closure (not launched by go, not handed to the pool) may
// accumulate freely: exempt.
func serialClosure(xs []float64) float64 {
	var total float64
	add := func(v float64) { total += v }
	for _, x := range xs {
		add(x)
	}
	return total
}

// Worker-local accumulation inside the closure is fine — it never crosses
// goroutines: exempt.
func workerLocal(xs []float64, out []float64) {
	parallel.Blocks(0, len(xs), func(lo, hi int) {
		partial := 0.0
		for i := lo; i < hi; i++ {
			partial += xs[i]
		}
		out[lo] = partial
	})
}

// The annotated escape hatch.
func annotated(xs []float64) float64 {
	var total float64
	var mu sync.Mutex
	_ = parallel.ForEach(0, len(xs), func(i int) error {
		mu.Lock()
		//sgr:nondet-ok fixture demo: result is fed to an order-insensitive consumer
		total += xs[i]
		mu.Unlock()
		return nil
	})
	return total
}
