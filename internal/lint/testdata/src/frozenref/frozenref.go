// Fixture distilled from the frozen reference engines
// (internal/dkseries/rewire_mapref_test.go, internal/props/csrdiff_test.go):
// the map-iteration shapes those differential guards rely on, which the
// maprange analyzer must recognize as order-insensitive rather than
// false-positive on. The whole suite runs over this package expecting
// zero findings.
package frozenref

import "sort"

// The csrdiff_test.go shape: per-degree sums and counts accumulated into
// maps (integer counts commute; float slots are keyed by the loop
// variable of a slice loop, not a map loop), then a map-to-map division
// keyed by the range key — each key visited exactly once, so iteration
// order cannot matter.
func refDegreeAverage(degree []int, avg []float64) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := range degree {
		k := degree[u]
		cnt[k]++
		if k > 0 {
			sum[k] += avg[u]
		}
	}
	out := make(map[int]float64, len(cnt))
	for k, c := range cnt {
		out[k] = sum[k] / float64(c)
	}
	return out
}

// The nested shape of refEdgewiseSharedPartners: a map range whose body
// only declares per-iteration state, accumulates integers (commutative),
// and guards with continue — then a keyed map-to-map normalization.
func refSharedPartners(mm map[int]int, mult func(int, int) int, u int) map[int]float64 {
	counts := make(map[int]int)
	total := 0
	for v, cuv := range mm {
		if v <= u {
			continue
		}
		sp := 0
		for w, cuw := range mm {
			if w == u || w == v {
				continue
			}
			if cb := mult(v, w); cb > 0 {
				sp += cuw * cb
			}
		}
		counts[sp] += cuv
		total += cuv
	}
	out := make(map[int]float64)
	if total == 0 {
		return out
	}
	for s, c := range counts {
		out[s] = float64(c) / float64(total)
	}
	return out
}

// The rewire_mapref_test.go settle shape after PR 2's determinism fix:
// map keys are collected and sorted before any float accumulation, so the
// accumulation order is a function of the keys alone.
func refSettle(adj map[int]int, weight func(int) float64) float64 {
	keys := make([]int, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	normC := 0.0
	for _, k := range keys {
		normC += weight(k) * float64(adj[k])
	}
	return normC
}

// The kmax scan both engines open with: a running max over target
// degrees, a commutative fold.
func refKMax(target map[int]float64, deg []int) int {
	kmax := 0
	for _, d := range deg {
		if d > kmax {
			kmax = d
		}
	}
	for k := range target {
		if k > kmax {
			kmax = k
		}
	}
	return kmax
}

// Membership probing with literal results is order-free.
func refHasPositive(adj map[int]int) bool {
	for _, c := range adj {
		if c > 0 {
			return true
		}
	}
	return false
}
