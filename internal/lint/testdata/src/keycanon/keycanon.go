// Fixture distilled from restored/key.go's content-address canonicalization:
// the shape of code that turns a submission into cache-key bytes. The
// wallclock analyzer is applied here exactly as the scope table applies it
// to key.go — proving that a time.Now() smuggled into canonicalization is
// flagged (the tree goes red), even though the obs package next door reads
// clocks freely. Timing belongs in span capture, never in key bytes.
package keycanon

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// spec is a stand-in for the resolved job submission.
type spec struct {
	method string
	rc     float64
	seed   uint64
	canon  []byte
}

// keyOf is the clean shape: the content address is a function of the
// canonical submission bytes alone. No findings.
func keyOf(ps spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "method=%s\nrc=%v\nseed=%d\n", ps.method, ps.rc, ps.seed)
	h.Write(ps.canon)
	return hex.EncodeToString(h.Sum(nil))
}

// keyOfStamped smuggles a wall-clock read into the canonicalization — the
// one bug the whole observability layer is built to make impossible: every
// resubmission would re-key, the cache would never hit, and byte-identity
// across daemons would silently break. Flagged.
func keyOfStamped(ps spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "method=%s\nrc=%v\nseed=%d\n", ps.method, ps.rc, ps.seed)
	fmt.Fprintf(h, "at=%d\n", time.Now().UnixNano()) // want "time.Now in deterministic pipeline code"
	h.Write(ps.canon)
	return hex.EncodeToString(h.Sum(nil))
}

// keyAge times how stale a cached key is — also a clock read on the key
// path, also flagged: measurement belongs to the obs layer outside this
// scope, not to code holding key material.
func keyAge(computedAt time.Time) time.Duration {
	return time.Since(computedAt) // want "time.Since in deterministic pipeline code"
}
