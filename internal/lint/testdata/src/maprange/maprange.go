// Fixture for the maprange analyzer: map iteration is flagged unless the
// body is order-insensitive or feeds the collect-then-sort idiom.
package maprange

import (
	"sort"
	"testing"
)

// Order leaks straight into a slice: flagged.
func collectValues(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m { // want "range over map m"
		out = append(out, v)
	}
	return out
}

// Float accumulation order changes the sum bits: flagged.
func sumValues(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want "range over map m"
		s += v
	}
	return s
}

// Last-writer-wins on shared state observes order: flagged.
func lastValue(m map[int]string) string {
	last := ""
	for _, v := range m { // want "range over map m"
		last = v
	}
	return last
}

// First key returned depends on order: flagged.
func anyKey(m map[int]int) int {
	for k := range m { // want "range over map m"
		return k
	}
	return -1
}

// The canonical collect-then-sort idiom: exempt.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Collect-then-sort through slices.Sort-style helpers also counts.
func sortedValues(m map[int]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return vals
}

// Collected but never sorted: the order leaks, flagged.
func unsortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m { // want "range over map m"
		keys = append(keys, k)
	}
	return keys
}

// Order-insensitive body: writes keyed by the range key (disjoint slots)
// and integer accumulation (commutative): exempt.
func histogram(m map[int]int) (map[int]int, int) {
	out := make(map[int]int, len(m))
	total := 0
	for k, v := range m {
		out[k] = v * 2
		total += v
	}
	return out, total
}

// Nested map ranges judged independently: the inner loop writes slots
// keyed by its own key (exempt), but across outer iterations the same k2
// can be rewritten in either order, so the outer loop is flagged.
func nestedLeak(m map[int]map[int]int, out map[int]int) {
	for _, inner := range m { // want "range over map m"
		for k2, v2 := range inner {
			out[k2] = v2
		}
	}
}

// Effect-free membership scan returning literals: exempt even though it
// exits early.
func containsValue(m map[string]bool, needle string) bool {
	for k := range m {
		if k == needle {
			return true
		}
	}
	return false
}

// Early exit combined with accumulation: how much accumulates before the
// break depends on visit order, flagged.
func sumSome(m map[int]int) int {
	n := 0
	for _, v := range m { // want "range over map m"
		n += v
		if n > 100 {
			break
		}
	}
	return n
}

// delete is commutative across a full sweep: exempt.
func prune(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// A justified suppression is honored (and not stale).
func suppressedCollect(m map[int]string) []string {
	var out []string
	//sgr:nondet-ok demo fixture: consumer deduplicates, order immaterial
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Local per-iteration state never leaks order: exempt.
func localOnly(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		n := 0
		for _, v := range vs {
			n += v
		}
		total += n
	}
	return total
}

// A running max is a commutative fold: exempt.
func maxKey(m map[int]int) int {
	best := -1
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}

// Filter conjuncts that don't read the accumulator keep the fold
// commutative: exempt.
func maxPositive(m map[int]float64) int {
	best := 0
	for k, p := range m {
		if p > 0 && k > best {
			best = k
		}
	}
	return best
}

// Not a min/max fold — the guard compares against an offset of the
// accumulator, so the result depends on visit order: flagged.
func almostMax(m map[int]int) int {
	best := 0
	for k := range m { // want "range over map m"
		if k > best-10 {
			best = k
		}
	}
	return best
}

// Collect-then-sort with an if whose init only defines if-local state:
// still the canonical idiom, exempt.
func sortedNewKeys(m map[int]int, seen map[int]bool) []int {
	var keys []int
	for k := range m {
		if _, ok := seen[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	return keys
}

// Per-key assertions: the pass/fail outcome is the same whichever key
// reports first, so testing.TB calls are order-insensitive effects.
func assertLoop(t *testing.T, got, want map[string]int) {
	for k, w := range want {
		if got[k] != w {
			t.Errorf("key %s: got %d, want %d", k, got[k], w)
		}
	}
}

// Table-driven subtests from a map: subtests are independently named.
func tableLoop(t *testing.T, cases map[string]int) {
	for name, n := range cases {
		t.Run(name, func(t *testing.T) {
			if n < 0 {
				t.Fatal("negative")
			}
		})
	}
}

// But an early exit still decides WHICH assertions fire: flagged.
func assertUntilBad(t *testing.T, got map[string]int) {
	for k, v := range got { // want "range over map got"
		if v < 0 {
			break
		}
		t.Logf("ok: %s", k)
	}
}

// Ranging a slice is always fine.
func sliceRange(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
