package seededrand

import mrand "math/rand" // want "legacy math/rand import in non-test code"

// Even a seeded legacy source is flagged at the import in non-test code:
// new code takes math/rand/v2. (Seeded legacy use stays allowed in _test.go
// files, where frozen reference engines depend on the v1 stream.)
func legacySeeded() int {
	r := mrand.New(mrand.NewSource(42))
	return r.Intn(10)
}

// The legacy global source is doubly wrong: flagged as a global draw too.
func legacyGlobal() int {
	return mrand.Intn(10) // want "rand.Intn draws from the process-global"
}
