// Fixture for the seededrand analyzer: randomness must come from
// explicitly seeded streams, never the global generator or the clock.
package seededrand

import (
	"math/rand/v2"
	"time"

	"sgr/internal/sampling"
)

// Global convenience functions draw from the implicitly seeded process
// generator: flagged.
func globalDraws(xs []int) int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the process-global"
	return rand.IntN(10)                                                  // want "rand.IntN draws from the process-global"
}

// Explicitly seeded PCG stream: the required shape, exempt.
func seeded(seed uint64) float64 {
	r := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	return r.Float64()
}

// Sub-stream derivation is the other blessed constructor: exempt.
func derived(seed1, seed2, idx uint64) int {
	return sampling.SubStream(seed1, seed2, idx).IntN(100)
}

// A wall-clock seed makes every run a different stream: flagged.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 0)) // want "time-derived RNG seed"
}

// Clock smuggled into a sub-stream index: flagged.
func timeDerivedSubStream(seed uint64) *rand.Rand {
	return sampling.SubStream(seed, uint64(time.Now().Unix()), 0) // want "time-derived RNG seed"
}

// Methods on an explicit *rand.Rand are always fine — the construction
// site is where the contract was checked.
func methods(r *rand.Rand) (int, float64) {
	return r.IntN(7), r.NormFloat64()
}
