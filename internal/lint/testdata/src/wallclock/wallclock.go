// Fixture for the wallclock analyzer: pipeline code may not read the
// clock — its output must be a function of the seed alone.
package wallclock

import "time"

// Reading and differencing the clock in pipeline code: flagged.
func timedWork(x int) (int, time.Duration) {
	start := time.Now() // want "time.Now in deterministic pipeline code"
	y := x * 2
	return y, time.Since(start) // want "time.Since in deterministic pipeline code"
}

func deadlineWait(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until in deterministic pipeline code"
}

// Pure time arithmetic — conversions, constants, methods on values the
// caller supplied — never reads the clock: exempt.
func pureTimeMath(d time.Duration, t time.Time) (time.Duration, bool) {
	return d + 5*time.Second + time.Duration(3), t.After(t.Add(d))
}

// Timing that demonstrably never reaches output bytes rides on a
// justified directive.
func annotatedTiming() int64 {
	//sgr:nondet-ok duration lands in a local audit log, never in output bytes
	return time.Now().UnixNano()
}
