package lint

import "go/ast"

// WallClock flags wall-clock readings — time.Now, time.Since, time.Until —
// in code whose output must be a pure function of the seed: the pipeline
// phases, their storage engines, and the content-address computation. A
// clock reading there either leaks into output bytes (breaking
// byte-identity) or into a cache key (silently re-keying every stored
// result). Timing for metrics belongs in the daemons and the harness,
// which the scope tables leave out; a reading that genuinely only feeds a
// duration report carries a //sgr:nondet-ok saying so.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flag time.Now/Since/Until in deterministic pipeline code whose " +
		"output must be a function of the seed alone",
	Run: runWallClock,
}

var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallClock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if funcPkgPath(fn) == "time" && !isMethod(fn) && wallClockFuncs[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s in deterministic pipeline code: output must be a function of the seed alone; move timing to the caller or justify with //sgr:nondet-ok", fn.Name())
			}
			return true
		})
	}
	return nil
}
