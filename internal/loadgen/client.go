package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sgr/internal/obs"
	"sgr/internal/oracle"
	"sgr/internal/restored"
)

// endpointStats is the client-side record for one endpoint key: a latency
// histogram plus outcome counters. Every issued request lands in exactly
// one of ok / rateLimited / errors (timeouts double-count into errors —
// a timeout IS a failed request — with the timeout counter as the
// diagnosis).
type endpointStats struct {
	requests    atomic.Int64
	ok          atomic.Int64
	errors      atomic.Int64
	rateLimited atomic.Int64
	timeouts    atomic.Int64
	hist        *obs.Histogram // whole-request latency, microseconds
}

// runner executes one load run.
type runner struct {
	cfg   Config
	httpc *http.Client

	stats    map[string]*endpointStats
	statKeys []string // sorted endpoint keys active in this run

	// Cross-check accumulators (see correlate): how many server-side
	// queries / job submissions the client's own 2xx answers imply.
	graphdExpected atomic.Int64
	submitsOK      atomic.Int64

	// Job lifecycle outcomes.
	jobsDone       atomic.Int64
	jobsFailed     atomic.Int64
	jobsUnfinished atomic.Int64
	cancelsDone    atomic.Int64 // DELETE answered 200 (cancellation delivered)
	cancelsTooLate atomic.Int64 // DELETE answered 409 (job already terminal)

	// Interval rows collected by the sampler goroutine.
	intervalMu sync.Mutex
	intervals  []IntervalRow
}

// resolveMeta fills cfg.Nodes from graphd's /v1/meta and clamps BatchSize
// to the server's advertised batch limit.
func (r *runner) resolveMeta() error {
	if r.cfg.GraphdURL == "" {
		return nil
	}
	r.cfg.GraphdURL = strings.TrimRight(r.cfg.GraphdURL, "/")
	resp, err := r.httpc.Get(r.cfg.GraphdURL + "/v1/meta")
	if err != nil {
		return fmt.Errorf("loadgen: fetching graphd meta: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: graphd meta: HTTP %d", resp.StatusCode)
	}
	var meta oracle.Meta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return fmt.Errorf("loadgen: decoding graphd meta: %w", err)
	}
	if r.cfg.Nodes <= 0 {
		r.cfg.Nodes = meta.Nodes
	}
	if r.cfg.Mix[OpBatch] > 0 {
		if meta.MaxBatch <= 0 {
			return errors.New("loadgen: mix has batch ops but graphd advertises no batch endpoint")
		}
		if r.cfg.BatchSize > meta.MaxBatch {
			r.cfg.BatchSize = meta.MaxBatch
		}
	}
	return nil
}

// endpointsFor lists the endpoint keys a mix can touch.
func endpointsFor(mix map[string]int) []string {
	var keys []string
	if mix[OpNeighbors] > 0 {
		keys = append(keys, EPNeighbors)
	}
	if mix[OpBatch] > 0 {
		keys = append(keys, EPBatch)
	}
	if mix[OpJob] > 0 || mix[OpResubmit] > 0 || mix[OpCancel] > 0 {
		keys = append(keys, EPSubmit, EPPoll, EPDownload)
	}
	if mix[OpResubmit] > 0 {
		keys = append(keys, EPResubmit)
	}
	if mix[OpCancel] > 0 {
		keys = append(keys, EPCancel)
	}
	sort.Strings(keys)
	return keys
}

// run fires the schedule and assembles the report.
func (r *runner) run(sched *Schedule) (*Report, error) {
	r.stats = make(map[string]*endpointStats)
	r.statKeys = endpointsFor(r.cfg.Mix)
	for _, key := range r.statKeys {
		r.stats[key] = &endpointStats{hist: obs.NewHistogram()}
	}
	if r.cfg.RestoredURL != "" {
		r.cfg.RestoredURL = strings.TrimRight(r.cfg.RestoredURL, "/")
	}

	startScrapes := r.scrapeAll()

	start := time.Now()
	samplerDone := make(chan struct{})
	go r.sampleIntervals(start, samplerDone)

	// Open-loop dispatcher: walk the merged schedule, sleep until each
	// event's planned offset, and fire it in its own goroutine — arrivals
	// never wait for completions.
	var wg sync.WaitGroup
	for i := range sched.Events {
		ev := &sched.Events[i]
		if d := time.Until(start.Add(time.Duration(ev.AtUS) * time.Microsecond)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.fire(ev)
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(samplerDone)

	endScrapes := r.scrapeAll()
	return r.buildReport(sched, wall, startScrapes, endScrapes), nil
}

// fire executes one scheduled event.
func (r *runner) fire(ev *Event) {
	switch ev.Op {
	case OpNeighbors:
		r.fireNeighbors(ev)
	case OpBatch:
		r.fireBatch(ev)
	case OpJob:
		r.fireJob(ev, EPSubmit, true)
	case OpResubmit:
		r.fireJob(ev, EPResubmit, false)
	case OpCancel:
		r.fireCancel(ev)
	}
}

// timedRequest issues one HTTP request, observing its whole wall-clock
// cost on the endpoint's histogram and classifying transport failures.
// A nil error with status 0 never happens: callers classify by status.
func (r *runner) timedRequest(ep, method, url string, body []byte) (int, []byte, error) {
	st := r.stats[ep]
	st.requests.Add(1)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		st.errors.Add(1)
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now()
	resp, err := r.httpc.Do(req)
	if err != nil {
		st.hist.Observe(time.Since(t0).Microseconds())
		if isTimeout(err) {
			st.timeouts.Add(1)
		}
		st.errors.Add(1)
		return 0, nil, err
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	resp.Body.Close()
	st.hist.Observe(time.Since(t0).Microseconds())
	if err != nil {
		if isTimeout(err) {
			st.timeouts.Add(1)
		}
		st.errors.Add(1)
		return 0, nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		st.rateLimited.Add(1)
	}
	return resp.StatusCode, respBody, nil
}

func isTimeout(err error) bool {
	var ne net.Error
	return (errors.As(err, &ne) && ne.Timeout()) || errors.Is(err, context.DeadlineExceeded)
}

// outcome bookkeeping shared by the fire functions: 2xx is ok, 429 was
// already counted rate-limited by timedRequest, anything else is an error.
func (r *runner) settle(ep string, status int) bool {
	st := r.stats[ep]
	switch {
	case status >= 200 && status < 300:
		st.ok.Add(1)
		return true
	case status == http.StatusTooManyRequests:
		return false
	default:
		st.errors.Add(1)
		return false
	}
}

func (r *runner) fireNeighbors(ev *Event) {
	url := fmt.Sprintf("%s/v1/nodes/%d/neighbors", r.cfg.GraphdURL, ev.Nodes[0])
	status, _, err := r.timedRequest(EPNeighbors, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	if r.settle(EPNeighbors, status) {
		// One 200 page = one served query in graphd_queries_served.
		r.graphdExpected.Add(1)
	}
}

func (r *runner) fireBatch(ev *Event) {
	var sb strings.Builder
	sb.WriteString(r.cfg.GraphdURL)
	sb.WriteString("/v1/neighbors?ids=")
	for i, u := range ev.Nodes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(u))
	}
	status, body, err := r.timedRequest(EPBatch, http.MethodGet, sb.String(), nil)
	if err != nil || !r.settle(EPBatch, status) {
		return
	}
	// The server charges one served query per non-error item; count what
	// it actually answered so the cross-check survives private/unknown
	// nodes in the target range.
	var resp oracle.BatchNeighborsResponse
	if json.Unmarshal(body, &resp) != nil {
		return
	}
	served := int64(0)
	for i := range resp.Results {
		if resp.Results[i].Error == "" {
			served++
		}
	}
	r.graphdExpected.Add(served)
}

// jobSpecBody renders the submit body for a job seed. The spec shape is
// identical for every event with the same seed, so resubmissions hit the
// same content address.
func (r *runner) jobSpecBody(seed uint64) []byte {
	body, err := json.Marshal(&restored.JobSpec{Seed: seed, RC: r.cfg.RC, Crawl: r.cfg.CrawlJSON})
	if err != nil {
		// CrawlJSON was validated as JSON by the first successful submit;
		// a marshal failure here is a programming error.
		panic(fmt.Sprintf("loadgen: marshaling job spec: %v", err))
	}
	return body
}

// submit POSTs a job spec under the given endpoint key and returns the
// decoded status when the submission was accepted.
func (r *runner) submit(ep string, seed uint64) (*restored.JobStatus, bool) {
	status, body, err := r.timedRequest(ep, http.MethodPost, r.cfg.RestoredURL+"/v1/jobs", r.jobSpecBody(seed))
	if err != nil || !r.settle(ep, status) {
		return nil, false
	}
	var st restored.JobStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		r.stats[ep].errors.Add(1)
		return nil, false
	}
	// Every 2xx POST /v1/jobs either accepted a new job or deduped onto an
	// existing one — the restored-side cross-check counts both.
	r.submitsOK.Add(1)
	return &st, true
}

// fireJob runs a submit → poll → download lifecycle. download=false stops
// after the submit (OpResubmit measures the cache-hit answer itself).
func (r *runner) fireJob(ev *Event, submitEP string, download bool) {
	st, ok := r.submit(submitEP, ev.JobSeed)
	if !ok {
		return
	}
	if !download {
		return
	}
	state := st.State
	for polls := 0; state != restored.StateDone; polls++ {
		switch state {
		case restored.StateFailed, restored.StateCancelled:
			r.jobsFailed.Add(1)
			return
		}
		if polls >= r.cfg.MaxPolls {
			r.jobsUnfinished.Add(1)
			return
		}
		time.Sleep(r.cfg.PollInterval)
		status, body, err := r.timedRequest(EPPoll, http.MethodGet, r.cfg.RestoredURL+"/v1/jobs/"+st.ID, nil)
		if err != nil || !r.settle(EPPoll, status) {
			r.jobsUnfinished.Add(1)
			return
		}
		var js restored.JobStatus
		if err := json.Unmarshal(body, &js); err != nil {
			r.stats[EPPoll].errors.Add(1)
			r.jobsUnfinished.Add(1)
			return
		}
		state = js.State
	}
	status, _, err := r.timedRequest(EPDownload, http.MethodGet, r.cfg.RestoredURL+"/v1/jobs/"+st.ID+"/graph", nil)
	if err == nil && r.settle(EPDownload, status) {
		r.jobsDone.Add(1)
	}
}

// fireCancel submits a fresh job and immediately DELETEs it. 200 means the
// cancellation was delivered; 409 means the job already reached a terminal
// state — expected when the pipeline outruns the DELETE, and not an error.
func (r *runner) fireCancel(ev *Event) {
	st, ok := r.submit(EPSubmit, ev.JobSeed)
	if !ok {
		return
	}
	status, _, err := r.timedRequest(EPCancel, http.MethodDelete, r.cfg.RestoredURL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		return
	}
	ep := r.stats[EPCancel]
	switch status {
	case http.StatusOK:
		ep.ok.Add(1)
		r.cancelsDone.Add(1)
	case http.StatusConflict:
		ep.ok.Add(1)
		r.cancelsTooLate.Add(1)
	default:
		r.settle(EPCancel, status)
	}
}

// sampleIntervals snapshots every endpoint histogram each cfg.Interval and
// records the delta as one row — per-interval throughput and quantiles
// without racing the live histograms (snapshots are detached copies).
func (r *runner) sampleIntervals(start time.Time, done <-chan struct{}) {
	prev := make(map[string]obs.HistogramSnapshot, len(r.statKeys))
	for _, key := range r.statKeys {
		prev[key] = obs.HistogramSnapshot{}
	}
	lastMS := 0.0
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	flush := func() {
		nowMS := float64(time.Since(start).Microseconds()) / 1e3
		secs := (nowMS - lastMS) / 1e3
		if secs <= 0 {
			return
		}
		row := IntervalRow{StartMS: lastMS, EndMS: nowMS, Endpoints: make(map[string]IntervalEndpoint)}
		for _, key := range r.statKeys {
			cur := r.stats[key].hist.Snapshot()
			d := cur.Delta(prev[key])
			prev[key] = cur
			if d.Count == 0 {
				continue
			}
			row.Endpoints[key] = IntervalEndpoint{
				Requests: d.Count,
				P50USec:  d.Quantile(0.50),
				P99USec:  d.Quantile(0.99),
				RPS:      float64(d.Count) / secs,
			}
		}
		if len(row.Endpoints) == 0 {
			return
		}
		r.intervalMu.Lock()
		r.intervals = append(r.intervals, row)
		r.intervalMu.Unlock()
		lastMS = nowMS
	}
	for {
		select {
		case <-ticker.C:
			flush()
		case <-done:
			flush()
			return
		}
	}
}
