// Package loadgen is the workload-observability side of the serving
// stack: an open-loop load generator that drives a configurable mix of
// traffic — neighbor queries and batched prefetch against graphd; job
// submit/poll/download lifecycles, cache-hit resubmits, and cancellations
// against restored — from N concurrent virtual clients, then judges the
// run against a declared SLO.
//
// The request schedule is deterministic at a fixed seed: every virtual
// client draws its exponential inter-arrival gaps, operation choices, and
// target nodes/job seeds from its own PCG sub-stream
// (sampling.SubStream), so two runs with the same seed and config issue
// exactly the same requests in the same planned order — the schedule's
// SHA-256 in the report pins it. Only wall-clock timings (latencies, how
// far execution slips behind the plan) differ between runs; that is the
// point: the workload is a reproducible experiment, the measurements are
// the observation.
//
// Open-loop means arrivals never wait for completions — each scheduled
// event fires in its own goroutine at its planned offset, the way real
// traffic keeps arriving whether or not the server is keeping up — so
// latency degradation under overload is visible instead of being absorbed
// by a closed feedback loop (the coordinated-omission trap).
//
// Measurement is three-sided and correlated in one report:
//
//   - client-side: per-endpoint obs.Histograms (p50/p99/p999), error /
//     429 / timeout counts, throughput, and per-interval rates from
//     histogram snapshot deltas;
//   - server-side: the daemons' own /v1/metrics scrapes, parsed with
//     obs.ParseExposition, reported as counter deltas and run-window
//     histogram quantiles;
//   - cross-checks: client-observed successes against server counter
//     deltas (e.g. every 200 neighbor page the clients counted must
//     appear in graphd_queries_served), so a broken metric on either
//     side fails the run instead of shipping a wrong baseline.
//
// An SLOSpec (JSON: per-endpoint quantile ceilings, error-rate caps,
// throughput floors) evaluates the report to pass/fail with headroom and
// burn per check; `make bench-load-json` records the whole report as
// BENCH_load.json, the traffic-trajectory counterpart to the committed
// micro-benchmark baselines.
package loadgen

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// Workload operations, the units of the schedule mix. Each op expands to
// one or more HTTP requests recorded under per-endpoint keys (an OpJob is
// a submit, a poll loop, and a download).
const (
	// OpNeighbors is one GET /v1/nodes/{id}/neighbors page from graphd.
	OpNeighbors = "neighbors"
	// OpBatch is one batched GET /v1/neighbors?ids=... from graphd.
	OpBatch = "batch"
	// OpJob is a full restored job lifecycle: submit a fresh seeded job,
	// poll it to a terminal state, download the restored graph.
	OpJob = "job"
	// OpResubmit re-submits a job spec this client already submitted —
	// the content-addressed cache-hit / singleflight-dedup path.
	OpResubmit = "resubmit"
	// OpCancel submits a fresh job and immediately DELETEs it.
	OpCancel = "cancel"
)

// ops is the fixed op universe in canonical order (mix maps are walked in
// this order so weighted draws never depend on map iteration).
var ops = []string{OpNeighbors, OpBatch, OpJob, OpResubmit, OpCancel}

// Per-endpoint stat keys: the granularity of histograms, SLO checks, and
// report sections.
const (
	EPNeighbors = "graphd_neighbors"
	EPBatch     = "graphd_batch"
	EPSubmit    = "restored_submit"
	EPPoll      = "restored_poll"
	EPDownload  = "restored_download"
	EPResubmit  = "restored_resubmit"
	EPCancel    = "restored_cancel"
)

// Config parameterizes a load run.
type Config struct {
	// GraphdURL / RestoredURL are the daemons under load. At least one is
	// required; graphd ops in the mix require GraphdURL, restored ops
	// RestoredURL.
	GraphdURL   string
	RestoredURL string

	// Seed pins the request schedule: inter-arrival gaps, op choices,
	// target nodes, and job seeds all derive from per-client PCG
	// sub-streams of it.
	Seed uint64
	// Clients is the number of concurrent virtual clients (default 32).
	Clients int
	// Rate is the aggregate target arrival rate in ops/s, split evenly
	// across clients (default 150).
	Rate float64
	// Duration is the arrival window (default 5s). Jobs submitted near
	// the end may finish after it; the run waits for them.
	Duration time.Duration
	// Mix maps op names (OpNeighbors, ...) to integer weights. Defaults
	// depend on which URLs are configured.
	Mix map[string]int

	// Nodes is the served graph's node count, the target-id domain. 0
	// fetches it from GraphdURL's /v1/meta before scheduling.
	Nodes int
	// BatchSize is the ids per OpBatch request (default 8, clamped to the
	// server's advertised max_batch).
	BatchSize int

	// CrawlJSON is the inline crawl submitted with restored jobs
	// (sampling.WriteJSON format); required when the mix has restored ops.
	CrawlJSON []byte
	// RC is the rewiring-attempt coefficient on submitted jobs (default 5
	// — the paper default 500 makes every job a multi-second pipeline run,
	// which is a soak test, not a traffic baseline).
	RC float64

	// RequestTimeout caps each HTTP request (default 10s); timeouts count
	// against the endpoint's error budget.
	RequestTimeout time.Duration
	// Interval is the client-side snapshot period for per-interval rates
	// (default 1s).
	Interval time.Duration
	// PollInterval / MaxPolls pace the job status poll loop (defaults
	// 25ms, 400): a job not terminal after MaxPolls counts as unfinished.
	PollInterval time.Duration
	MaxPolls     int

	// SLO, when set, is evaluated against the finished report.
	SLO *SLOSpec

	// Logf reports run progress (log.Printf-shaped; nil is silent).
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.Clients <= 0 {
		cfg.Clients = 32
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 150
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.RC == 0 {
		cfg.RC = 5
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.MaxPolls <= 0 {
		cfg.MaxPolls = 400
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultMix(cfg.GraphdURL != "", cfg.RestoredURL != "")
	}
	return cfg
}

// DefaultMix returns the default op weights for the configured targets:
// read-heavy graphd traffic with a steady trickle of restoration jobs,
// cache hits, and cancellations.
func DefaultMix(graphd, restored bool) map[string]int {
	m := make(map[string]int)
	if graphd {
		m[OpNeighbors] = 12
		m[OpBatch] = 3
	}
	if restored {
		m[OpJob] = 2
		m[OpResubmit] = 2
		m[OpCancel] = 1
	}
	return m
}

// graphdOps / restoredOps classify ops by target daemon.
var graphdOps = map[string]bool{OpNeighbors: true, OpBatch: true}
var restoredOps = map[string]bool{OpJob: true, OpResubmit: true, OpCancel: true}

// validate checks the mix against the configured targets.
func (cfg Config) validate() error {
	if cfg.GraphdURL == "" && cfg.RestoredURL == "" {
		return errors.New("loadgen: at least one of GraphdURL and RestoredURL is required")
	}
	total := 0
	for _, op := range ops {
		w := cfg.Mix[op]
		if w < 0 {
			return fmt.Errorf("loadgen: negative weight %d for op %q", w, op)
		}
		total += w
		if w > 0 && graphdOps[op] && cfg.GraphdURL == "" {
			return fmt.Errorf("loadgen: op %q requires GraphdURL", op)
		}
		if w > 0 && restoredOps[op] && cfg.RestoredURL == "" {
			return fmt.Errorf("loadgen: op %q requires RestoredURL", op)
		}
		if w > 0 && restoredOps[op] && len(cfg.CrawlJSON) == 0 {
			return fmt.Errorf("loadgen: op %q requires CrawlJSON", op)
		}
	}
	if total <= 0 {
		return errors.New("loadgen: mix has no positive weights")
	}
	extra := make([]string, 0, len(cfg.Mix))
	for op := range cfg.Mix {
		if !graphdOps[op] && !restoredOps[op] {
			extra = append(extra, op)
		}
	}
	if len(extra) > 0 {
		sort.Strings(extra)
		return fmt.Errorf("loadgen: unknown op(s) in mix: %v", extra)
	}
	return nil
}

// Run executes a load run: resolve the target graph size, generate the
// seeded schedule, scrape both daemons, fire the swarm, scrape again, and
// assemble the correlated report (evaluating cfg.SLO when present).
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, httpc: &http.Client{Timeout: cfg.RequestTimeout}}
	if err := r.resolveMeta(); err != nil {
		return nil, err
	}
	sched, err := GenSchedule(r.cfg)
	if err != nil {
		return nil, err
	}
	r.cfg.Logf("schedule: %d events over %v (%s)", len(sched.Events), r.cfg.Duration, sched.Hash[:12])
	return r.run(sched)
}
