package loadgen

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"sgr/internal/gen"
	"sgr/internal/oracle"
	"sgr/internal/restored"
	"sgr/internal/sampling"
)

// TestScheduleDeterministic is the acceptance check for the seeded
// schedule: the same (seed, config) materializes byte-identical event
// sequences — equal hashes, equal events — while a different seed
// diverges.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{
		GraphdURL:   "http://graphd",
		RestoredURL: "http://restored",
		Seed:        42,
		Clients:     8,
		Rate:        400,
		Duration:    2 * time.Second,
		Nodes:       500,
		CrawlJSON:   []byte(`{}`),
	}
	a, err := GenSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Fatalf("same seed, different hashes: %s vs %s", a.Hash, b.Hash)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed, different event sequences")
	}
	if !reflect.DeepEqual(a.PerOp, b.PerOp) {
		t.Fatalf("same seed, different mixes: %v vs %v", a.PerOp, b.PerOp)
	}
	if len(a.Events) == 0 {
		t.Fatal("schedule is empty")
	}

	cfg.Seed = 43
	c, err := GenSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash == a.Hash {
		t.Fatal("different seeds produced the same schedule hash")
	}
}

// TestScheduleShape pins structural invariants: merged planned order,
// every mix op represented at default weights, op payloads populated, and
// resubmit events reusing a seed the same client already submitted.
func TestScheduleShape(t *testing.T) {
	cfg := Config{
		GraphdURL:   "http://graphd",
		RestoredURL: "http://restored",
		Seed:        7,
		Clients:     4,
		Rate:        600,
		Duration:    3 * time.Second,
		Nodes:       100,
		BatchSize:   5,
		CrawlJSON:   []byte(`{}`),
	}
	s, err := GenSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if s.PerOp[op] == 0 {
			t.Errorf("op %q never scheduled at default mix over %d events", op, len(s.Events))
		}
	}
	prior := make(map[int]map[uint64]bool) // client -> seeds of its prior OpJob events
	for i := range s.Events {
		ev := &s.Events[i]
		if i > 0 {
			p := &s.Events[i-1]
			if p.AtUS > ev.AtUS || (p.AtUS == ev.AtUS && p.Client > ev.Client) {
				t.Fatalf("events out of planned order at %d", i)
			}
		}
		switch ev.Op {
		case OpNeighbors:
			if len(ev.Nodes) != 1 || ev.Nodes[0] < 0 || ev.Nodes[0] >= cfg.Nodes {
				t.Fatalf("bad neighbors target %v", ev.Nodes)
			}
		case OpBatch:
			if len(ev.Nodes) != cfg.BatchSize {
				t.Fatalf("batch event has %d ids, want %d", len(ev.Nodes), cfg.BatchSize)
			}
		case OpJob:
			if prior[ev.Client] == nil {
				prior[ev.Client] = make(map[uint64]bool)
			}
			prior[ev.Client][ev.JobSeed] = true
		case OpResubmit:
			if !prior[ev.Client][ev.JobSeed] {
				t.Fatalf("resubmit event %d/%d reuses seed %d the client never submitted", ev.Client, ev.Seq, ev.JobSeed)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no targets", Config{}},
		{"graphd op without graphd", Config{RestoredURL: "http://r", Mix: map[string]int{OpNeighbors: 1}, CrawlJSON: []byte(`{}`)}},
		{"restored op without restored", Config{GraphdURL: "http://g", Mix: map[string]int{OpJob: 1}}},
		{"restored op without crawl", Config{RestoredURL: "http://r", Mix: map[string]int{OpJob: 1}}},
		{"unknown op", Config{GraphdURL: "http://g", Mix: map[string]int{"frobnicate": 1, OpNeighbors: 1}}},
		{"negative weight", Config{GraphdURL: "http://g", Mix: map[string]int{OpNeighbors: -1}}},
		{"graphd ops without nodes", Config{GraphdURL: "http://g", Mix: map[string]int{OpNeighbors: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := GenSchedule(tc.cfg); err == nil {
				t.Fatal("invalid config generated a schedule")
			}
		})
	}
}

func TestParseSLO(t *testing.T) {
	spec, err := ParseSLO([]byte(`{
		"max_error_rate": 0.01,
		"endpoints": {
			"graphd_neighbors": {"p99_usec": 50000, "min_throughput_rps": 10},
			"restored_submit": {"p50_usec": 100000, "max_error_rate": 0}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if *spec.MaxErrorRate != 0.01 {
		t.Errorf("max_error_rate = %v", *spec.MaxErrorRate)
	}
	if spec.Endpoints[EPNeighbors].P99USec != 50000 {
		t.Errorf("neighbors p99 = %d", spec.Endpoints[EPNeighbors].P99USec)
	}
	if mer := spec.Endpoints[EPSubmit].MaxErrorRate; mer == nil || *mer != 0 {
		t.Errorf("submit max_error_rate = %v, want explicit 0", mer)
	}
	if _, err := ParseSLO([]byte(`{"endpoints":{"nope":{}}}`)); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := ParseSLO([]byte(`{"endpoints":{"graphd_neighbors":{"p99_us":1}}}`)); err == nil {
		t.Error("unknown field (typo) accepted")
	}
}

func TestSLOEvaluate(t *testing.T) {
	rep := &Report{Endpoints: []EndpointReport{
		{Endpoint: EPNeighbors, Requests: 1000, OK: 995, Errors: 5, ErrorRate: 0.005, RPS: 200, P50USec: 500, P99USec: 20000, P999USec: 50000},
		{Endpoint: EPSubmit, Requests: 50, OK: 50, RPS: 10, P50USec: 2000, P99USec: 10000},
	}}
	rate := 0.01
	spec := &SLOSpec{
		MaxErrorRate: &rate,
		Endpoints: map[string]EndpointSLO{
			EPNeighbors: {P99USec: 50000, MinThroughputRPS: 100},
			EPSubmit:    {P50USec: 5000},
		},
	}
	res := spec.Evaluate(rep)
	if !res.Pass {
		t.Fatalf("healthy run failed SLO: %+v", res.Checks)
	}
	for _, c := range res.Checks {
		if !c.Pass {
			t.Errorf("check failed: %+v", c)
		}
		if c.Headroom <= 0 || c.Burn >= 1 {
			t.Errorf("passing check with no headroom: %+v", c)
		}
	}

	// Tighten the p99 ceiling below the observed value: fail with burn > 1.
	spec.Endpoints[EPNeighbors] = EndpointSLO{P99USec: 10000}
	res = spec.Evaluate(rep)
	if res.Pass {
		t.Fatal("run passed an unattainable p99 ceiling")
	}
	found := false
	for _, c := range res.Checks {
		if c.Endpoint == EPNeighbors && c.Metric == "p99_usec" {
			found = true
			if c.Pass || c.Burn <= 1 || c.Headroom >= 0 {
				t.Errorf("failed ceiling reported wrong: %+v", c)
			}
		}
	}
	if !found {
		t.Fatal("p99 check missing")
	}

	// An SLO on an endpoint that saw no traffic fails, not vacuously passes.
	spec = &SLOSpec{Endpoints: map[string]EndpointSLO{EPCancel: {P99USec: 1}}}
	res = spec.Evaluate(rep)
	if res.Pass {
		t.Fatal("declared endpoint with zero traffic passed")
	}
	if res.Checks[0].Note == "" {
		t.Error("zero-traffic failure carries no note")
	}
}

// TestRunAgainstLiveServers drives a short seeded swarm at in-process
// graphd and restored daemons and checks the full tentpole loop: the
// report echoes the schedule hash GenSchedule computes for the same
// config, client-side endpoint stats are populated, the server scrapes
// parsed, the client↔server correlation checks hold exactly, and the SLO
// verdict is evaluated.
func TestRunAgainstLiveServers(t *testing.T) {
	g := gen.HolmeKim(160, 3, 0.5, rand.New(rand.NewPCG(41, 42)))
	crawl, err := sampling.SeededRandomWalk(sampling.NewGraphAccess(g), -1, 0.2, 99)
	if err != nil {
		t.Fatal(err)
	}
	var crawlJSON bytes.Buffer
	if err := crawl.WriteJSON(&crawlJSON); err != nil {
		t.Fatal(err)
	}

	graphd := httptest.NewServer(oracle.NewServer(g, oracle.ServerConfig{}).Handler())
	defer graphd.Close()
	svc, err := restored.New(restored.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	restoredTS := httptest.NewServer(restored.NewServer(svc).Handler())
	defer restoredTS.Close()

	cfg := Config{
		GraphdURL:   graphd.URL,
		RestoredURL: restoredTS.URL,
		Seed:        12345,
		Clients:     6,
		Rate:        120,
		Duration:    1500 * time.Millisecond,
		CrawlJSON:   crawlJSON.Bytes(),
		RC:          2,
		Interval:    300 * time.Millisecond,
		SLO: &SLOSpec{Endpoints: map[string]EndpointSLO{
			EPNeighbors: {P99USec: 5_000_000},
		}},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The executed schedule is the one GenSchedule plans for this config
	// (Nodes resolved from the live /v1/meta).
	plan := cfg
	plan.Nodes = rep.Config.Nodes
	want, err := GenSchedule(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedule.Hash != want.Hash {
		t.Errorf("executed schedule hash %s, planned %s", rep.Schedule.Hash, want.Hash)
	}
	if rep.Schedule.Events == 0 {
		t.Fatal("no events executed")
	}

	byEP := make(map[string]EndpointReport)
	var totalReqs int64
	for _, ep := range rep.Endpoints {
		byEP[ep.Endpoint] = ep
		totalReqs += ep.Requests
		if ep.Requests > 0 && ep.P99USec <= 0 {
			t.Errorf("endpoint %s has traffic but zero p99", ep.Endpoint)
		}
	}
	if byEP[EPNeighbors].OK == 0 {
		t.Error("no successful neighbor queries")
	}
	if byEP[EPSubmit].OK == 0 {
		t.Error("no successful job submissions")
	}
	if totalReqs < int64(rep.Schedule.Events) {
		t.Errorf("%d requests for %d scheduled events", totalReqs, rep.Schedule.Events)
	}

	for _, name := range []string{"graphd", "restored"} {
		srv := rep.Servers[name]
		if srv == nil || !srv.ScrapeOK {
			t.Fatalf("server %s not scraped: %+v", name, srv)
		}
	}
	if len(rep.Correlation) != 2 {
		t.Fatalf("expected 2 correlation checks, got %d", len(rep.Correlation))
	}
	for _, c := range rep.Correlation {
		if !c.Checked {
			t.Errorf("correlation %s not checked", c.Name)
		}
		if !c.Consistent {
			t.Errorf("correlation %s inconsistent: client %d, server %v", c.Name, c.ClientExpected, c.ServerObserved)
		}
		if c.ClientExpected == 0 {
			t.Errorf("correlation %s saw no traffic", c.Name)
		}
	}

	if rep.SLO == nil {
		t.Fatal("SLO not evaluated")
	}
	if !rep.SLO.Pass {
		t.Errorf("generous SLO failed: %+v", rep.SLO.Checks)
	}
	if len(rep.Intervals) == 0 {
		t.Error("no interval rows recorded")
	}

	// The report must round-trip through JSON (it is BENCH_load.json).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schedule.Hash != rep.Schedule.Hash {
		t.Error("report did not round-trip through JSON")
	}
}
