package loadgen

import (
	"sort"
	"time"
)

// Report is the full outcome of a load run: the reproducible plan (config
// echo + schedule summary), the client-side measurements, the server-side
// scrape deltas, the client↔server cross-checks, and the SLO verdict.
// Serialized as-is into BENCH_load.json.
type Report struct {
	Config      ConfigSummary            `json:"config"`
	Schedule    ScheduleSummary          `json:"schedule"`
	WallMS      float64                  `json:"wall_ms"`
	Endpoints   []EndpointReport         `json:"endpoints"`
	Jobs        JobsReport               `json:"jobs"`
	Intervals   []IntervalRow            `json:"intervals,omitempty"`
	Servers     map[string]*ServerReport `json:"servers,omitempty"`
	Correlation []CorrelationCheck       `json:"correlation,omitempty"`
	SLO         *SLOResult               `json:"slo,omitempty"`
}

// ConfigSummary echoes the run parameters that shaped the schedule, so a
// recorded report is reproducible from its own header.
type ConfigSummary struct {
	Seed      uint64         `json:"seed"`
	Clients   int            `json:"clients"`
	RateRPS   float64        `json:"rate_rps"`
	DurationS float64        `json:"duration_s"`
	Mix       map[string]int `json:"mix"`
	Nodes     int            `json:"nodes"`
	BatchSize int            `json:"batch_size"`
	RC        float64        `json:"rc"`
}

// ScheduleSummary pins the materialized schedule: Hash equal across runs
// means the same requests were planned in the same order.
type ScheduleSummary struct {
	Events int            `json:"events"`
	PerOp  map[string]int `json:"per_op"`
	Hash   string         `json:"hash"`
}

// EndpointReport is the client-observed record for one endpoint.
type EndpointReport struct {
	Endpoint    string  `json:"endpoint"`
	Requests    int64   `json:"requests"`
	OK          int64   `json:"ok"`
	Errors      int64   `json:"errors"`
	RateLimited int64   `json:"rate_limited"`
	Timeouts    int64   `json:"timeouts"`
	ErrorRate   float64 `json:"error_rate"`
	RPS         float64 `json:"rps"`
	P50USec     int64   `json:"p50_usec"`
	P99USec     int64   `json:"p99_usec"`
	P999USec    int64   `json:"p999_usec"`
	MeanUSec    float64 `json:"mean_usec"`
}

// JobsReport summarizes restored job lifecycles driven by the run.
type JobsReport struct {
	Done       int64 `json:"done"`
	Failed     int64 `json:"failed"`
	Unfinished int64 `json:"unfinished"`
	// CancelsDelivered counts DELETEs answered 200; CancelsTooLate counts
	// 409s — the job reached a terminal state before the DELETE landed,
	// which is a race the workload deliberately provokes, not a failure.
	CancelsDelivered int64 `json:"cancels_delivered"`
	CancelsTooLate   int64 `json:"cancels_too_late"`
}

// IntervalRow is one client-side snapshot window.
type IntervalRow struct {
	StartMS   float64                     `json:"start_ms"`
	EndMS     float64                     `json:"end_ms"`
	Endpoints map[string]IntervalEndpoint `json:"endpoints"`
}

// IntervalEndpoint is one endpoint's traffic within one interval, computed
// from histogram snapshot deltas (quantiles are per-interval, not
// lifetime).
type IntervalEndpoint struct {
	Requests int64   `json:"requests"`
	P50USec  int64   `json:"p50_usec"`
	P99USec  int64   `json:"p99_usec"`
	RPS      float64 `json:"rps"`
}

// ServerReport is one daemon's /v1/metrics story over the run window:
// counters as start→end deltas, gauges at end-of-run value, histograms as
// run-window quantiles from bucket deltas.
type ServerReport struct {
	// ScrapeOK is false when either scrape failed; Deltas/Histograms are
	// then empty and Err says why. A missing scrape degrades the report
	// instead of failing the run — the client-side story still stands.
	ScrapeOK bool   `json:"scrape_ok"`
	Err      string `json:"err,omitempty"`
	// Deltas maps counter name → end-start difference.
	Deltas map[string]float64 `json:"deltas,omitempty"`
	// Gauges maps gauge/untyped name → end-of-run value.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps histogram name → run-window summary.
	Histograms map[string]ServerHistogram `json:"histograms,omitempty"`
}

// ServerHistogram is a server histogram's run-window delta.
type ServerHistogram struct {
	Count   float64 `json:"count"`
	SumUSec float64 `json:"sum_usec"`
	P50USec float64 `json:"p50_usec"`
	P99USec float64 `json:"p99_usec"`
}

// CorrelationCheck ties one client-side count to one server-side counter
// delta. Consistent=false on a checked invariant means a metric is lying
// on one side or the other.
type CorrelationCheck struct {
	Name           string  `json:"name"`
	ClientExpected int64   `json:"client_expected"`
	ServerObserved float64 `json:"server_observed"`
	// Checked is false when the server scrape was unavailable; the check
	// is then reported but not judged.
	Checked    bool   `json:"checked"`
	Consistent bool   `json:"consistent"`
	Detail     string `json:"detail,omitempty"`
}

// buildReport assembles everything measured into the final Report.
func (r *runner) buildReport(sched *Schedule, wall time.Duration, startScrapes, endScrapes map[string]*scrapeResult) *Report {
	rep := &Report{
		Config: ConfigSummary{
			Seed:      r.cfg.Seed,
			Clients:   r.cfg.Clients,
			RateRPS:   r.cfg.Rate,
			DurationS: r.cfg.Duration.Seconds(),
			Mix:       r.cfg.Mix,
			Nodes:     r.cfg.Nodes,
			BatchSize: r.cfg.BatchSize,
			RC:        r.cfg.RC,
		},
		Schedule: ScheduleSummary{Events: len(sched.Events), PerOp: sched.PerOp, Hash: sched.Hash},
		WallMS:   float64(wall.Microseconds()) / 1e3,
		Jobs: JobsReport{
			Done:             r.jobsDone.Load(),
			Failed:           r.jobsFailed.Load(),
			Unfinished:       r.jobsUnfinished.Load(),
			CancelsDelivered: r.cancelsDone.Load(),
			CancelsTooLate:   r.cancelsTooLate.Load(),
		},
	}

	secs := wall.Seconds()
	for _, key := range r.statKeys {
		st := r.stats[key]
		snap := st.hist.Snapshot()
		er := EndpointReport{
			Endpoint:    key,
			Requests:    st.requests.Load(),
			OK:          st.ok.Load(),
			Errors:      st.errors.Load(),
			RateLimited: st.rateLimited.Load(),
			Timeouts:    st.timeouts.Load(),
			P50USec:     snap.Quantile(0.50),
			P99USec:     snap.Quantile(0.99),
			P999USec:    snap.Quantile(0.999),
		}
		if er.Requests > 0 {
			er.ErrorRate = float64(er.Errors) / float64(er.Requests)
		}
		if secs > 0 {
			er.RPS = float64(er.Requests) / secs
		}
		if snap.Count > 0 {
			er.MeanUSec = float64(snap.Sum) / float64(snap.Count)
		}
		rep.Endpoints = append(rep.Endpoints, er)
	}
	sort.Slice(rep.Endpoints, func(i, j int) bool { return rep.Endpoints[i].Endpoint < rep.Endpoints[j].Endpoint })

	r.intervalMu.Lock()
	rep.Intervals = r.intervals
	r.intervalMu.Unlock()

	rep.Servers = buildServerReports(startScrapes, endScrapes)
	rep.Correlation = r.correlate(rep.Servers)

	if r.cfg.SLO != nil {
		res := r.cfg.SLO.Evaluate(rep)
		rep.SLO = &res
	}
	return rep
}
