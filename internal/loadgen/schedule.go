package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"sgr/internal/sampling"
)

// scheduleSalt separates the schedule's seed domain from every other
// consumer of sampling.SubStream in the repository.
const scheduleSalt = 0x6c6f616467656e21 // "loadgen!"

// Event is one scheduled arrival: operation Seq of virtual client Client,
// planned AtUS microseconds after the run starts. Everything a request
// needs is drawn at schedule time, so execution spends no randomness —
// the schedule IS the workload.
type Event struct {
	Client int    `json:"client"`
	Seq    int    `json:"seq"`
	AtUS   int64  `json:"at_usec"`
	Op     string `json:"op"`
	// Nodes are the graphd target ids (one for OpNeighbors, BatchSize for
	// OpBatch).
	Nodes []int `json:"nodes,omitempty"`
	// JobSeed is the restored job's seed field. OpJob and OpCancel draw a
	// fresh one; OpResubmit repeats the seed of an earlier OpJob of the
	// same client, making it the same content-addressed job.
	JobSeed uint64 `json:"job_seed,omitempty"`
}

// Schedule is a fully materialized run plan.
type Schedule struct {
	// Events holds every client's arrivals merged into planned order
	// (ties broken by client then sequence — total and deterministic).
	Events []Event
	// PerOp counts scheduled events by op.
	PerOp map[string]int
	// Hash is the hex SHA-256 of the canonical event serialization: two
	// runs with equal hashes issued identical request schedules.
	Hash string
}

// maxEvents bounds a schedule against runaway rate×duration configs.
const maxEvents = 1 << 22

// GenSchedule materializes the deterministic request schedule for cfg.
// Client i draws from sampling.SubStream(seed, seed^scheduleSalt, i): an
// exponential inter-arrival process at Rate/Clients ops/s, a weighted op
// choice, and the op's targets. The result depends only on (Seed, Clients,
// Rate, Duration, Mix, Nodes, BatchSize) — never on wall clock, map
// order, or the servers.
func GenSchedule(cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	needNodes := cfg.Mix[OpNeighbors] > 0 || cfg.Mix[OpBatch] > 0
	if needNodes && cfg.Nodes <= 0 {
		return nil, fmt.Errorf("loadgen: graphd ops need Config.Nodes (have %d)", cfg.Nodes)
	}

	// Cumulative weights in fixed op order for the weighted draw.
	type weighted struct {
		op  string
		cum int
	}
	var wts []weighted
	total := 0
	for _, op := range ops {
		if w := cfg.Mix[op]; w > 0 {
			total += w
			wts = append(wts, weighted{op, total})
		}
	}

	perClientMean := float64(cfg.Clients) / cfg.Rate * 1e6 // µs between arrivals per client
	horizonUS := cfg.Duration.Microseconds()
	s := &Schedule{PerOp: make(map[string]int)}
	for client := 0; client < cfg.Clients; client++ {
		rng := sampling.SubStream(cfg.Seed, cfg.Seed^scheduleSalt, uint64(client))
		var jobSeeds []uint64 // this client's OpJob seeds, for OpResubmit
		at := int64(0)
		for seq := 0; ; seq++ {
			at += int64(rng.ExpFloat64() * perClientMean)
			if at >= horizonUS {
				break
			}
			if len(s.Events) >= maxEvents {
				return nil, fmt.Errorf("loadgen: schedule exceeds %d events; lower Rate or Duration", maxEvents)
			}
			draw := rng.IntN(total)
			op := wts[len(wts)-1].op
			for _, w := range wts {
				if draw < w.cum {
					op = w.op
					break
				}
			}
			ev := Event{Client: client, Seq: seq, AtUS: at, Op: op}
			switch op {
			case OpNeighbors:
				ev.Nodes = []int{rng.IntN(cfg.Nodes)}
			case OpBatch:
				ev.Nodes = make([]int, cfg.BatchSize)
				for i := range ev.Nodes {
					ev.Nodes[i] = rng.IntN(cfg.Nodes)
				}
			case OpJob:
				ev.JobSeed = rng.Uint64()
				jobSeeds = append(jobSeeds, ev.JobSeed)
			case OpResubmit:
				if len(jobSeeds) == 0 {
					// Nothing to re-submit yet: the event becomes the
					// client's first job instead (schedule-time decision, so
					// it is as deterministic as everything else).
					ev.Op = OpJob
					ev.JobSeed = rng.Uint64()
					jobSeeds = append(jobSeeds, ev.JobSeed)
				} else {
					ev.JobSeed = jobSeeds[rng.IntN(len(jobSeeds))]
				}
			case OpCancel:
				ev.JobSeed = rng.Uint64()
			}
			s.Events = append(s.Events, ev)
		}
	}
	sort.Slice(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.AtUS != b.AtUS {
			return a.AtUS < b.AtUS
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Seq < b.Seq
	})
	for i := range s.Events {
		s.PerOp[s.Events[i].Op]++
	}
	s.Hash = hashEvents(s.Events)
	return s, nil
}

// hashEvents digests the canonical serialization of the merged schedule.
func hashEvents(events []Event) string {
	h := sha256.New()
	for i := range events {
		ev := &events[i]
		fmt.Fprintf(h, "%d/%d@%d %s %v %d\n", ev.Client, ev.Seq, ev.AtUS, ev.Op, ev.Nodes, ev.JobSeed)
	}
	return hex.EncodeToString(h.Sum(nil))
}
