package loadgen

import (
	"fmt"
	"net/http"
	"sort"

	"sgr/internal/obs"
)

// scrapeResult is one parsed /v1/metrics exposition (or the reason it was
// unavailable).
type scrapeResult struct {
	scrape *obs.Scrape
	err    error
}

// scrapeAll scrapes every configured daemon's metrics endpoint, keyed by
// daemon name ("graphd", "restored"). Scrape failures are recorded, not
// fatal: a daemon without reachable metrics degrades the report's server
// side but the client-side measurements still stand.
func (r *runner) scrapeAll() map[string]*scrapeResult {
	out := make(map[string]*scrapeResult)
	if r.cfg.GraphdURL != "" {
		out["graphd"] = r.scrapeOne(r.cfg.GraphdURL + "/v1/metrics")
	}
	if r.cfg.RestoredURL != "" {
		out["restored"] = r.scrapeOne(r.cfg.RestoredURL + "/v1/metrics")
	}
	return out
}

func (r *runner) scrapeOne(url string) *scrapeResult {
	resp, err := r.httpc.Get(url)
	if err != nil {
		return &scrapeResult{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &scrapeResult{err: fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)}
	}
	s, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return &scrapeResult{err: fmt.Errorf("scrape %s: %w", url, err)}
	}
	return &scrapeResult{scrape: s}
}

// buildServerReports turns before/after scrape pairs into per-daemon
// run-window summaries: counters as deltas, gauges at final value,
// histograms as bucket-delta quantiles.
func buildServerReports(start, end map[string]*scrapeResult) map[string]*ServerReport {
	if len(end) == 0 {
		return nil
	}
	out := make(map[string]*ServerReport, len(end))
	names := make([]string, 0, len(end))
	for name := range end {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := end[name]
		s := start[name]
		rep := &ServerReport{}
		out[name] = rep
		switch {
		case e.err != nil:
			rep.Err = e.err.Error()
			continue
		case s == nil || s.err != nil:
			rep.Err = fmt.Sprintf("start scrape unavailable: %v", scrapeErr(s))
			continue
		}
		rep.ScrapeOK = true
		rep.Deltas = make(map[string]float64)
		rep.Gauges = make(map[string]float64)
		rep.Histograms = make(map[string]ServerHistogram)
		for _, fam := range e.scrape.Names() {
			f := e.scrape.Families[fam]
			switch f.Type {
			case "counter":
				prev := 0.0
				if pf, ok := s.scrape.Families[fam]; ok && pf.Type == "counter" {
					prev = pf.Value
				}
				rep.Deltas[fam] = f.Value - prev
			case "histogram":
				prev, _ := s.scrape.Histogram(fam)
				d, err := obs.DeltaHistogram(f, prev)
				if err != nil {
					// A histogram that changed shape mid-run (daemon
					// restart) falls back to its lifetime view.
					d = f
				}
				rep.Histograms[fam] = ServerHistogram{
					Count:   d.Count,
					SumUSec: d.Sum,
					P50USec: d.Quantile(0.50),
					P99USec: d.Quantile(0.99),
				}
			default: // gauge, untyped
				rep.Gauges[fam] = f.Value
			}
		}
	}
	return out
}

func scrapeErr(s *scrapeResult) error {
	if s == nil {
		return fmt.Errorf("not scraped")
	}
	return s.err
}

// correlate cross-checks client-observed success counts against server
// counter deltas. The invariants come from the daemons' own accounting:
//
//   - graphd charges graphd_queries_served once per 200 neighbor page and
//     once per non-error batch item — exactly what the clients counted in
//     graphdExpected;
//   - restored charges restored_jobs_submitted or restored_jobs_deduped
//     (never both) for every accepted submission — together they must
//     equal the clients' 2xx POST /v1/jobs count.
//
// Other traffic against the daemons during the run window would break the
// equalities, so correlation is only meaningful on an otherwise-idle
// deployment (which is how the e2e and bench harnesses run it).
func (r *runner) correlate(servers map[string]*ServerReport) []CorrelationCheck {
	var checks []CorrelationCheck
	if r.cfg.GraphdURL != "" {
		c := CorrelationCheck{
			Name:           "graphd_queries_served",
			ClientExpected: r.graphdExpected.Load(),
			Detail:         "server queries-served delta vs client 200 neighbor pages + non-error batch items",
		}
		if srv := servers["graphd"]; srv != nil && srv.ScrapeOK {
			c.ServerObserved = srv.Deltas["graphd_queries_served"]
			c.Checked = true
			c.Consistent = c.ServerObserved == float64(c.ClientExpected)
		}
		checks = append(checks, c)
	}
	if r.cfg.RestoredURL != "" {
		c := CorrelationCheck{
			Name:           "restored_jobs_accepted",
			ClientExpected: r.submitsOK.Load(),
			Detail:         "server submitted+deduped delta vs client 2xx job submissions",
		}
		if srv := servers["restored"]; srv != nil && srv.ScrapeOK {
			c.ServerObserved = srv.Deltas["restored_jobs_submitted"] + srv.Deltas["restored_jobs_deduped"]
			c.Checked = true
			c.Consistent = c.ServerObserved == float64(c.ClientExpected)
		}
		checks = append(checks, c)
	}
	return checks
}
