package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// SLOSpec declares what a load run must achieve: per-endpoint latency
// ceilings, error-rate caps, and throughput floors, plus an optional
// global error-rate cap across all endpoints. JSON-declared so specs live
// next to the workloads they judge.
type SLOSpec struct {
	// MaxErrorRate caps the aggregate error rate over every endpoint
	// (errors / requests, 429s excluded). Nil skips the global check.
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// Endpoints maps endpoint keys (EPNeighbors, ...) to their objectives.
	// A declared endpoint that saw no traffic fails its checks: an SLO on
	// an endpoint the workload never exercised is a broken experiment,
	// not a vacuous pass.
	Endpoints map[string]EndpointSLO `json:"endpoints,omitempty"`
}

// EndpointSLO is one endpoint's objectives. Zero-valued fields are
// unchecked.
type EndpointSLO struct {
	P50USec          int64    `json:"p50_usec,omitempty"`
	P99USec          int64    `json:"p99_usec,omitempty"`
	P999USec         int64    `json:"p999_usec,omitempty"`
	MaxErrorRate     *float64 `json:"max_error_rate,omitempty"`
	MinThroughputRPS float64  `json:"min_throughput_rps,omitempty"`
}

// ParseSLO strictly decodes a JSON SLO spec: unknown fields are an error,
// catching typos ("p99_us") that would otherwise silently skip a check.
func ParseSLO(data []byte) (*SLOSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec SLOSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("loadgen: parsing SLO spec: %w", err)
	}
	for ep := range spec.Endpoints {
		if !validEndpoints[ep] {
			return nil, fmt.Errorf("loadgen: SLO spec names unknown endpoint %q", ep)
		}
	}
	return &spec, nil
}

var validEndpoints = map[string]bool{
	EPNeighbors: true, EPBatch: true,
	EPSubmit: true, EPPoll: true, EPDownload: true, EPResubmit: true, EPCancel: true,
}

// SLOCheck is one evaluated objective.
type SLOCheck struct {
	Endpoint string  `json:"endpoint,omitempty"` // empty for global checks
	Metric   string  `json:"metric"`
	Limit    float64 `json:"limit"`
	Observed float64 `json:"observed"`
	Pass     bool    `json:"pass"`
	// Headroom is the fraction of budget left (0.25 = passing with 25% to
	// spare); Burn is the fraction consumed (observed/limit for ceilings,
	// limit/observed for floors — burn > 1 means the check failed).
	Headroom float64 `json:"headroom"`
	Burn     float64 `json:"burn"`
	Note     string  `json:"note,omitempty"`
}

// SLOResult is the verdict on a run.
type SLOResult struct {
	Pass   bool       `json:"pass"`
	Checks []SLOCheck `json:"checks"`
}

// Evaluate judges a finished report against the spec.
func (spec *SLOSpec) Evaluate(rep *Report) SLOResult {
	byEP := make(map[string]*EndpointReport, len(rep.Endpoints))
	for i := range rep.Endpoints {
		byEP[rep.Endpoints[i].Endpoint] = &rep.Endpoints[i]
	}
	res := SLOResult{Pass: true}
	add := func(c SLOCheck) {
		if !c.Pass {
			res.Pass = false
		}
		res.Checks = append(res.Checks, c)
	}

	if spec.MaxErrorRate != nil {
		var reqs, errs int64
		for i := range rep.Endpoints {
			reqs += rep.Endpoints[i].Requests
			errs += rep.Endpoints[i].Errors
		}
		rate := 0.0
		if reqs > 0 {
			rate = float64(errs) / float64(reqs)
		}
		add(ceiling("", "error_rate", *spec.MaxErrorRate, rate))
	}

	eps := make([]string, 0, len(spec.Endpoints))
	for ep := range spec.Endpoints {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		slo := spec.Endpoints[ep]
		er := byEP[ep]
		if er == nil || er.Requests == 0 {
			add(SLOCheck{Endpoint: ep, Metric: "traffic", Limit: 1, Observed: 0, Pass: false, Burn: 1, Note: "no traffic observed on declared endpoint"})
			continue
		}
		if slo.P50USec > 0 {
			add(ceiling(ep, "p50_usec", float64(slo.P50USec), float64(er.P50USec)))
		}
		if slo.P99USec > 0 {
			add(ceiling(ep, "p99_usec", float64(slo.P99USec), float64(er.P99USec)))
		}
		if slo.P999USec > 0 {
			add(ceiling(ep, "p999_usec", float64(slo.P999USec), float64(er.P999USec)))
		}
		if slo.MaxErrorRate != nil {
			add(ceiling(ep, "error_rate", *slo.MaxErrorRate, er.ErrorRate))
		}
		if slo.MinThroughputRPS > 0 {
			add(floor(ep, "throughput_rps", slo.MinThroughputRPS, er.RPS))
		}
	}
	return res
}

// ceiling checks observed <= limit.
func ceiling(ep, metric string, limit, observed float64) SLOCheck {
	c := SLOCheck{Endpoint: ep, Metric: metric, Limit: limit, Observed: observed, Pass: observed <= limit}
	if limit > 0 {
		c.Burn = observed / limit
		c.Headroom = 1 - c.Burn
	} else if observed > 0 {
		// limit 0 with observed > 0: infinite burn, expressed as the
		// largest meaningful marker without dragging Inf into JSON.
		c.Burn = observed
		c.Headroom = -observed
	} else {
		c.Headroom = 1
	}
	return c
}

// floor checks observed >= limit.
func floor(ep, metric string, limit, observed float64) SLOCheck {
	c := SLOCheck{Endpoint: ep, Metric: metric, Limit: limit, Observed: observed, Pass: observed >= limit}
	if observed > 0 {
		c.Burn = limit / observed
		c.Headroom = 1 - c.Burn
	} else {
		c.Burn = 1
		c.Headroom = 0
		c.Pass = limit <= 0
	}
	return c
}
