// Package metrics implements the accuracy measure of Sec. V-C: the
// normalized L1 distance between corresponding structural properties of the
// original and generated graphs, sum_i |x~_i - x_i| / sum_i x_i. For scalar
// properties this reduces to the relative error.
package metrics

import (
	"math"
	"sort"

	"sgr/internal/props"
)

// Scalar returns the normalized L1 distance (relative error) between scalar
// property values, |got - want| / |want|.
func Scalar(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Dist returns the normalized L1 distance between two distributions or
// degree-indexed property vectors: sum over the union of keys of
// |got[k] - want[k]|, divided by sum_k want[k]. Keys are visited in sorted
// order so results are bit-for-bit reproducible.
func Dist(got, want map[int]float64) float64 {
	keys := make([]int, 0, len(got)+len(want))
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	num, den := 0.0, 0.0
	for _, k := range keys {
		num += math.Abs(got[k] - want[k])
		den += want[k]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// PropertyNames lists the paper's 12 properties in Table II column order.
var PropertyNames = []string{
	"n", "kbar", "P(k)", "knn(k)", "cbar", "c(k)",
	"P(s)", "lbar", "P(l)", "lmax", "b(k)", "lambda1",
}

// PerProperty returns the 12 normalized L1 distances between a generated
// graph's properties and the original's, in PropertyNames order.
func PerProperty(generated, original *props.Result) []float64 {
	return []float64{
		Scalar(float64(generated.N), float64(original.N)),
		Scalar(generated.AvgDegree, original.AvgDegree),
		Dist(generated.DegreeDist, original.DegreeDist),
		Dist(generated.NeighborConnectivity, original.NeighborConnectivity),
		Scalar(generated.GlobalClustering, original.GlobalClustering),
		Dist(generated.DegreeClustering, original.DegreeClustering),
		Dist(generated.ESP, original.ESP),
		Scalar(generated.AvgPathLen, original.AvgPathLen),
		Dist(generated.PathLenDist, original.PathLenDist),
		Scalar(float64(generated.Diameter), float64(original.Diameter)),
		Dist(generated.DegreeBetweenness, original.DegreeBetweenness),
		Scalar(generated.Lambda1, original.Lambda1),
	}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
