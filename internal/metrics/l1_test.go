package metrics

import (
	"math"
	"testing"

	"sgr/internal/props"
)

func TestScalar(t *testing.T) {
	if got := Scalar(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Scalar(90,100) = %v", got)
	}
	if got := Scalar(100, 100); got != 0 {
		t.Fatalf("Scalar equal = %v", got)
	}
	if got := Scalar(0, 0); got != 0 {
		t.Fatalf("Scalar(0,0) = %v", got)
	}
	if got := Scalar(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("Scalar(1,0) = %v", got)
	}
}

func TestDist(t *testing.T) {
	want := map[int]float64{1: 0.5, 2: 0.3, 3: 0.2}
	if got := Dist(want, want); got != 0 {
		t.Fatalf("identical distributions: %v", got)
	}
	got := map[int]float64{1: 0.5, 2: 0.2, 4: 0.3}
	// |0.5-0.5| + |0.2-0.3| + |0-0.2| + extra |0.3| = 0.6; den = 1.
	if d := Dist(got, want); math.Abs(d-0.6) > 1e-12 {
		t.Fatalf("Dist = %v want 0.6", d)
	}
	if d := Dist(map[int]float64{}, map[int]float64{}); d != 0 {
		t.Fatalf("empty Dist = %v", d)
	}
	if d := Dist(map[int]float64{1: 1}, map[int]float64{}); !math.IsInf(d, 1) {
		t.Fatalf("Dist onto empty = %v", d)
	}
}

func TestDistAsymmetryOfNormalization(t *testing.T) {
	// Normalization is by the second (original) argument.
	a := map[int]float64{1: 2}
	b := map[int]float64{1: 4}
	if d := Dist(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("Dist(a,b) = %v want 0.5", d)
	}
	if d := Dist(b, a); math.Abs(d-1.0) > 1e-12 {
		t.Fatalf("Dist(b,a) = %v want 1.0", d)
	}
}

func TestPerPropertyOrderAndIdentity(t *testing.T) {
	if len(PropertyNames) != 12 {
		t.Fatalf("want 12 property names, got %d", len(PropertyNames))
	}
	r := &props.Result{
		N:                    10,
		AvgDegree:            2,
		DegreeDist:           map[int]float64{2: 1},
		NeighborConnectivity: map[int]float64{2: 2},
		GlobalClustering:     0.5,
		DegreeClustering:     map[int]float64{2: 0.5},
		ESP:                  map[int]float64{0: 1},
		AvgPathLen:           2.5,
		PathLenDist:          map[int]float64{1: 0.4, 2: 0.6},
		Diameter:             3,
		DegreeBetweenness:    map[int]float64{2: 4},
		Lambda1:              2.1,
	}
	ds := PerProperty(r, r)
	if len(ds) != 12 {
		t.Fatalf("want 12 distances, got %d", len(ds))
	}
	for i, d := range ds {
		if d != 0 {
			t.Errorf("identity distance %s = %v", PropertyNames[i], d)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty stats must be 0")
	}
}
