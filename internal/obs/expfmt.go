package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition contract: a parser for the
// Prometheus text format 0.0.4 that WritePrometheus (and therefore
// daemon.MetricsHandler) emits. The load generator scrapes both daemons
// through it to correlate client-observed latency with server-side
// histograms, and the e2e scripts use the same grammar instead of ad-hoc
// awk. The parser accepts the full sample grammar (labels, optional
// timestamps), not just what this repository writes, so it also reads
// scrapes from foreign exporters.

// Family is one parsed metric family: a scalar (counter, gauge, untyped)
// or a histogram reassembled from its _bucket/_sum/_count samples.
type Family struct {
	Name string
	Help string
	// Type is "counter", "gauge", "histogram", or "untyped" (samples that
	// never saw a # TYPE line).
	Type string

	// Value is the scalar sample for non-histogram families.
	Value float64

	// Buckets are the cumulative le-labeled bucket samples of a histogram
	// family in ascending le order (+Inf last); Sum and Count mirror the
	// _sum/_count samples.
	Buckets []Bucket
	Sum     float64
	Count   float64
}

// Bucket is one cumulative histogram bucket: the count of observations
// less than or equal to LE (math.Inf(1) for the +Inf bucket).
type Bucket struct {
	LE  float64
	Cum float64
}

// Quantile reads the q-quantile (0 < q <= 1) from a histogram family's
// cumulative buckets with the same upper-bound semantics as
// Histogram.Quantile: the smallest bucket bound covering the
// ceil(q·count)-th observation, the last finite bound for observations in
// +Inf, and 0 for an empty histogram. Round-trip property: on a scrape of
// WritePrometheus output this reproduces the emitted _p50/_p99/_p999
// readouts exactly.
func (f *Family) Quantile(q float64) float64 {
	if len(f.Buckets) == 0 {
		return 0
	}
	total := f.Buckets[len(f.Buckets)-1].Cum
	if total <= 0 {
		return 0
	}
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	lastFinite := 0.0
	for _, b := range f.Buckets {
		if !math.IsInf(b.LE, 1) {
			lastFinite = b.LE
		}
		if b.Cum >= rank {
			if math.IsInf(b.LE, 1) {
				break
			}
			return b.LE
		}
	}
	return lastFinite
}

// DeltaHistogram returns the interval histogram cur−prev as a fresh
// Family: bucket-wise cumulative-count differences plus Sum/Count deltas.
// Both families must be histograms over the same bucket layout; negative
// deltas (counter resets, mismatched scrapes) clamp to zero.
func DeltaHistogram(cur, prev *Family) (*Family, error) {
	if cur == nil {
		return nil, fmt.Errorf("obs: DeltaHistogram: nil current family")
	}
	if prev == nil {
		cp := *cur
		cp.Buckets = append([]Bucket(nil), cur.Buckets...)
		return &cp, nil
	}
	if len(cur.Buckets) != len(prev.Buckets) {
		return nil, fmt.Errorf("obs: DeltaHistogram %s: bucket layouts differ (%d vs %d)",
			cur.Name, len(cur.Buckets), len(prev.Buckets))
	}
	d := &Family{Name: cur.Name, Help: cur.Help, Type: cur.Type}
	d.Buckets = make([]Bucket, len(cur.Buckets))
	for i := range cur.Buckets {
		if cur.Buckets[i].LE != prev.Buckets[i].LE {
			return nil, fmt.Errorf("obs: DeltaHistogram %s: bucket %d bound %v vs %v",
				cur.Name, i, cur.Buckets[i].LE, prev.Buckets[i].LE)
		}
		v := cur.Buckets[i].Cum - prev.Buckets[i].Cum
		if v < 0 {
			v = 0
		}
		d.Buckets[i] = Bucket{LE: cur.Buckets[i].LE, Cum: v}
	}
	if d.Sum = cur.Sum - prev.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	if d.Count = cur.Count - prev.Count; d.Count < 0 {
		d.Count = 0
	}
	return d, nil
}

// Scrape is one parsed exposition document.
type Scrape struct {
	Families map[string]*Family
}

// Value returns the scalar value of a counter/gauge/untyped family.
func (s *Scrape) Value(name string) (float64, bool) {
	f, ok := s.Families[name]
	if !ok || f.Type == kindHistogram {
		return 0, false
	}
	return f.Value, true
}

// Histogram returns the named histogram family.
func (s *Scrape) Histogram(name string) (*Family, bool) {
	f, ok := s.Families[name]
	if !ok || f.Type != kindHistogram {
		return nil, false
	}
	return f, true
}

// Names returns every family name in sorted order.
func (s *Scrape) Names() []string {
	out := make([]string, 0, len(s.Families))
	for name := range s.Families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseExposition parses a Prometheus text-format 0.0.4 document. Samples
// suffixed _bucket/_sum/_count attach to the histogram family a preceding
// `# TYPE name histogram` line declared; everything else is a scalar
// family (typed by its # TYPE line, "untyped" otherwise). Duplicate
// scalar samples for one name, unparseable lines, and non-numeric values
// are errors — a daemon scrape is a contract, not best-effort text.
func ParseExposition(r io.Reader) (*Scrape, error) {
	s := &Scrape{Families: make(map[string]*Family)}
	histograms := make(map[string]*Family) // declared via # TYPE ... histogram
	seenScalar := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := s.parseComment(line, histograms); err != nil {
				return nil, fmt.Errorf("obs: exposition line %d: %w", lineno, err)
			}
			continue
		}
		if err := s.parseSample(line, histograms, seenScalar); err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	// Validate in sorted order so which malformed histogram is reported
	// does not depend on map iteration order.
	hnames := make([]string, 0, len(histograms))
	for name := range histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		if err := checkBuckets(histograms[name]); err != nil {
			return nil, fmt.Errorf("obs: histogram %s: %w", name, err)
		}
	}
	return s, nil
}

// parseComment handles # HELP / # TYPE lines (other comments are skipped,
// as the format allows).
func (s *Scrape) parseComment(line string, histograms map[string]*Family) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q in %s line", name, fields[1])
	}
	f := s.family(name)
	if fields[1] == "HELP" {
		if len(fields) == 4 {
			f.Help = fields[3]
		}
		return nil
	}
	typ := ""
	if len(fields) == 4 {
		typ = strings.TrimSpace(fields[3])
	}
	switch typ {
	case kindCounter, kindGauge, "untyped", "summary":
		f.Type = typ
	case kindHistogram:
		f.Type = kindHistogram
		histograms[name] = f
	default:
		return fmt.Errorf("unknown metric type %q for %s", typ, name)
	}
	return nil
}

// parseSample handles one `name[{labels}] value [timestamp]` line.
func (s *Scrape) parseSample(line string, histograms map[string]*Family, seenScalar map[string]bool) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	valStr := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		valStr = rest[:i] // drop the optional timestamp
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, valStr)
	}
	// Histogram series attach to the family their base name declared.
	for _, suffix := range [...]string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		h, ok := histograms[base]
		if !ok {
			continue // a scalar that merely ends in _count, e.g. foo_usec_count without a TYPE
		}
		switch suffix {
		case "_bucket":
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket sample without le label", base)
			}
			bound, err := parseLE(le)
			if err != nil {
				return fmt.Errorf("histogram %s: %w", base, err)
			}
			h.Buckets = append(h.Buckets, Bucket{LE: bound, Cum: val})
		case "_sum":
			h.Sum = val
		case "_count":
			h.Count = val
		}
		return nil
	}
	if len(labels) > 0 {
		// Labeled scalar series (foreign exporters): keep the first sample
		// of the family and ignore the rest — this repository's own
		// exposition never emits labeled scalars.
		f := s.family(name)
		if !seenScalar[name] {
			f.Value = val
			seenScalar[name] = true
		}
		return nil
	}
	if seenScalar[name] {
		return fmt.Errorf("duplicate sample for %s", name)
	}
	seenScalar[name] = true
	s.family(name).Value = val
	return nil
}

// family returns (creating if needed) the named family; new families start
// untyped until a # TYPE line says otherwise.
func (s *Scrape) family(name string) *Family {
	if f, ok := s.Families[name]; ok {
		return f
	}
	f := &Family{Name: name, Type: "untyped"}
	s.Families[name] = f
	return f
}

// checkBuckets validates a reassembled histogram: at least the +Inf
// bucket, strictly ascending bounds, non-decreasing cumulative counts,
// and a _count sample agreeing with the +Inf bucket.
func checkBuckets(f *Family) error {
	if len(f.Buckets) == 0 {
		return fmt.Errorf("declared histogram has no bucket samples")
	}
	for i := 1; i < len(f.Buckets); i++ {
		if !(f.Buckets[i].LE > f.Buckets[i-1].LE) {
			return fmt.Errorf("bucket bounds not ascending at %v", f.Buckets[i].LE)
		}
		if f.Buckets[i].Cum < f.Buckets[i-1].Cum {
			return fmt.Errorf("cumulative count decreases at le=%v", f.Buckets[i].LE)
		}
	}
	last := f.Buckets[len(f.Buckets)-1]
	if !math.IsInf(last.LE, 1) {
		return fmt.Errorf("missing +Inf bucket")
	}
	if f.Count != last.Cum {
		return fmt.Errorf("_count %v disagrees with +Inf bucket %v", f.Count, last.Cum)
	}
	return nil
}

// splitSample splits a sample line into name, parsed labels, and the
// remainder (value and optional timestamp).
func splitSample(line string) (string, map[string]string, string, error) {
	nameEnd := 0
	for nameEnd < len(line) && isNameChar(line[nameEnd], nameEnd == 0) {
		nameEnd++
	}
	if nameEnd == 0 {
		return "", nil, "", fmt.Errorf("unparseable sample line %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	var labels map[string]string
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, "", fmt.Errorf("sample %s: unterminated label set", name)
		}
		var err error
		if labels, err = parseLabels(rest[1:end]); err != nil {
			return "", nil, "", fmt.Errorf("sample %s: %w", name, err)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " \t")
	if rest == "" {
		return "", nil, "", fmt.Errorf("sample %s: missing value", name)
	}
	return name, labels, rest, nil
}

// parseLabels parses `k1="v1",k2="v2"` (escapes \\, \", \n as the format
// defines; this repository only ever emits the le label).
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq <= 0 {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %s", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		labels[key] = val.String()
		s = strings.TrimPrefix(s[i+1:], ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	bound, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le label %q", le)
	}
	return bound, nil
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		if !isNameChar(name[i], i == 0) {
			return false
		}
	}
	return name != ""
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
