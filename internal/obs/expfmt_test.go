package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestParseExpositionRoundTrip parses WritePrometheus output and requires
// every registered value to come back exactly: scalars, histogram
// bucket/sum/count reassembly, and quantile readouts reproduced from the
// parsed buckets matching the emitted _p50/_p99/_p999 gauges.
func TestParseExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_requests_total", "requests served")
	g := reg.Gauge("t_queue_depth", "live queue depth")
	reg.GaugeFunc("t_workers", "worker count", func() int64 { return 7 })
	h := reg.Histogram("t_latency_usec", "request latency")
	c.Add(41)
	g.Set(-3)
	for i := int64(0); i < 200; i++ {
		h.Observe(i * 37 % 5000)
	}
	h.Observe(10_000_000_000) // overflow bucket

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parsing own exposition: %v\n%s", err, buf.String())
	}

	for _, tc := range []struct {
		name string
		want float64
	}{
		{"t_requests_total", 41},
		{"t_queue_depth", -3},
		{"t_workers", 7},
	} {
		got, ok := s.Value(tc.name)
		if !ok || got != tc.want {
			t.Errorf("Value(%s) = %v,%v want %v", tc.name, got, ok, tc.want)
		}
	}

	f, ok := s.Histogram("t_latency_usec")
	if !ok {
		t.Fatalf("histogram family missing; families: %v", s.Names())
	}
	if f.Type != "histogram" {
		t.Errorf("family type = %q", f.Type)
	}
	if int64(f.Count) != h.Count() {
		t.Errorf("parsed count %v, live %d", f.Count, h.Count())
	}
	if int64(f.Sum) != h.Sum() {
		t.Errorf("parsed sum %v, live %d", f.Sum, h.Sum())
	}
	if len(f.Buckets) != len(LatencyBuckets)+1 {
		t.Fatalf("parsed %d buckets, want %d", len(f.Buckets), len(LatencyBuckets)+1)
	}
	if last := f.Buckets[len(f.Buckets)-1]; !math.IsInf(last.LE, 1) {
		t.Fatalf("last bucket bound %v, want +Inf", last.LE)
	}
	for _, q := range []struct {
		p string
		q float64
	}{{"_p50", 0.50}, {"_p99", 0.99}, {"_p999", 0.999}} {
		emitted, ok := s.Value("t_latency_usec" + q.p)
		if !ok {
			t.Fatalf("emitted quantile gauge %s missing", q.p)
		}
		if got := f.Quantile(q.q); got != emitted {
			t.Errorf("Quantile(%v) from buckets = %v, emitted gauge = %v", q.q, got, emitted)
		}
		if live := float64(h.Quantile(q.q)); live != emitted {
			t.Errorf("live Quantile(%v) = %v, emitted gauge = %v", q.q, live, emitted)
		}
	}
}

func TestParseExpositionForeignFeatures(t *testing.T) {
	doc := strings.Join([]string{
		`# some free-form comment`,
		`# HELP api_errors total errors, with  double  spaces`,
		`# TYPE api_errors counter`,
		`api_errors 12 1712345678901`, // trailing timestamp
		`# TYPE up untyped`,
		`up{instance="a:9090",job="x\"y\\z"} 1`, // labeled scalar with escapes
		`no_type_line 4.5e3`,
		``,
	}, "\n")
	s, err := ParseExposition(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("api_errors"); !ok || v != 12 {
		t.Errorf("api_errors = %v,%v", v, ok)
	}
	if f := s.Families["api_errors"]; f.Help != "total errors, with  double  spaces" {
		t.Errorf("help = %q", f.Help)
	}
	if v, ok := s.Value("up"); !ok || v != 1 {
		t.Errorf("up = %v,%v", v, ok)
	}
	if v, ok := s.Value("no_type_line"); !ok || v != 4500 {
		t.Errorf("no_type_line = %v,%v", v, ok)
	}
	if f := s.Families["no_type_line"]; f.Type != "untyped" {
		t.Errorf("no_type_line type = %q", f.Type)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage line", "!!!not a metric 3\n"},
		{"missing value", "foo_total\n"},
		{"non-numeric value", "foo_total banana\n"},
		{"duplicate scalar", "foo 1\nfoo 2\n"},
		{"unterminated labels", `foo{le="1 3` + "\n"},
		{"histogram without buckets", "# TYPE h histogram\nh_sum 0\nh_count 0\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{x=\"1\"} 0\n"},
		{"count disagrees with +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n"},
		{"decreasing cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"},
		{"unknown type", "# TYPE h rainbow\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseExposition(strings.NewReader(tc.doc)); err == nil {
				t.Fatalf("parsed malformed doc without error:\n%s", tc.doc)
			}
		})
	}
}

func TestDeltaHistogram(t *testing.T) {
	h := NewHistogram()
	// scrape renders h through the real exposition writer and re-parses it,
	// so the delta test covers render + parse + diff together.
	scrape := func() *Family {
		var buf bytes.Buffer
		buf.WriteString("# TYPE d_usec histogram\n")
		buf.Write(h.appendPrometheus(nil, "d_usec"))
		s, err := ParseExposition(&buf)
		if err != nil {
			t.Fatal(err)
		}
		f, ok := s.Histogram("d_usec")
		if !ok {
			t.Fatal("histogram missing")
		}
		return f
	}

	for i := 0; i < 50; i++ {
		h.Observe(2)
	}
	first := scrape()
	for i := 0; i < 5; i++ {
		h.Observe(2000)
	}
	second := scrape()

	d, err := DeltaHistogram(second, first)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 5 {
		t.Fatalf("delta count = %v, want 5", d.Count)
	}
	if d.Sum != 5*2000 {
		t.Fatalf("delta sum = %v, want %d", d.Sum, 5*2000)
	}
	if got := d.Quantile(0.5); got != 2000 {
		t.Fatalf("delta p50 = %v, want 2000", got)
	}
	// nil prev = "since the beginning".
	full, err := DeltaHistogram(second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Count != 55 {
		t.Fatalf("full count = %v, want 55", full.Count)
	}
	// Mismatched layouts are an error, not silent garbage.
	short := &Family{Name: "d_usec", Type: "histogram", Buckets: []Bucket{{LE: math.Inf(1), Cum: 1}}, Count: 1}
	if _, err := DeltaHistogram(second, short); err == nil {
		t.Fatal("mismatched bucket layouts did not error")
	}
}
