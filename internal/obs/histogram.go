package obs

import (
	"sort"
	"strconv"
	"sync/atomic"
)

// LatencyBuckets are the default histogram bucket upper bounds: a 1-2-5
// log-spaced series in microseconds from 1µs to 5×10⁹µs (~83 minutes).
// The table is fixed — every histogram shares one layout, so exposition
// output is byte-stable and two daemons' scrapes line up bucket for
// bucket. Consecutive bounds differ by at most 2.5×, which bounds how far
// a quantile readout can sit above the true sample quantile.
var LatencyBuckets = func() []int64 {
	var b []int64
	for scale := int64(1); scale <= 1_000_000_000; scale *= 10 {
		b = append(b, scale, 2*scale, 5*scale)
	}
	return b
}()

// Histogram counts observations into the fixed LatencyBuckets layout with
// lock-free atomic increments. Values above the last bound land in an
// overflow (+Inf) bucket. The zero value is NOT ready; use NewHistogram
// or Registry.Histogram.
type Histogram struct {
	counts []atomic.Int64 // len(LatencyBuckets)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns an unregistered histogram (oracle.Client keeps one
// per client without a registry).
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, len(LatencyBuckets)+1)}
}

// Observe records one value (microseconds for latency histograms).
// Negative observations count as zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	// Binary search for the first bound >= v; above all bounds lands in
	// the overflow slot.
	i := sort.Search(len(LatencyBuckets), func(i int) bool { return LatencyBuckets[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the q-quantile readout (0 < q <= 1): the upper bound of
// the bucket holding the ceil(q·count)-th smallest observation. The
// readout is exact in bucket resolution — it never sits below the true
// sample quantile, and never more than one bucket ratio (≤2.5×) above it.
// Observations in the overflow bucket report the last finite bound.
// An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := quantileRank(q, total)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i >= len(LatencyBuckets) {
				return LatencyBuckets[len(LatencyBuckets)-1]
			}
			return LatencyBuckets[i]
		}
	}
	return LatencyBuckets[len(LatencyBuckets)-1]
}

// quantileRank turns a quantile into a 1-based rank over total
// observations: the index of the ceil(q·total)-th smallest sample, clamped
// to [1, total].
func quantileRank(q float64, total int64) int64 {
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	return rank
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets —
// plain int64s, detached from the live atomics, so interval reporters can
// difference two snapshots without racing concurrent Observe calls.
type HistogramSnapshot struct {
	// Counts holds per-bucket (NON-cumulative) observation counts in the
	// LatencyBuckets layout; the extra last slot is the +Inf overflow.
	Counts []int64
	// Count is the total number of observations in Counts.
	Count int64
	// Sum is the sum of observed values. Under concurrent observation it
	// may lag or lead Counts by in-flight observations (the buckets and
	// the sum are separate atomics); Count is always consistent with
	// Counts.
	Sum int64
}

// Snapshot copies the histogram's current bucket counts. Each bucket is
// loaded atomically; a concurrent Observe lands either entirely before or
// entirely after its bucket's load, and because buckets only grow, the
// delta between two successive snapshots is non-negative bucket by bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]int64, len(h.counts)), Sum: h.sum.Load()}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Delta returns the interval view s−prev: observations recorded after prev
// was taken and up to s. prev must be an earlier snapshot of the same
// histogram (the zero HistogramSnapshot works as "since the beginning").
// Negative per-bucket deltas — snapshots from different histograms, or
// swapped arguments — clamp to zero rather than poisoning rate math.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Counts: make([]int64, len(s.Counts)), Sum: s.Sum - prev.Sum}
	for i := range s.Counts {
		v := s.Counts[i]
		if i < len(prev.Counts) {
			v -= prev.Counts[i]
		}
		if v < 0 {
			v = 0
		}
		d.Counts[i] = v
		d.Count += v
	}
	if d.Sum < 0 {
		d.Sum = 0
	}
	return d
}

// Quantile reads the q-quantile (0 < q <= 1) from the snapshot with the
// same bucket-upper-bound semantics as Histogram.Quantile: never below the
// true sample quantile, at most one bucket ratio above it, overflow
// reported as the last finite bound, 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := quantileRank(q, s.Count)
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i >= len(LatencyBuckets) {
				return LatencyBuckets[len(LatencyBuckets)-1]
			}
			return LatencyBuckets[i]
		}
	}
	return LatencyBuckets[len(LatencyBuckets)-1]
}

// appendPrometheus renders the histogram: cumulative le-labeled buckets,
// _sum and _count, then derived _p50/_p99/_p999 gauges (their own # TYPE
// blocks — the quantile readout the scrape-side SLO checks consume
// without histogram math).
func (h *Histogram) appendPrometheus(buf []byte, name string) []byte {
	var cum int64
	for i, bound := range LatencyBuckets {
		cum += h.counts[i].Load()
		buf = append(buf, name...)
		buf = append(buf, `_bucket{le="`...)
		buf = strconv.AppendInt(buf, bound, 10)
		buf = append(buf, `"} `...)
		buf = strconv.AppendInt(buf, cum, 10)
		buf = append(buf, '\n')
	}
	cum += h.counts[len(LatencyBuckets)].Load()
	buf = append(buf, name...)
	buf = append(buf, `_bucket{le="+Inf"} `...)
	buf = strconv.AppendInt(buf, cum, 10)
	buf = append(buf, '\n')
	buf = appendScalar(buf, name+"_sum", h.sum.Load())
	buf = appendScalar(buf, name+"_count", h.count.Load())
	for _, p := range [...]struct {
		suffix string
		q      float64
	}{{"_p50", 0.50}, {"_p99", 0.99}, {"_p999", 0.999}} {
		buf = append(buf, "# TYPE "...)
		buf = append(buf, name...)
		buf = append(buf, p.suffix...)
		buf = append(buf, " gauge\n"...)
		buf = appendScalar(buf, name+p.suffix, h.Quantile(p.q))
	}
	return buf
}
