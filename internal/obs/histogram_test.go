package obs

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
)

// TestLatencyBucketsShape pins the bucket table: strictly increasing,
// 1-2-5 per decade, 1µs through 5×10⁹µs.
func TestLatencyBucketsShape(t *testing.T) {
	if got, want := len(LatencyBuckets), 30; got != want {
		t.Fatalf("len(LatencyBuckets) = %d, want %d", got, want)
	}
	if LatencyBuckets[0] != 1 {
		t.Fatalf("first bound = %d, want 1", LatencyBuckets[0])
	}
	if last := LatencyBuckets[len(LatencyBuckets)-1]; last != 5_000_000_000 {
		t.Fatalf("last bound = %d, want 5e9", last)
	}
	for i := 1; i < len(LatencyBuckets); i++ {
		lo, hi := LatencyBuckets[i-1], LatencyBuckets[i]
		if hi <= lo {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, hi, lo)
		}
		if ratio := float64(hi) / float64(lo); ratio > 2.5 {
			t.Fatalf("bucket ratio at %d is %v > 2.5 (quantile error bound)", i, ratio)
		}
	}
}

// TestHistogramBucketBoundaries drives observations at, below, and above
// bucket edges and checks each lands in exactly the bucket whose upper
// bound is the first >= the value.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int // index into counts
	}{
		{-5, 0},             // negative clamps to zero, first bucket
		{0, 0},              // zero <= 1
		{1, 0},              // exactly on the first bound
		{2, 1},              // exactly on a bound lands in that bucket (le semantics)
		{3, 2},              // between 2 and 5
		{5, 2},              // on the 5 bound
		{6, 3},              // just above 5 -> le=10
		{999, 9},            // just below 1000
		{1000, 9},           // on the 1000 bound
		{1001, 10},          // just above
		{4_999_999_999, 29}, // just under the last bound
		{5_000_000_000, 29}, // on the last bound
		{5_000_000_001, 30}, // overflow -> +Inf
	}
	for _, c := range cases {
		h := NewHistogram()
		h.Observe(c.v)
		for i := range h.counts {
			want := int64(0)
			if i == c.bucket {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%d): bucket %d count = %d, want %d", c.v, i, got, want)
			}
		}
		if h.Count() != 1 {
			t.Errorf("Observe(%d): count = %d, want 1", c.v, h.Count())
		}
		wantSum := c.v
		if wantSum < 0 {
			wantSum = 0
		}
		if h.Sum() != wantSum {
			t.Errorf("Observe(%d): sum = %d, want %d", c.v, h.Sum(), wantSum)
		}
	}
}

// TestHistogramConcurrentIncrements hammers one histogram from many
// goroutines; totals must come out exact (run under -race in CI).
func TestHistogramConcurrentIncrements(t *testing.T) {
	h := NewHistogram()
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), uint64(w)^0xdeadbeef))
			for i := 0; i < per; i++ {
				h.Observe(int64(r.IntN(1_000_000)))
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), int64(workers*per); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != h.Count() {
		t.Fatalf("bucket total %d != count %d", cum, h.Count())
	}
}

// TestHistogramQuantileVsSortedSample checks the quantile readout against
// the exact sorted-sample quantile: the readout must never sit below it,
// and never more than one bucket ratio (2.5x, plus the bucket's own
// rounding up) above it.
func TestHistogramQuantileVsSortedSample(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 7^0xabcdef))
	samples := make([]int64, 0, 5000)
	h := NewHistogram()
	for i := 0; i < 5000; i++ {
		// Log-uniform spread so every decade gets traffic.
		v := r.Int64N(1 << (1 + r.IntN(30)))
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		rank := int(q * float64(len(samples)))
		if float64(rank) < q*float64(len(samples)) {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		exact := samples[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %d below exact sample quantile %d", q, got, exact)
		}
		// The readout is the bucket's upper bound: at most one bucket above
		// the bound that first covers the exact value.
		i := sort.Search(len(LatencyBuckets), func(i int) bool { return LatencyBuckets[i] >= exact })
		bound := LatencyBuckets[min(i, len(LatencyBuckets)-1)]
		if got > bound {
			t.Errorf("Quantile(%v) = %d above covering bound %d of exact %d", q, got, bound, exact)
		}
	}
}

// TestHistogramQuantileEmpty pins the empty readout.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
}

// TestHistogramQuantileSmallCounts pins exact ranks on tiny populations,
// where off-by-one rank rounding is most visible.
func TestHistogramQuantileSmallCounts(t *testing.T) {
	h := NewHistogram()
	h.Observe(1) // bucket le=1
	h.Observe(9) // bucket le=10
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 of {1,9} = %d, want 1 (rank 1 of 2)", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("p99 of {1,9} = %d, want 10", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Errorf("p100 of {1,9} = %d, want 10", got)
	}
}
