// Package obs is the unified observability layer: a metrics registry
// (counters, gauges, fixed-bucket latency histograms) exported in the
// Prometheus text exposition format, and deterministic pipeline tracing
// (phase/span records with monotonic-clock durations).
//
// The package sits deliberately OUTSIDE the determinism contract's output
// path: everything it measures is wall clock, and nothing it produces may
// feed a restoration output byte or a content-addressed job key. The
// sgrlint scope table encodes that boundary — wall-clock reads are legal
// here (span capture is this package's job) and in the daemons that embed
// a Registry, while the pipeline phases and the restored key path stay
// locked. Pipeline code that wants timing therefore calls into obs
// (Trace.Start, Timer) instead of reading the clock itself.
//
// Exposition is byte-stable: metrics export in sorted name order with
// fixed bucket layouts, so two scrapes with no activity in between are
// byte-identical — the same contract daemon.HealthzHandler makes for the
// liveness body.
package obs

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric with lock-cheap atomic
// increments.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds, in the vocabulary of the exposition format.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// metric is one registered name.
type metric struct {
	name, help, kind string

	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is cheap and typically happens once at
// service construction; reads during export take one lock around the
// (atomic) value loads.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric // sorted by name, maintained on register
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register inserts m keeping ordered sorted by name. Duplicate names
// panic: two owners of one metric name is a wiring bug, and catching it at
// construction beats silently double-counting.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric name " + m.name)
	}
	r.byName[m.name] = m
	i := sort.Search(len(r.ordered), func(i int) bool { return r.ordered[i].name > m.name })
	r.ordered = append(r.ordered, nil)
	copy(r.ordered[i+1:], r.ordered[i:])
	r.ordered[i] = m
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for live quantities that already have an owner (queue depths, table
// sizes, worker counts).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// Histogram registers and returns a latency histogram over the default
// log-spaced microsecond buckets.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := NewHistogram()
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// Sample is one scalar metric value, for exit logs and tests.
type Sample struct {
	Name  string
	Value int64
}

// Snapshot returns every counter and gauge value (histograms report their
// observation count under name_count), sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, len(r.ordered))
	for _, m := range r.ordered {
		switch {
		case m.counter != nil:
			out = append(out, Sample{m.name, m.counter.Value()})
		case m.gauge != nil:
			out = append(out, Sample{m.name, m.gauge.Value()})
		case m.gaugeFn != nil:
			out = append(out, Sample{m.name, m.gaugeFn()})
		case m.hist != nil:
			out = append(out, Sample{m.name + "_count", m.hist.Count()})
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE lines per metric, metrics in
// sorted name order, histograms as cumulative le-labeled buckets plus
// _sum/_count, followed by derived _p50/_p99/_p999 quantile gauges.
// With no metric activity between calls the output is byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := make([]byte, 0, 4096)
	for _, m := range r.ordered {
		buf = append(buf, "# HELP "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.kind...)
		buf = append(buf, '\n')
		switch {
		case m.counter != nil:
			buf = appendScalar(buf, m.name, m.counter.Value())
		case m.gauge != nil:
			buf = appendScalar(buf, m.name, m.gauge.Value())
		case m.gaugeFn != nil:
			buf = appendScalar(buf, m.name, m.gaugeFn())
		case m.hist != nil:
			buf = m.hist.appendPrometheus(buf, m.name)
		}
	}
	_, err := w.Write(buf)
	return err
}

func appendScalar(buf []byte, name string, v int64) []byte {
	buf = append(buf, name...)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, v, 10)
	buf = append(buf, '\n')
	return buf
}
