package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("svc_queries_served", "neighbor queries answered")
	g := r.Gauge("svc_active", "active somethings")
	r.GaugeFunc("svc_workers", "configured workers", func() int64 { return 4 })
	c.Add(41)
	c.Inc()
	g.Set(-1) // gauges may go negative

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP svc_queries_served neighbor queries answered\n",
		"# TYPE svc_queries_served counter\n",
		"svc_queries_served 42\n",
		"# TYPE svc_active gauge\n",
		"svc_active -1\n",
		"svc_workers 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Sorted name order regardless of registration order.
	if strings.Index(out, "svc_active") > strings.Index(out, "svc_queries_served") {
		t.Errorf("metrics not in sorted name order:\n%s", out)
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("svc_req_usec", "request latency")
	for _, v := range []int64{3, 3, 7, 40, 900, 6_000_000_000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE svc_req_usec histogram\n",
		`svc_req_usec_bucket{le="5"} 2` + "\n",  // the two 3s
		`svc_req_usec_bucket{le="10"} 3` + "\n", // + the 7
		`svc_req_usec_bucket{le="50"} 4` + "\n",
		`svc_req_usec_bucket{le="1000"} 5` + "\n",
		`svc_req_usec_bucket{le="+Inf"} 6` + "\n", // the overflow 6e9
		"svc_req_usec_count 6\n",
		"# TYPE svc_req_usec_p50 gauge\n",
		"svc_req_usec_p50 10\n", // rank 3 of 6 lands on the 7
		"svc_req_usec_p99 5000000000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if want := int64(3 + 3 + 7 + 40 + 900 + 6_000_000_000); h.Sum() != want {
		t.Errorf("sum = %d, want %d", h.Sum(), want)
	}
}

// TestExpositionByteStable mirrors the healthz byte-stability contract:
// with no metric activity, 32 scrapes are byte-identical — scrape
// pipelines may diff or hash the body.
func TestExpositionByteStable(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("svc_req_usec", "request latency")
	c := r.Counter("svc_served", "served")
	r.GaugeFunc("svc_depth", "queue depth", func() int64 { return 3 })
	h.Observe(17)
	h.Observe(90_000)
	c.Add(5)

	var first bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), first.Bytes()) {
			t.Fatalf("scrape %d differs:\n%s\nvs first:\n%s", i, buf.String(), first.String())
		}
	}
}

// TestExpositionParses applies the same shape check the e2e scripts'
// awk gate does: every non-comment line is "name value" or
// `name{labels} value` with a numeric value.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Histogram("svc_req_usec", "request latency").Observe(7)
	r.Counter("svc_served", "served").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("line %q does not split into name value", line)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "second")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_counter", "b").Add(2)
	r.Gauge("a_gauge", "a").Set(7)
	r.Histogram("c_hist_usec", "c").Observe(1)
	got := r.Snapshot()
	want := []Sample{{"a_gauge", 7}, {"b_counter", 2}, {"c_hist_usec_count", 1}}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
