package obs

import (
	"reflect"
	"testing"
)

// TestSnapshotQuantileBucketEdges pins the quantile readout exactly at
// bucket boundaries: an observation equal to a bound lands in that bound's
// bucket (sort.Search uses >=), one past it lands in the next, and the
// snapshot readout agrees with the live histogram's.
func TestSnapshotQuantileBucketEdges(t *testing.T) {
	cases := []struct {
		name string
		obs  []int64
		q    float64
		want int64
	}{
		{"exact bound", []int64{5}, 0.5, 5},
		{"one past bound", []int64{6}, 0.5, 10},
		{"zero lands in first bucket", []int64{0}, 0.5, 1},
		{"negative clamps to zero", []int64{-7}, 0.5, 1},
		{"median of two edge values", []int64{2, 5}, 0.5, 2},
		{"p99 of uniform bounds", []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}, 0.99, 1000},
		{"p50 rank rounds up", []int64{1, 1, 1, 1000}, 0.5, 1},
		{"overflow reports last finite bound", []int64{10_000_000_000}, 1.0, 5_000_000_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("live Quantile(%v) = %d, want %d", tc.q, got, tc.want)
			}
			if got := h.Snapshot().Quantile(tc.q); got != tc.want {
				t.Errorf("snapshot Quantile(%v) = %d, want %d", tc.q, got, tc.want)
			}
		})
	}
}

func TestSnapshotEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot has count=%d sum=%d", s.Count, s.Sum)
	}
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot quantile = %d, want 0", got)
	}
	// The zero value works as the "since the beginning" baseline.
	if d := s.Delta(HistogramSnapshot{}); d.Count != 0 {
		t.Fatalf("delta from zero snapshot has count %d", d.Count)
	}
}

// TestSnapshotDelta proves the interval story loadgen relies on: the delta
// between two snapshots covers exactly the observations in between, and
// its quantiles are computed over the interval, not the lifetime.
func TestSnapshotDelta(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(1) // first interval: all fast
	}
	first := h.Snapshot()
	for i := 0; i < 10; i++ {
		h.Observe(5000) // second interval: all slow
	}
	second := h.Snapshot()

	d := second.Delta(first)
	if d.Count != 10 {
		t.Fatalf("interval count = %d, want 10", d.Count)
	}
	if d.Sum != 10*5000 {
		t.Fatalf("interval sum = %d, want %d", d.Sum, 10*5000)
	}
	if got := d.Quantile(0.5); got != 5000 {
		t.Fatalf("interval p50 = %d, want 5000 (lifetime would be 1)", got)
	}
	if got := second.Quantile(0.5); got != 1 {
		t.Fatalf("lifetime p50 = %d, want 1", got)
	}
	// Deltas never go negative even with the arguments swapped.
	rev := first.Delta(second)
	if rev.Count != 0 || rev.Sum != 0 {
		t.Fatalf("swapped delta count=%d sum=%d, want 0,0", rev.Count, rev.Sum)
	}
	for i, c := range rev.Counts {
		if c < 0 {
			t.Fatalf("swapped delta bucket %d is negative: %d", i, c)
		}
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	h := NewHistogram()
	h.Observe(3)
	s := h.Snapshot()
	before := append([]int64(nil), s.Counts...)
	h.Observe(3)
	h.Observe(7)
	if !reflect.DeepEqual(s.Counts, before) {
		t.Fatal("snapshot mutated by later observations")
	}
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d, want 1", s.Count)
	}
}
