package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed region of a trace. Offsets and durations are
// microseconds of monotonic clock relative to the trace start. Count > 1
// marks an aggregate span (a Timer): DurUS is then the accumulated active
// time of Count start/stop episodes, beginning at StartUS.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_usec"`
	DurUS   int64  `json:"dur_usec"`
	Count   int64  `json:"count,omitempty"`
}

// Trace is an ordered sequence of spans sharing one start instant: the
// per-job (or per-run) pipeline timeline. All methods are nil-safe no-ops
// on a nil *Trace, so instrumented code runs untraced at zero cost beyond
// a pointer test — which is also how the byte-identity suites prove
// tracing adds no nondeterminism: spans only ever read the clock, never a
// random stream or an output byte.
//
// A Trace is safe for concurrent use, though the pipeline records spans
// from its serial driver only.
type Trace struct {
	name  string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace now.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Name returns the trace name ("" for nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Start opens a span and returns the closure that ends it. Spans appear
// in Spans in start order.
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	t.mu.Lock()
	i := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, StartUS: time.Since(t.start).Microseconds()})
	t.mu.Unlock()
	return func() {
		end := time.Since(t.start).Microseconds()
		t.mu.Lock()
		t.spans[i].DurUS = end - t.spans[i].StartUS
		t.mu.Unlock()
	}
}

// Timer returns an accumulating span: repeated Start/Stop episodes fold
// into one Span whose DurUS is total active time and whose Count is the
// episode count. This is the round-timing hook — a rewiring run has
// thousands of propose/commit rounds, far too many for one span each, but
// their aggregate split is exactly what the flame chart needs.
func (t *Trace) Timer(name string) *Timer {
	if t == nil {
		return nil
	}
	return &Timer{t: t, name: name, idx: -1}
}

// Timer accumulates start/stop episodes into one aggregate span. Methods
// on a nil *Timer are no-ops. A Timer is owned by one goroutine (the
// round driver); it is not concurrency-safe.
type Timer struct {
	t       *Trace
	name    string
	idx     int
	started time.Time
}

// Start begins an episode.
func (tm *Timer) Start() {
	if tm == nil {
		return
	}
	tm.started = time.Now()
}

// Stop ends an episode, folding it into the aggregate span (creating the
// span on the first episode).
func (tm *Timer) Stop() {
	if tm == nil {
		return
	}
	dur := time.Since(tm.started).Microseconds()
	startUS := tm.started.Sub(tm.t.start).Microseconds()
	tm.t.mu.Lock()
	if tm.idx < 0 {
		tm.idx = len(tm.t.spans)
		tm.t.spans = append(tm.t.spans, Span{Name: tm.name, StartUS: startUS})
	}
	sp := &tm.t.spans[tm.idx]
	sp.DurUS += dur
	sp.Count++
	tm.t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// TotalUS returns the span-covered extent of the trace: the latest span
// end offset (0 for nil or empty traces).
func (t *Trace) TotalUS() int64 {
	var total int64
	for _, sp := range t.Spans() {
		if end := sp.StartUS + sp.DurUS; end > total {
			total = end
		}
	}
	return total
}

// TraceJSON is the wire form of a trace: GET /v1/jobs/{id}/trace.
type TraceJSON struct {
	Name    string `json:"name"`
	TotalUS int64  `json:"total_usec"`
	Spans   []Span `json:"spans"`
}

// JSON returns the trace's wire form.
func (t *Trace) JSON() TraceJSON {
	return TraceJSON{Name: t.Name(), TotalUS: t.TotalUS(), Spans: t.Spans()}
}

// chromeEvent is one Chrome trace_event "complete" event. Fields follow
// the Trace Event Format spec (ph "X", microsecond ts/dur).
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// chromeTrace is the JSON-object container format chrome://tracing and
// Perfetto both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome dumps the trace in the Chrome trace_event format for
// flame-chart viewing (chrome://tracing, ui.perfetto.dev). Plain spans
// render on tid 1; aggregate Timer spans on tid 2, so their accumulated
// durations do not visually nest inside phases they interleave with.
func (t *Trace) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		tid := 1
		if sp.Count > 0 {
			tid = 2
		}
		events = append(events, chromeEvent{
			Name: sp.Name, Cat: "pipeline", Ph: "X",
			TS: sp.StartUS, Dur: sp.DurUS, PID: 1, TID: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
