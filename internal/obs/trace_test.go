package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceSpansOrderedAndCovering(t *testing.T) {
	tr := NewTrace("job")
	end := tr.Start("phase1")
	time.Sleep(2 * time.Millisecond)
	end()
	end = tr.Start("phase2")
	time.Sleep(2 * time.Millisecond)
	end()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "phase1" || spans[1].Name != "phase2" {
		t.Fatalf("span order = %q,%q", spans[0].Name, spans[1].Name)
	}
	if spans[0].StartUS > spans[1].StartUS {
		t.Fatalf("spans not in start order: %d > %d", spans[0].StartUS, spans[1].StartUS)
	}
	for _, sp := range spans {
		if sp.DurUS <= 0 {
			t.Errorf("span %s has no duration", sp.Name)
		}
	}
	if total := tr.TotalUS(); total < spans[1].StartUS+spans[1].DurUS {
		t.Errorf("TotalUS %d below last span end", total)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	end := tr.Start("anything")
	end()
	tm := tr.Timer("rounds")
	tm.Start()
	tm.Stop()
	if tr.Spans() != nil || tr.TotalUS() != 0 || tr.Name() != "" {
		t.Fatal("nil trace must be inert")
	}
}

func TestTimerAccumulates(t *testing.T) {
	tr := NewTrace("job")
	tm := tr.Timer("propose")
	for i := 0; i < 3; i++ {
		tm.Start()
		time.Sleep(time.Millisecond)
		tm.Stop()
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("timer made %d spans, want 1 aggregate", len(spans))
	}
	sp := spans[0]
	if sp.Name != "propose" || sp.Count != 3 {
		t.Fatalf("aggregate span = %+v, want 3 episodes", sp)
	}
	if sp.DurUS < 3*900 { // three ~1ms sleeps, generous floor
		t.Fatalf("aggregate duration %dus too small", sp.DurUS)
	}
}

func TestTraceJSONAndChrome(t *testing.T) {
	tr := NewTrace("demo")
	end := tr.Start("estimate")
	end()
	tm := tr.Timer("rewire/propose")
	tm.Start()
	tm.Stop()

	js := tr.JSON()
	if js.Name != "demo" || len(js.Spans) != 2 {
		t.Fatalf("JSON = %+v", js)
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome dump is not JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 || out.DisplayTimeUnit != "ms" {
		t.Fatalf("chrome dump = %+v", out)
	}
	if out.TraceEvents[0].Ph != "X" || out.TraceEvents[0].TID != 1 {
		t.Errorf("plain span event = %+v, want ph X on tid 1", out.TraceEvents[0])
	}
	if out.TraceEvents[1].TID != 2 {
		t.Errorf("aggregate span event = %+v, want tid 2", out.TraceEvents[1])
	}
}
