// Package oracle reifies the paper's graph-access model (Sec. III-A) as a
// networked service: a graphd HTTP/JSON server that exposes a hidden graph
// strictly through neighbor queries, and a resilient client that implements
// sampling.Access over the wire.
//
// The paper's setting is a third party crawling a remote social-network API
// under a query budget; everywhere else in this repository that API is
// simulated by an in-process sampling.GraphAccess. This package serves it
// for real, with the failure modes of real social-network APIs — per-client
// rate limits, latency, transient errors, private profiles — injected
// server-side, and the defenses a real crawler needs — bounded retries with
// exponential backoff, pagination reassembly, an in-flight-deduplicating
// neighbor cache, and an on-disk crawl journal that lets an interrupted
// crawl resume without re-spending API budget — built into the client.
//
// The wire protocol (version 1) has three endpoints:
//
//	GET /v1/meta                           -> Meta
//	GET /v1/nodes/{id}/neighbors?cursor=C  -> NeighborsPage (one page)
//	GET /v1/neighbors?ids=a,b,c            -> BatchNeighborsResponse
//
// The batch endpoint serves the first neighbor page of up to Meta.MaxBatch
// nodes in one round trip (per-item errors for private/unknown nodes, one
// rate-limit token per request, one served query per node); Client.Prefetch
// uses it to amortize HTTP overhead on BFS-frontier crawls.
//
// Neighbor lists are served in the hidden graph's adjacency order and
// paginated for high-degree hubs; a crawl through Client is therefore
// byte-identical to one through sampling.GraphAccess at the same seed.
// Errors are JSON Error bodies with a non-2xx status: 403 "private",
// 404 "unknown_node", 400 "bad_request", 429 "rate_limited" (with a
// Retry-After header), 503 "transient".
package oracle

// Meta is the response of GET /v1/meta: the node count crawlers need to
// turn a target fraction into an absolute budget, plus the server's page
// size so clients can size pagination loops. MaxBatch advertises the
// batched neighbors endpoint (0 or absent: the server has none, as with
// pre-batch servers, and clients fall back to single-node queries).
type Meta struct {
	Nodes    int `json:"nodes"`
	PageSize int `json:"page_size"`
	MaxBatch int `json:"max_batch,omitempty"`
}

// NeighborsPage is one page of GET /v1/nodes/{id}/neighbors. Neighbors
// holds the slice [cursor, cursor+page) of the node's adjacency list in
// stable server-side order; Degree is the full list's length.
type NeighborsPage struct {
	ID        int   `json:"id"`
	Degree    int   `json:"degree"`
	Neighbors []int `json:"neighbors"`
	// NextCursor is the offset of the next page. 0 means this page
	// completes the list (offset 0 is never a continuation).
	NextCursor int `json:"next_cursor,omitempty"`
}

// BatchNeighborsResponse is the body of GET /v1/neighbors?ids=a,b,c: one
// item per requested id, in request order. The endpoint exists to amortize
// per-request HTTP overhead on BFS-frontier crawls; it costs one rate-limit
// token per request while each served node still counts as one query.
type BatchNeighborsResponse struct {
	Results []BatchItem `json:"results"`
}

// BatchItem is one node's answer inside a batch response: either a first
// neighbor page (hubs longer than the page size set NextCursor, and the
// client continues on the single-node endpoint) or a per-item Error code
// ("private", "unknown_node") that leaves the rest of the batch intact.
type BatchItem struct {
	ID         int    `json:"id"`
	Degree     int    `json:"degree,omitempty"`
	Neighbors  []int  `json:"neighbors,omitempty"`
	NextCursor int    `json:"next_cursor,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Error is the JSON body of every non-2xx response.
type Error struct {
	Code string `json:"error"`
}

// Error codes.
const (
	ErrCodePrivate     = "private"
	ErrCodeUnknownNode = "unknown_node"
	ErrCodeBadRequest  = "bad_request"
	ErrCodeRateLimited = "rate_limited"
	ErrCodeTransient   = "transient"
)
