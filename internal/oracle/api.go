// Package oracle reifies the paper's graph-access model (Sec. III-A) as a
// networked service: a graphd HTTP/JSON server that exposes a hidden graph
// strictly through neighbor queries, and a resilient client that implements
// sampling.Access over the wire.
//
// The paper's setting is a third party crawling a remote social-network API
// under a query budget; everywhere else in this repository that API is
// simulated by an in-process sampling.GraphAccess. This package serves it
// for real, with the failure modes of real social-network APIs — per-client
// rate limits, latency, transient errors, private profiles — injected
// server-side, and the defenses a real crawler needs — bounded retries with
// exponential backoff, pagination reassembly, an in-flight-deduplicating
// neighbor cache, and an on-disk crawl journal that lets an interrupted
// crawl resume without re-spending API budget — built into the client.
//
// The wire protocol (version 1) has two endpoints:
//
//	GET /v1/meta                           -> Meta
//	GET /v1/nodes/{id}/neighbors?cursor=C  -> NeighborsPage (one page)
//
// Neighbor lists are served in the hidden graph's adjacency order and
// paginated for high-degree hubs; a crawl through Client is therefore
// byte-identical to one through sampling.GraphAccess at the same seed.
// Errors are JSON Error bodies with a non-2xx status: 403 "private",
// 404 "unknown_node", 400 "bad_request", 429 "rate_limited" (with a
// Retry-After header), 503 "transient".
package oracle

// Meta is the response of GET /v1/meta: the node count crawlers need to
// turn a target fraction into an absolute budget, plus the server's page
// size so clients can size pagination loops.
type Meta struct {
	Nodes    int `json:"nodes"`
	PageSize int `json:"page_size"`
}

// NeighborsPage is one page of GET /v1/nodes/{id}/neighbors. Neighbors
// holds the slice [cursor, cursor+page) of the node's adjacency list in
// stable server-side order; Degree is the full list's length.
type NeighborsPage struct {
	ID        int   `json:"id"`
	Degree    int   `json:"degree"`
	Neighbors []int `json:"neighbors"`
	// NextCursor is the offset of the next page. 0 means this page
	// completes the list (offset 0 is never a continuation).
	NextCursor int `json:"next_cursor,omitempty"`
}

// Error is the JSON body of every non-2xx response.
type Error struct {
	Code string `json:"error"`
}

// Error codes.
const (
	ErrCodePrivate     = "private"
	ErrCodeUnknownNode = "unknown_node"
	ErrCodeBadRequest  = "bad_request"
	ErrCodeRateLimited = "rate_limited"
	ErrCodeTransient   = "transient"
)
