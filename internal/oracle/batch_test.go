package oracle

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"

	"sgr/internal/sampling"
)

// TestServerPageEncodingMatchesEncodingJSON pins the pooled hand-rolled
// page encoder to encoding/json's output for the NeighborsPage struct,
// byte for byte (including the Encoder.Encode trailing newline), so wire
// compatibility with pre-CSR servers is structural, not accidental.
func TestServerPageEncodingMatchesEncodingJSON(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{PageSize: 3})
	hub := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) > g.Degree(hub) {
			hub = u
		}
	}
	for _, tc := range []struct{ id, cursor int }{
		{5, 0},               // one-page node
		{hub, 0},             // paginated first page
		{hub, 3},             // continuation page
		{hub, g.Degree(hub)}, // empty final page
	} {
		url := fmt.Sprintf("%s/v1/nodes/%d/neighbors?cursor=%d", ts.URL, tc.id, tc.cursor)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d cursor %d: status %d", tc.id, tc.cursor, resp.StatusCode)
		}
		nb := g.Neighbors(tc.id)
		end := tc.cursor + 3
		want := NeighborsPage{ID: tc.id, Degree: len(nb)}
		if end >= len(nb) {
			end = len(nb)
		} else {
			want.NextCursor = end
		}
		want.Neighbors = append([]int{}, nb[tc.cursor:end]...)
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(body); got != string(wantJSON)+"\n" {
			t.Fatalf("node %d cursor %d: body %q want %q", tc.id, tc.cursor, got, string(wantJSON)+"\n")
		}
	}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServerBatchNeighbors(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{PageSize: 5, MaxBatch: 4, Private: []int{2}})
	var m Meta
	if getAs(t, ts.URL+"/v1/meta", &m); m.MaxBatch != 4 {
		t.Fatalf("meta.MaxBatch = %d want 4", m.MaxBatch)
	}

	var resp BatchNeighborsResponse
	url := fmt.Sprintf("%s/v1/neighbors?ids=5,2,%d,0", ts.URL, g.N())
	if code := getAs(t, url, &resp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(resp.Results))
	}
	// Item 0: ordinary node, first page in adjacency order.
	it := resp.Results[0]
	nb := g.Neighbors(5)
	wantLen := len(nb)
	if wantLen > 5 {
		wantLen = 5
	}
	if it.ID != 5 || it.Error != "" || it.Degree != len(nb) || len(it.Neighbors) != wantLen {
		t.Fatalf("item 0 = %+v", it)
	}
	for i := 0; i < wantLen; i++ {
		if it.Neighbors[i] != nb[i] {
			t.Fatalf("item 0 neighbor order diverges at %d", i)
		}
	}
	if len(nb) > 5 && it.NextCursor != 5 {
		t.Fatalf("item 0 next_cursor = %d want 5", it.NextCursor)
	}
	// Item 1: private; item 2: unknown node — per-item errors.
	if resp.Results[1].Error != ErrCodePrivate || resp.Results[1].ID != 2 {
		t.Fatalf("private item = %+v", resp.Results[1])
	}
	if resp.Results[2].Error != ErrCodeUnknownNode {
		t.Fatalf("unknown item = %+v", resp.Results[2])
	}
	if resp.Results[3].Error != "" || resp.Results[3].ID != 0 {
		t.Fatalf("item 3 = %+v", resp.Results[3])
	}

	// Oversized and malformed batches are whole-request errors.
	var e Error
	if code := getAs(t, ts.URL+"/v1/neighbors?ids=1,2,3,4,5", &e); code != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d", code)
	}
	if code := getAs(t, ts.URL+"/v1/neighbors?ids=1,x", &e); code != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d", code)
	}
	if code := getAs(t, ts.URL+"/v1/neighbors", &e); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
}

// TestServerBatchCountsQueries: a batch of k served nodes advances
// QueriesServed by k, so budget telemetry cannot be gamed through batching.
func TestServerBatchCountsQueries(t *testing.T) {
	g := testGraph(t)
	srv, ts := startServer(t, g, ServerConfig{MaxBatch: 8, Private: []int{3}})
	var resp BatchNeighborsResponse
	if code := getAs(t, ts.URL+"/v1/neighbors?ids=0,1,3,4", &resp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	// 3 public nodes served; the private answer costs no served query.
	if got := srv.QueriesServed(); got != 3 {
		t.Fatalf("QueriesServed = %d want 3", got)
	}
}

// TestClientPrefetchCrawlsByteIdentical is the batching acceptance test:
// BFS, snowball and forest-fire crawls through a prefetching client against
// a batch-capable server (with pagination forced low so hub fallback runs)
// are byte-identical to the in-memory crawls, and the client pays for
// exactly the distinct nodes the crawl queried — prefetching never spends
// extra budget.
func TestClientPrefetchCrawlsByteIdentical(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{PageSize: 7, MaxBatch: 5})
	crawlers := map[string]func(a sampling.Access, seed uint64) (*sampling.Crawl, error){
		"bfs": func(a sampling.Access, seed uint64) (*sampling.Crawl, error) {
			return sampling.BFS(a, 17, 0.15)
		},
		"snowball": func(a sampling.Access, seed uint64) (*sampling.Crawl, error) {
			return sampling.Snowball(a, 17, 5, 0.15, walkRNG(seed))
		},
		"forestfire": func(a sampling.Access, seed uint64) (*sampling.Crawl, error) {
			return sampling.ForestFire(a, 17, 0.7, 0.15, walkRNG(seed))
		},
	}
	for name, crawl := range crawlers {
		t.Run(name, func(t *testing.T) {
			client := fastClient(t, ts)
			defer client.Close()
			remote, err := crawl(client, 99)
			if err != nil {
				t.Fatalf("remote: %v (client err: %v)", err, client.Err())
			}
			local, err := crawl(sampling.NewGraphAccess(g), 99)
			if err != nil {
				t.Fatalf("local: %v", err)
			}
			if !reflect.DeepEqual(crawlJSON(t, remote), crawlJSON(t, local)) {
				t.Fatal("remote crawl with prefetch diverges from in-memory crawl")
			}
			if got, want := client.NodesFetched(), int64(len(local.Queried)); got != want {
				t.Fatalf("NodesFetched = %d want %d (prefetch must not spend extra budget)", got, want)
			}
		})
	}
}

// TestClientPrefetchAgainstBatchlessServer: a server that does not
// advertise the batch endpoint turns Prefetch into a no-op and the crawl
// still completes identically over single-node queries.
func TestClientPrefetchAgainstBatchlessServer(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{MaxBatch: -1})
	var m Meta
	getAs(t, ts.URL+"/v1/meta", &m)
	if m.MaxBatch != 0 {
		t.Fatalf("batchless server advertises MaxBatch %d", m.MaxBatch)
	}
	// The route is not registered at all, so the mux's plain-text 404
	// answers (no JSON body to decode).
	if code := getAs(t, ts.URL+"/v1/neighbors?ids=1,2", nil); code != http.StatusNotFound {
		t.Fatalf("batch endpoint on batchless server: status %d", code)
	}
	client := fastClient(t, ts)
	defer client.Close()
	client.Prefetch([]int{1, 2, 3}) // must be a silent no-op
	remote, err := sampling.BFS(client, 17, 0.10)
	if err != nil {
		t.Fatalf("%v (client err: %v)", err, client.Err())
	}
	local, err := sampling.BFS(sampling.NewGraphAccess(g), 17, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(crawlJSON(t, remote), crawlJSON(t, local)) {
		t.Fatal("batchless crawl diverges from in-memory crawl")
	}
}

// TestClientPrefetchDedupAndPrivate: prefetched answers land in the shared
// cache (no re-fetch on the later query) and private answers keep
// PrivateAccess semantics and accounting.
func TestClientPrefetchDedupAndPrivate(t *testing.T) {
	g := testGraph(t)
	srv, ts := startServer(t, g, ServerConfig{MaxBatch: 8, Private: []int{4}})
	client := fastClient(t, ts)
	defer client.Close()
	client.Prefetch([]int{4, 5, 6})
	if got := srv.QueriesServed(); got != 2 {
		t.Fatalf("QueriesServed after prefetch = %d want 2", got)
	}
	reqs := client.Requests()
	nb, err := client.Neighbors(5)
	if err != nil || len(nb) != g.Degree(5) {
		t.Fatalf("Neighbors(5) after prefetch: %v, %d neighbors", err, len(nb))
	}
	if client.Requests() != reqs {
		t.Fatal("cached prefetch answer still hit the wire")
	}
	if nb := client.NeighborsOf(4); nb != nil {
		t.Fatal("private node must answer nil")
	}
	if !client.IsPrivate(4) || client.PrivateSeen() != 1 {
		t.Fatalf("private accounting: IsPrivate=%v PrivateSeen=%d", client.IsPrivate(4), client.PrivateSeen())
	}
	if got := client.NodesFetched(); got != 3 {
		t.Fatalf("NodesFetched = %d want 3 (private prefetches cost too)", got)
	}
}

// TestClientPrefetchHubContinuation: a prefetched hub whose list exceeds
// the page size keeps its batch-served first page and continues from the
// returned cursor — the hub costs exactly one served query per page (like
// plain pagination) and no neighbors transfer twice.
func TestClientPrefetchHubContinuation(t *testing.T) {
	g := testGraph(t)
	hub := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) > g.Degree(hub) {
			hub = u
		}
	}
	const pageSize = 4
	deg := g.Degree(hub)
	if deg <= pageSize {
		t.Fatalf("test graph hub degree %d too small", deg)
	}
	srv, ts := startServer(t, g, ServerConfig{PageSize: pageSize, MaxBatch: 8})
	client := fastClient(t, ts)
	defer client.Close()
	client.Prefetch([]int{hub})
	wantPages := int64((deg + pageSize - 1) / pageSize)
	if got := srv.QueriesServed(); got != wantPages {
		t.Fatalf("QueriesServed = %d want %d (one per page, first page from the batch)", got, wantPages)
	}
	nb, err := client.Neighbors(hub)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Neighbors(hub)
	if len(nb) != len(want) {
		t.Fatalf("reassembled %d neighbors want %d", len(nb), len(want))
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbor order diverges at %d", i)
		}
	}
	if client.NodesFetched() != 1 {
		t.Fatalf("NodesFetched = %d want 1", client.NodesFetched())
	}
}

// TestClientPrefetchJournaled: prefetched answers are journaled like
// single-node answers, so a resumed crawl replays them for free.
func TestClientPrefetchJournaled(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{MaxBatch: 8})
	path := t.TempDir() + "/crawl.journal"
	c1 := fastClient(t, ts, func(cfg *ClientConfig) { cfg.JournalPath = path })
	c1.Prefetch([]int{1, 2, 3})
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := fastClient(t, ts, func(cfg *ClientConfig) { cfg.JournalPath = path })
	defer c2.Close()
	reqs := c2.Requests()
	for _, u := range []int{1, 2, 3} {
		nb, err := c2.Neighbors(u)
		if err != nil || len(nb) != g.Degree(u) {
			t.Fatalf("replayed node %d: %v, %d neighbors", u, err, len(nb))
		}
	}
	if c2.Requests() != reqs {
		t.Fatal("journaled prefetch answers were re-fetched over the wire")
	}
	if c2.NodesFetched() != 0 {
		t.Fatalf("replay spent budget: NodesFetched = %d", c2.NodesFetched())
	}
}
