package oracle

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"sgr/internal/graph"
	"sgr/internal/sampling"
)

// benchClient dials ts with production-like retry settings.
func benchClient(b *testing.B, ts *httptest.Server) *Client {
	b.Helper()
	c, err := NewClient(ClientConfig{BaseURL: ts.URL})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkOracleNeighbors measures raw query throughput through the full
// stack — client, HTTP round trip, server, JSON both ways — on a fault-free
// oracle. Each iteration fetches a previously unseen node (a fresh client
// is cut in whenever the graph is exhausted), so the cache never flatters
// the number.
func BenchmarkOracleNeighbors(b *testing.B) {
	g := testGraph(b)
	_, ts := startServer(b, g, ServerConfig{})
	client := benchClient(b, ts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%g.N() == 0 && i > 0 {
			client.Close()
			client = benchClient(b, ts)
		}
		if _, err := client.Neighbors(i % g.N()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client.Close()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// refNeighborsHandler is the frozen pre-CSR server read path: a per-request
// copy of the live adjacency slice fed through a per-request json.Encoder,
// behind the same rate-limit/latency/fault front end as the live handler so
// the comparison isolates the page path. Serving it next to the CSR path
// puts the before/after queries/s numbers in one benchmark run on the same
// hardware.
func refNeighborsHandler(g *graph.Graph, pageSize int) http.Handler {
	s := NewServer(g, ServerConfig{PageSize: pageSize})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Meta{Nodes: g.N(), PageSize: pageSize})
	})
	mux.HandleFunc("GET /v1/nodes/{id}/neighbors", func(w http.ResponseWriter, r *http.Request) {
		if ok, retryAfter := s.limiter.Allow(clientKey(r), s.now()); !ok {
			w.Header().Set("Retry-After", retryAfterValue(retryAfter))
			writeJSON(w, http.StatusTooManyRequests, Error{Code: ErrCodeRateLimited})
			return
		}
		s.injectLatency()
		if s.serveFault(w) {
			return
		}
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil || id < 0 || id >= g.N() {
			writeJSON(w, http.StatusNotFound, Error{Code: ErrCodeUnknownNode})
			return
		}
		cursor := 0
		if c := r.URL.Query().Get("cursor"); c != "" {
			cursor, err = strconv.Atoi(c)
			if err != nil || cursor < 0 {
				writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
				return
			}
		}
		nb := g.Neighbors(id)
		if cursor > len(nb) {
			writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
			return
		}
		end := cursor + pageSize
		page := NeighborsPage{ID: id, Degree: len(nb)}
		if end >= len(nb) {
			end = len(nb)
		} else {
			page.NextCursor = end
		}
		page.Neighbors = append([]int{}, nb[cursor:end]...)
		writeJSON(w, http.StatusOK, page)
	})
	return mux
}

// BenchmarkOracleNeighborsRef is BenchmarkOracleNeighbors against the
// frozen pre-CSR handler — the "before" half of BENCH_props.json's oracle
// queries/s comparison.
func BenchmarkOracleNeighborsRef(b *testing.B) {
	g := testGraph(b)
	ts := httptest.NewServer(refNeighborsHandler(g, DefaultPageSize))
	defer ts.Close()
	client := benchClient(b, ts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%g.N() == 0 && i > 0 {
			client.Close()
			client = benchClient(b, ts)
		}
		if _, err := client.Neighbors(i % g.N()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client.Close()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServerNeighborsHandler serves neighbor pages straight through
// the handler (no sockets), isolating the server read path — CSR zero-copy
// rows plus pooled encoding vs the frozen copy-and-json.Encoder path —
// from HTTP round-trip noise.
func BenchmarkServerNeighborsHandler(b *testing.B) {
	g := testGraph(b)
	for _, tc := range []struct {
		name    string
		handler http.Handler
	}{
		{"csr", NewServer(g, ServerConfig{}).Handler()},
		{"ref", refNeighborsHandler(g, DefaultPageSize)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			reqs := make([]*http.Request, g.N())
			for u := 0; u < g.N(); u++ {
				reqs[u] = httptest.NewRequest(http.MethodGet,
					fmt.Sprintf("/v1/nodes/%d/neighbors", u), nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				tc.handler.ServeHTTP(w, reqs[i%g.N()])
				if w.Code != http.StatusOK {
					b.Fatalf("status %d", w.Code)
				}
			}
		})
	}
}

// BenchmarkOracleBFSCrawl measures a complete remote BFS crawl (10% of the
// graph) per iteration, cold cache each time — the frontier workload the
// batched /v1/neighbors endpoint amortizes. The Batch=off variant disables
// the endpoint server-side, so the split isolates the batching win.
func BenchmarkOracleBFSCrawl(b *testing.B) {
	for _, batch := range []struct {
		name string
		cfg  ServerConfig
	}{
		{"batch", ServerConfig{}},
		{"nobatch", ServerConfig{MaxBatch: -1}},
	} {
		b.Run(batch.name, func(b *testing.B) {
			g := testGraph(b)
			_, ts := startServer(b, g, batch.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				client := benchClient(b, ts)
				if _, err := sampling.BFS(client, 17, 0.10); err != nil {
					b.Fatalf("%v (client: %v)", err, client.Err())
				}
				client.Close()
			}
		})
	}
}

// BenchmarkOracleCrawl measures a complete remote random-walk crawl (10%
// of a 400-node graph) per iteration, cold cache each time — the
// end-to-end unit a paper run is built from.
func BenchmarkOracleCrawl(b *testing.B) {
	g := testGraph(b)
	_, ts := startServer(b, g, ServerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := benchClient(b, ts)
		if _, err := sampling.RandomWalk(client, 17, 0.10, walkRNG(11)); err != nil {
			b.Fatalf("%v (client: %v)", err, client.Err())
		}
		client.Close()
	}
}

// BenchmarkOracleConcurrentCrawlers measures aggregate throughput with 8
// crawlers sharing one server, the acceptance-criteria load shape.
func BenchmarkOracleConcurrentCrawlers(b *testing.B) {
	g := testGraph(b)
	_, ts := startServer(b, g, ServerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const crawlers = 8
		errc := make(chan error, crawlers)
		for w := 0; w < crawlers; w++ {
			go func(w int) {
				client, err := NewClient(ClientConfig{
					BaseURL: ts.URL,
					APIKey:  fmt.Sprintf("bench-%d", w),
				})
				if err != nil {
					errc <- err
					return
				}
				defer client.Close()
				_, err = sampling.RandomWalk(client, (w*37)%g.N(), 0.10, walkRNG(uint64(w)))
				errc <- err
			}(w)
		}
		for w := 0; w < crawlers; w++ {
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		}
	}
}
