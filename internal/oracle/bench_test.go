package oracle

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"sgr/internal/sampling"
)

// benchClient dials ts with production-like retry settings.
func benchClient(b *testing.B, ts *httptest.Server) *Client {
	b.Helper()
	c, err := NewClient(ClientConfig{BaseURL: ts.URL})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkOracleNeighbors measures raw query throughput through the full
// stack — client, HTTP round trip, server, JSON both ways — on a fault-free
// oracle. Each iteration fetches a previously unseen node (a fresh client
// is cut in whenever the graph is exhausted), so the cache never flatters
// the number.
func BenchmarkOracleNeighbors(b *testing.B) {
	g := testGraph(b)
	_, ts := startServer(b, g, ServerConfig{})
	client := benchClient(b, ts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%g.N() == 0 && i > 0 {
			client.Close()
			client = benchClient(b, ts)
		}
		if _, err := client.Neighbors(i % g.N()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client.Close()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkOracleCrawl measures a complete remote random-walk crawl (10%
// of a 400-node graph) per iteration, cold cache each time — the
// end-to-end unit a paper run is built from.
func BenchmarkOracleCrawl(b *testing.B) {
	g := testGraph(b)
	_, ts := startServer(b, g, ServerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client := benchClient(b, ts)
		if _, err := sampling.RandomWalk(client, 17, 0.10, walkRNG(11)); err != nil {
			b.Fatalf("%v (client: %v)", err, client.Err())
		}
		client.Close()
	}
}

// BenchmarkOracleConcurrentCrawlers measures aggregate throughput with 8
// crawlers sharing one server, the acceptance-criteria load shape.
func BenchmarkOracleConcurrentCrawlers(b *testing.B) {
	g := testGraph(b)
	_, ts := startServer(b, g, ServerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		const crawlers = 8
		errc := make(chan error, crawlers)
		for w := 0; w < crawlers; w++ {
			go func(w int) {
				client, err := NewClient(ClientConfig{
					BaseURL: ts.URL,
					APIKey:  fmt.Sprintf("bench-%d", w),
				})
				if err != nil {
					errc <- err
					return
				}
				defer client.Close()
				_, err = sampling.RandomWalk(client, (w*37)%g.N(), 0.10, walkRNG(uint64(w)))
				errc <- err
			}(w)
		}
		for w := 0; w < crawlers; w++ {
			if err := <-errc; err != nil {
				b.Fatal(err)
			}
		}
	}
}
