package oracle

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sgr/internal/obs"
	"sgr/internal/sampling"
)

// Client implements the paper's access model over the wire, including the
// advisory batch-prefetch extension.
var (
	_ sampling.Access     = (*Client)(nil)
	_ sampling.Prefetcher = (*Client)(nil)
)

// ClientConfig configures a Client. Only BaseURL is required.
type ClientConfig struct {
	// BaseURL is the graphd root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey, when set, is sent as X-API-Key — the server's rate-limit
	// identity. Distinct crawlers should use distinct keys.
	APIKey string
	// MaxRetries bounds retries per HTTP request (beyond the first
	// attempt) on 429/5xx/transport errors. Default 8.
	MaxRetries int
	// BaseBackoff is the first retry delay, doubling per attempt up to
	// MaxBackoff. A 429's Retry-After header overrides the schedule.
	// Defaults 100ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RequestTimeout caps each HTTP attempt when HTTPClient is unset
	// (default 30s), so a black-holed connection fails into the retry
	// machinery instead of hanging the crawl. Ignored when HTTPClient is
	// provided — set the custom client's own Timeout.
	RequestTimeout time.Duration
	// HTTPClient overrides the transport (default: a client with
	// RequestTimeout).
	HTTPClient *http.Client
	// JournalPath, when set, opens a crawl journal there: every answered
	// query is persisted before use, and answers already journaled are
	// replayed from disk instead of the wire, so an interrupted crawl
	// rerun with the same seed resumes without re-spending budget.
	JournalPath string
}

// Client speaks the oracle wire protocol and implements sampling.Access,
// so every crawler in the repository runs unchanged against a remote
// graphd. It is safe for concurrent use by many goroutines (the acceptance
// bar is 8+ concurrent crawlers): identical in-flight queries are
// deduplicated onto one HTTP fetch, and completed answers are cached for
// the client's lifetime — matching the access model's static-graph view.
type Client struct {
	cfg     ClientConfig
	httpc   *http.Client
	baseURL string
	meta    Meta
	journal *Journal

	mu    sync.Mutex
	cache map[int]*entry

	errMu    sync.Mutex
	firstErr error

	nodesFetched atomic.Int64 // nodes answered over the wire (budget spent)
	requests     atomic.Int64 // HTTP attempts issued, including retries
	privateSeen  atomic.Int64 // private answers observed (wire or journal)

	// Transport telemetry behind Stats(). queryUsec measures whole getJSON
	// calls — retries, backoff sleeps and pagination included — because the
	// crawler-visible wait per query is the cost that dominates real OSN
	// crawls, not server CPU. None of this feeds crawl bytes: the crawl is
	// byte-identical whatever the latencies were.
	retries         atomic.Int64   // attempts beyond the first, per request
	rateLimited     atomic.Int64   // 429 answers observed
	backoffUS       atomic.Int64   // cumulative backoff sleep, microseconds
	cacheHits       atomic.Int64   // Neighbors served from cache (journal replays included)
	prefetchBatches atomic.Int64   // batch requests issued by Prefetch
	prefetchNodes   atomic.Int64   // nodes claimed by Prefetch
	queryUsec       *obs.Histogram // per-query wait (full retry loop)

	sleep func(time.Duration)
}

// Stats is a point-in-time snapshot of the client's transport telemetry.
// Pure observation: two crawls with wildly different Stats still produce
// byte-identical crawl records at the same seed.
type Stats struct {
	// NodesFetched, Requests mirror the accessor methods.
	NodesFetched int64 `json:"nodes_fetched"`
	Requests     int64 `json:"requests"`
	// Retries counts HTTP attempts beyond each request's first; RateLimited
	// counts 429 answers; Backoff is the total time slept between attempts
	// (serialized in nanoseconds, time.Duration's integer form).
	Retries     int64         `json:"retries"`
	RateLimited int64         `json:"rate_limited"`
	Backoff     time.Duration `json:"backoff_ns"`
	// CacheHits counts Neighbors calls answered without a fetch (lifetime
	// cache, journal replays included). PrefetchBatches/PrefetchNodes count
	// batched warm-up requests and the nodes they claimed.
	CacheHits       int64 `json:"cache_hits"`
	PrefetchBatches int64 `json:"prefetch_batches"`
	PrefetchNodes   int64 `json:"prefetch_nodes"`
	// Queries is the latency-histogram population; QueryP50/QueryP99 are
	// its quantile readouts (upper bucket bounds, so never optimistic).
	Queries  int64         `json:"queries"`
	QueryP50 time.Duration `json:"query_p50_ns"`
	QueryP99 time.Duration `json:"query_p99_ns"`
}

// Stats snapshots the client's transport telemetry.
func (c *Client) Stats() Stats {
	return Stats{
		NodesFetched:    c.nodesFetched.Load(),
		Requests:        c.requests.Load(),
		Retries:         c.retries.Load(),
		RateLimited:     c.rateLimited.Load(),
		Backoff:         time.Duration(c.backoffUS.Load()) * time.Microsecond,
		CacheHits:       c.cacheHits.Load(),
		PrefetchBatches: c.prefetchBatches.Load(),
		PrefetchNodes:   c.prefetchNodes.Load(),
		Queries:         c.queryUsec.Count(),
		QueryP50:        time.Duration(c.queryUsec.Quantile(0.50)) * time.Microsecond,
		QueryP99:        time.Duration(c.queryUsec.Quantile(0.99)) * time.Microsecond,
	}
}

// entry is one node's cache slot. done closes when nb/private/err are
// final; waiters block on it, so one fetch serves every concurrent caller.
type entry struct {
	done    chan struct{}
	nb      []int
	private bool
	err     error
}

// errPrivateNode marks a 403 "private" answer internally; callers see a
// nil neighbor list with no error, per sampling.PrivateAccess semantics.
var errPrivateNode = errors.New("private node")

// NewClient connects to a graphd, fetching /v1/meta (with retries) and
// replaying the journal when configured. Close releases the journal.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("oracle: ClientConfig.BaseURL is required")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	c := &Client{
		cfg:       cfg,
		httpc:     cfg.HTTPClient,
		baseURL:   strings.TrimRight(cfg.BaseURL, "/"),
		cache:     make(map[int]*entry),
		queryUsec: obs.NewHistogram(),
		sleep:     time.Sleep,
	}
	if c.httpc == nil {
		c.httpc = &http.Client{Timeout: cfg.RequestTimeout}
	}
	if err := c.getJSON(c.baseURL+"/v1/meta", &c.meta); err != nil {
		return nil, fmt.Errorf("oracle: fetching meta from %s: %w", cfg.BaseURL, err)
	}
	if c.meta.Nodes <= 0 {
		return nil, fmt.Errorf("oracle: server reports %d nodes", c.meta.Nodes)
	}
	if cfg.JournalPath != "" {
		j, entries, _, err := OpenJournal(cfg.JournalPath, c.meta.Nodes)
		if err != nil {
			return nil, err
		}
		c.journal = j
		for _, je := range entries {
			e := &entry{done: make(chan struct{}), nb: je.Neighbors, private: je.Private}
			close(e.done)
			c.cache[je.U] = e
			if je.Private {
				c.privateSeen.Add(1)
			}
		}
	}
	return c, nil
}

// Close releases the journal, if any.
func (c *Client) Close() error {
	if c.journal == nil {
		return nil
	}
	return c.journal.Close()
}

// NumNodes implements sampling.Access from the cached /v1/meta answer.
func (c *Client) NumNodes() int { return c.meta.Nodes }

// PageSize reports the server's pagination unit.
func (c *Client) PageSize() int { return c.meta.PageSize }

// NodesFetched reports how many node answers were paid for over the wire
// (journal replays and cache hits are free).
func (c *Client) NodesFetched() int64 { return c.nodesFetched.Load() }

// Requests reports HTTP attempts issued, including retries and pagination.
func (c *Client) Requests() int64 { return c.requests.Load() }

// PrivateSeen reports how many queried nodes answered private (over the
// wire or replayed from the journal). Crawl drivers use it to explain
// walks that die on hidden neighbor lists.
func (c *Client) PrivateSeen() int64 { return c.privateSeen.Load() }

// Err returns the first hard failure (retries exhausted, protocol error)
// the client has hit. NeighborsOf cannot return an error through
// sampling.Access, so crawl drivers must check Err after a failed crawl to
// distinguish network death from a genuinely stuck walk.
func (c *Client) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

// IsPrivate reports whether a *previously queried* node answered 403
// private. Unqueried nodes report false — privacy over the wire is only
// observable by spending the query, unlike sampling.PrivateAccess.
func (c *Client) IsPrivate(u int) bool {
	c.mu.Lock()
	e, ok := c.cache[u]
	c.mu.Unlock()
	if !ok {
		return false
	}
	<-e.done
	return e.private
}

// NeighborsOf implements sampling.Access. Private nodes and hard failures
// both yield nil; Err distinguishes them.
func (c *Client) NeighborsOf(u int) []int {
	nb, _ := c.Neighbors(u)
	return nb
}

// Neighbors returns u's full neighbor list, reassembled across pages, in
// the server's stable order. Concurrent calls for the same node share one
// fetch; completed answers are served from cache.
func (c *Client) Neighbors(u int) ([]int, error) {
	c.mu.Lock()
	if e, ok := c.cache[u]; ok {
		c.mu.Unlock()
		c.cacheHits.Add(1)
		<-e.done
		return e.nb, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.cache[u] = e
	c.mu.Unlock()

	nb, err := c.fetchNode(u)
	return c.commit(u, e, nb, err)
}

// commit finalizes an in-flight cache entry with a fetched answer (or
// failure), journals it, and releases the entry's waiters. It is the single
// completion path shared by Neighbors and Prefetch.
func (c *Client) commit(u int, e *entry, nb []int, err error) ([]int, error) {
	switch {
	case errors.Is(err, errPrivateNode):
		// A private answer still spends the query (the server charged the
		// request), it just yields no data.
		e.private = true
		c.nodesFetched.Add(1)
		c.privateSeen.Add(1)
	case err != nil:
		e.err = err
		c.recordErr(err)
	default:
		e.nb = nb
		c.nodesFetched.Add(1)
	}
	if c.journal != nil && e.err == nil {
		if jerr := c.journal.Append(u, e.nb, e.private); jerr != nil {
			e.nb, e.private = nil, false
			e.err = fmt.Errorf("oracle: journaling node %d: %w", u, jerr)
			c.recordErr(e.err)
		}
	}
	if e.err != nil {
		// Only answers are cached. Dropping the failed entry (before
		// releasing its waiters) lets a later query retry the node once
		// the outage passes, instead of serving the stale error for the
		// client's lifetime; Err keeps the first failure for diagnosis.
		c.mu.Lock()
		if c.cache[u] == e {
			delete(c.cache, u)
		}
		c.mu.Unlock()
	}
	close(e.done)
	return e.nb, e.err
}

// Prefetch warms the neighbor cache for ids the caller is certain to query
// — sampling's BFS-family crawlers hand it the frontier prefix covered by
// the remaining budget — using the server's batched endpoint to amortize
// HTTP round trips. It implements sampling.Prefetcher and is purely
// advisory: every answer flows through the same commit path as Neighbors
// (budget accounting, journal, dedup), so crawls are byte-identical with
// and without it. Ids already cached or in flight are skipped; nodes whose
// batch answer is incomplete (paginated hubs) or missing fall back to the
// single-node path. Against a server without the batch endpoint
// (Meta.MaxBatch == 0) it is a no-op.
func (c *Client) Prefetch(ids []int) {
	if c.meta.MaxBatch <= 0 || len(ids) == 0 {
		return
	}
	var owned []int
	var entries []*entry
	c.mu.Lock()
	for _, u := range ids {
		if u < 0 || u >= c.meta.Nodes {
			continue
		}
		if _, ok := c.cache[u]; ok {
			continue
		}
		e := &entry{done: make(chan struct{})}
		c.cache[u] = e
		owned = append(owned, u)
		entries = append(entries, e)
	}
	c.mu.Unlock()
	c.prefetchNodes.Add(int64(len(owned)))
	for len(owned) > 0 {
		n := len(owned)
		if n > c.meta.MaxBatch {
			n = c.meta.MaxBatch
		}
		c.prefetchBatches.Add(1)
		c.prefetchChunk(owned[:n], entries[:n])
		owned, entries = owned[n:], entries[n:]
	}
}

// prefetchChunk resolves one batch request's worth of claimed entries.
// Every claimed entry is committed exactly once — a batch answer when it is
// complete, the single-node fetch path otherwise — so waiters never block
// on an abandoned entry.
func (c *Client) prefetchChunk(ids []int, entries []*entry) {
	var sb strings.Builder
	sb.WriteString(c.baseURL)
	sb.WriteString("/v1/neighbors?ids=")
	for i, u := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(u))
	}
	var resp BatchNeighborsResponse
	items := make(map[int]*BatchItem, len(ids))
	if err := c.getJSON(sb.String(), &resp); err == nil {
		for i := range resp.Results {
			items[resp.Results[i].ID] = &resp.Results[i]
		}
	}
	for i, u := range ids {
		e := entries[i]
		if it, ok := items[u]; ok {
			switch {
			case it.Error == ErrCodePrivate:
				c.commit(u, e, nil, errPrivateNode)
				continue
			case it.Error == "" && it.NextCursor == 0 && len(it.Neighbors) == it.Degree:
				nb := it.Neighbors
				if len(nb) == 0 {
					nb = nil // match the single-node path for degree-0 nodes
				}
				c.commit(u, e, nb, nil)
				continue
			case it.Error == "" && it.NextCursor > 0:
				// Paginated hub: keep the batch-served first page and
				// continue from its cursor on the single-node endpoint, so
				// no neighbors transfer twice and the hub costs exactly
				// one served query per page, like plain pagination.
				nb, err := c.fetchNodeFrom(u, append([]int(nil), it.Neighbors...), it.NextCursor)
				c.commit(u, e, nb, err)
				continue
			}
		}
		// Batch failed, item missing, or an unknown id: resolve through
		// the single-node path, retries and all.
		nb, err := c.fetchNode(u)
		c.commit(u, e, nb, err)
	}
}

// RecordWalk appends the completed walk sequence to the journal, turning
// it into a self-contained crawl for LoadCrawlFromJournal.
func (c *Client) RecordWalk(walk []int) error {
	if c.journal == nil {
		return errors.New("oracle: client has no journal")
	}
	return c.journal.AppendWalk(walk)
}

func (c *Client) recordErr(err error) {
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
}

// fetchNode reassembles u's neighbor list across pages.
func (c *Client) fetchNode(u int) ([]int, error) {
	return c.fetchNodeFrom(u, nil, 0)
}

// fetchNodeFrom continues reassembling u's neighbor list from cursor,
// with nb holding the neighbors already received (a batch answer's first
// page, or nothing).
func (c *Client) fetchNodeFrom(u int, nb []int, cursor int) ([]int, error) {
	for {
		var page NeighborsPage
		url := fmt.Sprintf("%s/v1/nodes/%d/neighbors", c.baseURL, u)
		if cursor > 0 {
			url += "?cursor=" + strconv.Itoa(cursor)
		}
		if err := c.getJSON(url, &page); err != nil {
			return nil, fmt.Errorf("oracle: node %d cursor %d: %w", u, cursor, err)
		}
		nb = append(nb, page.Neighbors...)
		if page.NextCursor == 0 {
			if len(nb) != page.Degree {
				return nil, fmt.Errorf("oracle: node %d: reassembled %d neighbors, server reports degree %d",
					u, len(nb), page.Degree)
			}
			return nb, nil
		}
		if page.NextCursor <= cursor {
			return nil, fmt.Errorf("oracle: node %d: non-advancing cursor %d", u, page.NextCursor)
		}
		cursor = page.NextCursor
	}
}

// getJSON issues one GET with bounded retries and exponential backoff,
// decoding a 200 body into out. 429 (honoring Retry-After, clamped to
// MaxBackoff), any 5xx, transport errors — timeouts, resets, truncated
// reads — and 200 bodies that fail to decode all retry; 4xx protocol
// errors are permanent.
func (c *Client) getJSON(url string, out any) error {
	start := time.Now()
	defer func() { c.queryUsec.Observe(time.Since(start).Microseconds()) }()
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			d := c.backoff(attempt, lastErr)
			c.backoffUS.Add(d.Microseconds())
			c.sleep(d)
		}
		c.requests.Add(1)
		resp, err := c.doGet(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			if err := json.Unmarshal(body, out); err != nil {
				// A 200 whose body does not parse is transport damage — a
				// truncated read the framing didn't catch, a corrupting
				// proxy — not a protocol answer. Treating it as permanent
				// would kill a crawl a single clean retry could save.
				lastErr = fmt.Errorf("decoding response: %w", err)
				continue
			}
			return nil
		case resp.StatusCode == http.StatusForbidden && errCode(body) == ErrCodePrivate:
			return errPrivateNode
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			if resp.StatusCode == http.StatusTooManyRequests {
				c.rateLimited.Add(1)
			}
			lastErr = &retriableStatus{status: resp.StatusCode, retryAfter: parseRetryAfter(resp)}
			continue
		default:
			return fmt.Errorf("HTTP %d (%s)", resp.StatusCode, errCode(body))
		}
	}
	return fmt.Errorf("giving up after %d attempts: %w", c.cfg.MaxRetries+1, lastErr)
}

func (c *Client) doGet(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if c.cfg.APIKey != "" {
		req.Header.Set("X-API-Key", c.cfg.APIKey)
	}
	return c.httpc.Do(req)
}

// retriableStatus carries a retry-worthy HTTP status and the server's
// Retry-After hint (0 when absent).
type retriableStatus struct {
	status     int
	retryAfter time.Duration
}

func (e *retriableStatus) Error() string { return fmt.Sprintf("HTTP %d", e.status) }

// backoff returns the delay before retry number attempt (1-based): the
// server's Retry-After when the last failure carried one, else
// BaseBackoff doubled per attempt. Either way the delay is capped at
// MaxBackoff — Retry-After is a hint from an untrusted peer, and a
// hostile or buggy value must not park the crawler for an hour.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var rs *retriableStatus
	if errors.As(lastErr, &rs) && rs.retryAfter > 0 {
		if rs.retryAfter > c.cfg.MaxBackoff {
			return c.cfg.MaxBackoff
		}
		return rs.retryAfter
	}
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	return d
}

// parseRetryAfter reads Retry-After as (possibly fractional) seconds; 0
// means absent or unparseable and falls back to the backoff schedule.
func parseRetryAfter(resp *http.Response) time.Duration {
	s, err := strconv.ParseFloat(resp.Header.Get("Retry-After"), 64)
	if err != nil || s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

func errCode(body []byte) string {
	var e Error
	if json.Unmarshal(body, &e) != nil || e.Code == "" {
		return "unknown error"
	}
	return e.Code
}
