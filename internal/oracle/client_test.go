package oracle

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sgr/internal/sampling"
)

// fastClient dials ts with retry delays suitable for tests.
func fastClient(t testing.TB, ts *httptest.Server, opts ...func(*ClientConfig)) *Client {
	t.Helper()
	cfg := ClientConfig{
		BaseURL:     ts.URL,
		MaxRetries:  12,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// crawlJSON serializes a crawl to its canonical JSON bytes.
func crawlJSON(t testing.TB, c *sampling.Crawl) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func walkRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x27d4eb2f)) }

// TestClientCrawlByteIdentical is the subsystem's headline guarantee: the
// same seeded random walk through graphd — under injected latency, jitter
// and a 30% transient-503 rate — produces a crawl byte-identical to the
// in-memory sampling.GraphAccess path.
func TestClientCrawlByteIdentical(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{
		PageSize:  5, // force heavy pagination
		Latency:   100 * time.Microsecond,
		Jitter:    100 * time.Microsecond,
		ErrorRate: 0.3,
		FaultSeed: 99,
	})
	client := fastClient(t, ts)
	if client.NumNodes() != g.N() {
		t.Fatalf("NumNodes() = %d, want %d", client.NumNodes(), g.N())
	}

	remote, err := sampling.RandomWalk(client, 17, 0.15, walkRNG(11))
	if err != nil {
		t.Fatalf("remote walk: %v (client: %v)", err, client.Err())
	}
	if client.Err() != nil {
		t.Fatalf("client error after successful crawl: %v", client.Err())
	}
	local, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 17, 0.15, walkRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crawlJSON(t, remote), crawlJSON(t, local)) {
		t.Fatal("remote crawl JSON differs from in-memory crawl")
	}
	if client.Requests() <= client.NodesFetched() {
		t.Fatalf("with 30%% faults and page size 5, requests (%d) must exceed nodes fetched (%d)",
			client.Requests(), client.NodesFetched())
	}
}

// TestClientRetries503 pins retry behavior: a server that fails each node's
// first two requests with 503 must still serve a correct answer, costing
// exactly 3 attempts per page.
func TestClientRetries503(t *testing.T) {
	g := testGraph(t)
	inner := NewServer(g, ServerConfig{})
	var mu sync.Mutex
	fails := make(map[string]int)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" {
			mu.Lock()
			n := fails[r.URL.RequestURI()]
			fails[r.URL.RequestURI()] = n + 1
			mu.Unlock()
			if n < 2 {
				writeJSON(w, http.StatusServiceUnavailable, Error{Code: ErrCodeTransient})
				return
			}
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	client := fastClient(t, ts)

	nb, err := client.Neighbors(7)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Neighbors(7)
	if len(nb) != len(want) {
		t.Fatalf("got %d neighbors, want %d", len(nb), len(want))
	}
	if got := client.Requests(); got != 4 { // 1 meta + 3 attempts
		t.Fatalf("Requests() = %d, want 4 (meta + two 503s + success)", got)
	}
}

// TestClientRetries429 pins rate-limit handling: a 429 with Retry-After
// within MaxBackoff is retried after the server's hint and eventually
// succeeds.
func TestClientRetries429(t *testing.T) {
	g := testGraph(t)
	inner := NewServer(g, ServerConfig{})
	var calls atomic.Int64
	var slept atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "7")
			writeJSON(w, http.StatusTooManyRequests, Error{Code: ErrCodeRateLimited})
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	client := fastClient(t, ts, func(cfg *ClientConfig) { cfg.MaxBackoff = 10 * time.Second })
	client.sleep = func(d time.Duration) { slept.Add(int64(d)) }

	if _, err := client.Neighbors(3); err != nil {
		t.Fatal(err)
	}
	// Two 429s, each advertising Retry-After: 7s — the client must honor
	// the hint instead of its own 1ms backoff schedule.
	if got := time.Duration(slept.Load()); got != 14*time.Second {
		t.Fatalf("slept %v across retries, want 14s from Retry-After", got)
	}
}

// TestClientClampsHostileRetryAfter pins the other side of the hint
// contract: Retry-After is an untrusted suggestion, and a hostile or
// buggy server advertising an enormous wait must not park the client —
// the hint is clamped to the client's own MaxBackoff.
func TestClientClampsHostileRetryAfter(t *testing.T) {
	g := testGraph(t)
	inner := NewServer(g, ServerConfig{})
	var calls atomic.Int64
	var slept atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" && calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "10000")
			writeJSON(w, http.StatusTooManyRequests, Error{Code: ErrCodeRateLimited})
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	client := fastClient(t, ts) // MaxBackoff: 10ms
	client.sleep = func(d time.Duration) { slept.Add(int64(d)) }

	if _, err := client.Neighbors(3); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(slept.Load()); got != 20*time.Millisecond {
		t.Fatalf("slept %v across retries, want 2 x 10ms MaxBackoff clamp", got)
	}
}

// TestClientRetriesExhausted: a permanently failing server surfaces a hard
// error through Err() and nil through the Access interface.
func TestClientRetriesExhausted(t *testing.T) {
	g := testGraph(t)
	inner := NewServer(g, ServerConfig{})
	var down atomic.Bool
	down.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" && down.Load() {
			writeJSON(w, http.StatusServiceUnavailable, Error{Code: ErrCodeTransient})
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	client := fastClient(t, ts, func(c *ClientConfig) { c.MaxRetries = 2 })

	if nb := client.NeighborsOf(1); nb != nil {
		t.Fatalf("NeighborsOf on dead oracle = %v, want nil", nb)
	}
	if client.Err() == nil {
		t.Fatal("Err() must report the exhausted retries")
	}
	if got := client.Requests(); got != 4 { // meta + 3 attempts (1 + 2 retries)
		t.Fatalf("Requests() = %d, want 4", got)
	}
	// Failures are not cached: once the outage passes, the same node is
	// fetched fresh (Err keeps the first failure for diagnosis).
	down.Store(false)
	nb, err := client.Neighbors(1)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if len(nb) != g.Degree(1) {
		t.Fatalf("got %d neighbors after recovery, want %d", len(nb), g.Degree(1))
	}
	if client.Err() == nil {
		t.Fatal("Err() must keep reporting the first failure")
	}
}

// TestClientInFlightDedup: concurrent queries for the same node collapse
// onto one HTTP fetch.
func TestClientInFlightDedup(t *testing.T) {
	g := testGraph(t)
	inner := NewServer(g, ServerConfig{})
	var nodeCalls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" {
			nodeCalls.Add(1)
			<-release // hold every fetch until all goroutines are queued
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	client := fastClient(t, ts)

	const waiters = 16
	var wg sync.WaitGroup
	results := make([][]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = client.NeighborsOf(2)
		}(i)
	}
	// Wait until the single fetch is on the wire, then let it through.
	for nodeCalls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // give stragglers time to pile onto the entry
	close(release)
	wg.Wait()
	if nodeCalls.Load() != 1 {
		t.Fatalf("%d HTTP fetches for one node, want 1", nodeCalls.Load())
	}
	want := g.Neighbors(2)
	for i, nb := range results {
		if len(nb) != len(want) {
			t.Fatalf("waiter %d got %d neighbors, want %d", i, len(nb), len(want))
		}
	}
	if client.NodesFetched() != 1 {
		t.Fatalf("NodesFetched() = %d, want 1", client.NodesFetched())
	}
}

// TestConcurrentCrawlers is the acceptance bar: 8 crawlers with distinct
// API keys against one rate-limited, fault-injecting graphd, each crawl
// byte-identical to its in-memory reference. Run under -race in CI.
func TestConcurrentCrawlers(t *testing.T) {
	g := testGraph(t)
	srv, ts := startServer(t, g, ServerConfig{
		PageSize:  16,
		Rate:      400, // tight enough to trip under 8 crawlers' burst
		Burst:     8,
		Latency:   50 * time.Microsecond,
		ErrorRate: 0.05,
		FaultSeed: 3,
	})

	const crawlers = 8
	var wg sync.WaitGroup
	errs := make([]error, crawlers)
	for i := 0; i < crawlers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := NewClient(ClientConfig{
				BaseURL:     ts.URL,
				APIKey:      fmt.Sprintf("crawler-%d", i),
				MaxRetries:  20,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer client.Close()
			seedNode := (i * 37) % g.N()
			remote, err := sampling.RandomWalk(client, seedNode, 0.08, walkRNG(uint64(i)))
			if err != nil {
				errs[i] = fmt.Errorf("crawler %d: %v (client: %v)", i, err, client.Err())
				return
			}
			local, err := sampling.RandomWalk(sampling.NewGraphAccess(g), seedNode, 0.08, walkRNG(uint64(i)))
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(crawlJSON(t, remote), crawlJSON(t, local)) {
				errs[i] = fmt.Errorf("crawler %d: remote crawl diverges from in-memory", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if srv.QueriesServed() == 0 {
		t.Fatal("server served no queries")
	}
}

// TestServerSidePrivateMatchesPrivateAccess: a node hidden by graphd
// answers exactly like sampling.PrivateAccess — nil neighbors, no error —
// and the client remembers the privacy verdict.
func TestServerSidePrivateMatchesPrivateAccess(t *testing.T) {
	g := testGraph(t)
	private := []int{2, 5}
	_, ts := startServer(t, g, ServerConfig{Private: private})
	client := fastClient(t, ts)
	ref := sampling.NewPrivateAccess(sampling.NewGraphAccess(g), private)

	for _, u := range []int{2, 5, 7} {
		got, err := client.Neighbors(u)
		if err != nil {
			t.Fatalf("node %d: %v", u, err)
		}
		want := ref.NeighborsOf(u)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors over HTTP, %d via PrivateAccess", u, len(got), len(want))
		}
		if client.IsPrivate(u) != ref.IsPrivate(u) {
			t.Fatalf("node %d: IsPrivate mismatch", u)
		}
	}
	if client.Err() != nil {
		t.Fatalf("private answers must not poison Err(): %v", client.Err())
	}
	// Private answers spend budget (the server charged the request) and
	// are tallied for crawl-failure diagnostics.
	if got := client.NodesFetched(); got != 3 {
		t.Fatalf("NodesFetched() = %d, want 3 (private queries cost too)", got)
	}
	if got := client.PrivateSeen(); got != 2 {
		t.Fatalf("PrivateSeen() = %d, want 2", got)
	}
}

// TestPrivateAccessComposedWithClient: the client slots into
// sampling.PrivateAccess like any Access — a client-side privacy overlay
// over a remote crawl round-trips to the same crawl as in-memory.
func TestPrivateAccessComposedWithClient(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{ErrorRate: 0.2, FaultSeed: 5})
	client := fastClient(t, ts)

	private := []int{1, 4, 6}
	remoteAccess := sampling.NewPrivateAccess(client, private)
	localAccess := sampling.NewPrivateAccess(sampling.NewGraphAccess(g), private)

	remote, err := sampling.PrivateAwareWalk(remoteAccess, 17, 0.10, walkRNG(23))
	if err != nil {
		t.Fatalf("remote private walk: %v (client: %v)", err, client.Err())
	}
	local, err := sampling.PrivateAwareWalk(localAccess, 17, 0.10, walkRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crawlJSON(t, remote), crawlJSON(t, local)) {
		t.Fatal("private remote crawl diverges from in-memory")
	}
}

// TestClientRejectsBadBaseURL and empty meta.
func TestClientConstructorErrors(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("empty BaseURL must fail")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Meta{Nodes: 0})
	}))
	t.Cleanup(ts.Close)
	if _, err := NewClient(ClientConfig{BaseURL: ts.URL, MaxRetries: 1, BaseBackoff: time.Millisecond}); err == nil {
		t.Fatal("zero-node meta must fail")
	}
}
