package oracle

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sgr/internal/sampling"
)

// TestCrawlByteIdenticalUnderFaultMatrix sweeps every injected fault mode
// — and their combination — and asserts the hardened client converges on
// a crawl byte-identical to the in-memory walk at the same seed. Faults
// may cost retries; they must never cost a byte.
func TestCrawlByteIdenticalUnderFaultMatrix(t *testing.T) {
	g := testGraph(t)
	local, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 17, 0.15, walkRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	want := crawlJSON(t, local)

	stall := time.Millisecond
	matrix := map[string]FaultPlan{
		"truncate": {Truncate: 0.3},
		"corrupt":  {Corrupt: 0.3},
		"stall":    {Stall: 0.3, StallDelay: stall},
		"reset":    {Reset: 0.3},
		"everything": {
			Truncate: 0.1, Corrupt: 0.1, Stall: 0.1, StallDelay: stall, Reset: 0.1,
		},
	}
	for name, plan := range matrix {
		t.Run(name, func(t *testing.T) {
			srv, ts := startServer(t, g, ServerConfig{
				PageSize:  5, // pagination multiplies the exposed surface
				ErrorRate: 0.1,
				FaultSeed: 1234,
				Faults:    plan,
			})
			client := fastClient(t, ts, func(cfg *ClientConfig) {
				cfg.MaxRetries = 40 // fault-dense runs need headroom
			})
			remote, err := sampling.RandomWalk(client, 17, 0.15, walkRNG(11))
			if err != nil {
				t.Fatalf("crawl under %s faults: %v (client: %v)", name, err, client.Err())
			}
			if client.Err() != nil {
				t.Fatalf("client error after successful crawl: %v", client.Err())
			}
			if !bytes.Equal(crawlJSON(t, remote), want) {
				t.Fatalf("crawl under %s faults differs from the fault-free walk", name)
			}
			if srv.Faulted() == 0 {
				t.Fatalf("%s plan injected nothing — the sweep tested fair weather", name)
			}
		})
	}
}

// TestClientRetriesDecodeFailure pins the decode-retry fix: a 200 whose
// body fails to parse is transport damage, retried like a 503 — not a
// protocol answer that kills the walk.
func TestClientRetriesDecodeFailure(t *testing.T) {
	g := testGraph(t)
	inner := NewServer(g, ServerConfig{})
	var poisoned atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/meta" && poisoned.CompareAndSwap(false, true) {
			writeRawJSON(w, http.StatusOK, []byte(`{"id":3,"degree":2,"neighbors":[1,,]}`))
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	client := fastClient(t, ts)
	client.sleep = func(time.Duration) {}

	nb, err := client.Neighbors(3)
	if err != nil {
		t.Fatalf("neighbors after one corrupt body: %v", err)
	}
	want := g.Neighbors(3)
	if len(nb) != len(want) {
		t.Fatalf("got %d neighbors, want %d", len(nb), len(want))
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("neighbor %d = %d, want %d", i, nb[i], want[i])
		}
	}
	if !poisoned.Load() {
		t.Fatal("the corrupt body was never served")
	}
}

// TestFaultPlanValidation: the cumulative draw requires the rates to leave
// room for success; NewServer applies the stall-delay default.
func TestFaultPlanValidation(t *testing.T) {
	g := testGraph(t)
	srv := NewServer(g, ServerConfig{Faults: FaultPlan{Stall: 0.2}})
	if srv.cfg.Faults.StallDelay != DefaultStallDelay {
		t.Fatalf("stall delay defaulted to %v, want %v", srv.cfg.Faults.StallDelay, DefaultStallDelay)
	}
	if got := (FaultPlan{Truncate: 0.25, Corrupt: 0.25, Stall: 0.125, Reset: 0.125}).rate(); got != 0.75 {
		t.Fatalf("plan rate = %v, want 0.75", got)
	}
}

// TestServerLegacyErrorRateSequence pins bit-compatibility of the seeded
// fault stream: with only ErrorRate configured, the new cumulative draw
// consumes exactly one variate per request with the transient band first,
// so the 503 positions of a given FaultSeed are the ones the pre-plan
// server produced.
func TestServerLegacyErrorRateSequence(t *testing.T) {
	g := testGraph(t)
	observe := func(cfg ServerConfig) []bool {
		_, ts := startServer(t, g, cfg)
		var pattern []bool
		for i := 0; i < 40; i++ {
			resp, err := http.Get(ts.URL + "/v1/nodes/1/neighbors")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			pattern = append(pattern, resp.StatusCode == http.StatusServiceUnavailable)
		}
		return pattern
	}
	a := observe(ServerConfig{ErrorRate: 0.4, FaultSeed: 77})
	b := observe(ServerConfig{ErrorRate: 0.4, FaultSeed: 77, Faults: FaultPlan{}})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: fault differs between legacy and empty-plan configs", i)
		}
	}
	injected := 0
	for _, f := range a {
		if f {
			injected++
		}
	}
	if injected == 0 || injected == len(a) {
		t.Fatalf("error-rate 0.4 over %d requests injected %d — degenerate sequence", len(a), injected)
	}
}
