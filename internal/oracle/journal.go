package oracle

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"sgr/internal/sampling"
)

// journalFormatVersion is the on-disk crawl-journal format.
const journalFormatVersion = 1

// journalRecord is one JSON line of a crawl journal. Type discriminates:
// "h" header (first line), "q" one answered neighbor query, "w" the
// completed walk sequence appended by the crawler when it finishes.
type journalRecord struct {
	Type      string `json:"t"`
	Version   int    `json:"version,omitempty"`
	Nodes     int    `json:"nodes,omitempty"`
	U         int    `json:"u,omitempty"`
	Neighbors []int  `json:"nb,omitempty"`
	Private   bool   `json:"private,omitempty"`
	Walk      []int  `json:"walk,omitempty"`
}

// JournalEntry is one replayed neighbor query: the answer the remote API
// gave for node U (Neighbors nil and Private true for hidden profiles).
type JournalEntry struct {
	U         int
	Neighbors []int
	Private   bool
}

// Journal is an append-only JSON-lines log of every answered API query.
// Each answer is persisted before it is handed to the crawler, so a crawl
// killed at any point resumes from the journal without re-spending the
// queries already paid for: rerunning the same seeded crawl replays the
// journaled prefix from cache and only goes back on the wire for the tail.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (or creates) the journal at path for a graph of the
// given node count, returning the replayed entries and the recorded walk
// (nil unless a prior crawl completed). A journal written against a
// different node count is rejected — it belongs to a different graph. A
// torn final line (crawler killed mid-write) is truncated away; corruption
// anywhere else is an error.
func OpenJournal(path string, nodes int) (*Journal, []JournalEntry, []int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	entries, walk, goodEnd, err := replayJournal(f, nodes)
	if err != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("oracle: journal %s: %w", path, err)
	}
	// Drop any torn tail, position appends after the last good line.
	if err := f.Truncate(goodEnd); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	j := &Journal{f: f, path: path}
	if goodEnd == 0 {
		// Fresh (or fully torn) journal: stamp the header first.
		if err := j.append(journalRecord{Type: "h", Version: journalFormatVersion, Nodes: nodes}); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	return j, entries, walk, nil
}

// replayJournal parses the journal, validating the header against nodes.
// It returns the parsed entries, the last recorded walk, and the byte
// offset after the last well-formed line. A parse failure on the final
// line is tolerated (the offset excludes it); earlier failures error.
func replayJournal(f *os.File, nodes int) (entries []JournalEntry, walk []int, goodEnd int64, err error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var offset int64
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		lineEnd := offset + int64(len(raw)) + 1 // +1 for the newline
		line++
		var rec journalRecord
		if jerr := json.Unmarshal(raw, &rec); jerr != nil || rec.Type == "" {
			// Tolerate only a torn final line (a crawler killed
			// mid-append): it must follow a well-formed header and lack
			// the trailing newline that marks a completed write. An
			// unparseable *first* line means the file is not a journal at
			// all — erroring out beats silently truncating what might be
			// the user's unrelated file.
			if goodEnd > 0 && peekEOF(sc) && lineEnd > fileSize(f) {
				return entries, walk, goodEnd, nil
			}
			if jerr == nil {
				jerr = errors.New("missing record type")
			}
			return nil, nil, 0, fmt.Errorf("line %d: not a crawl journal: %w", line, jerr)
		}
		switch rec.Type {
		case "h":
			if line != 1 {
				return nil, nil, 0, fmt.Errorf("line %d: unexpected header", line)
			}
			if rec.Version != journalFormatVersion {
				return nil, nil, 0, fmt.Errorf("unsupported journal version %d", rec.Version)
			}
			if rec.Nodes != nodes {
				return nil, nil, 0, fmt.Errorf("journal is for a graph with %d nodes, server has %d", rec.Nodes, nodes)
			}
		case "q":
			if line == 1 {
				return nil, nil, 0, errors.New("missing header line")
			}
			entries = append(entries, JournalEntry{U: rec.U, Neighbors: rec.Neighbors, Private: rec.Private})
			// A query after a walk record means a longer crawl resumed
			// past a completed shorter one and was interrupted: the old
			// walk no longer describes the journal's full query set, so
			// it must not be served as a finished crawl.
			walk = nil
		case "w":
			if line == 1 {
				return nil, nil, 0, errors.New("missing header line")
			}
			walk = rec.Walk
		default:
			return nil, nil, 0, fmt.Errorf("line %d: unknown record type %q", line, rec.Type)
		}
		offset = lineEnd
		goodEnd = offset
	}
	if serr := sc.Err(); serr != nil {
		return nil, nil, 0, serr
	}
	return entries, walk, goodEnd, nil
}

// peekEOF reports whether the scanner has no further lines. Scanning
// consumes them, so it is only called on the error path.
func peekEOF(sc *bufio.Scanner) bool { return !sc.Scan() }

func fileSize(f *os.File) int64 {
	st, err := f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// Append records one answered neighbor query.
func (j *Journal) Append(u int, neighbors []int, private bool) error {
	return j.append(journalRecord{Type: "q", U: u, Neighbors: neighbors, Private: private})
}

// AppendWalk records the completed walk sequence, making the journal a
// self-contained crawl that LoadCrawlFromJournal (and restore -journal)
// can consume offline.
func (j *Journal) AppendWalk(walk []int) error {
	return j.append(journalRecord{Type: "w", Walk: walk})
}

func (j *Journal) append(rec journalRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(buf)
	return err
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// LoadCrawlFromJournal reconstructs a sampling.Crawl from a crawl journal:
// queried nodes in journal (= first-query) order, their neighbor lists,
// and the walk sequence if the crawl completed. The result round-trips
// through the same restoration pipeline as a crawl JSON file.
func LoadCrawlFromJournal(path string) (*sampling.Crawl, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Replay without a node-count check: -1 never matches, so probe the
	// header first.
	header, err := readJournalHeader(f)
	if err != nil {
		return nil, fmt.Errorf("oracle: journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	entries, walk, _, err := replayJournal(f, header.Nodes)
	if err != nil {
		return nil, fmt.Errorf("oracle: journal %s: %w", path, err)
	}
	queried := make([]int, len(entries))
	neighbors := make([][]int, len(entries))
	for i, e := range entries {
		queried[i] = e.U
		neighbors[i] = e.Neighbors
	}
	// sampling.NewCrawl is the shared validator, so journals and crawl
	// JSON files accept exactly the same shapes.
	c, err := sampling.NewCrawl(queried, neighbors, walk)
	if err != nil {
		return nil, fmt.Errorf("oracle: journal %s: %w", path, err)
	}
	return c, nil
}

func readJournalHeader(f *os.File) (*journalRecord, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("empty journal")
	}
	var rec journalRecord
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if rec.Type != "h" {
		return nil, errors.New("missing header line")
	}
	return &rec, nil
}
