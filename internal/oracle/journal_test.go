package oracle

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sgr/internal/sampling"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "crawl.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, entries, walk, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if entries != nil || walk != nil {
		t.Fatal("fresh journal must replay nothing")
	}
	if err := j.Append(4, []int{1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(9, nil, true); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendWalk([]int{4, 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, walk, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(entries))
	}
	if entries[0].U != 4 || len(entries[0].Neighbors) != 3 || entries[0].Private {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if entries[1].U != 9 || entries[1].Neighbors != nil || !entries[1].Private {
		t.Fatalf("entry 1 = %+v", entries[1])
	}
	if len(walk) != 2 || walk[0] != 4 || walk[1] != 1 {
		t.Fatalf("walk = %v", walk)
	}
}

func TestJournalRejectsWrongGraph(t *testing.T) {
	path := journalPath(t)
	j, _, _, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, _, err := OpenJournal(path, 101); err == nil {
		t.Fatal("journal for 100 nodes must not open against 101")
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	path := journalPath(t)
	j, _, _, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(4, []int{1, 2}, false)
	j.Close()
	// Simulate a crash mid-append: a torn, newline-less final record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"q","u":7,"nb":[1,`)
	f.Close()

	j2, entries, _, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(entries) != 1 || entries[0].U != 4 {
		t.Fatalf("entries = %+v, want just node 4", entries)
	}
	// The torn bytes are gone: appends resume on a clean line.
	if err := j2.Append(7, []int{1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, entries, _, err = OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].U != 7 {
		t.Fatalf("after repair, entries = %+v", entries)
	}
}

// TestJournalRefusesNonJournalFile: torn-tail tolerance must never
// truncate a file that was never a journal — a wrong -journal path is a
// user error, not recoverable corruption.
func TestJournalRefusesNonJournalFile(t *testing.T) {
	path := journalPath(t)
	content := []byte("my important notes, no trailing newline")
	os.WriteFile(path, content, 0o644)
	if _, _, _, err := OpenJournal(path, 100); err == nil {
		t.Fatal("non-journal file must not open as a journal")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatalf("OpenJournal modified a non-journal file: %q", after)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := journalPath(t)
	j, _, _, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	raw, _ := os.ReadFile(path)
	raw = append(raw, []byte("not json\n")...)
	raw = append(raw, []byte(`{"t":"q","u":1,"nb":[2]}`+"\n")...)
	os.WriteFile(path, raw, 0o644)
	if _, _, _, err := OpenJournal(path, 100); err == nil {
		t.Fatal("newline-terminated corruption before valid records must fail")
	}
}

// TestJournalResume is the budget guarantee: rerunning an interrupted
// crawl with the same seed replays the journaled prefix for free and only
// fetches the tail over the wire.
func TestJournalResume(t *testing.T) {
	g := testGraph(t)
	srv, ts := startServer(t, g, ServerConfig{})
	path := journalPath(t)

	// First run: crawl a shorter prefix of the same seeded walk, as if
	// killed partway. (Same seed + shorter fraction = prefix, because the
	// walk consumes the RNG identically step by step.)
	c1 := fastClient(t, ts, func(c *ClientConfig) { c.JournalPath = path })
	prefix, err := sampling.RandomWalk(c1, 17, 0.05, walkRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	spent1 := c1.NodesFetched()
	if spent1 == 0 || int(spent1) != prefix.NumQueried() {
		t.Fatalf("first run fetched %d nodes for %d queries", spent1, prefix.NumQueried())
	}
	c1.Close()

	// Resume: same seed, full fraction. The prefix must come from the
	// journal — the server sees only the tail.
	servedBefore := srv.QueriesServed()
	c2 := fastClient(t, ts, func(c *ClientConfig) { c.JournalPath = path })
	full, err := sampling.RandomWalk(c2, 17, 0.15, walkRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.NodesFetched(); got != int64(full.NumQueried())-spent1 {
		t.Fatalf("resume fetched %d nodes, want %d (total %d - journaled %d)",
			got, int64(full.NumQueried())-spent1, full.NumQueried(), spent1)
	}
	if tail := srv.QueriesServed() - servedBefore; tail != c2.NodesFetched() {
		t.Fatalf("server served %d queries on resume, client says %d", tail, c2.NodesFetched())
	}

	// The resumed crawl is byte-identical to a fresh in-memory one.
	local, err := sampling.RandomWalk(sampling.NewGraphAccess(g), 17, 0.15, walkRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crawlJSON(t, full), crawlJSON(t, local)) {
		t.Fatal("resumed crawl diverges from in-memory crawl")
	}

	// Record the walk and reload the journal as a self-contained crawl.
	if err := c2.RecordWalk(full.Walk); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	loaded, err := LoadCrawlFromJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crawlJSON(t, loaded), crawlJSON(t, full)) {
		t.Fatal("journal-loaded crawl diverges from the live crawl")
	}
}

// TestJournalStaleWalkInvalidated: a walk record only describes the crawl
// if no queries follow it — a longer resumed crawl that was interrupted
// must not serve the earlier, shorter crawl's walk as complete.
func TestJournalStaleWalkInvalidated(t *testing.T) {
	path := journalPath(t)
	j, _, _, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(1, []int{2}, false)
	j.AppendWalk([]int{1})
	j.Append(2, []int{1}, false) // resumed past the completed crawl, killed
	j.Close()

	_, _, walk, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	if walk != nil {
		t.Fatalf("stale walk %v survived a later query record", walk)
	}
	c, err := LoadCrawlFromJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Walk) != 0 {
		t.Fatalf("loaded crawl has stale walk %v", c.Walk)
	}
	// A fresh walk record after the tail queries makes it whole again.
	j2, _, _, err := OpenJournal(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	j2.AppendWalk([]int{1, 2})
	j2.Close()
	c, err = LoadCrawlFromJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Walk) != 2 {
		t.Fatalf("walk = %v, want [1 2]", c.Walk)
	}
}

func TestLoadCrawlFromJournalErrors(t *testing.T) {
	if _, err := LoadCrawlFromJournal(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing journal must fail")
	}
	path := journalPath(t)
	os.WriteFile(path, []byte(`{"t":"q","u":1,"nb":[2]}`+"\n"), 0o644)
	if _, err := LoadCrawlFromJournal(path); err == nil {
		t.Fatal("journal without header must fail")
	}
	// Walk referencing an unjournaled node is inconsistent.
	os.WriteFile(path, []byte(
		`{"t":"h","version":1,"nodes":10}`+"\n"+
			`{"t":"q","u":1,"nb":[2]}`+"\n"+
			`{"t":"w","walk":[1,2]}`+"\n"), 0o644)
	if _, err := LoadCrawlFromJournal(path); err == nil {
		t.Fatal("walk through unjournaled node must fail")
	}
	// The same invariants as sampling.ReadCrawlJSON: no negative ids.
	os.WriteFile(path, []byte(
		`{"t":"h","version":1,"nodes":10}`+"\n"+
			`{"t":"q","u":-4,"nb":[2]}`+"\n"), 0o644)
	if _, err := LoadCrawlFromJournal(path); err == nil {
		t.Fatal("negative journaled node id must fail")
	}
	os.WriteFile(path, []byte(
		`{"t":"h","version":1,"nodes":10}`+"\n"+
			`{"t":"q","u":4,"nb":[-2]}`+"\n"), 0o644)
	if _, err := LoadCrawlFromJournal(path); err == nil {
		t.Fatal("negative journaled neighbor id must fail")
	}
}

// TestJournalConcurrentAppend exercises the journal's lock under the
// in-flight dedup cache's worst case: many goroutines finishing fetches.
func TestJournalConcurrentAppend(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{})
	path := journalPath(t)
	client := fastClient(t, ts, func(c *ClientConfig) { c.JournalPath = path })

	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for u := w; u < 200; u += 8 {
				client.NeighborsOf(u)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent journaled crawl wedged")
		}
	}
	client.Close()
	_, entries, _, err := OpenJournal(path, g.N())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 200 {
		t.Fatalf("journaled %d entries, want 200", len(entries))
	}
}
