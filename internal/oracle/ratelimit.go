package oracle

import (
	"sync"
	"time"
)

// Limiter is a per-key token-bucket rate limiter: each key (one API client)
// gets its own bucket holding up to burst tokens, refilled at rate tokens
// per second. A rate <= 0 disables limiting entirely.
type Limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter; burst < 1 is clamped to 1 so a fresh bucket
// can always serve at least one request.
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// Allow takes one token from key's bucket at time now. When the bucket is
// empty it reports false together with the duration after which a retry
// would succeed.
func (l *Limiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[key]
	if !exists {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// Clients reports how many distinct keys have hit the limiter.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
