package oracle

import (
	"testing"
	"time"
)

func TestLimiterBurstThenRefill(t *testing.T) {
	l := NewLimiter(2, 3) // 2 tokens/s, burst 3
	t0 := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("a", t0); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.Allow("a", t0)
	if ok {
		t.Fatal("4th immediate request must be denied")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want within (0, 500ms]-ish", retry)
	}
	// After the advertised wait, exactly one token is back.
	t1 := t0.Add(retry)
	if ok, _ := l.Allow("a", t1); !ok {
		t.Fatal("request after retryAfter denied")
	}
	if ok, _ := l.Allow("a", t1); ok {
		t.Fatal("second request after retryAfter must be denied")
	}
}

func TestLimiterPerKeyIsolation(t *testing.T) {
	l := NewLimiter(1, 1)
	t0 := time.Unix(1000, 0)
	if ok, _ := l.Allow("a", t0); !ok {
		t.Fatal("a's first request denied")
	}
	if ok, _ := l.Allow("a", t0); ok {
		t.Fatal("a's second request allowed")
	}
	// b has its own bucket, untouched by a's spending.
	if ok, _ := l.Allow("b", t0); !ok {
		t.Fatal("b's first request denied")
	}
	if l.Clients() != 2 {
		t.Fatalf("Clients() = %d, want 2", l.Clients())
	}
}

func TestLimiterCapsAtBurst(t *testing.T) {
	l := NewLimiter(1000, 2)
	t0 := time.Unix(1000, 0)
	l.Allow("a", t0)
	// A long idle period must not bank more than burst tokens.
	t1 := t0.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("a", t1); !ok {
			t.Fatalf("banked request %d denied", i)
		}
	}
	if ok, _ := l.Allow("a", t1); ok {
		t.Fatal("3rd request at the same instant must be denied (burst=2)")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 1)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("a", t0); !ok {
			t.Fatal("disabled limiter denied a request")
		}
	}
}
