package oracle

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sgr/internal/graph"
)

// DefaultPageSize bounds how many neighbors one response carries when
// ServerConfig.PageSize is unset. Hub nodes above it paginate.
const DefaultPageSize = 1024

// ServerConfig tunes the served access model and its injected failure
// modes. The zero value serves an honest, unlimited, fault-free API.
type ServerConfig struct {
	// PageSize is the maximum neighbors per response (default
	// DefaultPageSize).
	PageSize int
	// Rate is the per-client request rate in tokens/second (<= 0 means
	// unlimited) and Burst the bucket depth. Clients are keyed by the
	// X-API-Key header, falling back to the remote host.
	Rate  float64
	Burst int
	// Latency is added to every request, plus a uniform draw from
	// [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// ErrorRate is the probability of answering a request with an injected
	// 503 instead of serving it; FaultSeed seeds the fault stream.
	ErrorRate float64
	FaultSeed uint64
	// Private lists node ids whose neighbor lists are hidden: querying
	// them costs the request but yields 403 "private", mirroring
	// sampling.PrivateAccess semantics.
	Private []int
}

// Server serves a hidden graph through the oracle wire protocol. It is
// safe for concurrent use; the graph must not be mutated while serving.
type Server struct {
	g       *graph.Graph
	cfg     ServerConfig
	private map[int]struct{}
	limiter *Limiter

	faultMu  sync.Mutex
	faultRng *rand.Rand

	queries     atomic.Int64 // neighbor pages served with 200
	rateLimited atomic.Int64 // 429s issued
	faulted     atomic.Int64 // injected 503s

	// now and sleep are swappable in tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewServer wraps g.
func NewServer(g *graph.Graph, cfg ServerConfig) *Server {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	s := &Server{
		g:        g,
		cfg:      cfg,
		private:  make(map[int]struct{}, len(cfg.Private)),
		limiter:  NewLimiter(cfg.Rate, cfg.Burst),
		faultRng: rand.New(rand.NewPCG(cfg.FaultSeed, cfg.FaultSeed^0x94d049bb133111eb)),
		now:      time.Now,
		sleep:    time.Sleep,
	}
	for _, u := range cfg.Private {
		s.private[u] = struct{}{}
	}
	return s
}

// QueriesServed reports neighbor pages answered with 200 — the budget the
// server has handed out.
func (s *Server) QueriesServed() int64 { return s.queries.Load() }

// RateLimited reports how many requests were answered 429.
func (s *Server) RateLimited() int64 { return s.rateLimited.Load() }

// Faulted reports how many injected 503s were served.
func (s *Server) Faulted() int64 { return s.faulted.Load() }

// Handler returns the HTTP handler implementing the wire protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/meta", s.handleMeta)
	mux.HandleFunc("GET /v1/nodes/{id}/neighbors", s.handleNeighbors)
	return mux
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	s.injectLatency()
	writeJSON(w, http.StatusOK, Meta{Nodes: s.g.N(), PageSize: s.cfg.PageSize})
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if ok, retryAfter := s.limiter.Allow(clientKey(r), s.now()); !ok {
		s.rateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterValue(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, Error{Code: ErrCodeRateLimited})
		return
	}
	s.injectLatency()
	if s.injectFault() {
		s.faulted.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, Error{Code: ErrCodeTransient})
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
		return
	}
	if id < 0 || id >= s.g.N() {
		writeJSON(w, http.StatusNotFound, Error{Code: ErrCodeUnknownNode})
		return
	}
	if _, hidden := s.private[id]; hidden {
		writeJSON(w, http.StatusForbidden, Error{Code: ErrCodePrivate})
		return
	}
	cursor := 0
	if c := r.URL.Query().Get("cursor"); c != "" {
		cursor, err = strconv.Atoi(c)
		if err != nil || cursor < 0 {
			writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
			return
		}
	}
	nb := s.g.Neighbors(id)
	if cursor > len(nb) {
		writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
		return
	}
	end := cursor + s.cfg.PageSize
	page := NeighborsPage{ID: id, Degree: len(nb)}
	if end >= len(nb) {
		end = len(nb)
	} else {
		page.NextCursor = end
	}
	// Copy the slice so the JSON encoder never aliases live adjacency.
	page.Neighbors = append([]int{}, nb[cursor:end]...)
	s.queries.Add(1)
	writeJSON(w, http.StatusOK, page)
}

// injectLatency sleeps the configured base latency plus uniform jitter.
func (s *Server) injectLatency() {
	d := s.cfg.Latency
	if s.cfg.Jitter > 0 {
		s.faultMu.Lock()
		d += time.Duration(s.faultRng.Int64N(int64(s.cfg.Jitter)))
		s.faultMu.Unlock()
	}
	if d > 0 {
		s.sleep(d)
	}
}

// injectFault draws from the fault stream and reports whether this request
// should fail with a transient 503.
func (s *Server) injectFault() bool {
	if s.cfg.ErrorRate <= 0 {
		return false
	}
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.faultRng.Float64() < s.cfg.ErrorRate
}

// clientKey identifies the requester for rate limiting: the X-API-Key
// header when present, else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterValue renders a Retry-After header in fractional seconds with
// millisecond resolution. RFC 9110 specifies integer seconds, but a
// token-bucket deficit is usually a few milliseconds and rounding up to 1s
// would stall honest clients 100x too long; oracle.Client parses either
// form, and integer-only parsers still reject rather than misread it.
func retryAfterValue(d time.Duration) string {
	ms := math.Ceil(float64(d) / float64(time.Millisecond))
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatFloat(ms/1000, 'f', 3, 64)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
