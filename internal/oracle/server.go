package oracle

import (
	"encoding/json"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sgr/internal/daemon"
	"sgr/internal/graph"
	"sgr/internal/obs"
)

// DefaultPageSize bounds how many neighbors one response carries when
// ServerConfig.PageSize is unset. Hub nodes above it paginate.
const DefaultPageSize = 1024

// DefaultMaxBatch bounds how many ids one GET /v1/neighbors?ids=... request
// may carry when ServerConfig.MaxBatch is unset.
const DefaultMaxBatch = 64

// ServerConfig tunes the served access model and its injected failure
// modes. The zero value serves an honest, unlimited, fault-free API.
type ServerConfig struct {
	// PageSize is the maximum neighbors per response (default
	// DefaultPageSize).
	PageSize int
	// MaxBatch is the maximum ids per GET /v1/neighbors?ids=... request
	// (default DefaultMaxBatch; < 0 disables the batch endpoint). A batch
	// request costs one rate-limit token regardless of size — that
	// amortization is the endpoint's purpose — but every node served still
	// counts toward QueriesServed.
	MaxBatch int
	// Rate is the per-client request rate in tokens/second (<= 0 means
	// unlimited) and Burst the bucket depth. Clients are keyed by the
	// X-API-Key header, falling back to the remote host.
	Rate  float64
	Burst int
	// Latency is added to every request, plus a uniform draw from
	// [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// ErrorRate is the probability of answering a request with an injected
	// 503 instead of serving it; FaultSeed seeds the fault stream.
	ErrorRate float64
	FaultSeed uint64
	// Faults widens the injected failure model beyond the clean transient
	// 503: truncated bodies, corrupt JSON, response stalls, and connection
	// resets. ErrorRate and the plan's rates form one cumulative draw per
	// data request from the FaultSeed stream (transient first), so a
	// config that only sets ErrorRate reproduces the legacy fault sequence
	// bit for bit, and any plan is deterministic run to run. The rates
	// must sum to less than 1.
	Faults FaultPlan
	// Private lists node ids whose neighbor lists are hidden: querying
	// them costs the request but yields 403 "private", mirroring
	// sampling.PrivateAccess semantics.
	Private []int
}

// DefaultStallDelay is how long a stall fault holds a response when
// FaultPlan.StallDelay is unset — long enough to trip any sane client
// request timeout, short enough not to dominate a test run.
const DefaultStallDelay = 2 * time.Second

// FaultPlan is the probability mix of the hostile failure modes a real
// third-party API exhibits and a resilient crawler must survive. Every
// mode must read to the client as transport damage — retriable — never as
// data: a fault can delay a crawl but must not change a byte of it.
type FaultPlan struct {
	// Truncate answers 200 with a Content-Length larger than the bytes
	// actually sent, then drops the connection: the client reads an
	// unexpected EOF mid-body.
	Truncate float64
	// Corrupt answers 200 with a body that is not valid JSON.
	Corrupt float64
	// Stall holds the response for StallDelay before serving it normally —
	// the "walk, not wait" scenario where the API is up but pathologically
	// slow. Clients with a request timeout see a timeout; clients without
	// one eventually get a correct answer.
	Stall float64
	// StallDelay is the stall duration (default DefaultStallDelay).
	StallDelay time.Duration
	// Reset drops the connection before writing anything (with SO_LINGER
	// zeroed where the transport allows, so the peer sees a TCP RST rather
	// than a clean close).
	Reset float64
}

// rate sums the plan's probabilities (the non-transient share of the
// cumulative fault draw).
func (p FaultPlan) rate() float64 {
	return p.Truncate + p.Corrupt + p.Stall + p.Reset
}

// Server serves a hidden graph through the oracle wire protocol. It is
// safe for concurrent use; the graph must not be mutated while serving.
type Server struct {
	g *graph.Graph
	// csr is the immutable read-path snapshot: neighbor pages are
	// zero-copy subslices of its endpoint rows, which preserve the
	// graph's adjacency order exactly (the order the protocol pins).
	csr     *graph.CSR
	cfg     ServerConfig
	private map[int]struct{}
	limiter *Limiter

	faultMu  sync.Mutex
	faultRng *rand.Rand

	// reg is the /v1/metrics registry. The counters keep the metric names
	// the plain-text endpoint has always exposed — scrapes written against
	// the old format keep parsing — and gain a per-request service-time
	// histogram on top.
	reg         *obs.Registry
	queries     *obs.Counter   // neighbor pages served with 200
	rateLimited *obs.Counter   // 429s issued
	faulted     *obs.Counter   // injected 503s
	reqUsec     *obs.Histogram // data-endpoint service time, faults and injected latency included

	// clientMu/clientSeen track distinct client keys across the data
	// endpoints for the /v1/metrics active-client gauge. The limiter's own
	// bucket map cannot serve here: unlimited servers never populate it.
	clientMu   sync.Mutex
	clientSeen map[string]struct{}

	// now and sleep are swappable in tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewServer wraps g.
func NewServer(g *graph.Graph, cfg ServerConfig) *Server {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.Faults.Stall > 0 && cfg.Faults.StallDelay <= 0 {
		cfg.Faults.StallDelay = DefaultStallDelay
	}
	s := &Server{
		g:          g,
		csr:        g.CSR(),
		cfg:        cfg,
		private:    make(map[int]struct{}, len(cfg.Private)),
		clientSeen: make(map[string]struct{}),
		limiter:    NewLimiter(cfg.Rate, cfg.Burst),
		faultRng:   rand.New(rand.NewPCG(cfg.FaultSeed, cfg.FaultSeed^0x94d049bb133111eb)),
		reg:        obs.NewRegistry(),
		now:        time.Now,
		sleep:      time.Sleep,
	}
	s.queries = s.reg.Counter("graphd_queries_served", "neighbor pages answered with 200 (budget handed out)")
	s.rateLimited = s.reg.Counter("graphd_rate_limited", "requests answered 429")
	s.faulted = s.reg.Counter("graphd_faulted", "injected faults served (503s, truncations, corruptions, stalls, resets)")
	s.reg.GaugeFunc("graphd_active_clients", "distinct client keys seen on the data endpoints",
		func() int64 { return int64(s.ActiveClients()) })
	s.reqUsec = s.reg.Histogram("graphd_request_usec", "data-endpoint service time in microseconds, injected latency and faults included")
	for _, u := range cfg.Private {
		s.private[u] = struct{}{}
	}
	return s
}

// observeRequest records one data request's service time; defer it with
// the entry timestamp at the top of a handler.
func (s *Server) observeRequest(start time.Time) {
	s.reqUsec.Observe(s.now().Sub(start).Microseconds())
}

// QueriesServed reports neighbor pages answered with 200 — the budget the
// server has handed out.
func (s *Server) QueriesServed() int64 { return s.queries.Value() }

// RateLimited reports how many requests were answered 429.
func (s *Server) RateLimited() int64 { return s.rateLimited.Value() }

// Faulted reports how many injected faults (transient 503s, truncations,
// corruptions, stalls, resets) were served.
func (s *Server) Faulted() int64 { return s.faulted.Value() }

// ActiveClients reports how many distinct client keys (X-API-Key, or
// remote host) have hit the data endpoints.
func (s *Server) ActiveClients() int {
	s.clientMu.Lock()
	defer s.clientMu.Unlock()
	return len(s.clientSeen)
}

// noteClient records the requester for the active-client gauge.
func (s *Server) noteClient(r *http.Request) {
	key := clientKey(r)
	s.clientMu.Lock()
	s.clientSeen[key] = struct{}{}
	s.clientMu.Unlock()
}

// Registry exposes the /v1/metrics registry: the historical counters
// (graphd_queries_served, graphd_rate_limited, graphd_faulted,
// graphd_active_clients — names shared with restored's scrape format so
// one dashboard covers both daemons) plus the graphd_request_usec
// service-time histogram.
func (s *Server) Registry() *obs.Registry { return s.reg }

// healthz describes the served graph for the liveness probe.
func (s *Server) healthz() map[string]any {
	return map[string]any{"nodes": s.g.N(), "edges": s.g.M()}
}

// Handler returns the HTTP handler implementing the wire protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/meta", s.handleMeta)
	mux.HandleFunc("GET /v1/nodes/{id}/neighbors", s.handleNeighbors)
	if s.cfg.MaxBatch > 0 {
		mux.HandleFunc("GET /v1/neighbors", s.handleNeighborsBatch)
	}
	// Load-balancer endpoints, shared with restored via internal/daemon.
	// Probes and scrapes bypass the injected fault/latency machinery and
	// the rate limiter — health checks must see the daemon, not the
	// simulated API weather.
	mux.Handle("GET /v1/healthz", daemon.HealthzHandler(s.healthz))
	mux.Handle("GET /v1/metrics", daemon.MetricsHandler(s.reg))
	return mux
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	defer s.observeRequest(s.now())
	s.noteClient(r)
	s.injectLatency()
	maxBatch := s.cfg.MaxBatch
	if maxBatch < 0 {
		maxBatch = 0
	}
	writeJSON(w, http.StatusOK, Meta{Nodes: s.g.N(), PageSize: s.cfg.PageSize, MaxBatch: maxBatch})
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	defer s.observeRequest(s.now())
	s.noteClient(r)
	if ok, retryAfter := s.limiter.Allow(clientKey(r), s.now()); !ok {
		s.rateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterValue(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, Error{Code: ErrCodeRateLimited})
		return
	}
	s.injectLatency()
	if s.serveFault(w) {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
		return
	}
	if id < 0 || id >= s.csr.N() {
		writeJSON(w, http.StatusNotFound, Error{Code: ErrCodeUnknownNode})
		return
	}
	if _, hidden := s.private[id]; hidden {
		writeJSON(w, http.StatusForbidden, Error{Code: ErrCodePrivate})
		return
	}
	cursor := 0
	if c := r.URL.Query().Get("cursor"); c != "" {
		cursor, err = strconv.Atoi(c)
		if err != nil || cursor < 0 {
			writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
			return
		}
	}
	// Zero-copy: the page is a subslice of the immutable CSR endpoint row,
	// in the exact adjacency order the protocol pins; no per-request copy
	// of the neighbor list is made.
	nb := s.csr.Endpoints(id)
	if cursor > len(nb) {
		writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
		return
	}
	end := cursor + s.cfg.PageSize
	next := 0
	if end >= len(nb) {
		end = len(nb)
	} else {
		next = end
	}
	s.queries.Add(1)
	buf := pageBufPool.Get().(*[]byte)
	b := appendNeighborsPage((*buf)[:0], id, len(nb), nb[cursor:end], next)
	b = append(b, '\n') // json.Encoder.Encode compatibility
	writeRawJSON(w, http.StatusOK, b)
	*buf = b
	pageBufPool.Put(buf)
}

// handleNeighborsBatch serves GET /v1/neighbors?ids=a,b,c — the first page
// of up to MaxBatch nodes in one round trip, so frontier crawlers amortize
// per-request HTTP overhead. The request costs one rate-limit token; each
// node served counts toward QueriesServed. Per-node failures (unknown id,
// private profile) are reported per item so one bad id cannot poison the
// batch; hubs whose lists exceed PageSize return their first page with
// next_cursor set, and clients continue on the single-node endpoint.
func (s *Server) handleNeighborsBatch(w http.ResponseWriter, r *http.Request) {
	defer s.observeRequest(s.now())
	s.noteClient(r)
	if ok, retryAfter := s.limiter.Allow(clientKey(r), s.now()); !ok {
		s.rateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterValue(retryAfter))
		writeJSON(w, http.StatusTooManyRequests, Error{Code: ErrCodeRateLimited})
		return
	}
	s.injectLatency()
	if s.serveFault(w) {
		return
	}
	raw := r.URL.Query().Get("ids")
	if raw == "" {
		writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
		return
	}
	parts := strings.Split(raw, ",")
	if len(parts) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
		return
	}
	ids := make([]int, len(parts))
	for i, p := range parts {
		id, err := strconv.Atoi(p)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, Error{Code: ErrCodeBadRequest})
			return
		}
		ids[i] = id
	}
	buf := pageBufPool.Get().(*[]byte)
	b := append((*buf)[:0], `{"results":[`...)
	for i, id := range ids {
		if i > 0 {
			b = append(b, ',')
		}
		switch {
		case id < 0 || id >= s.csr.N():
			b = appendBatchError(b, id, ErrCodeUnknownNode)
		case s.isPrivate(id):
			b = appendBatchError(b, id, ErrCodePrivate)
		default:
			nb := s.csr.Endpoints(id)
			end, next := len(nb), 0
			if end > s.cfg.PageSize {
				end, next = s.cfg.PageSize, s.cfg.PageSize
			}
			s.queries.Add(1)
			b = appendNeighborsPage(b, id, len(nb), nb[:end], next)
		}
	}
	b = append(b, ']', '}', '\n')
	writeRawJSON(w, http.StatusOK, b)
	*buf = b
	pageBufPool.Put(buf)
}

func (s *Server) isPrivate(id int) bool {
	_, hidden := s.private[id]
	return hidden
}

// pageBufPool recycles response buffers so the steady-state neighbor-page
// path allocates nothing per request beyond what net/http itself needs.
var pageBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// appendNeighborsPage renders a NeighborsPage as JSON, byte-identical to
// encoding/json's output for the struct (field order, omitempty next_cursor)
// minus the per-request encoder machinery.
func appendNeighborsPage(b []byte, id, degree int, nbrs []int32, next int) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, `,"degree":`...)
	b = strconv.AppendInt(b, int64(degree), 10)
	b = append(b, `,"neighbors":[`...)
	for i, v := range nbrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	b = append(b, ']')
	if next > 0 {
		b = append(b, `,"next_cursor":`...)
		b = strconv.AppendInt(b, int64(next), 10)
	}
	return append(b, '}')
}

// appendBatchError renders a per-item batch failure.
func appendBatchError(b []byte, id int, code string) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, `,"error":"`...)
	b = append(b, code...)
	return append(b, '"', '}')
}

// writeRawJSON writes a prerendered JSON body.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// injectLatency sleeps the configured base latency plus uniform jitter.
func (s *Server) injectLatency() {
	d := s.cfg.Latency
	if s.cfg.Jitter > 0 {
		s.faultMu.Lock()
		d += time.Duration(s.faultRng.Int64N(int64(s.cfg.Jitter)))
		s.faultMu.Unlock()
	}
	if d > 0 {
		s.sleep(d)
	}
}

// faultKind enumerates the injected failure modes.
type faultKind int

const (
	faultNone faultKind = iota
	faultTransient
	faultTruncate
	faultCorrupt
	faultStall
	faultReset
)

// drawFault draws one uniform variate from the seeded fault stream and
// maps it onto the cumulative fault mix. Transient (ErrorRate) owns the
// first interval, so a config with no FaultPlan reproduces the legacy
// single-mode fault sequence exactly.
func (s *Server) drawFault() faultKind {
	if s.cfg.ErrorRate <= 0 && s.cfg.Faults.rate() <= 0 {
		return faultNone
	}
	s.faultMu.Lock()
	u := s.faultRng.Float64()
	s.faultMu.Unlock()
	for _, step := range [...]struct {
		rate float64
		kind faultKind
	}{
		{s.cfg.ErrorRate, faultTransient},
		{s.cfg.Faults.Truncate, faultTruncate},
		{s.cfg.Faults.Corrupt, faultCorrupt},
		{s.cfg.Faults.Stall, faultStall},
		{s.cfg.Faults.Reset, faultReset},
	} {
		if u -= step.rate; u < 0 {
			return step.kind
		}
	}
	return faultNone
}

// serveFault draws from the fault plan and acts on the outcome. It reports
// whether the request was consumed by the fault; false means serve the
// request normally (no fault, or a stall — which has already slept and
// must now produce a correct response).
func (s *Server) serveFault(w http.ResponseWriter) bool {
	kind := s.drawFault()
	if kind == faultNone {
		return false
	}
	s.faulted.Add(1)
	switch kind {
	case faultStall:
		s.sleep(s.cfg.Faults.StallDelay)
		return false
	case faultTransient:
		writeJSON(w, http.StatusServiceUnavailable, Error{Code: ErrCodeTransient})
	case faultCorrupt:
		// A 200 whose body does not parse: the bytes a proxy or a buggy
		// upstream can hand back. Deliberately delivered complete and
		// well-framed — only the JSON layer is damaged.
		writeRawJSON(w, http.StatusOK, []byte(`{"id":0,"degree":3,"neighbors":[1,,]}`+"\n"))
	case faultTruncate:
		s.dropConn(w, true)
	case faultReset:
		s.dropConn(w, false)
	}
	return true
}

// dropConn hijacks the client connection and kills it. With partial set it
// first writes a 200 header promising more body bytes than it sends, so
// the client reads an unexpected EOF mid-body; without it the connection
// dies before any response (SO_LINGER zeroed → TCP RST where possible).
// Writers that cannot be hijacked (httptest recorders, HTTP/2) degrade to
// a clean transient 503 — still a fault, just a politer one.
func (s *Server) dropConn(w http.ResponseWriter, partial bool) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeJSON(w, http.StatusServiceUnavailable, Error{Code: ErrCodeTransient})
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, Error{Code: ErrCodeTransient})
		return
	}
	if partial {
		io.WriteString(bufrw, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4096\r\n\r\n{\"id\":0,\"degree\":97,\"neighbors\":[1,2,")
		bufrw.Flush()
	} else if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// clientKey identifies the requester for rate limiting: the X-API-Key
// header when present, else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterValue renders a Retry-After header in fractional seconds with
// millisecond resolution. RFC 9110 specifies integer seconds, but a
// token-bucket deficit is usually a few milliseconds and rounding up to 1s
// would stall honest clients 100x too long; oracle.Client parses either
// form, and integer-only parsers still reject rather than misread it.
func retryAfterValue(d time.Duration) string {
	ms := math.Ceil(float64(d) / float64(time.Millisecond))
	if ms < 1 {
		ms = 1
	}
	return strconv.FormatFloat(ms/1000, 'f', 3, 64)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
