package oracle

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// testGraph is a small scale-free graph with hubs big enough to paginate.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.HolmeKim(400, 3, 0.5, rand.New(rand.NewPCG(7, 8)))
}

// startServer boots a Server on an httptest listener.
func startServer(t testing.TB, g *graph.Graph, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(g, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// getAs GETs url and decodes the JSON body into out, returning the status.
func getAs(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServerMeta(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{PageSize: 64})
	var m Meta
	if code := getAs(t, ts.URL+"/v1/meta", &m); code != http.StatusOK {
		t.Fatalf("meta status %d", code)
	}
	if m.Nodes != g.N() || m.PageSize != 64 {
		t.Fatalf("meta = %+v, want nodes=%d page_size=64", m, g.N())
	}
}

func TestServerNeighborsOrderAndErrors(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{})
	var page NeighborsPage
	if code := getAs(t, fmt.Sprintf("%s/v1/nodes/%d/neighbors", ts.URL, 5), &page); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := g.Neighbors(5)
	if page.Degree != len(want) || len(page.Neighbors) != len(want) {
		t.Fatalf("degree %d, %d neighbors; want %d", page.Degree, len(page.Neighbors), len(want))
	}
	for i, v := range want {
		if page.Neighbors[i] != v {
			t.Fatalf("neighbor order diverges at %d: got %d want %d", i, page.Neighbors[i], v)
		}
	}

	var e Error
	if code := getAs(t, fmt.Sprintf("%s/v1/nodes/%d/neighbors", ts.URL, g.N()), &e); code != http.StatusNotFound || e.Code != ErrCodeUnknownNode {
		t.Fatalf("unknown node: status %d code %q", code, e.Code)
	}
	if code := getAs(t, ts.URL+"/v1/nodes/nope/neighbors", &e); code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", code)
	}
	if code := getAs(t, ts.URL+"/v1/nodes/5/neighbors?cursor=-1", &e); code != http.StatusBadRequest {
		t.Fatalf("bad cursor: status %d", code)
	}
	if code := getAs(t, ts.URL+"/v1/nodes/5/neighbors?cursor=99999", &e); code != http.StatusBadRequest {
		t.Fatalf("past-end cursor: status %d", code)
	}
}

func TestServerPagination(t *testing.T) {
	g := testGraph(t)
	// Find the max-degree node and page through it 3 neighbors at a time.
	hub := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) > g.Degree(hub) {
			hub = u
		}
	}
	if g.Degree(hub) < 7 {
		t.Fatalf("test graph hub degree %d too small to paginate", g.Degree(hub))
	}
	_, ts := startServer(t, g, ServerConfig{PageSize: 3})
	var got []int
	cursor, pages := 0, 0
	for {
		url := fmt.Sprintf("%s/v1/nodes/%d/neighbors?cursor=%d", ts.URL, hub, cursor)
		var page NeighborsPage
		if code := getAs(t, url, &page); code != http.StatusOK {
			t.Fatalf("page at cursor %d: status %d", cursor, code)
		}
		if len(page.Neighbors) > 3 {
			t.Fatalf("page holds %d neighbors, cap is 3", len(page.Neighbors))
		}
		got = append(got, page.Neighbors...)
		pages++
		if page.NextCursor == 0 {
			break
		}
		cursor = page.NextCursor
	}
	want := g.Neighbors(hub)
	if pages < 3 {
		t.Fatalf("hub of degree %d served in %d pages", len(want), pages)
	}
	if len(got) != len(want) {
		t.Fatalf("reassembled %d neighbors, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paginated order diverges at %d", i)
		}
	}
}

func TestServerPrivateNodes(t *testing.T) {
	g := testGraph(t)
	_, ts := startServer(t, g, ServerConfig{Private: []int{3, 9}})
	var e Error
	if code := getAs(t, ts.URL+"/v1/nodes/3/neighbors", &e); code != http.StatusForbidden || e.Code != ErrCodePrivate {
		t.Fatalf("private node: status %d code %q", code, e.Code)
	}
	var page NeighborsPage
	if code := getAs(t, ts.URL+"/v1/nodes/4/neighbors", &page); code != http.StatusOK {
		t.Fatalf("public node: status %d", code)
	}
}

func TestServerRateLimitPerClient(t *testing.T) {
	g := testGraph(t)
	srv, ts := startServer(t, g, ServerConfig{Rate: 0.001, Burst: 2})
	// Freeze time so the bucket never refills during the test.
	now := time.Unix(5000, 0)
	srv.now = func() time.Time { return now }

	get := func(key string) (int, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/nodes/1/neighbors", nil)
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}
	for i := 0; i < 2; i++ {
		if code, _ := get("alice"); code != http.StatusOK {
			t.Fatalf("alice burst request %d: status %d", i, code)
		}
	}
	code, retryAfter := get("alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: status %d, want 429", code)
	}
	if retryAfter == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// bob is a different client and still has his full burst.
	if code, _ := get("bob"); code != http.StatusOK {
		t.Fatalf("bob: status %d", code)
	}
	if srv.RateLimited() != 1 {
		t.Fatalf("RateLimited() = %d, want 1", srv.RateLimited())
	}
}

func TestServerInjectedFaults(t *testing.T) {
	g := testGraph(t)
	srv, ts := startServer(t, g, ServerConfig{ErrorRate: 0.5, FaultSeed: 42})
	got200, got503 := 0, 0
	for i := 0; i < 60; i++ {
		var out json.RawMessage
		switch code := getAs(t, ts.URL+"/v1/nodes/1/neighbors", &out); code {
		case http.StatusOK:
			got200++
		case http.StatusServiceUnavailable:
			got503++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if got503 == 0 || got200 == 0 {
		t.Fatalf("error-rate 0.5 over 60 requests: %d ok, %d injected", got200, got503)
	}
	if srv.Faulted() != int64(got503) {
		t.Fatalf("Faulted() = %d, observed %d", srv.Faulted(), got503)
	}
}

// TestServerHealthzAndMetrics covers the load-balancer endpoints: a probe
// that always answers ok, and a plain-text scrape counting served queries,
// rate-limit rejections, faults and distinct clients.
func TestServerHealthzAndMetrics(t *testing.T) {
	g := testGraph(t)
	srv, ts := startServer(t, g, ServerConfig{Rate: 1e6, Burst: 1})
	var hz map[string]any
	if st := getAs(t, ts.URL+"/v1/healthz", &hz); st != http.StatusOK {
		t.Fatalf("healthz status %d", st)
	}
	if hz["status"] != "ok" || hz["nodes"] != float64(g.N()) || hz["edges"] != float64(g.M()) {
		t.Fatalf("healthz body = %v", hz)
	}

	// Two distinct clients query; the second's burst-exhausting spam piles
	// up rate-limit rejections.
	for _, key := range []string{"alice", "bob"} {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/nodes/0/neighbors", nil)
		req.Header.Set("X-API-Key", key)
		for i := 0; i < 3; i++ {
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue // HELP/TYPE exposition comments
		}
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err != nil {
			t.Fatalf("unparseable metrics line %q", line)
		}
		metrics[name] = int64(v)
	}
	if metrics["graphd_queries_served"] != srv.QueriesServed() || metrics["graphd_queries_served"] < 2 {
		t.Fatalf("queries_served metric %d, server says %d", metrics["graphd_queries_served"], srv.QueriesServed())
	}
	if metrics["graphd_rate_limited"] != srv.RateLimited() {
		t.Fatalf("rate_limited metric %d, server says %d", metrics["graphd_rate_limited"], srv.RateLimited())
	}
	if metrics["graphd_active_clients"] != 2 {
		t.Fatalf("active_clients = %d, want 2", metrics["graphd_active_clients"])
	}
	if n := metrics["graphd_request_usec_count"]; n < 6 {
		t.Fatalf("request_usec histogram observed %d requests, want >= 6", n)
	}
	// The probe/scrape endpoints themselves never count as clients or
	// queries and are exempt from the rate limiter.
	if srv.ActiveClients() != 2 {
		t.Fatalf("ActiveClients = %d after scrape, want 2", srv.ActiveClients())
	}
}
