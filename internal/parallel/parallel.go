// Package parallel provides the bounded, deterministic worker pool that
// drives the evaluation pipeline. Jobs are identified by a dense index;
// results are collected by index, never by completion order, so a caller
// that makes every job self-contained (its own RNG stream, no shared
// mutable state) gets byte-identical output at any worker count. All
// scheduling is work-stealing over an atomic cursor: goroutines claim the
// next unclaimed index, which balances uneven job costs without affecting
// where results land.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default pool width, runtime.GOMAXPROCS(0) —
// the scheduler's actual parallelism bound, which respects CPU-limited
// containers where NumCPU would oversubscribe.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clamp normalizes a requested worker count for n jobs: non-positive
// selects DefaultWorkers, and the pool never exceeds the job count.
func clamp(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(0), ..., fn(n-1) on at most workers goroutines and returns
// the results in index order. workers <= 0 selects DefaultWorkers.
//
// On failure Map stops claiming new jobs (already-claimed jobs run to
// completion) and returns the lowest-index error among the jobs that ran.
// fn must be safe for concurrent invocation with distinct indices.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach runs fn(0), ..., fn(n-1) on at most workers goroutines, for jobs
// that write their results into caller-owned, index-disjoint slots. The
// error contract matches Map.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Blocks partitions [0, n) into contiguous blocks and runs fn(lo, hi) for
// each on at most workers goroutines. It suits tight per-element loops
// whose bodies are too cheap to schedule individually and lets fn allocate
// per-block scratch (BFS buffers, partial maps) once per block rather than
// once per element. Block boundaries affect scheduling only: as long as fn
// writes index-disjoint slots — or collects per-block partials that the
// caller merges after Blocks returns, if the merge is order-insensitive
// (integer sums) — the outcome is independent of the worker count. fn must
// not update shared accumulators in place; concurrent blocks race on them.
func Blocks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clamp(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	// A few blocks per worker keeps the pool busy under uneven costs
	// without shrinking blocks into scheduling overhead.
	blocks := workers * 4
	if blocks > n {
		blocks = n
	}
	size := (n + blocks - 1) / blocks
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := (int(next.Add(1)) - 1) * size
				if lo >= n {
					return
				}
				hi := lo + size
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}
