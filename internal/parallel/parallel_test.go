package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) {
		t.Error("fn must not run for n=0")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	e3 := errors.New("job 3")
	e7 := errors.New("job 7")
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, e3
			case 7:
				return 0, e7
			}
			return i, nil
		})
		if !errors.Is(err, e3) {
			t.Fatalf("workers=%d: want job-3 error, got %v", workers, err)
		}
	}
}

func TestMapRunsEveryJobOnceWhenParallel(t *testing.T) {
	var calls [64]atomic.Int32
	err := ForEach(8, len(calls), func(i int) error {
		calls[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := Map(workers, 200, func(i int) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		// Spin briefly so jobs overlap.
		for j := 0; j < 1000; j++ {
			_ = j * j
		}
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}

func TestBlocksCoverEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 7} {
			var seen []atomic.Int32
			if n > 0 {
				seen = make([]atomic.Int32, n)
			}
			Blocks(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad block [%d,%d)", n, workers, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					seen[i].Add(1)
				}
			})
			for i := range seen {
				if c := seen[i].Load(); c != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{4, 10, 4},
		{10, 4, 4},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := clamp(c.workers, c.n); got != c.want {
			t.Errorf("clamp(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	if got := clamp(-1, 2); got < 1 || got > 2 {
		t.Errorf("clamp(-1, 2) = %d, want 1 or 2", got)
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = Map(workers, 64, func(j int) (int, error) { return j, nil })
			}
		})
	}
}
