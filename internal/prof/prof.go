// Package prof wires the standard -cpuprofile/-memprofile pprof flags into
// the CLI commands, so perf work profiles the real pipeline (cmd/props,
// cmd/restore) instead of microbenchmarks.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the file targets registered by AddFlags.
type Flags struct {
	CPU string
	Mem string
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func AddFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file at exit")
	return f
}

// Start begins CPU profiling if requested and returns a stop function that
// finishes the CPU profile and writes the heap profile. Call the stop
// function on the command's success path (a log.Fatal exit abandons the
// profiles, which is fine: failed runs are not worth profiling).
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
