// Package prof wires the standard -cpuprofile/-memprofile pprof flags into
// the CLI commands, so perf work profiles the real pipeline (cmd/props,
// cmd/restore) instead of microbenchmarks. For the daemons it also mounts
// the net/http/pprof handlers behind an explicit opt-in (Mount), so a
// misbehaving graphd/restored can be profiled live.
package prof

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runpprof "runtime/pprof"
)

// Mount registers the net/http/pprof handlers on mux under /debug/pprof/.
// The daemons call this only behind their -pprof flag: live profiling is
// an operator opt-in, never an always-on endpoint.
func Mount(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Flags holds the file targets registered by AddFlags.
type Flags struct {
	CPU string
	Mem string
}

// AddFlags registers -cpuprofile and -memprofile on the default flag set.
// Call before flag.Parse.
func AddFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file at exit")
	return f
}

// Start begins CPU profiling if requested and returns a stop function that
// finishes the CPU profile and writes the heap profile. Call the stop
// function on the command's success path (a log.Fatal exit abandons the
// profiles, which is fine: failed runs are not worth profiling).
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("prof: creating cpu profile: %w", err)
		}
		if err := runpprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			runpprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // materialize the final live set
			if err := runpprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
			}
		}
	}, nil
}
