// Package props computes the twelve structural properties of Sec. V-B used
// throughout the paper's evaluation: number of nodes, average degree, degree
// distribution, neighbor connectivity, network clustering coefficient,
// degree-dependent clustering coefficient, edgewise shared partner
// distribution, average shortest-path length, shortest-path length
// distribution, diameter, degree-dependent betweenness centrality, and the
// largest adjacency eigenvalue.
//
// Shortest-path properties are computed on the largest connected component,
// exactly as in the paper, via goroutine-parallel BFS and Brandes
// betweenness (the paper uses the parallel algorithms of Bader & Madduri for
// the same quantities). For large graphs a pivot-sampling approximation
// bounds the cost; the exact/approximate switch is explicit in Options.
package props

import (
	"sgr/internal/graph"
	"sgr/internal/parallel"
)

// DegreeDist returns P(k), the fraction of nodes with each degree.
func DegreeDist(g *graph.Graph) map[int]float64 {
	out := make(map[int]float64)
	for u := 0; u < g.N(); u++ {
		out[g.Degree(u)]++
	}
	n := float64(g.N())
	for k := range out {
		out[k] /= n
	}
	return out
}

// NeighborConnectivity returns kbar_nn(k): for each degree k, the average
// over degree-k nodes of the mean neighbor degree (1/k) sum_j A_ij d_j.
// Multi-edges weight neighbors by multiplicity; a self-loop contributes the
// node's own degree twice, per the adjacency-matrix convention.
func NeighborConnectivity(g *graph.Graph) map[int]float64 {
	return neighborConnectivity(g, 0)
}

func neighborConnectivity(g *graph.Graph, workers int) map[int]float64 {
	c := g.CSR()
	n := c.N()
	// Per-node mean neighbor degree over the CSR endpoint view (same
	// summation order as the adjacency lists it snapshots, so the floats
	// are bit-identical to the pre-CSR loop), computed in parallel into
	// disjoint slots; the degree-keyed reduction below runs serially in
	// ascending node order, matching the accumulation order of a serial
	// loop — so the result is bit-identical at any worker count.
	avg := make([]float64, n)
	parallel.Blocks(workers, n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			k := c.Degree(u)
			if k == 0 {
				continue
			}
			s := 0.0
			for _, v := range c.Endpoints(u) {
				s += float64(c.Degree(int(v)))
			}
			avg[u] = s / float64(k)
		}
	})
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < n; u++ {
		k := c.Degree(u)
		cnt[k]++
		if k > 0 {
			sum[k] += avg[u]
		}
	}
	out := make(map[int]float64, len(cnt))
	for k, c := range cnt {
		out[k] = sum[k] / float64(c)
	}
	return out
}

// LocalClustering returns the per-node local clustering coefficients
// 2 t_i / (d_i (d_i - 1)), zero for degree < 2.
func LocalClustering(g *graph.Graph) []float64 {
	return localClustering(g, 0)
}

func localClustering(g *graph.Graph, workers int) []float64 {
	t := g.TriangleCountsWorkers(workers)
	out := make([]float64, g.N())
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		if d >= 2 {
			out[u] = 2 * float64(t[u]) / (float64(d) * float64(d-1))
		}
	}
	return out
}

// GlobalClustering returns the network clustering coefficient cbar: the
// mean local clustering coefficient over all nodes (Sec. V-B, property 5).
func GlobalClustering(g *graph.Graph) float64 {
	return globalClusteringOf(g, LocalClustering(g))
}

// globalClusteringOf derives cbar from precomputed local coefficients.
func globalClusteringOf(g *graph.Graph, local []float64) float64 {
	if g.N() == 0 {
		return 0
	}
	s := 0.0
	for _, c := range local {
		s += c
	}
	return s / float64(g.N())
}

// DegreeClustering returns cbar(k): the mean local clustering coefficient
// over nodes of each degree, with cbar(k) = 0 for k < 2.
func DegreeClustering(g *graph.Graph) map[int]float64 {
	return degreeClusteringOf(g, LocalClustering(g))
}

// degreeClusteringOf derives cbar(k) from precomputed local coefficients.
func degreeClusteringOf(g *graph.Graph, local []float64) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		k := g.Degree(u)
		cnt[k]++
		sum[k] += local[u]
	}
	out := make(map[int]float64, len(cnt))
	for k, c := range cnt {
		out[k] = sum[k] / float64(c)
	}
	return out
}

// EdgewiseSharedPartners returns P(s) (Sec. V-B, property 7): the fraction
// of (non-loop) edge instances whose endpoints share exactly s neighbors,
// sp(i,j) = sum_{k != i,j} A_ik A_jk.
func EdgewiseSharedPartners(g *graph.Graph) map[int]float64 {
	return edgewiseSharedPartners(g, 0)
}

func edgewiseSharedPartners(g *graph.Graph, workers int) map[int]float64 {
	// Shared CSR snapshot, built once serially and shared read-only.
	c := g.CSR()
	n := c.N()
	// The shared-partner histogram is integer-valued, so per-block partial
	// counts merge commutatively — identical at any worker count. Dense
	// int64 histograms (indexed by shared-partner count) replace the
	// per-block maps: the hot loop is a sorted-merge intersection plus one
	// slice increment, allocation-free once a block's histogram has grown
	// to its working size.
	type partial struct {
		counts []int64
		total  int64
	}
	const blockNodes = 256
	blocks := (n + blockNodes - 1) / blockNodes
	parts, _ := parallel.Map(workers, blocks, func(b int) (partial, error) {
		var p partial
		lo, hi := b*blockNodes, (b+1)*blockNodes
		if hi > n {
			hi = n
		}
		for u := lo; u < hi; u++ {
			nbr, mult := c.Row(u)
			for i, vk := range nbr {
				v := int(vk)
				if v <= u {
					continue // each distinct pair once; self-loops excluded
				}
				// sp(u,v) = sum_{w != u,v} A_uw A_vw by sorted-merge of the
				// two distinct rows (endpoint exclusion is structural).
				sp := c.SharedPartners(u, v)
				for int64(len(p.counts)) <= sp {
					p.counts = append(p.counts, 0)
				}
				// One entry per parallel edge instance.
				p.counts[sp] += int64(mult[i])
				p.total += int64(mult[i])
			}
		}
		return p, nil
	})
	var merged []int64
	var total int64
	for _, p := range parts {
		for s, c := range p.counts {
			for len(merged) <= s {
				merged = append(merged, 0)
			}
			merged[s] += c
		}
		total += p.total
	}
	out := make(map[int]float64)
	if total == 0 {
		return out
	}
	for s, c := range merged {
		if c > 0 {
			out[s] = float64(c) / float64(total)
		}
	}
	return out
}
