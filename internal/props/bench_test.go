package props

import (
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	return gen.HolmeKim(n, 4, 0.5, rng(1))
}

func BenchmarkComputeAllExact(b *testing.B) {
	g := benchGraph(b, 2000)
	opts := Options{ExactThreshold: 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, opts)
	}
}

// BenchmarkComputeAllExactRef runs the frozen pre-CSR Compute pipeline
// (csrdiff_test.go) on the same graph and options, so BENCH_props.json
// carries before/after numbers measured on the same hardware — the
// counterpart of BenchmarkRewire's adjset-vs-mapref split.
func BenchmarkComputeAllExactRef(b *testing.B) {
	g := benchGraph(b, 2000)
	opts := Options{ExactThreshold: 5000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refCompute(g, opts)
	}
}

func BenchmarkComputeAllPivot(b *testing.B) {
	g := benchGraph(b, 5000)
	opts := Options{ExactThreshold: 100, Pivots: 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, opts)
	}
}

// BenchmarkComputeAllPivotRef is the frozen pre-CSR pipeline in pivot mode.
func BenchmarkComputeAllPivotRef(b *testing.B) {
	g := benchGraph(b, 5000)
	opts := Options{ExactThreshold: 100, Pivots: 500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refCompute(g, opts)
	}
}

func BenchmarkBrandesAllSources(b *testing.B) {
	g := benchGraph(b, 1500)
	c := newCSR(g)
	sources := make([]int32, g.N())
	for i := range sources {
		sources[i] = int32(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		computePaths(c, sources, 1, 0)
	}
}

func BenchmarkLambda1(b *testing.B) {
	g := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lambda1(g)
	}
}

func BenchmarkEdgewiseSharedPartners(b *testing.B) {
	g := benchGraph(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgewiseSharedPartners(g)
	}
}

func BenchmarkCoreNumbers(b *testing.B) {
	g := benchGraph(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CoreNumbers(g)
	}
}

func BenchmarkDissimilarity(b *testing.B) {
	a := benchGraph(b, 800)
	g := gen.HolmeKim(800, 4, 0.3, rng(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dissimilarity(a, g, Options{})
	}
}
