package props

import (
	"math"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// naiveDistances computes all-pairs shortest path lengths by Floyd-Warshall
// over the simple projection of g (multiplicities do not affect distances).
func naiveDistances(g *graph.Graph) [][]int {
	n := g.N()
	const inf = 1 << 29
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for u := 0; u < n; u++ {
		for v := range g.NeighborMultiplicities(u) {
			d[u][v] = 1
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] >= inf {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// naiveBetweenness computes the ordered-pair betweenness by explicit
// shortest-path counting with multiplicity-weighted sigma, O(n^3)-ish.
func naiveBetweenness(g *graph.Graph) []float64 {
	n := g.N()
	dist := naiveDistances(g)
	// sigma[s][t]: number of shortest paths (with edge multiplicities).
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		sigma[s] = make([]float64, n)
		sigma[s][s] = 1
	}
	// Dynamic program over increasing distance.
	maxD := 0
	for i := range dist {
		for j := range dist[i] {
			if dist[i][j] < 1<<29 && dist[i][j] > maxD {
				maxD = dist[i][j]
			}
		}
	}
	mult := make([]map[int]int, n)
	for u := 0; u < n; u++ {
		mult[u] = g.NeighborMultiplicities(u)
	}
	for l := 1; l <= maxD; l++ {
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if dist[s][t] != l {
					continue
				}
				var paths float64
				//sgr:nondet-ok reference engine: sigma's float-order tail is absorbed by the cross-check tolerance
				for p, m := range mult[t] {
					if dist[s][p] == l-1 {
						paths += sigma[s][p] * float64(m)
					}
				}
				sigma[s][t] = paths
			}
		}
	}
	bc := make([]float64, n)
	for v := 0; v < n; v++ {
		for s := 0; s < n; s++ {
			if s == v {
				continue
			}
			for t := 0; t < n; t++ {
				if t == s || t == v {
					continue
				}
				if dist[s][t] < 1<<29 && dist[s][v]+dist[v][t] == dist[s][t] && sigma[s][t] > 0 {
					bc[v] += sigma[s][v] * sigma[v][t] / sigma[s][t]
				}
			}
		}
	}
	return bc
}

func TestPathsMatchFloydWarshall(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		g := gen.HolmeKim(40+10*trial, 2, 0.5, rng(uint64(20+trial)))
		d := naiveDistances(g)
		var sum, cnt int
		maxD := 0
		hist := map[int]int{}
		for i := 0; i < g.N(); i++ {
			for j := 0; j < g.N(); j++ {
				if i == j {
					continue
				}
				sum += d[i][j]
				cnt++
				hist[d[i][j]]++
				if d[i][j] > maxD {
					maxD = d[i][j]
				}
			}
		}
		res := Compute(g, Options{})
		wantAvg := float64(sum) / float64(cnt)
		if math.Abs(res.AvgPathLen-wantAvg) > 1e-9 {
			t.Fatalf("trial %d: lbar %v want %v", trial, res.AvgPathLen, wantAvg)
		}
		if res.Diameter != maxD {
			t.Fatalf("trial %d: diameter %d want %d", trial, res.Diameter, maxD)
		}
		for l, c := range hist {
			want := float64(c) / float64(cnt)
			if math.Abs(res.PathLenDist[l]-want) > 1e-9 {
				t.Fatalf("trial %d: P(%d) = %v want %v", trial, l, res.PathLenDist[l], want)
			}
		}
	}
}

func TestBetweennessMatchesNaive(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		g := gen.HolmeKim(30+5*trial, 2, 0.4, rng(uint64(40+trial)))
		want := naiveBetweenness(g)
		lcc, _ := g.LargestComponent()
		if lcc.N() != g.N() {
			t.Fatal("test graph must be connected")
		}
		c := newCSR(g)
		sources := make([]int32, g.N())
		for i := range sources {
			sources[i] = int32(i)
		}
		st := computePaths(c, sources, 1, 4)
		for v := range want {
			if math.Abs(st.Betweenness[v]-want[v]) > 1e-6*(1+want[v]) {
				t.Fatalf("trial %d: bc[%d] = %v want %v", trial, v, st.Betweenness[v], want[v])
			}
		}
	}
}

func TestBetweennessMatchesNaiveOnMultigraph(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	g.AddEdge(2, 4)
	want := naiveBetweenness(g)
	c := newCSR(g)
	sources := []int32{0, 1, 2, 3, 4}
	st := computePaths(c, sources, 1, 2)
	for v := range want {
		if math.Abs(st.Betweenness[v]-want[v]) > 1e-9 {
			t.Fatalf("bc[%d] = %v want %v (all got=%v want=%v)", v, st.Betweenness[v], want[v], st.Betweenness, want)
		}
	}
}
