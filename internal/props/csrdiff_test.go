package props

// Frozen pre-CSR reference implementations of every props function that was
// rewritten onto the shared graph.CSR snapshot, plus differential tests
// pinning the rewrites to them. The references keep the exact shapes of the
// replaced code — per-node NeighborMultiplicities maps, Index probes,
// [][]int walks, the map-and-sort csr builder — so a behavioral drift in
// the CSR read path fails here with strict (bit-for-bit) equality. This
// mirrors the rewire_mapref_test.go pattern that guards the PR-2 adjset
// rewiring engine.

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// refNewCSR is the frozen pre-CSR path-view builder: per-node multiplicity
// maps flattened into sorted rows.
func refNewCSR(g *graph.Graph) *csr {
	n := g.N()
	c := &csr{n: n, offset: make([]int32, n+1)}
	type ent struct{ v, m int32 }
	rows := make([][]ent, n)
	total := 0
	for u := 0; u < n; u++ {
		mm := g.NeighborMultiplicities(u)
		row := make([]ent, 0, len(mm))
		for v, m := range mm {
			row = append(row, ent{int32(v), int32(m)})
		}
		sort.Slice(row, func(i, j int) bool { return row[i].v < row[j].v })
		rows[u] = row
		total += len(row)
	}
	c.nbr = make([]int32, total)
	c.mult = make([]int32, total)
	pos := 0
	for u := 0; u < n; u++ {
		c.offset[u] = int32(pos)
		for _, e := range rows[u] {
			c.nbr[pos] = e.v
			c.mult[pos] = e.m
			pos++
		}
	}
	c.offset[n] = int32(pos)
	return c
}

// refTriangleCounts is the frozen pair-probe triangle counter:
// t_i = sum_{j<l} A_ij A_il A_jl over distinct non-self neighbor pairs,
// with A_jl probed through the multiplicity index.
func refTriangleCounts(g *graph.Graph) []int64 {
	ix := g.Index()
	t := make([]int64, g.N())
	for u := 0; u < g.N(); u++ {
		mm := g.NeighborMultiplicities(u)
		keys := make([]int, 0, len(mm))
		//sgr:nondet-ok keys only feed the unordered-pair probe below, whose integer adds commute
		for v := range mm {
			keys = append(keys, v)
		}
		for i := 0; i < len(keys); i++ {
			for k := i + 1; k < len(keys); k++ {
				if ajl := ix.Multiplicity(keys[i], keys[k]); ajl > 0 {
					t[u] += int64(mm[keys[i]]) * int64(mm[keys[k]]) * int64(ajl)
				}
			}
		}
	}
	return t
}

func refLocalClustering(g *graph.Graph) []float64 {
	t := refTriangleCounts(g)
	out := make([]float64, g.N())
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		if d >= 2 {
			out[u] = 2 * float64(t[u]) / (float64(d) * float64(d-1))
		}
	}
	return out
}

// refNeighborConnectivity is the frozen serial per-endpoint loop over the
// graph's own adjacency lists.
func refNeighborConnectivity(g *graph.Graph) map[int]float64 {
	n := g.N()
	avg := make([]float64, n)
	for u := 0; u < n; u++ {
		k := g.Degree(u)
		if k == 0 {
			continue
		}
		s := 0.0
		for _, v := range g.Neighbors(u) {
			s += float64(g.Degree(v))
		}
		avg[u] = s / float64(k)
	}
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < n; u++ {
		k := g.Degree(u)
		cnt[k]++
		if k > 0 {
			sum[k] += avg[u]
		}
	}
	out := make(map[int]float64, len(cnt))
	for k, c := range cnt {
		out[k] = sum[k] / float64(c)
	}
	return out
}

// refEdgewiseSharedPartners is the frozen probe-based P(s): scan one
// endpoint's multiplicity map, probe the other through the index.
func refEdgewiseSharedPartners(g *graph.Graph) map[int]float64 {
	ix := g.Index()
	counts := make(map[int]int)
	total := 0
	for u := 0; u < g.N(); u++ {
		mm := g.NeighborMultiplicities(u)
		for v, cuv := range mm {
			if v <= u {
				continue
			}
			sp := 0
			for w, cuw := range mm {
				if w == u || w == v {
					continue
				}
				if cb := ix.Multiplicity(v, w); cb > 0 {
					sp += cuw * cb
				}
			}
			counts[sp] += cuv
			total += cuv
		}
	}
	out := make(map[int]float64)
	if total == 0 {
		return out
	}
	for s, c := range counts {
		out[s] = float64(c) / float64(total)
	}
	return out
}

// refLambda1 is the frozen power iteration over g's own adjacency lists.
func refLambda1(g *graph.Graph) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	lambda := 0.0
	for iter := 0; iter < 2000; iter++ {
		copy(y, x)
		for u := 0; u < n; u++ {
			xu := x[u]
			for _, v := range g.Neighbors(u) {
				y[v] += xu
			}
		}
		ray := 0.0
		var norm float64
		for i := range y {
			ray += x[i] * y[i]
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		x, y = y, x
		if iter > 0 && math.Abs(ray-lambda) < 1e-11*math.Max(1, math.Abs(ray)) {
			lambda = ray
			break
		}
		lambda = ray
	}
	return lambda - 1
}

// refCompute is the frozen pre-CSR Compute pipeline: private throwaway csr,
// materialized LargestComponent, map/probe-based local properties. The
// shared computePaths machinery is identical, so for the same Options the
// outputs must match Compute bit for bit.
func refCompute(g *graph.Graph, opts Options) *Result {
	opts = opts.withDefaults()
	local := refLocalClustering(g)
	res := &Result{
		N:                    g.N(),
		AvgDegree:            g.AvgDegree(),
		DegreeDist:           DegreeDist(g),
		NeighborConnectivity: refNeighborConnectivity(g),
		GlobalClustering:     globalClusteringOf(g, local),
		DegreeClustering:     degreeClusteringOf(g, local),
		ESP:                  refEdgewiseSharedPartners(g),
		Lambda1:              refLambda1(g),
	}
	lcc, _ := g.LargestComponent()
	if lcc.N() <= 1 {
		res.PathLenDist = map[int]float64{}
		res.DegreeBetweenness = map[int]float64{}
		res.PathsExact = true
		return res
	}
	c := refNewCSR(lcc)
	sources := pickSources(lcc.N(), opts)
	scale := 1.0
	if len(sources) < lcc.N() {
		scale = float64(lcc.N()) / float64(len(sources))
	}
	st := computePaths(c, sources, scale, opts.Workers)
	res.AvgPathLen = st.AvgLen
	res.PathLenDist = st.Dist
	res.Diameter = st.Diameter
	res.PathsExact = st.Exact
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < lcc.N(); u++ {
		k := lcc.Degree(u)
		cnt[k]++
		sum[k] += st.Betweenness[u]
	}
	res.DegreeBetweenness = make(map[int]float64, len(cnt))
	for k, n := range cnt {
		res.DegreeBetweenness[k] = sum[k] / float64(n)
	}
	return res
}

// refDistanceProfile is the frozen D-measure distance profile over a
// materialized LCC and throwaway csr; serial (the parallel version is
// worker-invariant).
func refDistanceProfile(g *graph.Graph, opts Options) ([]float64, float64) {
	opts = opts.withDefaults()
	lcc, _ := g.LargestComponent()
	n := lcc.N()
	if n <= 1 {
		return []float64{1}, 0
	}
	c := refNewCSR(lcc)
	sources := pickSources(n, opts)
	rows := make([][]float64, len(sources))
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for si, s := range sources {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		dist[s] = 0
		queue = append(queue, s)
		counts := []float64{}
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for e := c.offset[u]; e < c.offset[u+1]; e++ {
				v := c.nbr[e]
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
					l := int(dist[v])
					for len(counts) < l {
						counts = append(counts, 0)
					}
					counts[l-1]++
				}
			}
		}
		for i := range counts {
			counts[i] /= float64(n - 1)
		}
		rows[si] = counts
	}
	diam := 1
	for _, row := range rows {
		if len(row) > diam {
			diam = len(row)
		}
	}
	mu := make([]float64, diam)
	for _, row := range rows {
		for l, p := range row {
			mu[l] += p
		}
	}
	for l := range mu {
		mu[l] /= float64(len(rows))
	}
	js := 0.0
	for _, row := range rows {
		for l, p := range row {
			if p > 0 {
				js += p * math.Log(p/mu[l])
			}
		}
	}
	js /= float64(len(rows))
	nnd := 0.0
	if diam > 0 {
		nnd = js / math.Log(float64(diam+1))
	}
	return mu, nnd
}

func refDissimilarity(a, b *graph.Graph, opts Options) float64 {
	const w1, w2, w3 = 0.45, 0.45, 0.1
	pa, nndA := refDistanceProfile(a, opts)
	pb, nndB := refDistanceProfile(b, opts)
	first := math.Sqrt(jsDivergence(pa, pb) / math.Log(2))
	second := math.Abs(math.Sqrt(nndA) - math.Sqrt(nndB))
	third := alphaTerm(a, b)
	return w1*first + w2*second + w3*third
}

// refCoreNumbers is the frozen peeling over per-node multiplicity maps.
func refCoreNumbers(g *graph.Graph) []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		mm := g.NeighborMultiplicities(u)
		row := make([]int, 0, len(mm))
		//sgr:nondet-ok reference engine: row order feeds integer counts and tolerance-compared float sums only
		for v := range mm {
			row = append(row, v)
		}
		adj[u] = row
		deg[u] = len(row)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	vert := make([]int, n)
	pos := make([]int, n)
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = u
		bin[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		u := vert[i]
		for _, v := range adj[u] {
			if core[v] > core[u] {
				dv := core[v]
				pv, pw := pos[v], bin[dv]
				w := vert[pw]
				if v != w {
					pos[v], pos[w] = pw, pv
					vert[pv], vert[pw] = w, v
				}
				bin[dv]++
				core[v]--
			}
		}
	}
	return core
}

// refAssortativity is the frozen per-endpoint Pearson correlation over g's
// own adjacency lists.
func refAssortativity(g *graph.Graph) float64 {
	var sx, sy, sxy, sx2, sy2, n float64
	for u := 0; u < g.N(); u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			if v == u {
				continue
			}
			dv := float64(g.Degree(v))
			sx += du
			sy += dv
			sxy += du * dv
			sx2 += du * du
			sy2 += dv * dv
			n++
		}
	}
	if n == 0 {
		return 0
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sx2/n - (sx/n)*(sx/n)
	vy := sy2/n - (sy/n)*(sy/n)
	den := math.Sqrt(vx * vy)
	if den == 0 {
		return 0
	}
	return cov / den
}

// diffGraphs is the differential-test corpus: random multigraphs with
// self-loops, multi-edges, isolated nodes and multiple components, plus
// structured generators.
func diffGraphs() map[string]*graph.Graph {
	out := make(map[string]*graph.Graph)
	for trial := 0; trial < 4; trial++ {
		r := rng(uint64(100 + trial))
		n := 40 + 17*trial
		g := graph.New(n)
		for i := 0; i < 4*n; i++ {
			u, v := r.IntN(n), r.IntN(n)
			g.AddEdge(u, v) // u == v makes a self-loop; repeats make multi-edges
		}
		out[string(rune('a'+trial))+"-multigraph"] = g
	}
	// Disconnected: two dense blobs plus isolated nodes.
	r := rng(7)
	g := graph.New(50)
	for i := 0; i < 80; i++ {
		g.AddEdge(r.IntN(20), r.IntN(20))
	}
	for i := 0; i < 60; i++ {
		g.AddEdge(20+r.IntN(20), 20+r.IntN(20))
	}
	out["disconnected"] = g
	out["holme-kim"] = gen.HolmeKim(120, 3, 0.5, rng(8))
	out["single-loop"] = func() *graph.Graph {
		g := graph.New(2)
		g.AddEdge(0, 0)
		return g
	}()
	out["empty"] = graph.New(0)
	return out
}

// TestComputeMatchesFrozenPreCSR pins the whole rewritten Compute pipeline
// — all ten evaluated properties — to the frozen pre-CSR implementation,
// bit for bit, on random multigraphs with self-loops, at multiple worker
// counts and in both exact and pivot modes.
func TestComputeMatchesFrozenPreCSR(t *testing.T) {
	for name, g := range diffGraphs() {
		for _, opts := range []Options{
			{Workers: 1},
			{Workers: 3},
			{Workers: 2, ExactThreshold: 10, Pivots: 7}, // pivot mode
		} {
			got := Compute(g, opts)
			want := refCompute(g, opts)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s (workers=%d exact=%d): Compute diverged from frozen pre-CSR pipeline\n got: %+v\nwant: %+v",
					name, opts.Workers, opts.ExactThreshold, got, want)
			}
		}
	}
}

func TestTriangleCountsMatchFrozen(t *testing.T) {
	for name, g := range diffGraphs() {
		got := g.TriangleCounts()
		want := refTriangleCounts(g)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: TriangleCounts: got %v want %v", name, got, want)
		}
	}
}

func TestNeighborConnectivityMatchesFrozen(t *testing.T) {
	for name, g := range diffGraphs() {
		if !reflect.DeepEqual(NeighborConnectivity(g), refNeighborConnectivity(g)) {
			t.Errorf("%s: NeighborConnectivity diverged", name)
		}
	}
}

func TestEdgewiseSharedPartnersMatchFrozen(t *testing.T) {
	for name, g := range diffGraphs() {
		if !reflect.DeepEqual(EdgewiseSharedPartners(g), refEdgewiseSharedPartners(g)) {
			t.Errorf("%s: EdgewiseSharedPartners diverged", name)
		}
	}
}

func TestLambda1MatchesFrozen(t *testing.T) {
	for name, g := range diffGraphs() {
		if got, want := Lambda1(g), refLambda1(g); got != want {
			t.Errorf("%s: Lambda1 = %v want %v", name, got, want)
		}
	}
}

func TestCoreNumbersMatchFrozen(t *testing.T) {
	for name, g := range diffGraphs() {
		if !reflect.DeepEqual(CoreNumbers(g), refCoreNumbers(g)) {
			t.Errorf("%s: CoreNumbers diverged", name)
		}
	}
}

func TestAssortativityMatchesFrozen(t *testing.T) {
	for name, g := range diffGraphs() {
		if got, want := Assortativity(g), refAssortativity(g); got != want {
			t.Errorf("%s: Assortativity = %v want %v", name, got, want)
		}
	}
}

func TestDissimilarityMatchesFrozen(t *testing.T) {
	graphs := diffGraphs()
	a, b := graphs["a-multigraph"], graphs["holme-kim"]
	for _, opts := range []Options{{Workers: 1}, {Workers: 1, ExactThreshold: 10, Pivots: 9}} {
		if got, want := Dissimilarity(a, b, opts), refDissimilarity(a, b, opts); got != want {
			t.Errorf("Dissimilarity (exact=%d) = %v want %v", opts.ExactThreshold, got, want)
		}
	}
}

// TestLCCCSRMatchesMaterializedComponent pins the direct LCC projection to
// the LargestComponent + refNewCSR path it replaced.
func TestLCCCSRMatchesMaterializedComponent(t *testing.T) {
	for name, g := range diffGraphs() {
		if g.N() == 0 {
			continue
		}
		sub, deg := lccCSR(g)
		lcc, _ := g.LargestComponent()
		want := refNewCSR(lcc)
		if sub.n != want.n || !reflect.DeepEqual(sub.offset, want.offset) ||
			!reflect.DeepEqual(sub.nbr, want.nbr) || !reflect.DeepEqual(sub.mult, want.mult) {
			t.Errorf("%s: lccCSR arrays diverge from materialized component", name)
		}
		for u := 0; u < sub.n; u++ {
			if int(deg[u]) != lcc.Degree(u) {
				t.Errorf("%s: lccCSR degree(%d) = %d want %d", name, u, deg[u], lcc.Degree(u))
			}
		}
	}
}
