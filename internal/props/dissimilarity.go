package props

import (
	"math"
	"sort"

	"sgr/internal/graph"
	"sgr/internal/parallel"
)

// Dissimilarity computes the D-measure of Schieber et al. (Nature
// Communications 2017) between two graphs, the metric the paper's
// future-work section proposes for judging restoration quality. It combines
// (with the authors' recommended weights w1 = w2 = 0.45, w3 = 0.1) the
// Jensen-Shannon divergence between the graphs' network node dispersion
// profiles, the difference of their average-distance-distribution entropies
// (NND), and an alpha-centrality term approximated here by the same measure
// on graph complements' degree distributions.
//
// The implementation follows the published definition for connected graphs;
// both inputs are reduced to their largest connected components.
func Dissimilarity(a, b *graph.Graph, opts Options) float64 {
	const w1, w2, w3 = 0.45, 0.45, 0.1
	pa, nndA := distanceProfile(a, opts)
	pb, nndB := distanceProfile(b, opts)
	first := math.Sqrt(jsDivergence(pa, pb) / math.Log(2))
	second := math.Abs(math.Sqrt(nndA) - math.Sqrt(nndB))
	third := alphaTerm(a, b)
	return w1*first + w2*second + w3*third
}

// distanceProfile returns the graph's mean distance distribution mu(l) and
// its network node dispersion (normalized Jensen-Shannon divergence of the
// per-node distance distributions).
func distanceProfile(g *graph.Graph, opts Options) ([]float64, float64) {
	opts = opts.withDefaults()
	// The LCC path view comes straight out of the shared CSR snapshot, so
	// both sides of a D-measure (and any property computation on the same
	// graphs) reuse one snapshot per graph.
	c, _ := lccCSR(g)
	n := c.n
	if n <= 1 {
		return []float64{1}, 0
	}
	sources := pickSources(n, opts)

	// Per-node distance distributions p_i(l) for l = 1..diam. Sources are
	// independent BFS roots, so the rows fill in parallel (index-disjoint
	// writes, per-block scratch); the reductions below stay serial in
	// source order, keeping the profile identical at any worker count.
	rows := make([][]float64, len(sources))
	parallel.Blocks(opts.Workers, len(sources), func(lo, hi int) {
		dist := make([]int32, n)
		queue := make([]int32, 0, n)
		for si := lo; si < hi; si++ {
			s := sources[si]
			for i := range dist {
				dist[i] = -1
			}
			queue = queue[:0]
			dist[s] = 0
			queue = append(queue, s)
			counts := []float64{}
			for qi := 0; qi < len(queue); qi++ {
				u := queue[qi]
				for e := c.offset[u]; e < c.offset[u+1]; e++ {
					v := c.nbr[e]
					if dist[v] < 0 {
						dist[v] = dist[u] + 1
						queue = append(queue, v)
						l := int(dist[v])
						for len(counts) < l {
							counts = append(counts, 0)
						}
						counts[l-1]++
					}
				}
			}
			for i := range counts {
				counts[i] /= float64(n - 1)
			}
			rows[si] = counts
		}
	})
	diam := 1
	for _, row := range rows {
		if len(row) > diam {
			diam = len(row)
		}
	}
	// Mean distribution mu(l).
	mu := make([]float64, diam)
	for _, row := range rows {
		for l, p := range row {
			mu[l] += p
		}
	}
	for l := range mu {
		mu[l] /= float64(len(rows))
	}
	// NND: JS divergence of rows around mu, normalized by log(diam + 1).
	js := 0.0
	for _, row := range rows {
		for l, p := range row {
			if p > 0 {
				js += p * math.Log(p/mu[l])
			}
		}
	}
	js /= float64(len(rows))
	nnd := 0.0
	if diam > 0 {
		nnd = js / math.Log(float64(diam+1))
	}
	return mu, nnd
}

// jsDivergence computes the Jensen-Shannon divergence between two
// distributions given as dense slices (padded with zeros).
func jsDivergence(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	at := func(v []float64, i int) float64 {
		if i < len(v) {
			return v[i]
		}
		return 0
	}
	js := 0.0
	for i := 0; i < n; i++ {
		pi, qi := at(p, i), at(q, i)
		m := (pi + qi) / 2
		if pi > 0 {
			js += pi * math.Log(pi/m) / 2
		}
		if qi > 0 {
			js += qi * math.Log(qi/m) / 2
		}
	}
	return js
}

// alphaTerm is the third D-measure component: the difference between the
// normalized degree-distribution vectors of the graphs and of their
// complements, following the PND formulation of Schieber et al.
func alphaTerm(a, b *graph.Graph) float64 {
	return (degreeVectorGap(a, b, false) + degreeVectorGap(a, b, true)) / 2
}

func degreeVectorGap(a, b *graph.Graph, complement bool) float64 {
	pa := normalizedDegreeWeights(a, complement)
	pb := normalizedDegreeWeights(b, complement)
	n := len(pa)
	if len(pb) > n {
		n = len(pb)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		var va, vb float64
		if i < len(pa) {
			va = pa[i]
		}
		if i < len(pb) {
			vb = pb[i]
		}
		d := va - vb
		sum += d * d
	}
	return math.Sqrt(sum / 2)
}

// normalizedDegreeWeights returns the sorted, normalized degree sequence of
// g (or of its complement), as a probability vector. Degrees come off the
// shared CSR snapshot (flat offsets, no per-node slice headers).
func normalizedDegreeWeights(g *graph.Graph, complement bool) []float64 {
	c := g.CSR()
	n := c.N()
	if n == 0 {
		return nil
	}
	deg := make([]float64, n)
	total := 0.0
	for u := 0; u < n; u++ {
		d := float64(c.Degree(u))
		if complement {
			d = float64(n-1) - d
			if d < 0 {
				d = 0
			}
		}
		deg[u] = d
		total += d
	}
	if total == 0 {
		return []float64{1}
	}
	for i := range deg {
		deg[i] /= total
	}
	// Sort descending for alignment.
	sort.Sort(sort.Reverse(sort.Float64Slice(deg)))
	return deg
}
