package props

import (
	"math"

	"sgr/internal/graph"
)

// Assortativity returns the degree assortativity coefficient (Newman's r):
// the Pearson correlation of degrees across edge endpoints. Social graphs
// are typically assortative (r > 0); crawled subgraphs distort this, which
// makes it a useful extra diagnostic alongside the paper's 12 properties.
// Self-loops are excluded; multi-edges count with multiplicity. Returns 0
// for degenerate (constant-degree or empty) graphs.
func Assortativity(g *graph.Graph) float64 {
	// CSR endpoint view: same per-endpoint iteration order as the
	// adjacency lists it snapshots, so the float accumulations are
	// bit-identical to the pre-CSR loop.
	c := g.CSR()
	var sx, sy, sxy, sx2, sy2, n float64
	for u := 0; u < c.N(); u++ {
		du := float64(c.Degree(u))
		for _, vk := range c.Endpoints(u) {
			v := int(vk)
			if v == u {
				continue
			}
			dv := float64(c.Degree(v))
			// Each undirected edge appears twice (u->v, v->u), which
			// symmetrizes the correlation.
			sx += du
			sy += dv
			sxy += du * dv
			sx2 += du * du
			sy2 += dv * dv
			n++
		}
	}
	if n == 0 {
		return 0
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sx2/n - (sx/n)*(sx/n)
	vy := sy2/n - (sy/n)*(sy/n)
	den := math.Sqrt(vx * vy)
	if den == 0 {
		return 0
	}
	return cov / den
}

// CoreNumbers returns the k-core number of every node (the largest k such
// that the node belongs to a subgraph of minimum degree k), via the
// Batagelj–Zaveršnik peeling algorithm. Self-loops are ignored; multi-edges
// count once (core decomposition is a simple-graph notion).
func CoreNumbers(g *graph.Graph) []int {
	// The CSR distinct view is exactly the simple projection the peeling
	// algorithm needs: distinct non-self neighbors, multiplicities ignored.
	c := g.CSR()
	n := c.N()
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = c.DistinctDegree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	vert := make([]int, n)
	pos := make([]int, n)
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = u
		bin[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		u := vert[i]
		nbr, _ := c.Row(u)
		for _, vk := range nbr {
			v := int(vk)
			if core[v] > core[u] {
				dv := core[v]
				pv, pw := pos[v], bin[dv]
				w := vert[pw]
				if v != w {
					pos[v], pos[w] = pw, pv
					vert[pv], vert[pw] = w, v
				}
				bin[dv]++
				core[v]--
			}
		}
	}
	return core
}

// CoreDistribution returns the fraction of nodes at each core number.
func CoreDistribution(g *graph.Graph) map[int]float64 {
	out := make(map[int]float64)
	cores := CoreNumbers(g)
	for _, c := range cores {
		out[c]++
	}
	for k := range out {
		out[k] /= float64(len(cores))
	}
	return out
}

// Degeneracy returns the graph degeneracy (the maximum core number).
func Degeneracy(g *graph.Graph) int {
	max := 0
	for _, c := range CoreNumbers(g) {
		if c > max {
			max = c
		}
	}
	return max
}
