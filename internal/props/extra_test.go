package props

import (
	"math"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func TestAssortativityKnownValues(t *testing.T) {
	// Star: perfectly disassortative, r = -1.
	if r := Assortativity(star(6)); math.Abs(r-(-1)) > 1e-9 {
		t.Fatalf("star assortativity = %v want -1", r)
	}
	// Clique: constant degree -> defined as 0 here (zero variance).
	if r := Assortativity(clique(5)); r != 0 {
		t.Fatalf("clique assortativity = %v want 0", r)
	}
	// Two stars joined hub-to-hub remain disassortative.
	g := graph.New(8)
	for i := 1; i < 4; i++ {
		g.AddEdge(0, i)
		g.AddEdge(4, 4+i)
	}
	g.AddEdge(0, 4)
	if r := Assortativity(g); r >= 0 {
		t.Fatalf("double star assortativity = %v want negative", r)
	}
}

func TestAssortativityRange(t *testing.T) {
	g := gen.HolmeKim(800, 3, 0.5, rng(10))
	r := Assortativity(g)
	if r < -1 || r > 1 {
		t.Fatalf("assortativity out of range: %v", r)
	}
}

func TestCoreNumbersKnownValues(t *testing.T) {
	// Triangle with a pendant: triangle nodes core 2, pendant core 1.
	g := triangle()
	g.AddNode()
	g.AddEdge(2, 3)
	cores := CoreNumbers(g)
	want := []int{2, 2, 2, 1}
	for i, w := range want {
		if cores[i] != w {
			t.Fatalf("core[%d] = %d want %d (all: %v)", i, cores[i], w, cores)
		}
	}
	// K5: all cores 4.
	for _, c := range CoreNumbers(clique(5)) {
		if c != 4 {
			t.Fatalf("K5 core = %d", c)
		}
	}
	// Path: all cores 1.
	for _, c := range CoreNumbers(path4()) {
		if c != 1 {
			t.Fatalf("path core = %d", c)
		}
	}
}

func TestCoreNumbersIgnoreLoopsAndMultiEdges(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(0, 0)
	cores := CoreNumbers(g)
	if cores[0] != 1 || cores[1] != 1 {
		t.Fatalf("multigraph cores: %v", cores)
	}
}

func TestCoreDistributionAndDegeneracy(t *testing.T) {
	g := triangle()
	g.AddNode()
	g.AddEdge(2, 3)
	dist := CoreDistribution(g)
	if math.Abs(dist[2]-0.75) > 1e-12 || math.Abs(dist[1]-0.25) > 1e-12 {
		t.Fatalf("core distribution: %v", dist)
	}
	if d := Degeneracy(g); d != 2 {
		t.Fatalf("degeneracy = %d", d)
	}
	// BA graphs with attachment m have degeneracy exactly m.
	ba := gen.BarabasiAlbert(500, 3, rng(11))
	if d := Degeneracy(ba); d != 3 {
		t.Fatalf("BA degeneracy = %d want 3", d)
	}
}
