package props

import (
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

// serialNeighborConnectivity is the pre-parallel reference implementation.
func serialNeighborConnectivity(g *graph.Graph) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		k := g.Degree(u)
		cnt[k]++
		if k == 0 {
			continue
		}
		s := 0.0
		for _, v := range g.Neighbors(u) {
			s += float64(g.Degree(v))
		}
		sum[k] += s / float64(k)
	}
	out := make(map[int]float64, len(cnt))
	for k, c := range cnt {
		out[k] = sum[k] / float64(c)
	}
	return out
}

// serialESP is the pre-parallel reference implementation.
func serialESP(g *graph.Graph) map[int]float64 {
	mult := make([]map[int]int, g.N())
	for u := 0; u < g.N(); u++ {
		mult[u] = g.NeighborMultiplicities(u)
	}
	counts := make(map[int]int)
	total := 0
	for u := 0; u < g.N(); u++ {
		for v, a := range mult[u] {
			if v < u {
				continue
			}
			mu, mv := mult[u], mult[v]
			if len(mu) > len(mv) {
				mu, mv = mv, mu
			}
			sp := 0
			for w, cu := range mu {
				if w == u || w == v {
					continue
				}
				if cv := mv[w]; cv > 0 {
					sp += cu * cv
				}
			}
			counts[sp] += a
			total += a
		}
	}
	out := make(map[int]float64, len(counts))
	if total == 0 {
		return out
	}
	for s, c := range counts {
		out[s] = float64(c) / float64(total)
	}
	return out
}

func eqMaps(t *testing.T, what string, got, want map[int]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", what, len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Fatalf("%s[%d] = %v, want %v", what, k, g, w)
		}
	}
}

// TestParallelBasicPropsMatchSerial pins the parallelized per-node property
// loops to their serial reference: disjoint-slot float writes with an
// in-order reduction (neighbor connectivity) and commutative integer
// merges (shared partners) must be bit-identical, not merely close.
func TestParallelBasicPropsMatchSerial(t *testing.T) {
	graphs := []*graph.Graph{
		gen.HolmeKim(900, 4, 0.5, rand.New(rand.NewPCG(3, 4))),
		gen.ErdosRenyiGNM(400, 1600, rand.New(rand.NewPCG(5, 6))),
		graph.New(0),
	}
	for _, g := range graphs {
		eqMaps(t, "NeighborConnectivity", NeighborConnectivity(g), serialNeighborConnectivity(g))
		eqMaps(t, "EdgewiseSharedPartners", EdgewiseSharedPartners(g), serialESP(g))
	}
}

// TestDissimilarityWorkerInvariance checks the parallel distance-profile
// BFS: explicit worker counts must not change the D-measure bits.
func TestDissimilarityWorkerInvariance(t *testing.T) {
	a := gen.HolmeKim(300, 3, 0.4, rand.New(rand.NewPCG(1, 2)))
	b := gen.ErdosRenyiGNM(300, 1400, rand.New(rand.NewPCG(3, 4)))
	ref := Dissimilarity(a, b, Options{Workers: 1})
	for _, w := range []int{2, 4, 8} {
		if got := Dissimilarity(a, b, Options{Workers: w}); got != ref {
			t.Errorf("workers=%d: D = %v, want %v", w, got, ref)
		}
	}
}
