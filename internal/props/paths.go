package props

import (
	"runtime"
	"sort"
	"sync"

	"sgr/internal/graph"
)

// csr is a compact adjacency form for path computations: distinct neighbors
// with edge multiplicities, self-loops dropped (they never lie on shortest
// paths).
type csr struct {
	n      int
	offset []int32
	nbr    []int32
	mult   []int32
}

func newCSR(g *graph.Graph) *csr {
	n := g.N()
	c := &csr{n: n, offset: make([]int32, n+1)}
	type ent struct{ v, m int32 }
	rows := make([][]ent, n)
	total := 0
	for u := 0; u < n; u++ {
		mm := g.NeighborMultiplicities(u)
		row := make([]ent, 0, len(mm))
		for v, m := range mm {
			row = append(row, ent{int32(v), int32(m)})
		}
		// Sorted rows make float accumulation order, and hence results,
		// bit-for-bit reproducible.
		sort.Slice(row, func(i, j int) bool { return row[i].v < row[j].v })
		rows[u] = row
		total += len(row)
	}
	c.nbr = make([]int32, total)
	c.mult = make([]int32, total)
	pos := 0
	for u := 0; u < n; u++ {
		c.offset[u] = int32(pos)
		for _, e := range rows[u] {
			c.nbr[pos] = e.v
			c.mult[pos] = e.m
			pos++
		}
	}
	c.offset[n] = int32(pos)
	return c
}

// PathStats aggregates the shortest-path properties of Sec. V-B
// (properties 8-11) over the component reachable from the used sources.
type PathStats struct {
	// AvgLen is lbar, the mean shortest-path length over node pairs.
	AvgLen float64
	// Dist is P(l), the distribution of shortest-path lengths (l >= 1).
	Dist map[int]float64
	// Diameter is the longest observed shortest-path length.
	Diameter int
	// Betweenness holds per-node betweenness centrality under the paper's
	// ordered-pair definition (both (j,k) and (k,j) count).
	Betweenness []float64
	// Sources is the number of BFS/Brandes sources actually used.
	Sources int
	// Exact reports whether every node served as a source.
	Exact bool
}

// pathPartial is one worker's accumulator.
type pathPartial struct {
	lenCounts []int64
	sumLen    int64
	maxLen    int
	bc        []float64
}

// pathWorkspace holds per-worker Brandes state, reused across sources.
type pathWorkspace struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []int32
	queue []int32
}

// computePaths runs Brandes' algorithm (which yields distances as a side
// effect) from each source, in parallel, and merges the partials
// deterministically. sources must be non-empty. scale multiplies the
// betweenness contribution of each source (used by pivot approximation).
func computePaths(c *csr, sources []int32, scale float64, workers int) *PathStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	partials := make([]*pathPartial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &pathPartial{
				lenCounts: make([]int64, 64),
				bc:        make([]float64, c.n),
			}
			ws := &pathWorkspace{
				dist:  make([]int32, c.n),
				sigma: make([]float64, c.n),
				delta: make([]float64, c.n),
				order: make([]int32, 0, c.n),
				queue: make([]int32, 0, c.n),
			}
			for i := w; i < len(sources); i += workers {
				brandesFrom(c, sources[i], p, ws, scale)
			}
			partials[w] = p
		}(w)
	}
	wg.Wait()

	st := &PathStats{Dist: make(map[int]float64), Betweenness: make([]float64, c.n)}
	var totalPairs, sumLen int64
	lenCounts := make([]int64, 0)
	for _, p := range partials {
		if p.maxLen > st.Diameter {
			st.Diameter = p.maxLen
		}
		sumLen += p.sumLen
		for l, cnt := range p.lenCounts {
			for len(lenCounts) <= l {
				lenCounts = append(lenCounts, 0)
			}
			lenCounts[l] += cnt
			totalPairs += cnt
		}
		for v := range p.bc {
			st.Betweenness[v] += p.bc[v]
		}
	}
	if totalPairs > 0 {
		st.AvgLen = float64(sumLen) / float64(totalPairs)
		for l, cnt := range lenCounts {
			if cnt > 0 {
				st.Dist[l] = float64(cnt) / float64(totalPairs)
			}
		}
	}
	st.Sources = len(sources)
	st.Exact = len(sources) == c.n
	return st
}

// brandesFrom runs one Brandes iteration from source s, accumulating path
// length counts (ordered pairs s -> t) and dependency scores into p.
func brandesFrom(c *csr, s int32, p *pathPartial, ws *pathWorkspace, scale float64) {
	dist := ws.dist
	sigma := ws.sigma
	delta := ws.delta
	for i := range dist {
		dist[i] = -1
		sigma[i] = 0
		delta[i] = 0
	}
	order := ws.order[:0]
	queue := ws.queue[:0]

	dist[s] = 0
	sigma[s] = 1
	queue = append(queue, s)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		order = append(order, u)
		du := dist[u]
		for e := c.offset[u]; e < c.offset[u+1]; e++ {
			v := c.nbr[e]
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
			if dist[v] == du+1 {
				sigma[v] += sigma[u] * float64(c.mult[e])
			}
		}
	}
	// Path-length statistics over ordered pairs (s, t), t != s.
	for _, t := range order {
		if t == s {
			continue
		}
		l := int(dist[t])
		for len(p.lenCounts) <= l {
			p.lenCounts = append(p.lenCounts, 0)
		}
		p.lenCounts[l]++
		p.sumLen += int64(l)
		if l > p.maxLen {
			p.maxLen = l
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		du := dist[u]
		for e := c.offset[u]; e < c.offset[u+1]; e++ {
			v := c.nbr[e]
			if dist[v] == du+1 {
				delta[u] += sigma[u] * float64(c.mult[e]) / sigma[v] * (1 + delta[v])
			}
		}
		if u != s {
			p.bc[u] += scale * delta[u]
		}
	}
	ws.order = order
	ws.queue = queue
}
