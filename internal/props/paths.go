package props

import (
	"runtime"
	"sync"

	"sgr/internal/graph"
)

// csr is the path view of a graph: distinct neighbors in ascending order
// with edge multiplicities, self-loops dropped (they never lie on shortest
// paths). Sorted rows make float accumulation order, and hence results,
// bit-for-bit reproducible.
type csr struct {
	n      int
	offset []int32
	nbr    []int32
	mult   []int32
}

// newCSR projects the graph's shared CSR snapshot onto the path view.
// Zero-copy: the arrays alias graph.CSR's distinct view, which already has
// exactly the required shape.
func newCSR(g *graph.Graph) *csr {
	c := g.CSR()
	off, nbr, mult := c.Rows()
	return &csr{n: c.N(), offset: off, nbr: nbr, mult: mult}
}

// lccCSR builds the path view of g's largest connected component directly
// from the shared CSR snapshot, without materializing the component as a
// *graph.Graph (the InducedSubgraph rebuild used to dominate Compute's
// allocations). Nodes are relabeled to 0..k-1 in the order of
// ConnectedComponents' member list — the same order LargestComponent uses —
// and rows come out sorted by new label without any per-row sort, because
// source nodes are scanned in ascending new label. The second return value
// holds each LCC node's full degree in g (self-loops and multi-edges
// included), for the degree-keyed reductions. An empty g yields n == 0.
func lccCSR(g *graph.Graph) (*csr, []int32) {
	comps := g.ConnectedComponents()
	if len(comps) == 0 {
		return &csr{offset: []int32{0}}, nil
	}
	members := comps[0]
	c := g.CSR()
	k := len(members)
	inv := make([]int32, g.N())
	for i, u := range members {
		inv[u] = int32(i)
	}
	sub := &csr{n: k, offset: make([]int32, k+1)}
	deg := make([]int32, k)
	total := int32(0)
	for i, u := range members {
		sub.offset[i] = total
		// Every distinct neighbor of a component member is in the
		// component, so row sizes are known without a counting pass.
		total += int32(c.DistinctDegree(u))
		deg[i] = int32(c.Degree(u))
	}
	sub.offset[k] = total
	sub.nbr = make([]int32, total)
	sub.mult = make([]int32, total)
	fill := append([]int32(nil), sub.offset[:k]...)
	for vi, orig := range members {
		nbr, mult := c.Row(orig)
		for idx, w := range nbr {
			u := inv[w]
			sub.nbr[fill[u]] = int32(vi)
			sub.mult[fill[u]] = mult[idx]
			fill[u]++
		}
	}
	return sub, deg
}

// PathStats aggregates the shortest-path properties of Sec. V-B
// (properties 8-11) over the component reachable from the used sources.
type PathStats struct {
	// AvgLen is lbar, the mean shortest-path length over node pairs.
	AvgLen float64
	// Dist is P(l), the distribution of shortest-path lengths (l >= 1).
	Dist map[int]float64
	// Diameter is the longest observed shortest-path length.
	Diameter int
	// Betweenness holds per-node betweenness centrality under the paper's
	// ordered-pair definition (both (j,k) and (k,j) count).
	Betweenness []float64
	// Sources is the number of BFS/Brandes sources actually used.
	Sources int
	// Exact reports whether every node served as a source.
	Exact bool
}

// pathPartial is one worker's accumulator.
type pathPartial struct {
	lenCounts []int64
	sumLen    int64
	maxLen    int
	bc        []float64
}

// pathWorkspace holds per-worker Brandes state, reused across sources.
type pathWorkspace struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []int32
	queue []int32
}

// computePaths runs Brandes' algorithm (which yields distances as a side
// effect) from each source, in parallel, and merges the partials
// deterministically. sources must be non-empty. scale multiplies the
// betweenness contribution of each source (used by pivot approximation).
func computePaths(c *csr, sources []int32, scale float64, workers int) *PathStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	partials := make([]*pathPartial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := &pathPartial{
				lenCounts: make([]int64, 64),
				bc:        make([]float64, c.n),
			}
			ws := &pathWorkspace{
				dist:  make([]int32, c.n),
				sigma: make([]float64, c.n),
				delta: make([]float64, c.n),
				order: make([]int32, 0, c.n),
				queue: make([]int32, 0, c.n),
			}
			for i := w; i < len(sources); i += workers {
				brandesFrom(c, sources[i], p, ws, scale)
			}
			partials[w] = p
		}(w)
	}
	wg.Wait()

	st := &PathStats{Dist: make(map[int]float64), Betweenness: make([]float64, c.n)}
	var totalPairs, sumLen int64
	lenCounts := make([]int64, 0)
	for _, p := range partials {
		if p.maxLen > st.Diameter {
			st.Diameter = p.maxLen
		}
		sumLen += p.sumLen
		for l, cnt := range p.lenCounts {
			for len(lenCounts) <= l {
				lenCounts = append(lenCounts, 0)
			}
			lenCounts[l] += cnt
			totalPairs += cnt
		}
		for v := range p.bc {
			st.Betweenness[v] += p.bc[v]
		}
	}
	if totalPairs > 0 {
		st.AvgLen = float64(sumLen) / float64(totalPairs)
		for l, cnt := range lenCounts {
			if cnt > 0 {
				st.Dist[l] = float64(cnt) / float64(totalPairs)
			}
		}
	}
	st.Sources = len(sources)
	st.Exact = len(sources) == c.n
	return st
}

// brandesFrom runs one Brandes iteration from source s, accumulating path
// length counts (ordered pairs s -> t) and dependency scores into p.
func brandesFrom(c *csr, s int32, p *pathPartial, ws *pathWorkspace, scale float64) {
	dist := ws.dist
	sigma := ws.sigma
	delta := ws.delta
	for i := range dist {
		dist[i] = -1
		sigma[i] = 0
		delta[i] = 0
	}
	order := ws.order[:0]
	queue := ws.queue[:0]

	dist[s] = 0
	sigma[s] = 1
	queue = append(queue, s)
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		order = append(order, u)
		du := dist[u]
		for e := c.offset[u]; e < c.offset[u+1]; e++ {
			v := c.nbr[e]
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
			if dist[v] == du+1 {
				sigma[v] += sigma[u] * float64(c.mult[e])
			}
		}
	}
	// Path-length statistics over ordered pairs (s, t), t != s.
	for _, t := range order {
		if t == s {
			continue
		}
		l := int(dist[t])
		for len(p.lenCounts) <= l {
			p.lenCounts = append(p.lenCounts, 0)
		}
		p.lenCounts[l]++
		p.sumLen += int64(l)
		if l > p.maxLen {
			p.maxLen = l
		}
	}
	// Dependency accumulation in reverse BFS order.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		du := dist[u]
		for e := c.offset[u]; e < c.offset[u+1]; e++ {
			v := c.nbr[e]
			if dist[v] == du+1 {
				delta[u] += sigma[u] * float64(c.mult[e]) / sigma[v] * (1 + delta[v])
			}
		}
		if u != s {
			p.bc[u] += scale * delta[u]
		}
	}
	ws.order = order
	ws.queue = queue
}
