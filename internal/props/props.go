package props

import (
	"math/rand/v2"
	"runtime"

	"sgr/internal/graph"
)

// Options controls the cost/accuracy trade-off of the path-based properties.
type Options struct {
	// ExactThreshold is the largest component size for which every node
	// serves as a BFS/Brandes source. Larger components use Pivots sampled
	// sources with the standard unbiased scaling. Default 20000.
	ExactThreshold int
	// Pivots is the number of sampled sources in approximate mode
	// (default 1000).
	Pivots int
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Rand picks pivots; nil selects evenly spaced sources, which keeps
	// results deterministic.
	Rand *rand.Rand
}

func (o Options) withDefaults() Options {
	if o.ExactThreshold <= 0 {
		o.ExactThreshold = 20000
	}
	if o.Pivots <= 0 {
		o.Pivots = 1000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result bundles the paper's 12 structural properties (Sec. V-B).
// Properties 1-7 are local, 8-12 global. Path-based quantities (8-11) refer
// to the largest connected component, as in the paper.
type Result struct {
	N                    int             // 1. number of nodes
	AvgDegree            float64         // 2. average degree
	DegreeDist           map[int]float64 // 3. P(k)
	NeighborConnectivity map[int]float64 // 4. kbar_nn(k)
	GlobalClustering     float64         // 5. cbar
	DegreeClustering     map[int]float64 // 6. cbar(k)
	ESP                  map[int]float64 // 7. P(s)
	AvgPathLen           float64         // 8. lbar
	PathLenDist          map[int]float64 // 9. P(l)
	Diameter             int             // 10. lmax
	DegreeBetweenness    map[int]float64 // 11. bbar(k)
	Lambda1              float64         // 12. largest eigenvalue
	PathsExact           bool            // whether 8-11 used all sources
}

// Compute evaluates all 12 properties of g. Options.Workers bounds every
// parallel loop; the results are identical at any worker count except the
// betweenness floats of computePaths, which merge per-worker partials and
// are deterministic only for a fixed Workers value.
func Compute(g *graph.Graph, opts Options) *Result {
	opts = opts.withDefaults()
	// One shared CSR snapshot feeds every property below; building (or
	// fetching the cached snapshot) here keeps the parallel loops free of
	// the non-goroutine-safe first build.
	g.CSR()
	// One triangle pass feeds both clustering properties.
	local := localClustering(g, opts.Workers)
	res := &Result{
		N:                    g.N(),
		AvgDegree:            g.AvgDegree(),
		DegreeDist:           DegreeDist(g),
		NeighborConnectivity: neighborConnectivity(g, opts.Workers),
		GlobalClustering:     globalClusteringOf(g, local),
		DegreeClustering:     degreeClusteringOf(g, local),
		ESP:                  edgewiseSharedPartners(g, opts.Workers),
		Lambda1:              Lambda1(g),
	}

	// Shortest-path properties over the LCC, projected straight out of the
	// shared snapshot.
	lcc, lccDeg := lccCSR(g)
	if lcc.n <= 1 {
		res.PathLenDist = map[int]float64{}
		res.DegreeBetweenness = map[int]float64{}
		res.PathsExact = true
		return res
	}
	sources := pickSources(lcc.n, opts)
	scale := 1.0
	if len(sources) < lcc.n {
		scale = float64(lcc.n) / float64(len(sources))
	}
	st := computePaths(lcc, sources, scale, opts.Workers)
	res.AvgPathLen = st.AvgLen
	res.PathLenDist = st.Dist
	res.Diameter = st.Diameter
	res.PathsExact = st.Exact

	// Degree-dependent betweenness over the LCC.
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < lcc.n; u++ {
		k := int(lccDeg[u])
		cnt[k]++
		sum[k] += st.Betweenness[u]
	}
	res.DegreeBetweenness = make(map[int]float64, len(cnt))
	for k, n := range cnt {
		res.DegreeBetweenness[k] = sum[k] / float64(n)
	}
	return res
}

// pickSources chooses BFS/Brandes sources: every node when the component is
// small enough, otherwise Pivots nodes (random without replacement when a
// Rand is supplied, evenly spaced otherwise).
func pickSources(n int, opts Options) []int32 {
	if n <= opts.ExactThreshold {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	k := opts.Pivots
	if k > n {
		k = n
	}
	out := make([]int32, 0, k)
	if opts.Rand != nil {
		perm := opts.Rand.Perm(n)
		for _, v := range perm[:k] {
			out = append(out, int32(v))
		}
		return out
	}
	step := float64(n) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, int32(float64(i)*step))
	}
	return out
}
