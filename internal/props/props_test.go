package props

import (
	"math"
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xbeef)) }

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Known small graphs.
func triangle() *graph.Graph {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	return g
}

func path4() *graph.Graph {
	// 0-1-2-3
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return g
}

func star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

func clique(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestDegreeDist(t *testing.T) {
	d := DegreeDist(star(5))
	if !almostEq(d[1], 0.8, 1e-12) || !almostEq(d[4], 0.2, 1e-12) {
		t.Fatalf("star degree dist: %v", d)
	}
}

func TestNeighborConnectivity(t *testing.T) {
	// Star(5): leaves (k=1) see the hub (degree 4) -> knn(1)=4;
	// hub (k=4) sees leaves -> knn(4)=1.
	knn := NeighborConnectivity(star(5))
	if !almostEq(knn[1], 4, 1e-12) || !almostEq(knn[4], 1, 1e-12) {
		t.Fatalf("star knn: %v", knn)
	}
	// Path4: ends see a degree-2 node: knn(1)=2. Middles see one end and
	// one middle: (1+2)/2 = 1.5.
	knn = NeighborConnectivity(path4())
	if !almostEq(knn[1], 2, 1e-12) || !almostEq(knn[2], 1.5, 1e-12) {
		t.Fatalf("path knn: %v", knn)
	}
}

func TestClusteringKnownValues(t *testing.T) {
	if c := GlobalClustering(triangle()); !almostEq(c, 1, 1e-12) {
		t.Fatalf("triangle cbar = %v", c)
	}
	if c := GlobalClustering(star(6)); c != 0 {
		t.Fatalf("star cbar = %v", c)
	}
	// Paw graph: triangle 0-1-2 plus pendant 3 attached to 2.
	g := triangle()
	g.AddNode()
	g.AddEdge(2, 3)
	// local: c0=c1=1, c2 = 2*1/(3*2)=1/3, c3=0 -> mean = (1+1+1/3)/4.
	want := (1 + 1 + 1.0/3) / 4
	if c := GlobalClustering(g); !almostEq(c, want, 1e-12) {
		t.Fatalf("paw cbar = %v want %v", c, want)
	}
	dc := DegreeClustering(g)
	if !almostEq(dc[2], 1, 1e-12) || !almostEq(dc[3], 1.0/3, 1e-12) || dc[1] != 0 {
		t.Fatalf("paw c(k): %v", dc)
	}
}

func TestEdgewiseSharedPartners(t *testing.T) {
	// Triangle: every edge has exactly 1 shared partner.
	esp := EdgewiseSharedPartners(triangle())
	if !almostEq(esp[1], 1, 1e-12) {
		t.Fatalf("triangle ESP: %v", esp)
	}
	// Path4: no edge shares partners.
	esp = EdgewiseSharedPartners(path4())
	if !almostEq(esp[0], 1, 1e-12) {
		t.Fatalf("path ESP: %v", esp)
	}
	// K4: every edge has 2 shared partners.
	esp = EdgewiseSharedPartners(clique(4))
	if !almostEq(esp[2], 1, 1e-12) {
		t.Fatalf("K4 ESP: %v", esp)
	}
}

func TestPathStatsOnPath4(t *testing.T) {
	res := Compute(path4(), Options{})
	// Pairs: (0,1)=1 (0,2)=2 (0,3)=3 (1,2)=1 (1,3)=2 (2,3)=1.
	// avg = (1+2+3+1+2+1)/6 = 10/6.
	if !almostEq(res.AvgPathLen, 10.0/6, 1e-12) {
		t.Fatalf("path4 lbar = %v", res.AvgPathLen)
	}
	if res.Diameter != 3 {
		t.Fatalf("path4 diameter = %d", res.Diameter)
	}
	if !almostEq(res.PathLenDist[1], 0.5, 1e-12) ||
		!almostEq(res.PathLenDist[2], 2.0/6, 1e-12) ||
		!almostEq(res.PathLenDist[3], 1.0/6, 1e-12) {
		t.Fatalf("path4 P(l): %v", res.PathLenDist)
	}
	if !res.PathsExact {
		t.Fatal("small graph must use exact paths")
	}
}

func TestBetweennessPath4(t *testing.T) {
	res := Compute(path4(), Options{})
	// Ordered-pair betweenness: node 1 lies on paths 0<->2, 0<->3 (both
	// directions) = 4; node 2 symmetric = 4; ends = 0.
	// bbar(1) (ends) = 0; bbar(2) = 4.
	if !almostEq(res.DegreeBetweenness[1], 0, 1e-12) {
		t.Fatalf("bbar(1) = %v", res.DegreeBetweenness[1])
	}
	if !almostEq(res.DegreeBetweenness[2], 4, 1e-12) {
		t.Fatalf("bbar(2) = %v", res.DegreeBetweenness[2])
	}
}

func TestBetweennessStar(t *testing.T) {
	res := Compute(star(5), Options{})
	// Hub lies on all leaf-leaf shortest paths: 4*3 = 12 ordered pairs.
	if !almostEq(res.DegreeBetweenness[4], 12, 1e-12) {
		t.Fatalf("star hub betweenness = %v", res.DegreeBetweenness[4])
	}
}

func TestBetweennessCountsMultiplePaths(t *testing.T) {
	// Square 0-1-2-3-0: paths 0<->2 split evenly over 1 and 3.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	res := Compute(g, Options{})
	// Each node carries 0.5+0.5 = 1 (ordered: 2 * 0.5) = 1... ordered pairs
	// (0,2) and (2,0) each give 0.5 through node 1 -> 1 total.
	if !almostEq(res.DegreeBetweenness[2], 1, 1e-12) {
		t.Fatalf("square bbar(2) = %v", res.DegreeBetweenness[2])
	}
}

func TestLambda1KnownValues(t *testing.T) {
	// Clique K_n: lambda1 = n-1.
	if l := Lambda1(clique(5)); !almostEq(l, 4, 1e-6) {
		t.Fatalf("K5 lambda1 = %v", l)
	}
	// Star S_n (n leaves): lambda1 = sqrt(n).
	if l := Lambda1(star(10)); !almostEq(l, 3, 1e-6) {
		t.Fatalf("star-9 lambda1 = %v", l)
	}
	// Path with 2 nodes (single edge): lambda1 = 1 (bipartite case).
	g := graph.New(2)
	g.AddEdge(0, 1)
	if l := Lambda1(g); !almostEq(l, 1, 1e-6) {
		t.Fatalf("edge lambda1 = %v", l)
	}
}

func TestComputeUsesLCCForPaths(t *testing.T) {
	// Two components: triangle + isolated edge. Paths stats from LCC only.
	g := triangle()
	a := g.AddNode()
	b := g.AddNode()
	g.AddEdge(a, b)
	res := Compute(g, Options{})
	if res.Diameter != 1 {
		t.Fatalf("diameter should come from triangle LCC: %d", res.Diameter)
	}
	if res.N != 5 {
		t.Fatalf("N must count all nodes: %d", res.N)
	}
}

func TestApproximatePathsCloseToExact(t *testing.T) {
	g := gen.HolmeKim(1500, 3, 0.5, rng(1))
	exact := Compute(g, Options{ExactThreshold: 10000})
	approx := Compute(g, Options{ExactThreshold: 100, Pivots: 400})
	if approx.PathsExact {
		t.Fatal("approx run must not be exact")
	}
	if math.Abs(exact.AvgPathLen-approx.AvgPathLen) > 0.1*exact.AvgPathLen {
		t.Fatalf("approx lbar %v vs exact %v", approx.AvgPathLen, exact.AvgPathLen)
	}
	// Pivot betweenness should estimate the scale of exact betweenness.
	for _, k := range []int{3, 4} {
		e, a := exact.DegreeBetweenness[k], approx.DegreeBetweenness[k]
		if e == 0 {
			continue
		}
		if math.Abs(e-a)/e > 0.5 {
			t.Fatalf("bbar(%d): approx %v vs exact %v", k, a, e)
		}
	}
}

func TestComputeParallelMatchesSerial(t *testing.T) {
	g := gen.HolmeKim(400, 3, 0.5, rng(2))
	p1 := Compute(g, Options{Workers: 1})
	p8 := Compute(g, Options{Workers: 8})
	if !almostEq(p1.AvgPathLen, p8.AvgPathLen, 1e-9) {
		t.Fatalf("parallel lbar differs: %v vs %v", p1.AvgPathLen, p8.AvgPathLen)
	}
	if p1.Diameter != p8.Diameter {
		t.Fatal("parallel diameter differs")
	}
	for k, v := range p1.DegreeBetweenness {
		if math.Abs(v-p8.DegreeBetweenness[k]) > 1e-6*(1+math.Abs(v)) {
			t.Fatalf("parallel bbar(%d) differs: %v vs %v", k, v, p8.DegreeBetweenness[k])
		}
	}
}

func TestMultigraphPathsUseMultiplicity(t *testing.T) {
	// Double edge 0-1 plus 1-2: sigma(0->2) = 2 paths through the double
	// edge; distances unchanged.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	res := Compute(g, Options{})
	if res.Diameter != 2 {
		t.Fatalf("multigraph diameter: %d", res.Diameter)
	}
	// Node 1 carries all 0<->2 paths: ordered dependency 2.
	if !almostEq(res.DegreeBetweenness[3], 2, 1e-12) {
		t.Fatalf("multigraph betweenness: %v", res.DegreeBetweenness)
	}
}

func TestDissimilarityProperties(t *testing.T) {
	a := gen.HolmeKim(300, 3, 0.5, rng(3))
	b := gen.HolmeKim(300, 3, 0.5, rng(4))
	er := gen.ErdosRenyiGNM(300, 897, rng(5))
	// Identity: D(a,a) == 0.
	if d := Dissimilarity(a, a, Options{}); !almostEq(d, 0, 1e-9) {
		t.Fatalf("D(a,a) = %v", d)
	}
	// Two HK draws are closer to each other than HK is to ER.
	dSame := Dissimilarity(a, b, Options{})
	dDiff := Dissimilarity(a, er, Options{})
	if dSame >= dDiff {
		t.Fatalf("D(HK,HK)=%v should be < D(HK,ER)=%v", dSame, dDiff)
	}
	if dSame < 0 || dDiff > 1.5 {
		t.Fatalf("D out of expected range: %v %v", dSame, dDiff)
	}
}

func TestComputeOnGeneratedGraphSanity(t *testing.T) {
	g := gen.HolmeKim(800, 4, 0.6, rng(6))
	res := Compute(g, Options{})
	if res.N != 800 || !almostEq(res.AvgDegree, g.AvgDegree(), 1e-12) {
		t.Fatal("N / avg degree wrong")
	}
	sum := 0.0
	//sgr:nondet-ok float-order tail of the sum is far below the 1e-9 assertion tolerance
	for _, p := range res.DegreeDist {
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("degree dist sums to %v", sum)
	}
	sum = 0
	//sgr:nondet-ok float-order tail of the sum is far below the 1e-9 assertion tolerance
	for _, p := range res.PathLenDist {
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("path dist sums to %v", sum)
	}
	sum = 0
	//sgr:nondet-ok float-order tail of the sum is far below the 1e-9 assertion tolerance
	for _, p := range res.ESP {
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("ESP sums to %v", sum)
	}
	if res.GlobalClustering <= 0 || res.GlobalClustering > 1 {
		t.Fatalf("cbar = %v", res.GlobalClustering)
	}
	if res.Lambda1 < res.AvgDegree {
		t.Fatalf("lambda1 %v below average degree %v", res.Lambda1, res.AvgDegree)
	}
	if res.Diameter < 2 {
		t.Fatalf("diameter = %d", res.Diameter)
	}
}
