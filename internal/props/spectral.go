package props

import (
	"math"

	"sgr/internal/graph"
)

// Lambda1 computes the largest eigenvalue of the adjacency matrix by power
// iteration with Rayleigh-quotient estimates. Iterating on A + I avoids
// oscillation on (near-)bipartite graphs and shifts the result by exactly
// one; for the connected non-negative matrices used here the Perron root of
// A + I is 1 + lambda1(A).
func Lambda1(g *graph.Graph) float64 {
	// CSR endpoint view: the sparse matrix-vector products below touch two
	// flat arrays instead of chasing per-node neighbor slices, in the same
	// per-endpoint order, so the iteration converges bit-identically.
	c := g.CSR()
	n := c.N()
	if n == 0 {
		return 0
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	lambda := 0.0
	for iter := 0; iter < 2000; iter++ {
		// y = (A + I) x; self-loops contribute twice via doubled entries.
		copy(y, x)
		for u := 0; u < n; u++ {
			xu := x[u]
			for _, v := range c.Endpoints(u) {
				y[v] += xu
			}
		}
		// Rayleigh quotient x^T B x (x is unit-norm).
		ray := 0.0
		var norm float64
		for i := range y {
			ray += x[i] * y[i]
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range y {
			y[i] /= norm
		}
		x, y = y, x
		if iter > 0 && math.Abs(ray-lambda) < 1e-11*math.Max(1, math.Abs(ray)) {
			lambda = ray
			break
		}
		lambda = ray
	}
	return lambda - 1
}
