// Package restored turns graph restoration into an asynchronous network
// service: a bounded job queue and worker pool running the full
// crawl → dK-series → rewiring pipeline behind an HTTP/JSON API, with a
// content-addressed result cache in front of the pipeline.
//
// The paper's workflow ends with a third party turning a random-walk crawl
// into a restored graph; cmd/restore does that inline, burning a core for
// the duration of every request and recomputing identical submissions from
// scratch. This package is the serving-side answer: jobs are accepted
// asynchronously (POST /v1/jobs), deduplicated — the job id IS the SHA-256
// of the canonicalized request, so concurrent identical submissions
// singleflight onto one pipeline run — and results are cached under the
// same key, in memory and optionally on disk, encoded once in the binary
// SGRB graph codec and served as zero-copy byte slices.
//
// Every job pins a caller-supplied seed and draws its pipeline RNG from
// core.PipelineRand, so a job's restored graph is byte-identical to
// `restore -seed` run offline on the same crawl — the cache can therefore
// answer for the offline tool, not just for itself.
//
// The wire protocol (version 1):
//
//	POST   /v1/jobs                   JobSpec -> JobStatus (202 new, 200 known, 429 + Retry-After full)
//	GET    /v1/jobs/{id}              -> JobStatus
//	DELETE /v1/jobs/{id}              -> JobStatus (cancellation request; 409 once terminal)
//	GET    /v1/jobs/{id}/graph        -> binary SGRB bytes (?format=edgelist for text)
//	GET    /v1/jobs/{id}/props        -> the 12 structural properties, JSON
//	GET    /v1/jobs/{id}/trace        -> pipeline timeline (?format=chrome for trace_event)
//	GET    /v1/healthz, /v1/metrics   -> shared daemon endpoints
//
// A JobSpec names exactly one crawl source: an inline crawl JSON (the
// sampling package's on-disk format), an uploaded oracle crawl journal, or
// a graphd URL the daemon crawls server-side through oracle.Client.
//
// Every job also carries a deterministic pipeline timeline (internal/obs):
// ordered spans for queueing, crawling, each restoration phase, the
// aggregate rewire propose/commit rounds, encoding and the cache write,
// served by the trace endpoint as JSON or a Chrome trace_event dump, with
// queue_usec/phase_usec summarized on JobStatus. Timing is wall-clock
// observation only — it lives strictly outside the content-address
// canonicalization (TestTimingFieldsOutsideContentAddress pins this), so
// tracing never re-keys a job and adds zero nondeterminism to results.
//
// Failure model: with a cache dir configured, accepted jobs are durable —
// logged to a CRC-checked write-ahead journal before they become
// runnable, replayed on startup (skipping ids the result cache already
// answers), so a crashed daemon resumes exactly the work it had accepted.
// Jobs are also cancellable (DELETE, or a timeout_ms deadline on the
// spec): cancellation is cooperative at pipeline phase and rewiring round
// boundaries, may only abort a job, and never perturbs the bytes of a job
// that completes. Both mechanisms are pure wall-clock machinery outside
// the content address.
package restored

import "encoding/json"

// JobSpec is the body of POST /v1/jobs. Exactly one of Crawl, Journal, or
// Graphd must be set.
type JobSpec struct {
	// Seed pins the pipeline RNG (and, for Graphd jobs, the crawl RNG).
	// Results are byte-identical to `restore -seed` on the same crawl.
	Seed uint64 `json:"seed"`
	// Method is "proposed" (default) or "gjoka".
	Method string `json:"method,omitempty"`
	// RC is the rewiring-attempt coefficient; <= 0 selects the paper
	// default (500). Submissions with the default spelled explicitly hash
	// identically to ones that omit it.
	RC float64 `json:"rc,omitempty"`
	// SkipRewiring and ForbidDegenerate mirror core.Options.
	SkipRewiring     bool `json:"skip_rewiring,omitempty"`
	ForbidDegenerate bool `json:"forbid_degenerate,omitempty"`
	// TimeoutMS, when positive, deadlines the job: a job still unfinished
	// this many milliseconds after acceptance (re-acceptance, for a job
	// replayed from the WAL) is cancelled at its next cooperative
	// checkpoint. Wall-clock policy, NOT identity: like queue_usec and
	// phase_usec it stays outside the content address, so submissions
	// differing only in timeout dedup onto one job — and the first
	// submission's timeout governs it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Crawl is an inline crawl JSON (sampling.WriteJSON format). Whitespace
	// and field order do not affect the job identity: the crawl is
	// canonicalized before hashing.
	Crawl json.RawMessage `json:"crawl,omitempty"`
	// Journal is the text of an oracle crawl journal (crawl -url -journal);
	// it must contain a completed walk record.
	Journal string `json:"journal,omitempty"`
	// Graphd asks the daemon to crawl a graphd server-side first.
	Graphd *GraphdSource `json:"graphd,omitempty"`
}

// GraphdSource describes a server-side crawl: the daemon random-walks the
// named graphd with the job's seed through oracle.Client, then feeds the
// crawl to the pipeline. The crawl is byte-identical to
// `crawl -url URL -seed SEED`, so the result joins the same cache line an
// offline submission of that crawl would.
type GraphdSource struct {
	URL      string  `json:"url"`
	Fraction float64 `json:"fraction"`
	// SeedNode pins the walk's start node; absent (or negative) draws it
	// from the seed stream like `crawl` does.
	SeedNode *int `json:"seed_node,omitempty"`
	// APIKey and Retries are transport details (rate-limit identity,
	// retry bound); they do not enter the job identity.
	APIKey  string `json:"api_key,omitempty"`
	Retries int    `json:"retries,omitempty"`
}

// Job states. Cancelled is terminal like failed — and like failed, an
// identical resubmission replaces a cancelled job with a fresh attempt
// instead of serving the stale abort forever.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job phases (the progress detail within StateRunning).
const (
	PhaseCrawling  = "crawling"
	PhaseRestoring = "restoring"
	PhaseEncoding  = "encoding"
)

// JobStatus is the response of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Phase string `json:"phase,omitempty"`
	// Cached reports that the result was served from the content-addressed
	// cache without running the pipeline.
	Cached bool `json:"cached,omitempty"`
	// QueueUS is the queue latency (enqueue to worker pickup) and PhaseUS
	// the execution wall clock so far (final once the job finishes), both
	// in microseconds. Pure wall-clock telemetry: neither enters the job's
	// content address — identical submissions hash identically no matter
	// how long they waited.
	QueueUS int64      `json:"queue_usec,omitempty"`
	PhaseUS int64      `json:"phase_usec,omitempty"`
	Error   string     `json:"error,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
}

// JobResult summarizes a finished restoration.
type JobResult struct {
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	NumAdded       int     `json:"num_added"`
	RewireAccepted int     `json:"rewire_accepted"`
	RewireAttempts int     `json:"rewire_attempts"`
	TotalMS        float64 `json:"total_ms"`
	RewireMS       float64 `json:"rewire_ms"`
	// GraphBytes is the size of the binary-codec download.
	GraphBytes int `json:"graph_bytes"`
}

// Error is the JSON body of every non-2xx response.
type Error struct {
	Code   string `json:"error"`
	Detail string `json:"detail,omitempty"`
}

// Error codes.
const (
	ErrCodeBadRequest     = "bad_request"
	ErrCodeUnknownJob     = "unknown_job"
	ErrCodeNotReady       = "not_ready"
	ErrCodeJobFailed      = "job_failed"
	ErrCodeQueueFull      = "queue_full"
	ErrCodeShuttingDown   = "shutting_down"
	ErrCodeNotCancellable = "not_cancellable"
)
