package restored

import (
	"fmt"
	"testing"
)

// benchService builds a quiet single-worker service (deterministic
// scheduling; the benchmarked axis is the per-job path, not pool width).
func benchService(b *testing.B, cfg Config) *Service {
	b.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	svc, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc
}

// BenchmarkRestoredPipelineJobs measures service throughput when every
// submission is new work: submit -> queue -> worker -> full pipeline ->
// encode -> done. ns/op is the inverse of jobs/s.
func BenchmarkRestoredPipelineJobs(b *testing.B) {
	_, c := testGraphAndCrawl(b, 3, 0.15)
	raw := crawlJSONBytes(b, c)
	svc := benchService(b, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration defeats both cache tiers, so every
		// iteration pays the pipeline.
		job, _, err := svc.Submit(&JobSpec{Seed: uint64(i) + 1, RC: 5, Crawl: raw})
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if _, err := job.Result(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoredCacheHit measures the cache-hit path end to end:
// submit -> queue -> worker -> content-addressed cache -> done, with the
// job table forgetting between iterations so the result cache (not the
// dedup short-circuit) answers.
func BenchmarkRestoredCacheHit(b *testing.B) {
	_, c := testGraphAndCrawl(b, 3, 0.15)
	raw := crawlJSONBytes(b, c)
	svc := benchService(b, Config{})
	warm, _, err := svc.Submit(&JobSpec{Seed: 1, RC: 5, Crawl: raw})
	if err != nil {
		b.Fatal(err)
	}
	<-warm.Done()
	if _, err := warm.Result(); err != nil {
		b.Fatal(err)
	}
	svc.forget(warm.ID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, _, err := svc.Submit(&JobSpec{Seed: 1, RC: 5, Crawl: raw})
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		svc.forget(job.ID)
	}
	b.StopTimer()
	if svc.PipelineRuns() != 1 {
		b.Fatalf("pipeline ran %d times; the cache-hit bench must hit the cache", svc.PipelineRuns())
	}
}

// BenchmarkRestoredDedupSubmit measures the submit-side fast path: an
// identical submission answered from the job table with no worker round
// trip — the latency a polling client sees on a duplicate POST.
func BenchmarkRestoredDedupSubmit(b *testing.B) {
	_, c := testGraphAndCrawl(b, 3, 0.15)
	raw := crawlJSONBytes(b, c)
	svc := benchService(b, Config{})
	warm, _, err := svc.Submit(&JobSpec{Seed: 1, RC: 5, Crawl: raw})
	if err != nil {
		b.Fatal(err)
	}
	<-warm.Done()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, existing, err := svc.Submit(&JobSpec{Seed: 1, RC: 5, Crawl: raw})
		if err != nil || !existing {
			b.Fatalf("iteration %d: err=%v existing=%v", i, err, existing)
		}
		<-job.Done()
	}
}

// BenchmarkRestoredCanonicalize isolates the submit-time cost of parsing
// and hashing a crawl — the price of content addressing itself.
func BenchmarkRestoredCanonicalize(b *testing.B) {
	for _, frac := range []float64{0.1, 0.3} {
		_, c := testGraphAndCrawl(b, 3, frac)
		raw := crawlJSONBytes(b, c)
		b.Run(fmt.Sprintf("fraction=%g", frac), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			for i := 0; i < b.N; i++ {
				if _, err := resolveSpec(&JobSpec{Seed: 1, RC: 5, Crawl: raw}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
