package restored

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"sgr/internal/graph"
	"sgr/internal/props"
)

// Result is one finished restoration: the binary-codec graph bytes (the
// canonical, content-addressed artifact — downloads serve this slice
// zero-copy), a small audit summary, and lazily materialized views (the
// decoded graph for edge-list rendering, the 12-property JSON).
type Result struct {
	// GraphBin is the SGRB encoding of the restored graph. Immutable.
	GraphBin []byte
	// Meta is the audit summary persisted next to the graph.
	Meta ResultMeta

	mu        sync.Mutex
	g         *graph.Graph
	propsJSON []byte
}

// ResultMeta is the JSON sidecar of a cache entry.
type ResultMeta struct {
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	NumAdded       int     `json:"num_added"`
	RewireAccepted int     `json:"rewire_accepted"`
	RewireAttempts int     `json:"rewire_attempts"`
	TotalMS        float64 `json:"total_ms"`
	RewireMS       float64 `json:"rewire_ms"`
}

// JobResult renders the wire form of the summary.
func (r *Result) JobResult() *JobResult {
	return &JobResult{
		Nodes:          r.Meta.Nodes,
		Edges:          r.Meta.Edges,
		NumAdded:       r.Meta.NumAdded,
		RewireAccepted: r.Meta.RewireAccepted,
		RewireAttempts: r.Meta.RewireAttempts,
		TotalMS:        r.Meta.TotalMS,
		RewireMS:       r.Meta.RewireMS,
		GraphBytes:     len(r.GraphBin),
	}
}

// Graph decodes the binary bytes once and memoizes the graph. Entries
// loaded from disk pay the decode on first edge-list or props request
// only; binary downloads never decode at all.
func (r *Result) Graph() (*graph.Graph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.g == nil {
		g, err := graph.DecodeBinary(r.GraphBin)
		if err != nil {
			return nil, err
		}
		r.g = g
	}
	return r.g, nil
}

// Props computes (once) the 12 structural properties of the restored graph
// and memoizes their JSON rendering. The worker count is fixed by the
// service configuration, which keeps the betweenness float merges — and so
// the cached bytes — deterministic for a given deployment.
func (r *Result) Props(workers int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.propsJSON != nil {
		return r.propsJSON, nil
	}
	if r.g == nil {
		g, err := graph.DecodeBinary(r.GraphBin)
		if err != nil {
			return nil, err
		}
		r.g = g
	}
	pr := props.Compute(r.g, props.Options{Workers: workers})
	buf, err := json.Marshal(pr)
	if err != nil {
		return nil, err
	}
	buf = append(buf, '\n')
	r.propsJSON = buf
	return buf, nil
}

// Cache is the content-addressed result store: an in-memory map fronting
// an optional on-disk directory. Disk entries are two files per key —
// <key>.sgrb (the binary graph) and <key>.json (the ResultMeta sidecar) —
// written atomically, so a daemon restart warm-starts from every result it
// ever computed.
type Cache struct {
	mu  sync.Mutex
	mem map[string]*Result
	dir string
}

// NewCache opens a cache; dir == "" keeps results in memory only.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Cache{mem: make(map[string]*Result), dir: dir}, nil
}

// Len reports the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Get returns the cached result for key, falling back to (and re-warming
// from) the disk tier.
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	r, ok := c.mem[key]
	c.mu.Unlock()
	if ok || c.dir == "" {
		return r, ok
	}
	r, err := c.load(key)
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	// A concurrent loader may have won; keep the first so every caller
	// shares one memoized graph/props view.
	if prev, ok := c.mem[key]; ok {
		r = prev
	} else {
		c.mem[key] = r
	}
	c.mu.Unlock()
	return r, true
}

// Put stores a result under key, persisting it when a disk tier is
// configured. The in-memory store always succeeds; a disk failure is
// returned so the caller can log it, but does not lose the result.
func (c *Cache) Put(key string, r *Result) error {
	c.mu.Lock()
	c.mem[key] = r
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	meta, err := json.Marshal(r.Meta)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(c.graphPath(key), r.GraphBin); err != nil {
		return err
	}
	return writeFileAtomic(c.metaPath(key), meta)
}

// load reads one key's pair of files from the disk tier, verifying the
// graph bytes decode before trusting them (a corrupt entry reads as a
// miss, and the pipeline recomputes it).
func (c *Cache) load(key string) (*Result, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("restored: invalid cache key %q", key)
	}
	bin, err := os.ReadFile(c.graphPath(key))
	if err != nil {
		return nil, err
	}
	metaRaw, err := os.ReadFile(c.metaPath(key))
	if err != nil {
		return nil, err
	}
	r := &Result{GraphBin: bin}
	if err := json.Unmarshal(metaRaw, &r.Meta); err != nil {
		return nil, err
	}
	g, err := graph.DecodeBinary(bin)
	if err != nil {
		return nil, err
	}
	r.g = g
	return r, nil
}

func (c *Cache) graphPath(key string) string { return filepath.Join(c.dir, key+".sgrb") }
func (c *Cache) metaPath(key string) string  { return filepath.Join(c.dir, key+".json") }

// validKey guards the disk tier against path-shaped keys. Service-computed
// keys are always lowercase hex; anything else never touches the
// filesystem.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	return strings.IndexFunc(key, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

// writeFileAtomic writes via a temp file + rename so readers (including a
// concurrently restarted daemon) never observe a torn entry.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
