package restored

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// waitCancelled blocks until the job settles and asserts it ended
// cancelled with the given cause.
func waitCancelled(t *testing.T, j *Job, cause error) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s never settled", shortKey(j.ID))
	}
	st := j.Status()
	if st.State != StateCancelled {
		t.Fatalf("job state %q, want cancelled", st.State)
	}
	if _, err := j.Result(); err == nil || !errors.Is(err, cause) {
		t.Fatalf("cancelled job error = %v, want %v", err, cause)
	}
}

// TestCancelQueuedJob: cancelling a job no worker has picked up settles it
// immediately, and the worker later drains it without running anything.
func TestCancelQueuedJob(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.1)
	raw := crawlJSONBytes(t, c)

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	svc := newTestService(t, Config{Workers: 1, QueueDepth: 4})
	svc.testBeforeRun = func(*Job) {
		started <- struct{}{}
		<-gate
	}
	defer close(gate)

	// Job A occupies the only worker; job B sits in the queue.
	a, _, err := svc.Submit(&JobSpec{Seed: 1, RC: 5, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	b, _, err := svc.Submit(&JobSpec{Seed: 2, RC: 5, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := svc.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	waitCancelled(t, b, errJobCancelled)

	// Cancelling a terminal job is a conflict, not a second transition.
	if _, err := svc.Cancel(b.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("second cancel: %v, want ErrNotCancellable", err)
	}
	if _, err := svc.Cancel(strings.Repeat("0", 64)); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel of unknown id: %v, want ErrUnknownJob", err)
	}

	// A cancelled job must not poison its content address: the identical
	// resubmission is a fresh attempt that runs to completion.
	gate <- struct{}{} // release A
	gate <- struct{}{} // release the worker's drain pass over cancelled B
	waitDone(t, a)
	b2, existing, err := svc.Submit(&JobSpec{Seed: 2, RC: 5, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}
	if existing {
		t.Fatal("resubmission deduped onto the cancelled job")
	}
	gate <- struct{}{} // release B's replacement
	waitDone(t, b2)
	if got := svc.cancelled.Value(); got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}
}

// TestCancelRunningJobAbortsPipeline: a job cancelled while the pipeline
// runs stops at the next cooperative checkpoint instead of completing, and
// no result is published under its id.
func TestCancelRunningJobAbortsPipeline(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.2)
	raw := crawlJSONBytes(t, c)

	cancelled := make(chan struct{})
	svc := newTestService(t, Config{Workers: 1})
	svc.testBeforeRun = func(j *Job) {
		// Cancel between pickup and the first checkpoint: the worker's own
		// ctx poll must observe it — deterministic, no mid-phase timing.
		j.cancel(errJobCancelled)
		close(cancelled)
	}
	job, _, err := svc.Submit(&JobSpec{Seed: 3, RC: 50, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}
	<-cancelled
	waitCancelled(t, job, errJobCancelled)
	if got := svc.PipelineRuns(); got != 0 {
		t.Fatalf("cancelled job ran the pipeline %d time(s)", got)
	}
}

// TestJobDeadline: a timeout_ms deadline cancels a job that outlives it,
// with the deadline cause — distinguishable from an operator cancel.
func TestJobDeadline(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.1)
	raw := crawlJSONBytes(t, c)

	svc := newTestService(t, Config{Workers: 1})
	svc.testBeforeRun = func(j *Job) {
		// Park only jobs with a short deadline until it fires; the
		// generous and deadline-free jobs below run normally.
		if j.spec.timeout > 0 && j.spec.timeout < time.Second {
			<-j.ctx.Done()
		}
	}
	job, _, err := svc.Submit(&JobSpec{Seed: 5, RC: 5, TimeoutMS: 5, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}
	waitCancelled(t, job, errJobDeadline)

	// A generous deadline never fires: the job completes normally and its
	// bytes match a deadline-free run.
	free, _, err := svc.Submit(&JobSpec{Seed: 6, RC: 5, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}
	resFree := waitDone(t, free)
	svc.forget(free.ID)
	deadlined, _, err := svc.Submit(&JobSpec{Seed: 6, RC: 5, TimeoutMS: 600_000, Crawl: raw})
	if err != nil {
		t.Fatal(err)
	}
	if deadlined.ID != free.ID {
		t.Fatal("timeout_ms changed the job id")
	}
	resDeadlined := waitDone(t, deadlined)
	if !bytes.Equal(resFree.GraphBin, resDeadlined.GraphBin) {
		t.Fatal("deadline-bearing job produced different bytes")
	}

	// Negative timeouts are rejected at submit.
	if _, _, err := svc.Submit(&JobSpec{Seed: 7, TimeoutMS: -1, Crawl: raw}); err == nil {
		t.Fatal("negative timeout_ms accepted")
	}
}

// TestHTTPCancelAndRetryAfter drives DELETE /v1/jobs/{id} and the
// queue-full 429 over the wire.
func TestHTTPCancelAndRetryAfter(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.1)
	raw := crawlJSONBytes(t, c)

	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	svc, ts := startHTTP(t, Config{Workers: 1, QueueDepth: 1})
	svc.testBeforeRun = func(*Job) {
		started <- struct{}{}
		<-gate
	}
	defer close(gate)

	del := func(id string) (int, JobStatus, Error) {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var raw json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		var e Error
		json.Unmarshal(raw, &st)
		json.Unmarshal(raw, &e)
		return resp.StatusCode, st, e
	}

	// Occupy the worker, fill the queue.
	_, stA := postJob(t, ts.URL, &JobSpec{Seed: 1, RC: 5, Crawl: raw})
	<-started
	_, stB := postJob(t, ts.URL, &JobSpec{Seed: 2, RC: 5, Crawl: raw})

	// Overflow answers 429 with a positive integer Retry-After.
	body, _ := json.Marshal(&JobSpec{Seed: 3, RC: 5, Crawl: raw})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" || strings.HasPrefix(ra, "-") {
		t.Fatalf("overflow Retry-After = %q, want a positive integer", ra)
	}

	// DELETE the queued job: 200 and it settles cancelled.
	code, _, _ := del(stB.ID)
	if code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d, want 200", code)
	}
	j, _ := svc.Job(stB.ID)
	waitCancelled(t, j, errJobCancelled)

	// Its downloads are a terminal conflict, and a second DELETE answers
	// 409 not_cancellable.
	codeG, _, _ := getBody(t, ts.URL+"/v1/jobs/"+stB.ID+"/graph")
	if codeG != http.StatusConflict {
		t.Fatalf("graph of cancelled job: HTTP %d, want 409", codeG)
	}
	code, _, e := del(stB.ID)
	if code != http.StatusConflict || e.Code != ErrCodeNotCancellable {
		t.Fatalf("second cancel: HTTP %d %q, want 409 %q", code, e.Code, ErrCodeNotCancellable)
	}
	code, _, _ = del(strings.Repeat("0", 64))
	if code != http.StatusNotFound {
		t.Fatalf("cancel of unknown id: HTTP %d, want 404", code)
	}

	gate <- struct{}{} // release A
	pollDone(t, ts.URL, stA.ID)
}
