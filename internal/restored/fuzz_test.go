package restored

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/sampling"
)

// FuzzCacheKeyCanonicalization hammers the canonicalization invariant with
// arbitrary crawl JSON: whenever an input parses as a crawl at all, every
// re-spelling of it (indentation, map-ordered fields, the canonical
// rendering itself) must resolve to the same cache key, and the canonical
// form must be a fixed point.
func FuzzCacheKeyCanonicalization(f *testing.F) {
	g := gen.HolmeKim(60, 3, 0.5, rand.New(rand.NewPCG(1, 2)))
	c, err := sampling.SeededRandomWalk(sampling.NewGraphAccess(g), -1, 0.1, 7)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var indented bytes.Buffer
	if err := json.Indent(&indented, buf.Bytes(), "", "\t"); err != nil {
		f.Fatal(err)
	}
	f.Add(indented.Bytes())
	f.Add([]byte(`{"version":1,"queried":[0,1],"neighbors":[[1],[0,0]],"walk":[0,1,0]}`))
	f.Add([]byte(`{"version":1,"queried":[],"neighbors":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := resolveSpec(&JobSpec{Seed: 1, RC: 5, Crawl: data})
		if err != nil {
			return // unparseable or invalid crawls are rejected, not hashed
		}
		// Canonicalization is a fixed point: resubmitting the canonical
		// bytes yields the same key and the same canonical bytes.
		again, err := resolveSpec(&JobSpec{Seed: 1, RC: 5, Crawl: ps.canon})
		if err != nil {
			t.Fatalf("canonical bytes rejected: %v", err)
		}
		if again.key != ps.key {
			t.Fatalf("canonical resubmission changed the key: %s != %s", again.key, ps.key)
		}
		if !bytes.Equal(again.canon, ps.canon) {
			t.Fatal("canonicalization is not idempotent")
		}
		// Whitespace re-spellings of the raw input keep the key.
		var ind bytes.Buffer
		if err := json.Indent(&ind, data, " ", "  "); err == nil {
			sp, err := resolveSpec(&JobSpec{Seed: 1, RC: 5, Crawl: ind.Bytes()})
			if err != nil {
				t.Fatalf("indented spelling rejected: %v", err)
			}
			if sp.key != ps.key {
				t.Fatal("indented spelling changed the key")
			}
		}
		// A different seed must change the key (options always hash).
		other, err := resolveSpec(&JobSpec{Seed: 2, RC: 5, Crawl: ps.canon})
		if err != nil {
			t.Fatal(err)
		}
		if other.key == ps.key {
			t.Fatal("seed did not enter the key")
		}
	})
}
