package restored

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"os"
	"strings"
	"time"

	"sgr/internal/dkseries"
	"sgr/internal/oracle"
	"sgr/internal/sampling"
)

// Method names accepted on the wire.
const (
	MethodProposed = "proposed"
	MethodGjoka    = "gjoka"
)

// jobSpec is the resolved, validated form of a JobSpec: crawl parsed and
// canonicalized (except for graphd sources, which crawl inside the worker),
// options normalized, and the content-addressed job key computed.
type jobSpec struct {
	method string // MethodProposed or MethodGjoka
	rc     float64
	skip   bool
	forbid bool
	seed   uint64

	// timeout is the job's wall-clock deadline (0 = none). Execution
	// policy, not identity: it is deliberately excluded from writeOptions
	// and therefore from the key — how long a caller is willing to wait
	// must not re-key the work (TestTimingFieldsOutsideContentAddress
	// pins this).
	timeout time.Duration

	crawl  *sampling.Crawl // nil for graphd sources until the worker crawls
	canon  []byte          // canonical crawl bytes (nil for graphd sources)
	graphd *GraphdSource

	key string // job id: hex SHA-256 of the canonical submission
}

// resolveSpec validates a submission and computes its identity. All crawl
// parsing happens here, synchronously at submit time, so POST can reject
// malformed submissions with a 400 instead of a failed job, and identical
// submissions collapse onto one job id before anything is enqueued.
func resolveSpec(spec *JobSpec) (*jobSpec, error) {
	if spec.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be >= 0, got %d", spec.TimeoutMS)
	}
	ps := &jobSpec{
		rc:      spec.RC,
		skip:    spec.SkipRewiring,
		forbid:  spec.ForbidDegenerate,
		seed:    spec.Seed,
		timeout: time.Duration(spec.TimeoutMS) * time.Millisecond,
	}
	// Normalize the options that core resolves internally, so every
	// spelling of a default hashes the same.
	if ps.rc <= 0 {
		ps.rc = dkseries.DefaultRC
	}
	switch spec.Method {
	case "", MethodProposed:
		ps.method = MethodProposed
	case MethodGjoka:
		ps.method = MethodGjoka
	default:
		return nil, fmt.Errorf("unknown method %q (want %q or %q)", spec.Method, MethodProposed, MethodGjoka)
	}

	sources := 0
	for _, set := range []bool{len(spec.Crawl) > 0, spec.Journal != "", spec.Graphd != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of crawl, journal or graphd is required (got %d)", sources)
	}

	switch {
	case len(spec.Crawl) > 0:
		c, err := sampling.ReadCrawlJSON(bytes.NewReader(spec.Crawl))
		if err != nil {
			return nil, err
		}
		if err := ps.setCrawl(c); err != nil {
			return nil, err
		}
	case spec.Journal != "":
		c, err := crawlFromJournalText(spec.Journal)
		if err != nil {
			return nil, err
		}
		if err := ps.setCrawl(c); err != nil {
			return nil, err
		}
	default:
		g := *spec.Graphd // private copy: the spec is caller-owned
		if g.URL == "" {
			return nil, fmt.Errorf("graphd.url is required")
		}
		if g.Fraction <= 0 || g.Fraction > 1 {
			return nil, fmt.Errorf("graphd.fraction %v out of (0,1]", g.Fraction)
		}
		seedNode := -1
		if g.SeedNode != nil {
			seedNode = *g.SeedNode
		}
		ps.graphd = &g
		// Graphd jobs are keyed by the crawl *request* (the crawl itself
		// has not happened yet): two submissions naming the same server,
		// fraction, start and seed are one job. After the worker crawls,
		// the result is ALSO stored under the crawl-content key, so a later
		// inline submission of the identical crawl hits the cache without
		// a pipeline run (and vice versa).
		h := newKeyHash()
		fmt.Fprintf(h, "source=graphd\nurl=%s\nfraction=%v\nseed_node=%d\n", g.URL, g.Fraction, seedNode)
		ps.writeOptions(h)
		ps.key = hex.EncodeToString(h.Sum(nil))
	}
	return ps, nil
}

// setCrawl installs a resolved crawl, canonicalizes it, and derives the
// content-addressed key. The restoration pipeline needs the walk sequence;
// rejecting walkless crawls here keeps failed jobs out of the queue.
func (ps *jobSpec) setCrawl(c *sampling.Crawl) error {
	if len(c.Walk) == 0 {
		return fmt.Errorf("crawl has no walk sequence (restoration needs a random-walk crawl)")
	}
	canon, err := canonicalCrawl(c)
	if err != nil {
		return err
	}
	ps.crawl = c
	ps.canon = canon
	ps.key = resultKey(canon, ps)
	return nil
}

// canonicalCrawl renders a crawl in its canonical byte form: the exact
// output of sampling's WriteJSON. Any JSON spelling of the same crawl —
// whitespace, field order, number formatting that survives parsing —
// canonicalizes to the same bytes; any difference in queried nodes,
// neighbor lists or walk steps changes them.
func canonicalCrawl(c *sampling.Crawl) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// keyVersion stamps the hash domain. Bump it when the canonical form or
// the option set changes, so stale disk caches can never alias new keys.
const keyVersion = "sgr-restored-key-v1"

func newKeyHash() hash.Hash {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", keyVersion)
	return h
}

// writeOptions appends the normalized pipeline options to the key.
func (ps *jobSpec) writeOptions(h hash.Hash) {
	fmt.Fprintf(h, "method=%s\nrc=%g\nskip_rewiring=%t\nforbid_degenerate=%t\nseed=%d\n",
		ps.method, ps.rc, ps.skip, ps.forbid, ps.seed)
}

// resultKey is the content-addressed cache key of the ISSUE contract:
// SHA-256 over (canonical crawl bytes, normalized options, seed).
func resultKey(canon []byte, ps *jobSpec) string {
	h := newKeyHash()
	fmt.Fprintf(h, "source=crawl\nbytes=%d\n", len(canon))
	h.Write(canon)
	ps.writeOptions(h)
	return hex.EncodeToString(h.Sum(nil))
}

// walSpec renders the resolved spec back into its normalized wire form
// for the job WAL: canonical crawl bytes, resolved method and rc. Feeding
// the result through resolveSpec reproduces ps.key exactly —
// canonicalization is a fixed point — which is what makes WAL replay
// idempotent and lets it reject corrupt records by key mismatch.
func (ps *jobSpec) walSpec() *JobSpec {
	spec := &JobSpec{
		Seed:             ps.seed,
		Method:           ps.method,
		RC:               ps.rc,
		SkipRewiring:     ps.skip,
		ForbidDegenerate: ps.forbid,
		TimeoutMS:        ps.timeout.Milliseconds(),
	}
	if ps.graphd != nil {
		g := *ps.graphd
		spec.Graphd = &g
	} else {
		spec.Crawl = ps.canon
	}
	return spec
}

// crawlFromJournalText parses an uploaded oracle crawl journal. Journal
// replay is file-oriented (torn-tail handling measures byte offsets), so
// the upload round-trips through a temporary file.
func crawlFromJournalText(text string) (*sampling.Crawl, error) {
	f, err := os.CreateTemp("", "restored-journal-*.jsonl")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	defer os.Remove(path)
	if _, err := f.WriteString(text); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	c, err := oracle.LoadCrawlFromJournal(path)
	if err != nil {
		// Strip the throwaway temp path from the message; the caller
		// uploaded bytes, not a file.
		return nil, fmt.Errorf("journal: %s", strings.ReplaceAll(err.Error(), path, "upload"))
	}
	return c, nil
}
