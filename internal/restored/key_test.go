package restored

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"sgr/internal/gen"
	"sgr/internal/graph"
	"sgr/internal/sampling"
)

// testGraphAndCrawl builds a small connected graph and a seeded crawl of
// it — the shared subject of the key and service tests.
func testGraphAndCrawl(t testing.TB, seed uint64, fraction float64) (*graph.Graph, *sampling.Crawl) {
	t.Helper()
	g := gen.HolmeKim(160, 3, 0.5, rand.New(rand.NewPCG(41, 42)))
	c, err := sampling.SeededRandomWalk(sampling.NewGraphAccess(g), -1, fraction, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, c
}

// crawlJSONBytes renders a crawl in the canonical wire form.
func crawlJSONBytes(t testing.TB, c *sampling.Crawl) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// journalText renders a crawl as an uploaded oracle crawl-journal body.
func journalText(t testing.TB, c *sampling.Crawl, nodes int) string {
	t.Helper()
	var sb strings.Builder
	writeRec := func(rec map[string]any) {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	writeRec(map[string]any{"t": "h", "version": 1, "nodes": nodes})
	for _, u := range c.Queried {
		writeRec(map[string]any{"t": "q", "u": u, "nb": c.Neighbors[u]})
	}
	writeRec(map[string]any{"t": "w", "walk": c.Walk})
	return sb.String()
}

// mustKey resolves a spec and returns its job key.
func mustKey(t *testing.T, spec *JobSpec) string {
	t.Helper()
	ps, err := resolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return ps.key
}

// TestCacheKeyCanonicalization is the satellite contract: two submissions
// whose crawls differ only in JSON spelling (whitespace, field order) hash
// identically; any difference in walk content or pipeline options does
// not.
func TestCacheKeyCanonicalization(t *testing.T) {
	g, c := testGraphAndCrawl(t, 5, 0.15)
	canon := crawlJSONBytes(t, c)

	base := &JobSpec{Seed: 3, RC: 5, Crawl: canon}
	baseKey := mustKey(t, base)

	// Equivalent spellings of the same submission.
	var indented bytes.Buffer
	if err := json.Indent(&indented, canon, "", "   "); err != nil {
		t.Fatal(err)
	}
	var asMap map[string]any
	if err := json.Unmarshal(canon, &asMap); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.Marshal(asMap) // map marshal sorts keys: a new field order
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(reordered, canon) {
		t.Fatal("test is vacuous: reordered bytes equal canonical bytes")
	}
	for i, spec := range []*JobSpec{
		{Seed: 3, RC: 5, Crawl: indented.Bytes()},
		{Seed: 3, RC: 5, Crawl: reordered},
		{Seed: 3, RC: 5, Crawl: append([]byte("  "), append(append([]byte(nil), canon...), ' ', '\n')...)},
		{Seed: 3, RC: 5, Method: MethodProposed, Crawl: canon},
		{Seed: 3, RC: 5, Journal: journalText(t, c, g.N())},
	} {
		if got := mustKey(t, spec); got != baseKey {
			t.Errorf("equivalent spelling %d produced a different key", i)
		}
	}

	// Differing submissions. Mutate one walk step to another queried node
	// (the crawl stays structurally valid).
	mutated := *c
	mutated.Walk = append([]int(nil), c.Walk...)
	if len(mutated.Walk) < 2 {
		t.Fatal("walk too short to mutate")
	}
	mutated.Walk[len(mutated.Walk)-1] = mutated.Walk[0]
	mutatedBytes := crawlJSONBytes(t, &mutated)

	differing := map[string]*JobSpec{
		"walk step":         {Seed: 3, RC: 5, Crawl: mutatedBytes},
		"seed":              {Seed: 4, RC: 5, Crawl: canon},
		"rc":                {Seed: 3, RC: 7, Crawl: canon},
		"method":            {Seed: 3, RC: 5, Method: MethodGjoka, Crawl: canon},
		"skip rewiring":     {Seed: 3, RC: 5, SkipRewiring: true, Crawl: canon},
		"forbid degenerate": {Seed: 3, RC: 5, ForbidDegenerate: true, Crawl: canon},
	}
	for name, spec := range differing {
		if got := mustKey(t, spec); got == baseKey {
			t.Errorf("submission differing in %s hashed to the base key", name)
		}
	}

	// The RC default has one identity however it is spelled.
	if mustKey(t, &JobSpec{Seed: 3, Crawl: canon}) != mustKey(t, &JobSpec{Seed: 3, RC: 500, Crawl: canon}) {
		t.Error("omitted RC and explicit default RC produced different keys")
	}
}

// TestTimingFieldsOutsideContentAddress is the observability regression
// gate: the queue_usec/phase_usec timeline fields (and every other
// wall-clock observation) live on JobStatus — the output side of the wire
// protocol — and never reach key canonicalization. Two proofs: the content
// address of a fixed submission is pinned to its pre-observability hex, and
// the JobSpec input schema is checked field-by-field to share no JSON name
// with the status timing fields, so a timing value can never round-trip
// into an input.
func TestTimingFieldsOutsideContentAddress(t *testing.T) {
	_, c := testGraphAndCrawl(t, 5, 0.15)
	spec := &JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)}

	// Golden pin: if a clock read (or any new field) sneaks into
	// canonicalization, every cached result silently re-keys — this fails
	// first. The constant was computed before the timing fields existed.
	const golden = "b1b7dc721bd1ffcaa2d7709d4bf0a0c6a637f9b301bf7ea90d39b18cb451e33f"
	if key := mustKey(t, spec); key != golden {
		t.Fatalf("content address drifted: %s, want pinned %s", key, golden)
	}
	// Resolving the identical spec twice (wall-clock time has passed)
	// yields the identical key.
	if again := mustKey(t, spec); again != golden {
		t.Fatalf("second resolution re-keyed to %s", again)
	}
	// timeout_ms is execution policy, not identity: how long a caller is
	// willing to wait must not re-key the work.
	deadlined := &JobSpec{Seed: 3, RC: 5, TimeoutMS: 12345, Crawl: crawlJSONBytes(t, c)}
	if key := mustKey(t, deadlined); key != golden {
		t.Fatalf("timeout_ms entered the content address: %s", key)
	}

	// Schema disjointness: no JobSpec input field may use a timing JSON
	// name, or a copied status could smuggle timings into submissions.
	timingNames := map[string]bool{"queue_usec": true, "phase_usec": true}
	rt := reflect.TypeOf(JobSpec{})
	for i := 0; i < rt.NumField(); i++ {
		tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		if timingNames[tag] {
			t.Errorf("JobSpec field %s uses timing JSON name %q", rt.Field(i).Name, tag)
		}
	}
	// And the status side really does carry them, under exactly these
	// names (omitempty: absent until measured).
	b, err := json.Marshal(JobStatus{ID: "x", QueueUS: 12, PhaseUS: 34})
	if err != nil {
		t.Fatal(err)
	}
	for name := range timingNames {
		if !bytes.Contains(b, []byte(`"`+name+`"`)) {
			t.Errorf("JobStatus JSON missing %q: %s", name, b)
		}
	}
}

// TestGraphdSpecKeys pins the request-keyed identity of server-side crawl
// jobs: transport details (api key, retry bound) do not identify a job,
// the crawl request (url, fraction, start, seed, options) does.
func TestGraphdSpecKeys(t *testing.T) {
	node := 3
	base := &JobSpec{Seed: 9, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1}}
	baseKey := mustKey(t, base)
	same := []*JobSpec{
		{Seed: 9, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1, APIKey: "k"}},
		{Seed: 9, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1, Retries: 4}},
		{Seed: 9, RC: 500, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1}},
	}
	for i, spec := range same {
		if mustKey(t, spec) != baseKey {
			t.Errorf("transport-detail variant %d changed the key", i)
		}
	}
	diff := []*JobSpec{
		{Seed: 9, Graphd: &GraphdSource{URL: "http://y", Fraction: 0.1}},
		{Seed: 9, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.2}},
		{Seed: 9, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1, SeedNode: &node}},
		{Seed: 8, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1}},
		{Seed: 9, Method: MethodGjoka, Graphd: &GraphdSource{URL: "http://x", Fraction: 0.1}},
	}
	for i, spec := range diff {
		if mustKey(t, spec) == baseKey {
			t.Errorf("differing graphd variant %d kept the base key", i)
		}
	}
}

// TestResolveSpecRejects covers submit-time validation.
func TestResolveSpecRejects(t *testing.T) {
	_, c := testGraphAndCrawl(t, 5, 0.1)
	canon := crawlJSONBytes(t, c)
	walkless := &sampling.Crawl{Queried: c.Queried, Neighbors: c.Neighbors}
	walklessBytes := crawlJSONBytes(t, walkless)

	cases := map[string]*JobSpec{
		"no source":          {Seed: 1},
		"two sources":        {Seed: 1, Crawl: canon, Journal: "x"},
		"bad crawl json":     {Seed: 1, Crawl: []byte("{nope")},
		"walkless crawl":     {Seed: 1, Crawl: walklessBytes},
		"bad journal":        {Seed: 1, Journal: "not a journal"},
		"unknown method":     {Seed: 1, Method: "magic", Crawl: canon},
		"graphd without url": {Seed: 1, Graphd: &GraphdSource{Fraction: 0.1}},
		"graphd fraction":    {Seed: 1, Graphd: &GraphdSource{URL: "http://x", Fraction: 1.5}},
	}
	for name, spec := range cases {
		if _, err := resolveSpec(spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestJournalUploadResolvesLikeCrawl proves an uploaded journal and the
// inline crawl JSON of the same crawl are one job identity end to end,
// including the canonical bytes.
func TestJournalUploadResolvesLikeCrawl(t *testing.T) {
	g, c := testGraphAndCrawl(t, 11, 0.12)
	inline, err := resolveSpec(&JobSpec{Seed: 2, Crawl: crawlJSONBytes(t, c)})
	if err != nil {
		t.Fatal(err)
	}
	fromJournal, err := resolveSpec(&JobSpec{Seed: 2, Journal: journalText(t, c, g.N())})
	if err != nil {
		t.Fatal(err)
	}
	if inline.key != fromJournal.key {
		t.Fatal("journal upload and inline crawl resolved to different keys")
	}
	if !bytes.Equal(inline.canon, fromJournal.canon) {
		t.Fatal("journal upload and inline crawl canonicalized differently")
	}
}

// TestKeyLooksLikeSHA256 pins the id format scripts rely on.
func TestKeyLooksLikeSHA256(t *testing.T) {
	_, c := testGraphAndCrawl(t, 5, 0.1)
	key := mustKey(t, &JobSpec{Seed: 1, Crawl: crawlJSONBytes(t, c)})
	if !validKey(key) {
		t.Fatalf("key %q is not 64 lowercase hex chars", key)
	}
	if validKey("../escape") || validKey(strings.Repeat("Z", 64)) {
		t.Fatal("validKey accepted a non-hex key")
	}
}
