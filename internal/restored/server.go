package restored

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"sgr/internal/daemon"
	"sgr/internal/graph"
)

// maxSpecBytes bounds a submission body (inline crawls and journals of
// million-node graphs fit comfortably; a runaway upload does not).
const maxSpecBytes = 256 << 20

// Server exposes a Service over the restored wire protocol.
type Server struct {
	svc *Service
}

// NewServer wraps svc.
func NewServer(svc *Service) *Server { return &Server{svc: svc} }

// Handler returns the HTTP handler implementing the wire protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.timed(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.timed(s.handleStatus))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.timed(s.handleCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/graph", s.timed(s.handleGraph))
	mux.HandleFunc("GET /v1/jobs/{id}/props", s.timed(s.handleProps))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.timed(s.handleTrace))
	// Load-balancer endpoints, shared with graphd via internal/daemon.
	// Deliberately untimed, matching graphd: restored_request_usec is
	// data-endpoint service time, not scrape/probe overhead.
	mux.Handle("GET /v1/healthz", daemon.HealthzHandler(s.svc.Healthz))
	mux.Handle("GET /v1/metrics", daemon.MetricsHandler(s.svc.Registry()))
	return mux
}

// timed records a job endpoint's service time on restored_request_usec —
// the server-side counterpart of a load generator's client-observed
// latency (the difference between the two is queueing and the wire).
func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.svc.requestUsec.Observe(time.Since(start).Microseconds())
	}
}

// handleSubmit accepts a JobSpec. A new job answers 202 Accepted; a
// submission matching a known job (singleflight or finished) answers 200
// with that job's current status — a done job is therefore consumable
// immediately, no polling round trip.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "reading body: "+err.Error())
		return
	}
	var spec JobSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "decoding spec: "+err.Error())
		return
	}
	job, existing, err := s.svc.Submit(&spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// 429 with honest backpressure advice: the Retry-After is computed
		// from the live backlog and observed pipeline latency, not a
		// constant.
		retry := int(math.Ceil(s.svc.QueueRetryAfter().Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusTooManyRequests, ErrCodeQueueFull, "")
		return
	case errors.Is(err, ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, ErrCodeShuttingDown, "")
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error())
		return
	}
	status := http.StatusAccepted
	if existing {
		status = http.StatusOK
	}
	writeJSON(w, status, job.Status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, ErrCodeUnknownJob, "")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleCancel requests cancellation. The 200 answer carries the job's
// status at the moment of the request — usually still "running": a
// running job stops at its next cooperative checkpoint, so callers poll
// or wait for the terminal "cancelled" like any other state change.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.svc.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeErr(w, http.StatusNotFound, ErrCodeUnknownJob, "")
		return
	case errors.Is(err, ErrNotCancellable):
		writeErr(w, http.StatusConflict, ErrCodeNotCancellable, "job is "+job.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// jobResult resolves a job's finished result for the download endpoints,
// writing the appropriate error response when it is not servable.
func (s *Server) jobResult(w http.ResponseWriter, r *http.Request) (*Result, bool) {
	job, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, ErrCodeUnknownJob, "")
		return nil, false
	}
	st := job.Status()
	switch st.State {
	case StateFailed, StateCancelled:
		// Terminal without a result; polling will never help.
		writeErr(w, http.StatusConflict, ErrCodeJobFailed, st.Error)
		return nil, false
	case StateDone:
		res, err := job.Result()
		if err != nil {
			writeErr(w, http.StatusConflict, ErrCodeJobFailed, err.Error())
			return nil, false
		}
		return res, true
	default:
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusConflict, ErrCodeNotReady, "job is "+st.State)
		return nil, false
	}
}

// handleGraph serves the restored graph: by default the binary SGRB bytes
// — the cache entry itself, written zero-copy the way the oracle serves
// CSR rows — or a plain-text edge list with ?format=edgelist.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	res, ok := s.jobResult(w, r)
	if !ok {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		w.Write(res.GraphBin)
	case "edgelist":
		g, err := res.Graph()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, ErrCodeJobFailed, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		graph.WriteEdgeList(w, g)
	default:
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "unknown format "+format)
	}
}

// handleTrace serves the job's pipeline timeline: the span list as JSON by
// default, or the Chrome trace_event dump with ?format=chrome for flame
// charts. Unlike the download endpoints it answers for any known job —
// a running job shows its live partial timeline.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, ErrCodeUnknownJob, "")
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, job.Trace().JSON())
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		job.Trace().WriteChrome(w)
	default:
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, "unknown format "+format)
	}
}

// handleProps serves the 12 structural properties of the restored graph.
func (s *Server) handleProps(w http.ResponseWriter, r *http.Request) {
	res, ok := s.jobResult(w, r)
	if !ok {
		return
	}
	buf, err := res.Props(s.svc.PropsWorkers())
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrCodeJobFailed, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, detail string) {
	writeJSON(w, status, Error{Code: code, Detail: detail})
}
