package restored

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sgr/internal/graph"
	"sgr/internal/props"
)

// startHTTP boots a Service behind its HTTP handler.
func startHTTP(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := newTestService(t, cfg)
	ts := httptest.NewServer(NewServer(svc).Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// postJob submits a spec over HTTP, returning the status code and decoded
// JobStatus.
func postJob(t *testing.T, url string, spec *JobSpec) (int, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return resp.StatusCode, st
}

// getBody GETs a URL and returns status, body, and the Retry-After header.
func getBody(t *testing.T, url string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("Retry-After")
}

// pollDone polls the status endpoint until the job leaves the queue.
func pollDone(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, body, _ := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d: %s", code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone:
			return st
		case StateFailed:
			t.Fatalf("job failed: %s", st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return JobStatus{}
}

// TestHTTPSubmitPollDownload drives the wire protocol end to end and pins
// every download format against the offline pipeline.
func TestHTTPSubmitPollDownload(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.15)
	offline, offlineBin := offlineRestore(t, c, 5, 3)
	svc, ts := startHTTP(t, Config{})

	code, st := postJob(t, ts.URL, &JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", code)
	}
	if !validKey(st.ID) {
		t.Fatalf("job id %q is not a content hash", st.ID)
	}
	final := pollDone(t, ts.URL, st.ID)
	if final.Result == nil || final.Result.Nodes != offline.Graph.N() ||
		final.Result.Edges != offline.Graph.M() || final.Result.GraphBytes != len(offlineBin) {
		t.Fatalf("final status result = %+v", final.Result)
	}

	// Binary download: byte-identical to the offline codec output.
	code, bin, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/graph")
	if code != http.StatusOK || !bytes.Equal(bin, offlineBin) {
		t.Fatalf("binary download: HTTP %d, %d bytes (want %d identical bytes)",
			code, len(bin), len(offlineBin))
	}
	if _, err := graph.DecodeBinary(bin); err != nil {
		t.Fatalf("binary download does not decode: %v", err)
	}

	// Edge-list download: byte-identical to cmd/restore -out.
	var edges bytes.Buffer
	if err := graph.WriteEdgeList(&edges, offline.Graph); err != nil {
		t.Fatal(err)
	}
	code, text, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/graph?format=edgelist")
	if code != http.StatusOK || !bytes.Equal(text, edges.Bytes()) {
		t.Fatalf("edge-list download: HTTP %d, mismatch=%v", code, !bytes.Equal(text, edges.Bytes()))
	}

	// Props download: the 12 properties of the restored graph, computed at
	// the service's deterministic worker bound.
	code, propsBody, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/props")
	if code != http.StatusOK {
		t.Fatalf("props download: HTTP %d", code)
	}
	want, err := json.Marshal(props.Compute(offline.Graph, props.Options{Workers: svc.PropsWorkers()}))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimRight(propsBody, "\n"), want) {
		t.Fatal("props JSON differs from offline computation")
	}

	// Resubmission: 200 (not 202) and immediately done.
	code, again := postJob(t, ts.URL, &JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if code != http.StatusOK || again.State != StateDone || again.ID != st.ID {
		t.Fatalf("resubmit: HTTP %d state %s id match %v", code, again.State, again.ID == st.ID)
	}
	if svc.PipelineRuns() != 1 {
		t.Fatalf("pipeline runs = %d", svc.PipelineRuns())
	}
}

// TestHTTPHealthzAndMetrics covers the shared daemon endpoints.
func TestHTTPHealthzAndMetrics(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.1)
	_, ts := startHTTP(t, Config{})
	code, st := postJob(t, ts.URL, &JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	pollDone(t, ts.URL, st.ID)

	code, body, _ := getBody(t, ts.URL+"/v1/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		t.Fatalf("healthz: HTTP %d %s", code, body)
	}
	code, body, _ = getBody(t, ts.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	metrics := make(map[string]int64)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue // HELP/TYPE exposition comments
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad metrics line %q", line)
		}
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad metrics value in %q", line)
		}
		metrics[name] = int64(n)
	}
	for name, want := range map[string]int64{
		"restored_jobs_submitted":                  1,
		"restored_jobs_completed":                  1,
		"restored_pipeline_runs":                   1,
		"restored_cache_entries":                   1,
		"restored_jobs_failed":                     0,
		"restored_queue_usec_count":                1,
		"restored_pipeline_usec_count":             1,
		`restored_pipeline_usec_bucket{le="+Inf"}`: 1,
	} {
		if metrics[name] != want {
			t.Errorf("%s = %d, want %d", name, metrics[name], want)
		}
	}
}

// TestHTTPJobTrace drives the trace endpoint: a finished job serves an
// ordered span timeline covering the measured pipeline time (the
// acceptance criterion), the Chrome dump is well-formed trace_event JSON,
// and the status carries its wall-clock-only timeline fields.
func TestHTTPJobTrace(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.1)
	_, ts := startHTTP(t, Config{})
	code, st := postJob(t, ts.URL, &JobSpec{Seed: 3, RC: 5, Crawl: crawlJSONBytes(t, c)})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := pollDone(t, ts.URL, st.ID)
	if final.PhaseUS <= 0 {
		t.Fatalf("done status phase_usec = %d, want > 0", final.PhaseUS)
	}
	if final.QueueUS < 0 {
		t.Fatalf("done status queue_usec = %d", final.QueueUS)
	}

	code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d: %s", code, body)
	}
	var tl struct {
		Name    string `json:"name"`
		TotalUS int64  `json:"total_usec"`
		Spans   []struct {
			Name    string `json:"name"`
			StartUS int64  `json:"start_usec"`
			DurUS   int64  `json:"dur_usec"`
			Count   int64  `json:"count"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	got := make(map[string]bool, len(tl.Spans))
	var phaseSum int64
	for i, sp := range tl.Spans {
		got[sp.Name] = true
		if sp.StartUS < 0 || sp.DurUS < 0 {
			t.Fatalf("span %q has negative timing", sp.Name)
		}
		if i > 0 && sp.StartUS < tl.Spans[i-1].StartUS {
			t.Fatalf("span %q starts before its predecessor %q", sp.Name, tl.Spans[i-1].Name)
		}
		if sp.Count == 0 { // plain phase spans; timers aggregate across them
			phaseSum += sp.DurUS
		}
	}
	for _, want := range []string{
		"queue", "cache_read", "estimate", "subgraph", "phase1_degree_vector",
		"phase2_jdm", "phase3_construct", "phase4_rewire", "encode", "cache_write",
	} {
		if !got[want] {
			t.Errorf("trace missing span %q", want)
		}
	}
	if tl.TotalUS <= 0 || phaseSum > 2*tl.TotalUS {
		t.Fatalf("trace total %dus does not cover phase sum %dus", tl.TotalUS, phaseSum)
	}

	// The Chrome dump decodes as a trace_event file with one event per span.
	code, body, _ = getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/trace?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome trace: HTTP %d", code)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome trace JSON: %v", err)
	}
	if len(chrome.TraceEvents) != len(tl.Spans) || chrome.DisplayTimeUnit != "ms" {
		t.Fatalf("chrome dump: %d events (want %d), unit %q",
			len(chrome.TraceEvents), len(tl.Spans), chrome.DisplayTimeUnit)
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("chrome event %q has phase %q, want X", ev.Name, ev.Ph)
		}
	}

	// Unknown jobs 404; unknown formats 400.
	code, _, _ = getBody(t, ts.URL+"/v1/jobs/"+strings.Repeat("0", 64)+"/trace")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job trace: HTTP %d", code)
	}
	code, _, _ = getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/trace?format=yaml")
	if code != http.StatusBadRequest {
		t.Fatalf("bad trace format: HTTP %d", code)
	}
}

// TestHTTPErrors covers the failure surface of the wire protocol.
func TestHTTPErrors(t *testing.T) {
	_, c := testGraphAndCrawl(t, 3, 0.1)
	raw := crawlJSONBytes(t, c)
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	svc, ts := startHTTP(t, Config{Workers: 1})
	svc.testBeforeRun = func(*Job) {
		started <- struct{}{}
		<-gate
	}
	defer close(gate)

	expectErr := func(method, url string, body []byte, wantStatus int, wantCode string) {
		t.Helper()
		var resp *http.Response
		var err error
		if method == http.MethodPost {
			resp, err = http.Post(url, "application/json", bytes.NewReader(body))
		} else {
			resp, err = http.Get(url)
		}
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s %s: decoding error body: %v", method, url, err)
		}
		if resp.StatusCode != wantStatus || e.Code != wantCode {
			t.Fatalf("%s %s: HTTP %d %q, want %d %q", method, url, resp.StatusCode, e.Code, wantStatus, wantCode)
		}
	}

	expectErr(http.MethodPost, ts.URL+"/v1/jobs", []byte("{broken"), http.StatusBadRequest, ErrCodeBadRequest)
	expectErr(http.MethodPost, ts.URL+"/v1/jobs", []byte(`{"seed":1}`), http.StatusBadRequest, ErrCodeBadRequest)
	expectErr(http.MethodGet, ts.URL+"/v1/jobs/"+strings.Repeat("0", 64), nil, http.StatusNotFound, ErrCodeUnknownJob)
	expectErr(http.MethodGet, ts.URL+"/v1/jobs/"+strings.Repeat("0", 64)+"/graph", nil, http.StatusNotFound, ErrCodeUnknownJob)

	// A running job's downloads answer 409 not_ready with a Retry-After.
	code, st := postJob(t, ts.URL, &JobSpec{Seed: 3, RC: 5, Crawl: raw})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	<-started
	graphURL := ts.URL + "/v1/jobs/" + st.ID + "/graph"
	codeG, _, retryAfter := getBody(t, graphURL)
	if codeG != http.StatusConflict || retryAfter == "" {
		t.Fatalf("graph of running job: HTTP %d retry-after %q", codeG, retryAfter)
	}
	expectErr(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/props", nil, http.StatusConflict, ErrCodeNotReady)
	gate <- struct{}{} // release the worker for cleanup
	pollDone(t, ts.URL, st.ID)
	expectErr(http.MethodGet, graphURL+"?format=yaml", nil, http.StatusBadRequest, ErrCodeBadRequest)
}
